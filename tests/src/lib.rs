pub(crate) fn _unused() {}
