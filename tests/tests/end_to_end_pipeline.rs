//! End-to-end integration: CSV ingestion → DFS staging → cluster training →
//! prediction → model persistence, crossing every crate boundary.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::csv::{parse_csv, write_csv, TaskKind};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, SynthSpec};
use ts_dfs::{Dfs, DfsConfig};
use ts_tree::{train_tree, DecisionTreeModel, TrainParams};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ts-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn csv_to_dfs_to_cluster_to_model_file() {
    // 1. Generate data and serialise it as CSV (the user-facing format).
    let source = generate(&SynthSpec {
        rows: 3_000,
        numeric: 4,
        categorical: 2,
        cat_cardinality: 5,
        noise: 0.05,
        concept_depth: 4,
        seed: 31,
        ..Default::default()
    });
    let csv_text = write_csv(&source);

    // 2. Re-ingest the CSV (type inference) and stage it in the DFS with the
    //    column-group x row-group layout.
    let table = parse_csv(&csv_text, "__target__", TaskKind::Classification).unwrap();
    assert_eq!(table.n_rows(), source.n_rows());
    let (train, test) = table.train_test_split(0.8, 2);
    let dfs = Dfs::new(DfsConfig::local(tmp("pipeline"))).unwrap();
    dfs.put_table("train", &train, 2, 1_000).unwrap();

    // 3. Launch a cluster from the DFS and train.
    let cfg = ClusterConfig {
        n_workers: 3,
        compers_per_worker: 2,
        tau_d: 400,
        tau_dfs: 1_600,
        ..Default::default()
    };
    let cluster = Cluster::launch_from_dfs(cfg, &dfs, "train").unwrap();
    let tree = cluster
        .train(JobSpec::decision_tree(train.schema().task))
        .into_tree();
    let forest = cluster
        .train(JobSpec::random_forest(train.schema().task, 5).with_seed(4))
        .into_forest();
    cluster.shutdown();

    // 4. The exactness guarantee holds across the whole pipeline.
    let reference = train_tree(
        &train,
        &(0..train.n_attrs()).collect::<Vec<_>>(),
        &TrainParams::for_task(train.schema().task),
        0,
    );
    assert_eq!(tree.canonicalize(), reference.canonicalize());

    // 5. Predictions are sane and the model survives a disk round-trip.
    let acc = accuracy(
        &forest.predict_labels(&test),
        test.labels().as_class().unwrap(),
    );
    assert!(acc > 0.6, "forest accuracy {acc}");
    let path = std::env::temp_dir().join(format!("ts-e2e-model-{}.json", std::process::id()));
    std::fs::write(&path, tree.to_json()).unwrap();
    let loaded = DecisionTreeModel::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, tree);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dfs_row_groups_serve_row_parallel_jobs() {
    // The deep-forest-style companion jobs read row-groups; check a full
    // row-partitioned traversal agrees with the columnar view.
    let table = generate(&SynthSpec {
        rows: 1_000,
        numeric: 3,
        seed: 5,
        ..Default::default()
    });
    let dfs = Dfs::new(DfsConfig::local(tmp("rows"))).unwrap();
    let meta = dfs.put_table("d", &table, 2, 128).unwrap();
    let dt = dfs.open("d").unwrap();
    let mut rows_seen = 0usize;
    for rg in 0..meta.n_row_groups() {
        let cols = dt.load_row_group(rg).unwrap();
        assert_eq!(cols.len(), table.n_attrs());
        let range = meta.row_group_rows(rg);
        for (local, global) in range.clone().enumerate() {
            for (a, col) in cols.iter().enumerate() {
                let got = col.value(local);
                let want = table.value(global, a);
                match (got, want) {
                    (ts_datatable::Value::Num(x), ts_datatable::Value::Num(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits())
                    }
                    (g, w) => assert_eq!(format!("{g:?}"), format!("{w:?}")),
                }
            }
        }
        rows_seen += range.len();
    }
    assert_eq!(rows_seen, 1_000);
}
