//! Workspace-level property tests: randomised cluster shapes and datasets
//! must never break the engine's core invariants.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::Task;
use ts_tree::{train_tree, TrainParams};
use tscheck::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// THE invariant: any cluster shape trains the same exact tree as the
    /// local trainer, on randomly-shaped data.
    #[test]
    fn any_cluster_shape_is_exact(
        rows in 300usize..1_500,
        numeric in 1usize..5,
        categorical in 0usize..3,
        workers in 1usize..5,
        compers in 1usize..4,
        tau_d_frac in 2u64..40,
        data_seed in 0u64..1_000,
    ) {
        let t = generate(&SynthSpec {
            rows,
            numeric,
            categorical,
            cat_cardinality: 5,
            noise: 0.1,
            concept_depth: 4,
            seed: data_seed,
            ..Default::default()
        });
        let cfg = ClusterConfig {
            n_workers: workers,
            compers_per_worker: compers,
            replication: 2.min(workers),
            tau_d: (rows as u64 / tau_d_frac).max(2),
            tau_dfs: (rows as u64 / tau_d_frac).max(2) * 3,
            ..Default::default()
        };
        let cluster = Cluster::launch(cfg, &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task).with_dmax(6))
            .into_tree();
        cluster.shutdown();

        let params = TrainParams { dmax: 6, ..TrainParams::for_task(t.schema().task) };
        let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);
        prop_assert_eq!(model.canonicalize(), reference.canonicalize());
    }

    /// Tree structural invariants hold for any trained model: children
    /// partition parents, depths increase by one, predictions exist.
    #[test]
    fn trained_tree_structural_invariants(
        rows in 200usize..1_000,
        seed in 0u64..500,
        regression in any::<bool>(),
    ) {
        let t = generate(&SynthSpec {
            rows,
            numeric: 4,
            categorical: 1,
            task: if regression { Task::Regression } else { Task::Classification { n_classes: 3 } },
            seed,
            ..Default::default()
        });
        let cluster = Cluster::launch(
            ClusterConfig { n_workers: 2, compers_per_worker: 2, tau_d: 100, tau_dfs: 400, ..Default::default() },
            &t,
        );
        let model = cluster.train(JobSpec::decision_tree(t.schema().task)).into_tree();
        cluster.shutdown();

        prop_assert_eq!(model.nodes[0].n_rows, rows as u64, "root covers all rows");
        for (i, n) in model.nodes.iter().enumerate() {
            if let Some((_, l, r)) = &n.split {
                prop_assert!(*l > i && *r > i);
                prop_assert_eq!(
                    model.nodes[*l].n_rows + model.nodes[*r].n_rows,
                    n.n_rows
                );
                prop_assert_eq!(model.nodes[*l].depth, n.depth + 1);
                prop_assert_eq!(model.nodes[*r].depth, n.depth + 1);
            }
        }
        // Every row routes to *some* prediction without panicking.
        for row in 0..t.n_rows().min(50) {
            let _ = model.predict_row(&t, row, u32::MAX);
        }
    }
}
