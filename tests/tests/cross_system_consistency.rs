//! Cross-system consistency: the three *exact* trainers in this repository
//! (the local recursive trainer, the TreeServer cluster, and the
//! Yggdrasil-style baseline) must all produce the same tree, while the
//! approximate trainers (PLANET histograms, XGBoost sketches) must behave
//! like restrictions of the exact search.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_baselines::{PlanetConfig, PlanetTrainer, YggdrasilConfig, YggdrasilTrainer};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, PaperDataset, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_splits::Impurity;
use ts_tree::{train_tree, TrainParams};

fn sample(rows: usize, seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 5,
        categorical: 2,
        cat_cardinality: 6,
        noise: 0.05,
        concept_depth: 5,
        seed,
        ..Default::default()
    })
}

#[test]
fn three_exact_trainers_agree() {
    let t = sample(2_500, 41);
    let all: Vec<usize> = (0..t.n_attrs()).collect();
    let params = TrainParams::for_task(t.schema().task);

    let local = train_tree(&t, &all, &params, 0).canonicalize();

    let cluster = Cluster::launch(
        ClusterConfig {
            n_workers: 3,
            compers_per_worker: 2,
            tau_d: 300,
            tau_dfs: 1_200,
            ..Default::default()
        },
        &t,
    );
    let ts = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree()
        .canonicalize();
    cluster.shutdown();

    let (ygg, _) = YggdrasilTrainer::new(YggdrasilConfig::default()).train_tree(&t, &all);
    let ygg = ygg.canonicalize();

    assert_eq!(
        local, ts,
        "TreeServer diverged from the local exact trainer"
    );
    assert_eq!(
        local, ygg,
        "Yggdrasil diverged from the local exact trainer"
    );
}

#[test]
fn approximate_trainers_do_not_beat_exact_on_training_fit() {
    let t = sample(3_000, 43);
    let all: Vec<usize> = (0..t.n_attrs()).collect();
    let exact = train_tree(&t, &all, &TrainParams::for_task(t.schema().task), 0);
    let exact_acc = accuracy(&exact.predict_labels(&t), t.labels().as_class().unwrap());

    for bins in [4usize, 8, 32] {
        let trainer = PlanetTrainer::new(PlanetConfig {
            max_bins: bins,
            ..Default::default()
        });
        let (approx, _) = trainer.train_tree(&t, &all);
        let approx_acc = accuracy(&approx.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(
            approx_acc <= exact_acc + 0.02,
            "maxBins={bins}: approx train acc {approx_acc} vs exact {exact_acc}"
        );
    }
}

#[test]
fn coarser_bins_lose_more() {
    // Restricting candidates further can only hurt (weak monotonicity, with
    // a tolerance for tie noise).
    let t = sample(3_000, 47);
    let all: Vec<usize> = (0..t.n_attrs()).collect();
    let acc_at = |bins: usize| {
        let trainer = PlanetTrainer::new(PlanetConfig {
            max_bins: bins,
            ..Default::default()
        });
        let (m, _) = trainer.train_tree(&t, &all);
        accuracy(&m.predict_labels(&t), t.labels().as_class().unwrap())
    };
    let coarse = acc_at(3);
    let fine = acc_at(64);
    assert!(
        coarse <= fine + 0.03,
        "3-bin fit {coarse} should not beat 64-bin fit {fine}"
    );
}

#[test]
fn regression_exact_consistency_on_allstate_shape() {
    let t = PaperDataset::Allstate.generate(3e-4, 51);
    let all: Vec<usize> = (0..t.n_attrs()).collect();
    let params = TrainParams::for_task(Task::Regression);
    let local = train_tree(&t, &all, &params, 0).canonicalize();

    let (ygg, _) = YggdrasilTrainer::new(YggdrasilConfig {
        impurity: Impurity::Variance,
        ..Default::default()
    })
    .train_tree(&t, &all);
    assert_eq!(local, ygg.canonicalize(), "regression with missing values");
}

#[test]
fn all_paper_dataset_shapes_train_on_every_system() {
    // Smoke: each Table I shape flows through TreeServer, MLlib-style and
    // the local trainer without panics, with matching tasks.
    for d in PaperDataset::ALL {
        let t = d.generate(1e-4, 3);
        let (train, test) = t.train_test_split(0.8, 1);
        let cluster = Cluster::launch(
            ClusterConfig {
                n_workers: 2,
                compers_per_worker: 2,
                tau_d: 500,
                ..Default::default()
            },
            &train,
        );
        let model = cluster.train(JobSpec::decision_tree(train.schema().task).with_dmax(5));
        cluster.shutdown();
        let planet = PlanetTrainer::new(PlanetConfig {
            dmax: 5,
            impurity: if train.schema().task.is_classification() {
                Impurity::Gini
            } else {
                Impurity::Variance
            },
            ..Default::default()
        });
        let all: Vec<usize> = (0..train.n_attrs()).collect();
        let (pm, _) = planet.train_tree(&train, &all);
        // Both models predict over the test set without panicking.
        match train.schema().task {
            Task::Regression => {
                let _ = model.into_tree().predict_values(&test);
                let _ = pm.predict_values(&test);
            }
            Task::Classification { .. } => {
                let _ = model.into_tree().predict_labels(&test);
                let _ = pm.predict_labels(&test);
            }
        }
    }
}
