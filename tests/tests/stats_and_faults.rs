//! Cluster statistics invariants and fault-tolerance scenarios across
//! crates.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::DataTable;

fn sample(rows: usize, seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 6,
        categorical: 1,
        noise: 0.05,
        concept_depth: 5,
        seed,
        ..Default::default()
    })
}

fn cfg(workers: usize) -> ClusterConfig {
    ClusterConfig {
        n_workers: workers,
        compers_per_worker: 2,
        replication: 2.min(workers),
        tau_d: 300,
        tau_dfs: 1_200,
        ..Default::default()
    }
}

#[test]
fn bytes_sent_equal_bytes_received_cluster_wide() {
    let t = sample(2_000, 61);
    let cluster = Cluster::launch(cfg(4), &t);
    let _ = cluster.train(JobSpec::random_forest(t.schema().task, 4).with_seed(1));
    // Snapshot while everything is quiesced (job done, nothing else sends).
    let report = cluster.report();
    cluster.shutdown();
    let sent: u64 = report.per_node.iter().map(|s| s.sent_bytes).sum();
    let recv: u64 = report.per_node.iter().map(|s| s.recv_bytes).sum();
    assert_eq!(sent, recv, "conservation of bytes across the fabric");
    let sent_msgs: u64 = report.per_node.iter().map(|s| s.sent_msgs).sum();
    let recv_msgs: u64 = report.per_node.iter().map(|s| s.recv_msgs).sum();
    assert_eq!(sent_msgs, recv_msgs);
}

#[test]
fn busy_time_is_recorded_for_all_workers() {
    let t = sample(3_000, 67);
    let cluster = Cluster::launch(cfg(3), &t);
    let _ = cluster.train(JobSpec::random_forest(t.schema().task, 6).with_seed(2));
    let report = cluster.report();
    cluster.shutdown();
    for (w, snap) in report.per_node.iter().enumerate().skip(1) {
        assert!(snap.busy_ns > 0, "worker {w} never computed");
        assert!(snap.mem_peak > 0, "worker {w} tracked no memory");
    }
    // The master computes nothing itself ("dedicated to task management").
    assert_eq!(report.per_node[0].busy_ns, 0);
}

#[test]
fn crash_of_each_worker_in_turn_recovers() {
    let t = sample(2_000, 71);
    for victim in 1..=3usize {
        let cluster = Cluster::launch(cfg(3), &t);
        let h = cluster.submit(JobSpec::random_forest(t.schema().task, 4).with_seed(3));
        std::thread::sleep(std::time::Duration::from_millis(15));
        cluster.kill_worker(victim);
        let f = cluster.wait(h).into_forest();
        cluster.shutdown();
        assert_eq!(f.n_trees(), 4, "victim {victim}");
        let acc = accuracy(&f.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(acc > 0.6, "victim {victim}: accuracy {acc}");
    }
}

#[test]
fn crash_before_submission_still_trains() {
    let t = sample(1_500, 73);
    let cluster = Cluster::launch(cfg(4), &t);
    cluster.kill_worker(2);
    let f = cluster
        .train(JobSpec::random_forest(t.schema().task, 3).with_seed(5))
        .into_forest();
    cluster.shutdown();
    assert_eq!(f.n_trees(), 3);
}

#[test]
fn jobs_submitted_after_crash_use_replicas() {
    let t = sample(1_500, 79);
    let cluster = Cluster::launch(cfg(3), &t);
    let before = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.kill_worker(1);
    let after = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    // Exactness is scheduling-independent, so the crash must not change the
    // model either.
    assert_eq!(before.canonicalize(), after.canonicalize());
}

#[test]
fn memory_watermark_grows_with_npool() {
    let t = sample(6_000, 83);
    let peak_at = |n_pool: usize| {
        let mut c = cfg(3);
        c.n_pool = n_pool;
        let cluster = Cluster::launch(c, &t);
        let _ = cluster.train(JobSpec::random_forest(t.schema().task, 8).with_seed(6));
        let report = cluster.report();
        cluster.shutdown();
        report.avg_peak_mem_bytes
    };
    let p1 = peak_at(1);
    let p8 = peak_at(8);
    // More concurrent trees hold more task data; column storage dominates,
    // so the growth is modest but must not be negative beyond noise.
    assert!(
        p8 >= p1 * 0.95,
        "peak memory shrank with larger pool: {p1} -> {p8}"
    );
}
