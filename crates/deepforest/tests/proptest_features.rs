//! Property tests for the deep-forest feature plumbing: window geometry and
//! the row-major → columnar transpose hold for arbitrary image shapes.

use ts_datatable::synth::ImageSet;
use ts_datatable::Value;
use ts_deepforest::{slide_windows, table_from_rows, window_positions};
use tscheck::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Window positions tile the image: count matches the closed form, all
    /// windows are in bounds, and positions are unique.
    #[test]
    fn positions_tile_the_image(
        width in 4usize..40,
        height in 4usize..40,
        w in 1usize..8,
        stride in 1usize..6,
    ) {
        let w = w.min(width).min(height);
        let pos = window_positions(width, height, w, stride);
        let expect_x = (width - w) / stride + 1;
        let expect_y = (height - w) / stride + 1;
        prop_assert_eq!(pos.len(), expect_x * expect_y);
        let mut seen = std::collections::HashSet::new();
        for &(x, y) in &pos {
            prop_assert!(x + w <= width && y + w <= height);
            prop_assert!(seen.insert((x, y)), "duplicate window at ({}, {})", x, y);
        }
    }

    /// Sliding windows extracts exactly images × positions vectors of the
    /// right dimension, labels inherited per image, and each vector's
    /// content equals a direct pixel lookup.
    #[test]
    fn slide_matches_direct_lookup(
        n_images in 1usize..5,
        side in 6usize..16,
        w in 2usize..5,
        stride in 1usize..4,
        seed in 0u64..1000,
    ) {
        use tsrand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let images: Vec<Vec<f32>> = (0..n_images)
            .map(|_| (0..side * side).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let labels: Vec<u32> = (0..n_images as u32).map(|i| i % 3).collect();
        let set = ImageSet {
            images: images.clone(),
            labels: labels.clone(),
            width: side,
            height: side,
            n_classes: 3,
        };
        let positions = window_positions(side, side, w, stride);
        let (vecs, vec_labels) = slide_windows(&set, w, stride);
        prop_assert_eq!(vecs.len(), n_images * positions.len());
        for (i, v) in vecs.iter().enumerate() {
            let img = i / positions.len();
            let (x, y) = positions[i % positions.len()];
            prop_assert_eq!(v.len(), w * w);
            prop_assert_eq!(vec_labels[i], labels[img]);
            for dy in 0..w {
                for dx in 0..w {
                    prop_assert_eq!(
                        v[dy * w + dx],
                        images[img][(y + dy) * side + x + dx],
                        "image {} window ({},{}) offset ({},{})", img, x, y, dx, dy
                    );
                }
            }
        }
    }

    /// table_from_rows is an exact transpose.
    #[test]
    fn transpose_is_exact(
        rows in 1usize..30,
        dim in 1usize..12,
        seed in 0u64..1000,
    ) {
        use tsrand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let labels: Vec<u32> = (0..rows as u32).map(|i| i % 2).collect();
        let t = table_from_rows(&data, labels, 2);
        prop_assert_eq!(t.n_rows(), rows);
        prop_assert_eq!(t.n_attrs(), dim);
        for (r, row) in data.iter().enumerate() {
            for (c, &expect) in row.iter().enumerate() {
                match t.value(r, c) {
                    Value::Num(v) => prop_assert_eq!(v, expect as f64),
                    other => prop_assert!(false, "unexpected {:?}", other),
                }
            }
        }
    }
}
