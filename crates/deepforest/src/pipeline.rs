//! The deep-forest training/prediction pipeline driving TreeServer.

use crate::features::{slide_windows, table_from_rows};
use std::time::{Duration, Instant};
use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::ImageSet;
use ts_serve::{CompiledModel, ServeOptions};
use ts_tree::ForestModel;

/// Configuration of the deep forest (defaults follow the paper's tuned
/// MNIST setup in §VIII: windows 3/5/7, 2 forests × 20 trees per step,
/// `dmax = 10` in MGS, unbounded depth and random forests only in CF).
#[derive(Debug, Clone)]
pub struct DeepForestConfig {
    /// Square MGS window sizes.
    pub windows: Vec<usize>,
    /// Window stride (the paper slides with stride 1; larger strides scale
    /// the experiment down — see DESIGN.md §2).
    pub stride: usize,
    /// Forests trained per MGS window.
    pub mgs_forests: usize,
    /// Trees per MGS forest.
    pub mgs_trees: usize,
    /// MGS tree depth cap.
    pub mgs_dmax: u32,
    /// Cascade layers (the paper runs CF0..CF5).
    pub cf_layers: usize,
    /// Forests per cascade layer.
    pub cf_forests: usize,
    /// Trees per cascade forest.
    pub cf_trees: usize,
    /// CF tree depth cap (`u32::MAX` = the paper's `dmax = ∞`).
    pub cf_dmax: u32,
    /// TreeServer cluster shape used for every training job.
    pub cluster: ClusterConfig,
    /// Seed for all column sampling.
    pub seed: u64,
}

impl Default for DeepForestConfig {
    fn default() -> Self {
        DeepForestConfig {
            windows: vec![3, 5, 7],
            stride: 2,
            mgs_forests: 2,
            mgs_trees: 20,
            mgs_dmax: 10,
            cf_layers: 6,
            cf_forests: 2,
            cf_trees: 20,
            cf_dmax: u32::MAX,
            cluster: ClusterConfig::default(),
            seed: 1,
        }
    }
}

/// Timing (and, for CF steps, accuracy) of one pipeline step — the rows of
/// the paper's Table VII.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Step name in the paper's naming ("slide", "win3train", "CF0extract" ...).
    pub step: String,
    /// Training-side wall clock.
    pub train_time: Duration,
    /// Test-side wall clock, when the step also processes the test set.
    pub test_time: Option<Duration>,
    /// Test accuracy after this step (CF extract steps).
    pub test_accuracy: Option<f64>,
}

/// A trained deep forest.
pub struct DeepForest {
    cfg: DeepForestConfig,
    /// Per window size: the MGS forests.
    mgs: Vec<Vec<ForestModel>>,
    /// Per cascade layer: the layer's forests.
    cf: Vec<Vec<ForestModel>>,
    n_classes: u32,
}

impl DeepForest {
    /// Trains the full pipeline, returning the model and the per-step report
    /// (Table VII's rows). `test` is evaluated after every cascade layer.
    pub fn train(
        cfg: DeepForestConfig,
        train: &ImageSet,
        test: &ImageSet,
    ) -> (DeepForest, Vec<StepReport>) {
        assert!(!cfg.windows.is_empty(), "need at least one window size");
        assert!(cfg.cf_layers >= 1, "need at least one cascade layer");
        let n_classes = train.n_classes;
        let mut reports = Vec::new();

        // --- Step "slide": window extraction for every window size. ---
        let t0 = Instant::now();
        let slid_train: Vec<(Vec<Vec<f32>>, Vec<u32>)> = cfg
            .windows
            .iter()
            .map(|&w| slide_windows(train, w, cfg.stride))
            .collect();
        let train_slide = t0.elapsed();
        let t0 = Instant::now();
        let slid_test: Vec<(Vec<Vec<f32>>, Vec<u32>)> = cfg
            .windows
            .iter()
            .map(|&w| slide_windows(test, w, cfg.stride))
            .collect();
        reports.push(StepReport {
            step: "slide".into(),
            train_time: train_slide,
            test_time: Some(t0.elapsed()),
            test_accuracy: None,
        });

        // --- MGS: train forests per window, then re-represent images. ---
        let mut mgs = Vec::with_capacity(cfg.windows.len());
        let mut mgs_train_feats: Vec<Vec<Vec<f32>>> = Vec::new();
        let mut mgs_test_feats: Vec<Vec<Vec<f32>>> = Vec::new();
        for (wi, &w) in cfg.windows.iter().enumerate() {
            let t0 = Instant::now();
            let (vecs, labels) = &slid_train[wi];
            let table = table_from_rows(vecs, labels.clone(), n_classes);
            let cluster = Cluster::launch(cfg.cluster.clone(), &table);
            let forests: Vec<ForestModel> = (0..cfg.mgs_forests)
                .map(|f| {
                    cluster
                        .train(
                            JobSpec::random_forest(table.schema().task, cfg.mgs_trees)
                                .with_dmax(cfg.mgs_dmax)
                                .with_seed(cfg.seed ^ ((wi as u64) << 8) ^ f as u64),
                        )
                        .into_forest()
                })
                .collect();
            cluster.shutdown();
            reports.push(StepReport {
                step: format!("win{w}train"),
                train_time: t0.elapsed(),
                test_time: None,
                test_accuracy: None,
            });

            // Re-representation (row-parallel prediction job).
            let t0 = Instant::now();
            let train_f =
                extract_features(&forests, &slid_train[wi].0, train.images.len(), n_classes);
            let train_time = t0.elapsed();
            let t0 = Instant::now();
            let test_f = extract_features(&forests, &slid_test[wi].0, test.images.len(), n_classes);
            reports.push(StepReport {
                step: format!("win{w}extract"),
                train_time,
                test_time: Some(t0.elapsed()),
                test_accuracy: None,
            });
            mgs_train_feats.push(train_f);
            mgs_test_feats.push(test_f);
            mgs.push(forests);
        }

        // --- Cascade forest. ---
        let mut cf: Vec<Vec<ForestModel>> = Vec::with_capacity(cfg.cf_layers);
        let mut prev_train: Vec<Vec<f32>> = Vec::new();
        let mut prev_test: Vec<Vec<f32>> = Vec::new();
        for layer in 0..cfg.cf_layers {
            let win = layer % cfg.windows.len();
            let train_in = concat_features(&prev_train, &mgs_train_feats[win]);
            let test_in = concat_features(&prev_test, &mgs_test_feats[win]);

            let t0 = Instant::now();
            let table = table_from_rows(&train_in, train.labels.clone(), n_classes);
            let cluster = Cluster::launch(cfg.cluster.clone(), &table);
            let forests: Vec<ForestModel> = (0..cfg.cf_forests)
                .map(|f| {
                    cluster
                        .train(
                            JobSpec::random_forest(table.schema().task, cfg.cf_trees)
                                .with_dmax(cfg.cf_dmax)
                                .with_seed(cfg.seed ^ 0xCF00 ^ ((layer as u64) << 8) ^ f as u64),
                        )
                        .into_forest()
                })
                .collect();
            cluster.shutdown();
            reports.push(StepReport {
                step: format!("CF{layer}train"),
                train_time: t0.elapsed(),
                test_time: None,
                test_accuracy: None,
            });

            // Layer extract + test accuracy.
            let t0 = Instant::now();
            prev_train = layer_outputs(&forests, &train_in, n_classes);
            let train_time = t0.elapsed();
            let t0 = Instant::now();
            prev_test = layer_outputs(&forests, &test_in, n_classes);
            let test_time = t0.elapsed();
            let acc = {
                let pred: Vec<u32> = prev_test
                    .iter()
                    .map(|feats| argmax_avg(feats, n_classes))
                    .collect();
                let hits = pred
                    .iter()
                    .zip(&test.labels)
                    .filter(|(p, t)| p == t)
                    .count();
                hits as f64 / test.labels.len() as f64
            };
            reports.push(StepReport {
                step: format!("CF{layer}extract"),
                train_time,
                test_time: Some(test_time),
                test_accuracy: Some(acc),
            });
            cf.push(forests);
        }

        (
            DeepForest {
                cfg,
                mgs,
                cf,
                n_classes,
            },
            reports,
        )
    }

    /// Predicts class labels for a set of images by running the full
    /// pipeline (MGS re-representation + cascade).
    pub fn predict(&self, images: &ImageSet) -> Vec<u32> {
        let slid: Vec<(Vec<Vec<f32>>, Vec<u32>)> = self
            .cfg
            .windows
            .iter()
            .map(|&w| slide_windows(images, w, self.cfg.stride))
            .collect();
        let mgs_feats: Vec<Vec<Vec<f32>>> = self
            .cfg
            .windows
            .iter()
            .enumerate()
            .map(|(wi, _)| {
                extract_features(
                    &self.mgs[wi],
                    &slid[wi].0,
                    images.images.len(),
                    self.n_classes,
                )
            })
            .collect();
        let mut prev: Vec<Vec<f32>> = Vec::new();
        for (layer, forests) in self.cf.iter().enumerate() {
            let win = layer % self.cfg.windows.len();
            let input = concat_features(&prev, &mgs_feats[win]);
            prev = layer_outputs(forests, &input, self.n_classes);
        }
        prev.iter().map(|f| argmax_avg(f, self.n_classes)).collect()
    }

    /// Number of trees across the whole model.
    pub fn n_trees(&self) -> usize {
        self.mgs
            .iter()
            .flatten()
            .chain(self.cf.iter().flatten())
            .map(ForestModel::n_trees)
            .sum()
    }
}

/// Compiles each forest once for serving; the image/forest loops below are
/// already parallel, so the compiled models score sequentially inside them.
fn compile_forests(forests: &[ForestModel]) -> Vec<CompiledModel> {
    forests
        .iter()
        .map(|f| {
            CompiledModel::from_forest(f).with_options(ServeOptions::default().with_threads(1))
        })
        .collect()
}

/// Runs window vectors through the MGS forests and concatenates the PMFs of
/// all positions into one feature vector per image (row-parallel over
/// images). The forests are compiled once up front — the per-image tables
/// are tiny, so re-flattening every call would dominate.
fn extract_features(
    forests: &[ForestModel],
    window_vecs: &[Vec<f32>],
    n_images: usize,
    n_classes: u32,
) -> Vec<Vec<f32>> {
    let per_image = window_vecs.len() / n_images;
    assert_eq!(
        per_image * n_images,
        window_vecs.len(),
        "uneven window count"
    );
    let compiled = compile_forests(forests);
    tspar::par_map_range(n_images, 0, |img| {
        let slice = &window_vecs[img * per_image..(img + 1) * per_image];
        let table = table_from_rows(slice, vec![0; slice.len()], n_classes);
        let mut out = Vec::with_capacity(per_image * forests.len() * n_classes as usize);
        for f in &compiled {
            out.extend(f.predict_pmf_flat(&table));
        }
        out
    })
}

/// One cascade layer's output features: the concatenated per-forest PMFs,
/// each forest scored on the compiled batched path.
fn layer_outputs(forests: &[ForestModel], input: &[Vec<f32>], n_classes: u32) -> Vec<Vec<f32>> {
    let table = table_from_rows(input, vec![0; input.len()], n_classes);
    let compiled = compile_forests(forests);
    let per_forest: Vec<Vec<f32>> = tspar::par_map(&compiled, 0, |_, f| f.predict_pmf_flat(&table));
    let k = n_classes as usize;
    (0..input.len())
        .map(|r| {
            let mut out = Vec::with_capacity(forests.len() * k);
            for pf in &per_forest {
                out.extend_from_slice(&pf[r * k..(r + 1) * k]);
            }
            out
        })
        .collect()
}

/// Concatenates previous-layer features with MGS features (empty previous =
/// CF0).
fn concat_features(prev: &[Vec<f32>], mgs: &[Vec<f32>]) -> Vec<Vec<f32>> {
    if prev.is_empty() {
        return mgs.to_vec();
    }
    assert_eq!(prev.len(), mgs.len(), "feature row counts must align");
    prev.iter()
        .zip(mgs)
        .map(|(p, m)| {
            let mut v = Vec::with_capacity(p.len() + m.len());
            v.extend(p);
            v.extend(m);
            v
        })
        .collect()
}

/// Averages a concatenated multi-forest PMF vector and takes the argmax —
/// the paper's layer-level prediction rule.
fn argmax_avg(features: &[f32], n_classes: u32) -> u32 {
    let k = n_classes as usize;
    debug_assert_eq!(features.len() % k, 0);
    let groups = features.len() / k;
    let mut avg = vec![0f32; k];
    for g in 0..groups {
        for c in 0..k {
            avg[c] += features[g * k + c];
        }
    }
    ts_tree::forest::argmax(&avg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::synth::mnist_like;

    fn tiny_config() -> DeepForestConfig {
        DeepForestConfig {
            windows: vec![5],
            stride: 4,
            mgs_forests: 2,
            mgs_trees: 6,
            mgs_dmax: 6,
            cf_layers: 2,
            cf_forests: 2,
            cf_trees: 6,
            cf_dmax: 12,
            cluster: ClusterConfig {
                n_workers: 2,
                compers_per_worker: 2,
                tau_d: 2_000,
                tau_dfs: 8_000,
                ..Default::default()
            },
            seed: 3,
        }
    }

    #[test]
    fn tiny_deep_forest_trains_and_beats_chance() {
        let (train, test) = mnist_like(120, 40, 5);
        let (model, reports) = DeepForest::train(tiny_config(), &train, &test);
        // Step report covers slide + (train+extract per window) + 2 per CF layer.
        assert_eq!(reports.len(), 1 + 2 + 2 * 2);
        assert_eq!(reports[0].step, "slide");
        assert!(reports.iter().any(|r| r.step == "win5train"));
        assert!(reports.iter().any(|r| r.step == "CF1extract"));
        // Final layer accuracy well above 10% chance for 10 classes.
        let final_acc = reports.last().unwrap().test_accuracy.unwrap();
        assert!(final_acc > 0.4, "deep forest accuracy {final_acc}");
        // predict() agrees with the recorded final-layer accuracy.
        let pred = model.predict(&test);
        let acc = pred
            .iter()
            .zip(&test.labels)
            .filter(|(p, t)| p == t)
            .count() as f64
            / test.labels.len() as f64;
        assert!((acc - final_acc).abs() < 1e-9);
        assert_eq!(model.n_trees(), 2 * 6 + 2 * 2 * 6);
    }

    #[test]
    fn argmax_avg_averages_groups() {
        // Two 3-class PMFs: [1,0,0] and [0,0,1] -> avg favours class 0 (tie
        // broken toward smaller index) ... make it unambiguous:
        let f = [0.8, 0.1, 0.1, 0.6, 0.2, 0.2];
        assert_eq!(argmax_avg(&f, 3), 0);
        let f = [0.1, 0.8, 0.1, 0.2, 0.6, 0.2];
        assert_eq!(argmax_avg(&f, 3), 1);
    }

    #[test]
    fn concat_features_aligns_rows() {
        let prev = vec![vec![1.0f32], vec![2.0]];
        let mgs = vec![vec![3.0f32], vec![4.0]];
        let c = concat_features(&prev, &mgs);
        assert_eq!(c, vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
        let c0 = concat_features(&[], &mgs);
        assert_eq!(c0, mgs);
    }
}
