//! Row-parallel feature plumbing: window sliding and row-major → columnar
//! conversion.
//!
//! These are the paper's two companion jobs (§VII): they "partition input
//! data by rows" across all threads of all machines, in contrast to
//! TreeServer's column partitioning. Here they are data-parallel
//! loops.

use ts_datatable::synth::ImageSet;
use ts_datatable::{AttrMeta, Column, DataTable, Labels, Schema, Task};

/// The top-left corners of all `w x w` windows on a `width x height` image
/// with the given stride.
pub fn window_positions(
    width: usize,
    height: usize,
    w: usize,
    stride: usize,
) -> Vec<(usize, usize)> {
    assert!(w <= width && w <= height, "window larger than image");
    assert!(stride >= 1);
    let mut pos = Vec::new();
    let mut y = 0;
    while y + w <= height {
        let mut x = 0;
        while x + w <= width {
            pos.push((x, y));
            x += stride;
        }
        y += stride;
    }
    pos
}

/// Extracts every `w x w` window vector from every image (row-parallel).
///
/// Returns `(vectors, labels)`: one `w*w`-dimensional vector per (image,
/// position), labelled with the image's class — the training input of the
/// MGS forests (paper Fig. 12).
pub fn slide_windows(images: &ImageSet, w: usize, stride: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
    let positions = window_positions(images.width, images.height, w, stride);
    let per_image: Vec<(Vec<Vec<f32>>, Vec<u32>)> = tspar::par_map(&images.images, 0, |i, img| {
        let label = images.labels[i];
        let mut vecs = Vec::with_capacity(positions.len());
        for &(x, y) in &positions {
            let mut v = Vec::with_capacity(w * w);
            for dy in 0..w {
                let row = (y + dy) * images.width + x;
                v.extend_from_slice(&img[row..row + w]);
            }
            vecs.push(v);
        }
        (vecs, vec![label; positions.len()])
    });
    let mut vectors = Vec::with_capacity(images.images.len() * positions.len());
    let mut labels = Vec::with_capacity(vectors.capacity());
    for (vs, ls) in per_image {
        vectors.extend(vs);
        labels.extend(ls);
    }
    (vectors, labels)
}

/// Converts row-major feature vectors into a columnar [`DataTable`]
/// (all-numeric attributes).
pub fn table_from_rows(rows: &[Vec<f32>], labels: Vec<u32>, n_classes: u32) -> DataTable {
    assert!(!rows.is_empty(), "need at least one row");
    assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
    let dim = rows[0].len();
    let columns: Vec<Column> = tspar::par_map_range(dim, 0, |c| {
        Column::Numeric(rows.iter().map(|r| r[c] as f64).collect())
    });
    let attrs = (0..dim)
        .map(|i| AttrMeta::numeric(format!("f{i}")))
        .collect();
    DataTable::new(
        Schema::new(attrs, Task::Classification { n_classes }),
        columns,
        Labels::Class(labels),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::synth::mnist_like;

    #[test]
    fn positions_cover_grid() {
        let pos = window_positions(28, 28, 3, 1);
        assert_eq!(pos.len(), 26 * 26);
        assert_eq!(pos[0], (0, 0));
        assert_eq!(*pos.last().unwrap(), (25, 25));
        let strided = window_positions(28, 28, 3, 2);
        assert_eq!(strided.len(), 13 * 13);
    }

    #[test]
    fn slide_extracts_window_content() {
        // A 4x4 "image" with pixel value = index; window 2, stride 2.
        let img: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let set = ImageSet {
            images: vec![img],
            labels: vec![3],
            width: 4,
            height: 4,
            n_classes: 10,
        };
        let (vecs, labels) = slide_windows(&set, 2, 2);
        assert_eq!(vecs.len(), 4);
        assert_eq!(vecs[0], vec![0.0, 1.0, 4.0, 5.0]);
        assert_eq!(vecs[1], vec![2.0, 3.0, 6.0, 7.0]);
        assert_eq!(vecs[3], vec![10.0, 11.0, 14.0, 15.0]);
        assert!(labels.iter().all(|&l| l == 3));
    }

    #[test]
    fn slide_counts_match_images_times_positions() {
        let (train, _) = mnist_like(10, 1, 1);
        let (vecs, labels) = slide_windows(&train, 5, 3);
        let expect = window_positions(28, 28, 5, 3).len() * 10;
        assert_eq!(vecs.len(), expect);
        assert_eq!(labels.len(), expect);
        assert!(vecs.iter().all(|v| v.len() == 25));
    }

    #[test]
    fn table_from_rows_is_columnar_transpose() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let t = table_from_rows(&rows, vec![0, 1], 2);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_attrs(), 2);
        assert_eq!(t.value(0, 1), ts_datatable::Value::Num(2.0));
        assert_eq!(t.value(1, 0), ts_datatable::Value::Num(3.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn table_from_rows_validates() {
        table_from_rows(&[vec![1.0]], vec![0, 1], 2);
    }
}
