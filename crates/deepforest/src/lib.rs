//! Deep forest (multi-grained scanning + cascade forest) on TreeServer.
//!
//! Reproduces the paper's section VII case study: the gcForest model of
//! Zhou & Feng trained with TreeServer as the forest-training engine, plus
//! the two row-parallel companion jobs (window-sliding feature extraction
//! and re-representation), which partition work by rows while TreeServer
//! partitions by columns.
//!
//! Pipeline:
//!
//! 1. **MGS** — for each window size `w`, slide a `w x w` window over every
//!    image (row-parallel), train forests on the window vectors, then run
//!    the images back through the trained forests to re-represent each
//!    image as the concatenation of per-position class-PMF vectors.
//! 2. **CF** — a cascade of layers; layer `l` trains forests on the
//!    concatenation of layer `l-1`'s output features with the MGS
//!    re-representation of one window size (cycling through the windows),
//!    exactly as Fig. 11 shows. Prediction at any layer averages the
//!    layer's forest PMFs.
//!
//! Per the paper's tuning notes (section VIII): random forests only in the
//! CF stage, `dmax = 10` in MGS, unbounded depth in CF.

pub mod features;
pub mod pipeline;

pub use features::{slide_windows, table_from_rows, window_positions};
pub use pipeline::{DeepForest, DeepForestConfig, StepReport};
