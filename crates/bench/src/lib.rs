//! Shared harness for the table-reproduction benches.
//!
//! Every table and figure of the paper's evaluation (§VIII) has a
//! `harness = false` bench target in this crate that regenerates the same
//! rows on the simulated substrate. Absolute numbers differ from the paper's
//! testbed (see DESIGN.md §2 — scaled datasets, simulated cluster, modeled
//! compute); the *shape* (who wins, by what factor, where curves flatten)
//! is the reproduction target recorded in EXPERIMENTS.md.
//!
//! Environment knobs:
//!
//! - `TS_SCALE` (default 1.0): multiplies dataset sizes. `TS_SCALE=5` runs
//!   the whole suite on 5× more rows.
//! - `TS_TREES_SCALE` (default 1.0): multiplies ensemble sizes in the
//!   heavyweight ensemble benches.

use std::time::{Duration, Instant};
use treeserver::{Cluster, ClusterConfig, JobResult, JobSpec};
use ts_baselines::{PlanetConfig, PlanetTrainer, XgbConfig, XgbTrainer};
use ts_datatable::metrics::{accuracy, rmse};
use ts_datatable::synth::PaperDataset;
use ts_datatable::{DataTable, Task};
use ts_netsim::NetModel;
use ts_splits::Impurity;

/// Base dataset scale: paper row counts × this (then clamped by the
/// generator to `[2_000, 400_000]`).
pub const BASE_SCALE: f64 = 2e-3;

/// Modeled compute cost used by all timed benches (ns per row-attribute
/// touch). See `ClusterConfig::work_ns_per_unit`.
pub const WORK_NS: u64 = 40;

/// Per-level job-launch overhead charged to the MLlib baseline (Spark stage
/// scheduling; real Spark stages cost tens to hundreds of ms).
pub const STAGE_OVERHEAD: Duration = Duration::from_millis(120);

/// The user-set dataset scale factor.
pub fn env_scale() -> f64 {
    std::env::var("TS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The user-set ensemble scale factor.
pub fn env_trees_scale() -> f64 {
    std::env::var("TS_TREES_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a tree count, keeping at least 2.
pub fn scaled_trees(n: usize) -> usize {
    ((n as f64 * env_trees_scale()) as usize).max(2)
}

/// Generates the shape-matched train/test split of a paper dataset.
pub fn dataset(d: PaperDataset) -> (DataTable, DataTable) {
    dataset_scaled(d, 1.0)
}

/// Like [`dataset`] but with an extra multiplier — the scalability tables
/// (V/VI) need enough rows that compute, not fixed overheads, dominates.
pub fn dataset_scaled(d: PaperDataset, mult: f64) -> (DataTable, DataTable) {
    let table = d.generate(BASE_SCALE * env_scale() * mult, 0xBEEF);
    table.train_test_split(0.8, 7)
}

/// The default TreeServer cluster shape for benches: the paper's 15 workers
/// × 10 compers on a simulated 1 GigE, with thresholds scaled to the data
/// size by the same ratio the paper's defaults have to its datasets.
pub fn ts_config(n_rows: usize, workers: usize, compers: usize) -> ClusterConfig {
    let tau_d = (n_rows as u64 / 20).max(500);
    ClusterConfig {
        n_workers: workers,
        compers_per_worker: compers,
        replication: 2.min(workers),
        tau_d,
        tau_dfs: tau_d * 4,
        n_pool: 200,
        net: NetModel {
            bandwidth_bytes_per_sec: Some(125_000_000.0),
            latency: Duration::from_micros(15),
        },
        work_ns_per_unit: WORK_NS,
        ..Default::default()
    }
}

/// The MLlib-style baseline config matching the cluster shape.
pub fn planet_config(task: Task, machines: usize, threads: usize) -> PlanetConfig {
    PlanetConfig {
        n_machines: machines,
        threads_per_machine: threads,
        max_bins: 32,
        dmax: 10,
        tau_leaf: 1,
        impurity: if task.is_classification() {
            Impurity::Gini
        } else {
            Impurity::Variance
        },
        stage_overhead: STAGE_OVERHEAD,
        net: NetModel {
            bandwidth_bytes_per_sec: Some(125_000_000.0),
            latency: Duration::from_micros(15),
        },
        work_ns_per_unit: WORK_NS,
    }
}

/// One timed system run.
pub struct RunResult {
    /// Wall-clock seconds.
    pub secs: f64,
    /// Test accuracy (classification) or RMSE (regression), paper-style.
    pub metric: f64,
}

/// Formats the metric the way Table II does ("Accuracy = RMSE for Allstate").
pub fn fmt_metric(task: Task, metric: f64) -> String {
    match task {
        Task::Classification { .. } => format!("{:.2}%", metric * 100.0),
        Task::Regression => format!("{metric:.3}"),
    }
}

/// Scores a job result against the test set.
pub fn score(result: &JobResult, test: &DataTable) -> f64 {
    let task = test.schema().task;
    match (result, task) {
        (JobResult::Tree(t), Task::Classification { .. }) => {
            accuracy(&t.predict_labels(test), test.labels().as_class().unwrap())
        }
        (JobResult::Tree(t), Task::Regression) => {
            rmse(&t.predict_values(test), test.labels().as_real().unwrap())
        }
        (JobResult::Forest(f), Task::Classification { .. }) => {
            accuracy(&f.predict_labels(test), test.labels().as_class().unwrap())
        }
        (JobResult::Forest(f), Task::Regression) => {
            rmse(&f.predict_values(test), test.labels().as_real().unwrap())
        }
        (JobResult::Failed(e), _) => panic!("bench job failed: {e}"),
    }
}

/// Trains on a fresh TreeServer cluster and scores on `test`.
pub fn run_treeserver(
    train: &DataTable,
    test: &DataTable,
    cfg: ClusterConfig,
    spec: JobSpec,
) -> RunResult {
    let cluster = Cluster::launch(cfg, train);
    let t0 = Instant::now();
    let result = cluster.train(spec);
    let secs = t0.elapsed().as_secs_f64();
    cluster.shutdown();
    RunResult {
        secs,
        metric: score(&result, test),
    }
}

/// Trains the MLlib-style baseline (single tree) and scores it.
pub fn run_planet_tree(train: &DataTable, test: &DataTable, cfg: PlanetConfig) -> RunResult {
    let trainer = PlanetTrainer::new(cfg);
    let all: Vec<usize> = (0..train.n_attrs()).collect();
    let t0 = Instant::now();
    let (model, _) = trainer.train_tree(train, &all);
    let secs = t0.elapsed().as_secs_f64();
    let metric = match test.schema().task {
        Task::Classification { .. } => accuracy(
            &model.predict_labels(test),
            test.labels().as_class().unwrap(),
        ),
        Task::Regression => rmse(
            &model.predict_values(test),
            test.labels().as_real().unwrap(),
        ),
    };
    RunResult { secs, metric }
}

/// Trains the MLlib-style baseline forest and scores it.
pub fn run_planet_forest(
    train: &DataTable,
    test: &DataTable,
    cfg: PlanetConfig,
    n_trees: usize,
    seed: u64,
) -> RunResult {
    let trainer = PlanetTrainer::new(cfg);
    let t0 = Instant::now();
    let (model, _) = trainer.train_forest(train, n_trees, seed);
    let secs = t0.elapsed().as_secs_f64();
    let metric = match test.schema().task {
        Task::Classification { .. } => accuracy(
            &model.predict_labels(test),
            test.labels().as_class().unwrap(),
        ),
        Task::Regression => rmse(
            &model.predict_values(test),
            test.labels().as_real().unwrap(),
        ),
    };
    RunResult { secs, metric }
}

/// XGBoost-style config for a dataset's task.
pub fn xgb_config(task: Task, n_rounds: usize) -> XgbConfig {
    let objective = match task {
        Task::Regression => ts_baselines::Objective::SquaredError,
        Task::Classification { n_classes: 2 } => ts_baselines::Objective::Logistic,
        Task::Classification { n_classes } => ts_baselines::Objective::Softmax { n_classes },
    };
    XgbConfig {
        n_rounds,
        max_depth: 10,
        threads: 10,
        work_ns_per_unit: WORK_NS,
        ..XgbConfig::new(objective)
    }
}

/// Trains and scores the XGBoost-style baseline.
pub fn run_xgb(train: &DataTable, test: &DataTable, cfg: XgbConfig) -> RunResult {
    let trainer = XgbTrainer::new(cfg);
    let t0 = Instant::now();
    let model = trainer.train(train);
    let secs = t0.elapsed().as_secs_f64();
    let metric = match test.schema().task {
        Task::Classification { .. } => accuracy(
            &model.predict_labels(test),
            test.labels().as_class().unwrap(),
        ),
        Task::Regression => rmse(
            &model.predict_values(test),
            test.labels().as_real().unwrap(),
        ),
    };
    RunResult { secs, metric }
}

/// One timed entry of a machine-readable bench report.
#[derive(Debug, Clone, tsjson::Serialize, tsjson::Deserialize)]
pub struct BenchRecord {
    /// Bench row name (e.g. `exact_numeric_split/10000/sorted`).
    pub name: String,
    /// Wall-clock seconds of the timed region (per iteration for micros).
    pub wall_secs: f64,
    /// Training rows the run covered (0 when not meaningful).
    pub rows: usize,
    /// Trees trained (0 for micro/kernel benches).
    pub trees: usize,
    /// Accuracy (classification) or RMSE (regression); `None` for micros.
    pub metric: Option<f64>,
}

/// Machine-readable sink for a bench target: collect records while the
/// human-readable table prints, then [`BenchReport::write`] emits
/// `BENCH_<target>.json` into the working directory (CI uploads these as
/// artifacts, so perf history survives the log noise).
#[derive(Debug, tsjson::Serialize, tsjson::Deserialize)]
pub struct BenchReport {
    /// Bench target name (the `BENCH_<target>.json` stem).
    pub target: String,
    /// Effective `TS_SCALE` at run time.
    pub scale: f64,
    /// All timed entries, in print order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Creates an empty report for one bench target.
    pub fn new(target: &str) -> BenchReport {
        BenchReport {
            target: target.to_string(),
            scale: env_scale(),
            records: Vec::new(),
        }
    }

    /// Appends one record.
    pub fn push(
        &mut self,
        name: &str,
        wall_secs: f64,
        rows: usize,
        trees: usize,
        metric: Option<f64>,
    ) {
        self.records.push(BenchRecord {
            name: name.to_string(),
            wall_secs,
            rows,
            trees,
            metric,
        });
    }

    /// Appends a timed system run (wall time + paper-style metric).
    pub fn push_run(&mut self, name: &str, rows: usize, trees: usize, run: &RunResult) {
        self.push(name, run.secs, rows, trees, Some(run.metric));
    }

    /// Writes `BENCH_<target>.json` into the current directory and returns
    /// the path. Panics on IO errors — a bench that cannot record its
    /// results should fail loudly, not silently drop them.
    pub fn write(&self) -> std::path::PathBuf {
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.target));
        let json = tsjson::to_vec_pretty(self).expect("bench report serializes");
        std::fs::write(&path, json).expect("write bench report");
        println!("wrote {}", path.display());
        path
    }
}

/// Prints a table header with the bench name and the scaling context.
pub fn print_header(table: &str, extra: &str) {
    println!("\n================================================================");
    println!("{table}");
    println!(
        "dataset scale = paper rows x {:.0e}{}; modeled compute {WORK_NS} ns/unit; {extra}",
        BASE_SCALE * env_scale(),
        if env_scale() == 1.0 {
            String::new()
        } else {
            format!(" (TS_SCALE={})", env_scale())
        },
    );
    println!("================================================================");
}

/// The evaluation's classification datasets that stay light at bench scale.
pub fn light_datasets() -> Vec<PaperDataset> {
    vec![
        PaperDataset::MsLtrc,
        PaperDataset::C14B,
        PaperDataset::Covtype,
        PaperDataset::Poker,
        PaperDataset::Susy,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_round_trips() {
        let mut r = BenchReport::new("unit");
        r.push("kernel/10k", 0.5, 10_000, 0, None);
        r.push_run(
            "forest",
            2_000,
            8,
            &RunResult {
                secs: 1.25,
                metric: 0.9,
            },
        );
        let json = tsjson::to_string(&r).expect("serializes");
        let back: BenchReport = tsjson::from_str(&json).expect("parses");
        assert_eq!(back.target, "unit");
        assert_eq!(back.records.len(), 2);
        assert_eq!(back.records[0].metric, None);
        assert_eq!(back.records[1].metric, Some(0.9));
        assert_eq!(back.records[1].trees, 8);
    }
}
