//! §VIII "Fairness of Implementation": single-threaded, single-tree
//! training — TreeServer's exact trainer vs the MLlib-style histogram
//! trainer, both on one thread with no cluster.
//!
//! Paper shape: comparable times (TreeServer's per-tree work is NOT cheaper
//! serially — its wins come from the system design, not the language/
//! implementation). The exact sorted scan is inherently somewhat more
//! expensive than a binned pass.

use std::time::Instant;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;
use ts_tree::{train_tree, TrainParams};

fn main() {
    print_header(
        "Fairness: single-threaded single-tree",
        "no cluster, no work model",
    );
    println!(
        "{:<12} {:>8} | {:>12} | {:>12}",
        "Dataset", "rows", "TS exact (s)", "ML hist (s)"
    );
    for d in [
        PaperDataset::HiggsBoson,
        PaperDataset::MsLtrc,
        PaperDataset::LoanY1,
    ] {
        let (train, _) = dataset(d);
        let all: Vec<usize> = (0..train.n_attrs()).collect();
        let params = TrainParams::for_task(train.schema().task);

        let t0 = Instant::now();
        let _ = train_tree(&train, &all, &params, 0);
        let ts_secs = t0.elapsed().as_secs_f64();

        let mut cfg = planet_config(train.schema().task, 1, 1);
        cfg.stage_overhead = std::time::Duration::ZERO;
        cfg.work_ns_per_unit = 0;
        let trainer = ts_baselines::PlanetTrainer::new(cfg);
        let t0 = Instant::now();
        let _ = trainer.train_tree(&train, &all);
        let ml_secs = t0.elapsed().as_secs_f64();

        println!(
            "{:<12} {:>8} | {:>12.3} | {:>12.3}",
            d.name(),
            train.n_rows(),
            ts_secs,
            ml_secs
        );
    }
}
