//! Table I: the dataset inventory — paper shapes vs the generated
//! shape-matched synthetics actually used at bench scale.

use ts_bench::*;
use ts_datatable::synth::PaperDataset;
use ts_datatable::Task;

fn main() {
    print_header("Table I: datasets (paper shape -> generated shape)", "");
    println!(
        "{:<12} {:>12} {:>6} {:>6} {:<14} | {:>9} {:>6} {:>6} {:>8}",
        "Dataset", "paper rows", "#num", "#cat", "problem", "gen rows", "#num", "#cat", "missing"
    );
    for d in PaperDataset::ALL {
        let (num, cat) = d.paper_attrs();
        let problem = match d.task() {
            Task::Regression => "regression".to_string(),
            Task::Classification { n_classes } => format!("class. ({n_classes})"),
        };
        let t = d.generate(BASE_SCALE * env_scale(), 0xBEEF);
        let missing: usize = (0..t.n_attrs()).map(|a| t.column(a).n_missing()).sum();
        let gen_num = (0..t.n_attrs())
            .filter(|&a| !t.schema().attr_type(a).is_categorical())
            .count();
        println!(
            "{:<12} {:>12} {:>6} {:>6} {:<14} | {:>9} {:>6} {:>6} {:>8}",
            d.name(),
            d.paper_rows(),
            num,
            cat,
            problem,
            t.n_rows(),
            gen_num,
            t.n_attrs() - gen_num,
            missing,
        );
        assert_eq!(gen_num, num, "numeric column count must match Table I");
        assert_eq!(
            t.n_attrs() - gen_num,
            cat,
            "categorical count must match Table I"
        );
    }
}
