//! Serving-tier bench: the ts-front request tier driven by both arrival
//! plans, plus a mid-run hot-swap case verified torn-response-free.
//!
//! Everything runs on the deterministic virtual clock, so the latency
//! quantiles are exact properties of (plan, seed, config) — reruns
//! reproduce them bit-for-bit. Results land in `BENCH_serve.json` (see
//! `ts_bench::BenchReport`); CI's bench-smoke job uploads it next to
//! `BENCH_splits.json`. Headline metrics per plan: p50/p99/p999
//! admission→completion latency (µs), sustained QPS, and shed fraction;
//! the swap case additionally records `swap/torn_responses`, which this
//! bench asserts is zero (every response re-scores identically under the
//! model of its tagged epoch).

use std::sync::Arc;
use std::time::Duration;

use ts_bench::{env_scale, print_header, BenchReport};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_front::{
    ArrivalPlan, FrontConfig, FrontReport, FrontServer, ModelRegistry, Score, ServiceModel,
};
use ts_serve::CompiledModel;
use ts_tree::{train_tree, DecisionTreeModel, ForestModel, TrainParams};

const SEED: u64 = 0x5E4F_E007;

fn table(rows: usize) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 6,
        categorical: 2,
        cat_cardinality: 5,
        task: Task::Classification { n_classes: 3 },
        missing_rate: 0.03,
        noise: 0.1,
        concept_depth: 5,
        seed: SEED,
        ..Default::default()
    })
}

fn forest(t: &DataTable, seed: u64) -> CompiledModel {
    let attrs: Vec<usize> = (0..t.n_attrs()).collect();
    let params = TrainParams {
        dmax: 6,
        ..TrainParams::for_task(t.schema().task)
    };
    let trees: Vec<DecisionTreeModel> = (0..5)
        .map(|i| train_tree(t, &attrs, &params, seed.wrapping_add(i * 7919)))
        .collect();
    CompiledModel::from_forest(&ForestModel::new(trees, t.schema().task))
}

fn config() -> FrontConfig {
    FrontConfig {
        latency_budget: Duration::from_micros(1_500),
        max_batch: 32,
        queue_cap: 128,
        adaptive_batch: true,
        service: ServiceModel {
            batch_overhead_ns: 20_000,
            per_row_ns: 5_000,
        },
        ..FrontConfig::default()
    }
}

fn run_plan(t: &Arc<DataTable>, plan: &ArrivalPlan, n: usize, swaps: usize) -> FrontReport {
    let registry = Arc::new(ModelRegistry::new(forest(t, SEED)));
    let mut server = FrontServer::new(config(), registry, Arc::clone(t));
    for i in 0..swaps {
        let t = Arc::clone(t);
        let s = SEED ^ (0xA5 + i as u64);
        // Real background trainer; virtual time is unaffected by its wall
        // speed, so the quantiles below stay exact.
        let trainer = std::thread::spawn(move || forest(&t, s));
        server.schedule_swap(Duration::from_micros(3_000 + 4_000 * i as u64), move || {
            trainer.join().expect("trainer panicked")
        });
    }
    let arrivals = plan.generate(n, t.n_rows() as u32, 16, SEED);
    server.run(&arrivals)
}

fn record(out: &mut BenchReport, base: &str, n: usize, report: &FrontReport) {
    let q = report.latency_quantiles().expect("responses exist");
    let virtual_secs = report
        .responses
        .iter()
        .map(|r| r.done_ns)
        .max()
        .unwrap_or(0) as f64
        / 1e9;
    let shed_frac = report.sheds.len() as f64 / n as f64;
    let qps = report.sustained_qps();
    println!(
        "{base:<28} p50 {:>8.1} us  p99 {:>8.1} us  p999 {:>8.1} us  {qps:>9.0} qps  \
         {:>5.1}% shed",
        q.p50_ns as f64 / 1e3,
        q.p99_ns as f64 / 1e3,
        q.p999_ns as f64 / 1e3,
        shed_frac * 100.0,
    );
    for (name, metric) in [
        ("p50_us", q.p50_ns as f64 / 1e3),
        ("p99_us", q.p99_ns as f64 / 1e3),
        ("p999_us", q.p999_ns as f64 / 1e3),
        ("sustained_qps", qps),
        ("shed_frac", shed_frac),
    ] {
        out.push(&format!("{base}/{name}"), virtual_secs, n, 5, Some(metric));
    }
}

fn main() {
    print_header(
        "Serving front: micro-batched request tier",
        "virtual-clock arrival streams; quantiles are exact and replayable",
    );
    let mut out = BenchReport::new("serve");
    let n = ((20_000.0 * env_scale()) as usize).max(2_000);
    let t = Arc::new(table(997));

    // Two arrival plans at the same mean rate: Poisson vs bursty ON/OFF.
    let poisson = ArrivalPlan::Poisson { qps: 150_000.0 };
    let bursty = ArrivalPlan::Bursty {
        on_qps: 450_000.0,
        off_qps: 15_000.0,
        on: Duration::from_millis(1),
        off: Duration::from_millis(2),
    };
    let poisson_report = run_plan(&t, &poisson, n, 0);
    record(&mut out, "poisson", n, &poisson_report);
    let bursty_report = run_plan(&t, &bursty, n, 0);
    record(&mut out, "bursty", n, &bursty_report);

    // Mid-run hot swaps under Poisson load: every response must re-score
    // identically under the model of the epoch it was tagged with — a torn
    // response (mixed-epoch batch, half-applied swap) shows up here.
    let swap_report = run_plan(&t, &poisson, n, 2);
    record(&mut out, "poisson_swap2", n, &swap_report);
    assert_eq!(swap_report.swaps.len(), 2, "both swaps must fire mid-run");
    let registry = {
        // Rebuild the same epoch sequence the run published (same seeds).
        let r = ModelRegistry::new(forest(&t, SEED));
        r.publish(forest(&t, SEED ^ 0xA5));
        r.publish(forest(&t, SEED ^ 0xA6));
        r
    };
    let torn = swap_report
        .responses
        .iter()
        .filter(|r| {
            let solo = t.select_rows(&[r.row]);
            let label = registry
                .model(r.epoch)
                .expect("epoch exists")
                .predict_labels(&solo)[0];
            r.score != Score::Label(label)
        })
        .count();
    let epochs: std::collections::BTreeSet<u32> =
        swap_report.responses.iter().map(|r| r.epoch).collect();
    println!(
        "hot swap: {} responses across epochs {:?}, {} torn",
        swap_report.responses.len(),
        epochs,
        torn
    );
    out.push("swap/torn_responses", 0.0, n, 5, Some(torn as f64));
    out.push("swap/epochs_observed", 0.0, n, 5, Some(epochs.len() as f64));
    assert_eq!(torn, 0, "hot swap must never tear a response");
    assert!(epochs.len() >= 2, "the stream must cross a swap");

    out.write();
}
