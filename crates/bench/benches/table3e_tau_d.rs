//! Table III(e): effect of the subtree-task threshold `tau_D` (20-tree
//! forest; tau_dfs fixed at its default).
//!
//! Paper shape: a U-curve — tiny subtree-tasks can't saturate compers,
//! huge ones prevent load balancing. tau_D -> 0 is also the
//! "subtree-tasks off" ablation of DESIGN.md section 6.

use treeserver::{Cluster, JobSpec};
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    let n_trees = scaled_trees(20);
    print_header(
        "Table III(e): effect of tau_D",
        &format!("{n_trees}-tree forest"),
    );
    for d in [
        PaperDataset::Allstate,
        PaperDataset::HiggsBoson,
        PaperDataset::Kdd99,
    ] {
        let (train, _test) = dataset_scaled(d, 0.25);
        let n = train.n_rows() as u64;
        println!("\n--- {} ({} rows) ---", d.name(), train.n_rows());
        println!("{:>16} {:>10}", "tau_D", "time (s)");
        for (label, tau_d) in [
            ("64 (no subtree)", 64),
            ("n/100", n / 100),
            ("n/40", n / 40),
            ("n/20", n / 20),
            ("n/10", n / 10),
            ("n/4", n / 4),
        ] {
            let mut cfg = ts_config(train.n_rows(), 15, 10);
            // Heavy modeled work so scheduling effects, not the single-core
            // real-compute floor, dominate (DESIGN.md section 2).
            cfg.work_ns_per_unit = WORK_NS * 100;
            cfg.tau_d = tau_d.max(1);
            cfg.tau_dfs = (tau_d.max(1) * 4).max(cfg.tau_dfs);
            let cluster = Cluster::launch(cfg, &train);
            let t0 = std::time::Instant::now();
            let _ =
                cluster.train(JobSpec::random_forest(train.schema().task, n_trees).with_seed(1));
            let secs = t0.elapsed().as_secs_f64();
            cluster.shutdown();
            println!("{label:>16} {secs:>10.2}");
        }
    }
}
