//! Table VII: the deep-forest case study — per-step training/test times and
//! per-layer test accuracy on MNIST-like images.
//!
//! Paper shape: MGS training dominates the wall clock (win7train largest),
//! extract steps are much cheaper, CF layers train fast, and per-layer test
//! accuracy is high and stable across CF0..CF5.

use treeserver::ClusterConfig;
use ts_bench::*;
use ts_datatable::synth::mnist_like;
use ts_deepforest::{DeepForest, DeepForestConfig};

fn main() {
    let n_train = (1_500.0 * env_scale()) as usize;
    let n_test = (500.0 * env_scale()) as usize;
    print_header(
        "Table VII: deep forest on MNIST-like images",
        &format!("{n_train} train / {n_test} test"),
    );
    let (train, test) = mnist_like(n_train, n_test, 7);
    let cfg = DeepForestConfig {
        windows: vec![3, 5, 7],
        stride: 3,
        mgs_forests: 2,
        mgs_trees: scaled_trees(20),
        mgs_dmax: 10,
        cf_layers: 6,
        cf_forests: 2,
        cf_trees: scaled_trees(20),
        cf_dmax: u32::MAX,
        cluster: ClusterConfig {
            n_workers: 8,
            compers_per_worker: 8,
            tau_d: 20_000,
            tau_dfs: 80_000,
            work_ns_per_unit: WORK_NS,
            ..Default::default()
        },
        seed: 3,
    };
    let (model, reports) = DeepForest::train(cfg, &train, &test);
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "Step", "Train", "Test", "Accuracy"
    );
    for r in &reports {
        println!(
            "{:<14} {:>12} {:>12} {:>10}",
            r.step,
            format!("{:.2?}", r.train_time),
            r.test_time.map_or("-".into(), |t| format!("{t:.2?}")),
            r.test_accuracy
                .map_or("-".into(), |a| format!("{:.2}%", a * 100.0)),
        );
    }
    println!("total trees: {}", model.n_trees());
}
