//! Table VI: horizontal scalability — running time, average CPU % and send
//! Mbps vs machine count (1 tree and 20 trees, TreeServer), plus MLlib
//! times.
//!
//! Paper shape: time falls as machines are added and flattens as the
//! network saturates; CPU stays multi-core busy; MLlib improves less.

use treeserver::{Cluster, JobSpec};
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    print_header(
        "Table VI: horizontal scalability (machines)",
        "10 compers each",
    );
    for (label, n_trees) in [("1 tree", 1usize), ("20 trees", scaled_trees(20))] {
        for d in [PaperDataset::Allstate, PaperDataset::HiggsBoson] {
            let (train, test) = dataset_scaled(d, 0.25);
            let task = train.schema().task;
            println!(
                "\n--- {} on {} ({} rows) ---",
                label,
                d.name(),
                train.n_rows()
            );
            println!(
                "{:>7} | {:>8} {:>8} {:>10} | {:>9}",
                "#macs", "TS s", "CPU %", "Send Mbps", "MLlib s"
            );
            for machines in [4usize, 8, 12, 15] {
                let mut cfg = ts_config(train.n_rows(), machines, 10);
                // Finer subtree granularity + heavier modeled compute: the
                // single-core host serialises *real* compute, so the modeled
                // (overlappable) part must dominate for scaling shapes to
                // survive (DESIGN.md section 2).
                cfg.tau_d = (train.n_rows() as u64 / 100).max(200);
                cfg.tau_dfs = cfg.tau_d * 4;
                cfg.work_ns_per_unit = WORK_NS * 100;
                let cluster = Cluster::launch(cfg, &train);
                let t0 = std::time::Instant::now();
                let spec = if n_trees == 1 {
                    JobSpec::decision_tree(task)
                } else {
                    JobSpec::random_forest(task, n_trees).with_seed(6)
                };
                let _ = cluster.train(spec);
                let secs = t0.elapsed().as_secs_f64();
                let report = cluster.shutdown();

                let ml = if n_trees == 1 {
                    run_planet_tree(&train, &test, {
                        let mut c = planet_config(task, machines, 10);
                        c.work_ns_per_unit = WORK_NS * 100;
                        c
                    })
                } else {
                    run_planet_forest(
                        &train,
                        &test,
                        {
                            let mut c = planet_config(task, machines, 10);
                            c.work_ns_per_unit = WORK_NS * 100;
                            c
                        },
                        n_trees,
                        6,
                    )
                };
                println!(
                    "{:>7} | {:>8.2} {:>8.0} {:>10.1} | {:>9.2}",
                    machines, secs, report.avg_cpu_percent, report.avg_send_mbps, ml.secs
                );
            }
        }
    }
}
