//! Table III(d): effect of the depth-first threshold `tau_dfs` (20-tree
//! forest; tau_D fixed at its default).
//!
//! Paper shape: a U-curve — too small starves initial parallelism, too
//! large delays CPU-bound subtree-tasks; the default (scaled) sits near the
//! minimum. The sweep also covers the pure-BFS / pure-DFS ablation
//! (DESIGN.md section 6): the extremes of the sweep ARE those schedules.

use treeserver::{Cluster, JobSpec};
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    let n_trees = scaled_trees(20);
    print_header(
        "Table III(d): effect of tau_dfs",
        &format!("{n_trees}-tree forest"),
    );
    for d in [
        PaperDataset::Allstate,
        PaperDataset::HiggsBoson,
        PaperDataset::Kdd99,
    ] {
        let (train, _test) = dataset_scaled(d, 0.25);
        let n = train.n_rows() as u64;
        println!("\n--- {} ({} rows) ---", d.name(), train.n_rows());
        println!("{:>12} {:>10}", "tau_dfs", "time (s)");
        // Paper sweeps 20k..150k around the 80k default on multi-million-row
        // data; sweep the same ratios of n, plus the BFS/DFS extremes.
        for (label, tau_dfs) in [
            ("1 (pure BFS)", 1),
            ("n/20", n / 20),
            ("n/8", n / 8),
            ("n/5", n / 5),
            ("n/2", n / 2),
            ("n (pure DFS)", n),
        ] {
            let mut cfg = ts_config(train.n_rows(), 15, 10);
            // Heavy modeled work so scheduling effects, not the single-core
            // real-compute floor, dominate (DESIGN.md section 2).
            cfg.work_ns_per_unit = WORK_NS * 100;
            cfg.tau_dfs = tau_dfs.max(1);
            let cluster = Cluster::launch(cfg, &train);
            let t0 = std::time::Instant::now();
            let _ =
                cluster.train(JobSpec::random_forest(train.schema().task, n_trees).with_seed(1));
            let secs = t0.elapsed().as_secs_f64();
            cluster.shutdown();
            println!("{label:>12} {secs:>10.2}");
        }
    }
}
