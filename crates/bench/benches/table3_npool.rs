//! Table III(a)-(c): effect of the tree pool size `n_pool` on running time
//! and peak worker memory (20-tree random forest).
//!
//! Paper shape: time drops steeply from n_pool = 1 and flattens once the
//! compers saturate; memory grows only slightly with n_pool because column
//! storage dominates.

use treeserver::{Cluster, JobSpec};
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    let n_trees = scaled_trees(20);
    print_header(
        "Table III(a)-(c): effect of n_pool",
        &format!("{n_trees}-tree forest"),
    );
    for d in [
        PaperDataset::Allstate,
        PaperDataset::HiggsBoson,
        PaperDataset::Kdd99,
    ] {
        let (train, _test) = dataset_scaled(d, 0.25);
        println!("\n--- {} ({} rows) ---", d.name(), train.n_rows());
        println!("{:>7} {:>10} {:>12}", "n_pool", "time (s)", "mem (MB)");
        for n_pool in [1usize, 5, 10, 20] {
            let mut cfg = ts_config(train.n_rows(), 15, 10);
            // Heavy modeled work so scheduling effects, not the single-core
            // real-compute floor, dominate (DESIGN.md section 2).
            cfg.work_ns_per_unit = WORK_NS * 100;
            cfg.n_pool = n_pool;
            let cluster = Cluster::launch(cfg, &train);
            let t0 = std::time::Instant::now();
            let _ =
                cluster.train(JobSpec::random_forest(train.schema().task, n_trees).with_seed(1));
            let secs = t0.elapsed().as_secs_f64();
            let report = cluster.shutdown();
            println!(
                "{:>7} {:>10.2} {:>12.2}",
                n_pool,
                secs,
                report.avg_peak_mem_bytes / 1e6
            );
        }
    }
}
