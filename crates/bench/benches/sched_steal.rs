//! `ts-sched` acceptance bench: work stealing under skewed worker load.
//!
//! Trains the same exact single-tree job on a cluster where one worker's
//! modeled compute is 4× slower than its peers (a straggler machine), with
//! the static single-deque scheduler vs the per-worker-deque stealing
//! scheduler, and on a uniform cluster as the no-regression control.
//!
//! The dataset is deliberately narrow (few columns) with a heavy modeled
//! cost per row-attribute touch, so the timed region is dominated by the
//! *modeled* compute — which overlaps across comper threads even on a
//! small host — rather than by real split kernels serializing on the CPU.
//!
//! Shape to reproduce: on the skewed cluster the stealing scheduler should
//! be measurably faster (idle fast workers drain the straggler's deque);
//! on the uniform cluster it must be no worse than the single deque. The
//! models are bit-identical either way — that is `sched_equiv.rs`'s job,
//! this bench only times the schedulers.

use treeserver::{ClusterConfig, JobSpec};
use ts_bench::*;
use ts_datatable::synth::{generate, SynthSpec};

/// The straggler's slowdown factor relative to its peers.
const SKEW: f64 = 4.0;

/// Modeled ns per row-attribute touch — heavy on purpose (see module doc).
const SCHED_WORK_NS: u64 = 1_500;

fn main() {
    print_header(
        "ts-sched: work stealing vs single deque under skewed load",
        &format!(
            "4 workers x 4 compers; straggler {SKEW}x slower; \
             this bench overrides compute to {SCHED_WORK_NS} ns/unit"
        ),
    );
    let mut report = BenchReport::new("sched");

    let train = generate(&SynthSpec {
        rows: (20_000.0 * env_scale()) as usize,
        numeric: 5,
        categorical: 2,
        cat_cardinality: 5,
        noise: 0.05,
        concept_depth: 5,
        seed: 0xBEEF,
        ..Default::default()
    });
    let (train, test) = train.train_test_split(0.8, 7);
    let task = train.schema().task;
    let spec = || JobSpec::decision_tree(task).with_dmax(10);

    let base_cfg = || {
        let mut cfg = ts_config(train.n_rows(), 4, 4);
        cfg.work_ns_per_unit = SCHED_WORK_NS;
        cfg
    };
    let skewed = |mut cfg: ClusterConfig| {
        cfg.work_scale = vec![SKEW, 1.0, 1.0, 1.0];
        cfg
    };
    let stealing = |mut cfg: ClusterConfig| {
        cfg.steal = true;
        cfg
    };

    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "Scheduler", "rows", "secs", "metric"
    );
    // Warm up allocator/page cache once so the first timed row is not a
    // cold-start outlier, then keep the best of 2 reps per config.
    let _ = run_treeserver(&train, &test, base_cfg(), spec());
    let mut run = |name: &str, cfg: ClusterConfig| -> f64 {
        let a = run_treeserver(&train, &test, cfg.clone(), spec());
        let b = run_treeserver(&train, &test, cfg, spec());
        let r = if a.secs <= b.secs { a } else { b };
        println!(
            "{:<28} {:>10} {:>10.3} {:>10}",
            name,
            train.n_rows(),
            r.secs,
            fmt_metric(task, r.metric)
        );
        report.push_run(name, train.n_rows(), 1, &r);
        r.secs
    };

    let uni_single = run("uniform/single_deque", base_cfg());
    let uni_steal = run("uniform/stealing", stealing(base_cfg()));
    let skew_single = run("skewed/single_deque", skewed(base_cfg()));
    let skew_steal = run("skewed/stealing", stealing(skewed(base_cfg())));

    println!(
        "\nuniform: stealing/single = {:.2}x; skewed: stealing speedup = {:.2}x",
        uni_steal / uni_single.max(1e-9),
        skew_single / skew_steal.max(1e-9),
    );
    report.write();
}
