//! Table V: vertical scalability — running time vs compers/threads per
//! machine for TreeServer and MLlib (20-tree forest; the paper also runs
//! 200 trees — scale with TS_TREES_SCALE).
//!
//! Paper shape: both systems speed up with threads and flatten by ~8-10
//! threads; TreeServer is several times faster at every width.

use treeserver::JobSpec;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    let n_trees = scaled_trees(20);
    print_header(
        "Table V: vertical scalability (threads per machine)",
        &format!("{n_trees} trees"),
    );
    for d in [PaperDataset::Allstate, PaperDataset::HiggsBoson] {
        let (train, test) = dataset_scaled(d, 0.25);
        let task = train.schema().task;
        println!("\n--- {} ({} rows) ---", d.name(), train.n_rows());
        println!("{:>9} | {:>11} | {:>11}", "#threads", "TS s", "MLlib s");
        for threads in [1usize, 2, 4, 8, 10] {
            let mut cfg = ts_config(train.n_rows(), 15, threads);
            cfg.tau_d = (train.n_rows() as u64 / 100).max(200);
            cfg.tau_dfs = cfg.tau_d * 4;
            cfg.work_ns_per_unit = WORK_NS * 100;
            let ts = run_treeserver(
                &train,
                &test,
                cfg,
                JobSpec::random_forest(task, n_trees).with_seed(4),
            );
            let ml = run_planet_forest(
                &train,
                &test,
                {
                    let mut c = planet_config(task, 15, threads);
                    c.work_ns_per_unit = WORK_NS * 100;
                    c
                },
                n_trees,
                4,
            );
            println!("{:>9} | {:>11.2} | {:>11.2}", threads, ts.secs, ml.secs);
        }
    }
}
