//! Table II(b): a 20-tree random forest (|C| = sqrt(|A|) per tree) —
//! TreeServer vs MLlib (parallel) vs MLlib (single thread).
//!
//! Paper shape: TreeServer remains several times faster than MLlib on every
//! dataset; accuracies are close, with exact splits slightly ahead in most
//! rows.

use treeserver::JobSpec;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    let n_trees = scaled_trees(20);
    print_header(
        "Table II(b): random forest, TreeServer vs MLlib",
        &format!("{n_trees} trees"),
    );
    println!(
        "{:<12} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "Dataset", "rows", "TS s", "TS acc", "MLpar s", "MLpar acc", "ML1t s", "ML1t acc"
    );
    for d in PaperDataset::ALL {
        let (train, test) = dataset(d);
        let task = train.schema().task;
        let spec = JobSpec::random_forest(task, n_trees).with_seed(3);

        let ts = run_treeserver(&train, &test, ts_config(train.n_rows(), 15, 10), spec);
        let ml_par = run_planet_forest(&train, &test, planet_config(task, 15, 10), n_trees, 3);
        let ml_1t = run_planet_forest(&train, &test, planet_config(task, 1, 1), n_trees, 3);

        println!(
            "{:<12} {:>8} | {:>9.2} {:>9} | {:>9.2} {:>9} | {:>9.2} {:>9}",
            d.name(),
            train.n_rows(),
            ts.secs,
            fmt_metric(task, ts.metric),
            ml_par.secs,
            fmt_metric(task, ml_par.metric),
            ml_1t.secs,
            fmt_metric(task, ml_1t.metric),
        );
    }
}
