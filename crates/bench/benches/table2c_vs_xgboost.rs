//! Table II(c): 100 trees — TreeServer random forest (bagging, trees train
//! concurrently) vs XGBoost (boosting, trees strictly sequential).
//!
//! Paper shape: XGBoost is dramatically slower (up to ~56x) because boosted
//! trees depend on each other, while its accuracy is higher on some
//! datasets thanks to the second-order objective.

use treeserver::JobSpec;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    let n_trees = scaled_trees(100);
    print_header(
        "Table II(c): TreeServer RF vs XGBoost",
        &format!("{n_trees} trees"),
    );
    println!(
        "{:<12} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>7}",
        "Dataset", "rows", "TS s", "TS acc", "XGB s", "XGB acc", "x slow"
    );
    for d in PaperDataset::ALL {
        let (train, test) = dataset(d);
        let task = train.schema().task;

        let ts = run_treeserver(
            &train,
            &test,
            ts_config(train.n_rows(), 15, 10),
            JobSpec::random_forest(task, n_trees).with_seed(5),
        );
        let xgb = run_xgb(&train, &test, xgb_config(task, n_trees));

        println!(
            "{:<12} {:>8} | {:>9.2} {:>9} | {:>9.2} {:>9} | {:>7.1}",
            d.name(),
            train.n_rows(),
            ts.secs,
            fmt_metric(task, ts.metric),
            xgb.secs,
            fmt_metric(task, xgb.metric),
            xgb.secs / ts.secs,
        );
    }
}
