//! Table II(a): one decision tree — TreeServer vs MLlib (parallel) vs
//! MLlib (single thread); time and test accuracy (RMSE for Allstate).
//!
//! Paper shape to reproduce: TreeServer consistently several times faster
//! than parallel MLlib (up to ~10×), single-threaded MLlib slower still on
//! large data; TreeServer's exact splits score at least as well as MLlib's
//! binned splits in most rows.

use treeserver::JobSpec;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    print_header(
        "Table II(a): single decision tree, TreeServer vs MLlib",
        "15 workers x 10 compers",
    );
    println!(
        "{:<12} {:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "Dataset", "rows", "TS s", "TS acc", "MLpar s", "MLpar acc", "ML1t s", "ML1t acc"
    );
    for d in PaperDataset::ALL {
        let (train, test) = dataset(d);
        let task = train.schema().task;
        let spec = JobSpec::decision_tree(task);

        let ts = run_treeserver(&train, &test, ts_config(train.n_rows(), 15, 10), spec);
        let ml_par = run_planet_tree(&train, &test, planet_config(task, 15, 10));
        let ml_1t = run_planet_tree(&train, &test, planet_config(task, 1, 1));

        println!(
            "{:<12} {:>8} | {:>9.2} {:>9} | {:>9.2} {:>9} | {:>9.2} {:>9}",
            d.name(),
            train.n_rows(),
            ts.secs,
            fmt_metric(task, ts.metric),
            ml_par.secs,
            fmt_metric(task, ml_par.metric),
            ml_1t.secs,
            fmt_metric(task, ml_1t.metric),
        );
    }
}
