//! Micro-benchmark of the serving paths: the per-row reference traversal
//! vs the compiled batched engine (`ts-serve`), single-threaded and with
//! the block fan-out across all cores.
//!
//! Timings are recorded into `BENCH_predict.json` (see
//! `ts_bench::BenchReport`), which CI uploads next to `BENCH_splits.json`.
//! The headline metric is `aggregate/speedup_1t`: single-thread
//! throughput serving all three model archetypes (deep tree, forest,
//! boosted ensemble) back-to-back, compiled over reference — the number
//! the serving layer exists to improve. Per-case `*/speedup_1t` ratios
//! and the worst case are recorded alongside; the deep single tree is
//! the adversarial case (longest serial chains, no fill amortisation
//! across trees) and runs well below the ensemble cases.

use std::hint::black_box;
use std::time::Instant;
use treeserver::{GbtModel, GbtObjective};
use ts_bench::{env_scale, print_header, BenchReport};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_serve::{CompiledModel, ServeOptions};
use ts_tree::{train_tree, DecisionTreeModel, ForestModel, TrainParams};

fn time_us(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_millis() >= 50 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

fn report(name: &str, per_iter_us: f64) {
    println!("{name:<48} {per_iter_us:>12.1} us/iter");
}

/// Reports reference vs compiled (1 thread and all threads) and records
/// all three plus the per-case single-thread speedup.
#[allow(clippy::too_many_arguments)]
fn report_trio(
    out: &mut BenchReport,
    base: &str,
    rows: usize,
    trees: usize,
    reference_us: f64,
    compiled_1t_us: f64,
    compiled_mt_us: f64,
) -> f64 {
    let speedup = reference_us / compiled_1t_us;
    report(&format!("{base}/reference"), reference_us);
    report(&format!("{base}/compiled_1t"), compiled_1t_us);
    report(&format!("{base}/compiled_mt"), compiled_mt_us);
    println!("{:<48} {speedup:>11.2}x", format!("{base}/speedup_1t"));
    out.push(
        &format!("{base}/reference"),
        reference_us * 1e-6,
        rows,
        trees,
        None,
    );
    out.push(
        &format!("{base}/compiled_1t"),
        compiled_1t_us * 1e-6,
        rows,
        trees,
        None,
    );
    out.push(
        &format!("{base}/compiled_mt"),
        compiled_mt_us * 1e-6,
        rows,
        trees,
        None,
    );
    out.push(
        &format!("{base}/speedup_1t"),
        0.0,
        rows,
        trees,
        Some(speedup),
    );
    speedup
}

fn class_table(rows: usize, seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 8,
        categorical: 2,
        cat_cardinality: 6,
        task: Task::Classification { n_classes: 3 },
        missing_rate: 0.02,
        noise: 0.1,
        concept_depth: 6,
        seed,
        ..Default::default()
    })
}

fn reg_table(rows: usize, seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 8,
        categorical: 2,
        cat_cardinality: 6,
        task: Task::Regression,
        missing_rate: 0.02,
        noise: 0.1,
        concept_depth: 6,
        seed,
        ..Default::default()
    })
}

fn main() {
    print_header(
        "Micro: batched prediction",
        "per-row reference traversal vs the ts-serve compiled engine",
    );
    let mut out = BenchReport::new("predict");
    let rows = ((20_000.0 * env_scale()) as usize).max(2_000);
    let one_t = ServeOptions::default().with_threads(1);
    let all_t = ServeOptions::default().with_threads(0);
    let mut worst = f64::INFINITY;
    let (mut ref_total_us, mut c1_total_us) = (0.0, 0.0);

    // Single deep classification tree.
    {
        let t = class_table(rows, 1);
        let model = train_tree(
            &t,
            &(0..t.n_attrs()).collect::<Vec<_>>(),
            &TrainParams {
                dmax: 12,
                ..TrainParams::for_task(t.schema().task)
            },
            1,
        );
        let compiled_1t = CompiledModel::from_tree(&model).with_options(one_t);
        let compiled_mt = CompiledModel::from_tree(&model).with_options(all_t);
        let reference_us = time_us(|| {
            black_box(model.predict_labels_reference(black_box(&t)));
        });
        let c1_us = time_us(|| {
            black_box(compiled_1t.predict_labels(black_box(&t)));
        });
        let cm_us = time_us(|| {
            black_box(compiled_mt.predict_labels(black_box(&t)));
        });
        ref_total_us += reference_us;
        c1_total_us += c1_us;
        worst = worst.min(report_trio(
            &mut out,
            &format!("tree_labels/{rows}"),
            rows,
            1,
            reference_us,
            c1_us,
            cm_us,
        ));
    }

    // 10-tree classification forest (PMF averaging).
    {
        let t = class_table(rows, 2);
        let n_trees = 10;
        let trees: Vec<DecisionTreeModel> = (0..n_trees)
            .map(|i| {
                train_tree(
                    &t,
                    &(0..t.n_attrs()).collect::<Vec<_>>(),
                    &TrainParams {
                        dmax: 8,
                        ..TrainParams::for_task(t.schema().task)
                    },
                    i as u64,
                )
            })
            .collect();
        let forest = ForestModel::new(trees, t.schema().task);
        let compiled_1t = CompiledModel::from_forest(&forest).with_options(one_t);
        let compiled_mt = CompiledModel::from_forest(&forest).with_options(all_t);
        let reference_us = time_us(|| {
            black_box(forest.predict_labels_reference(black_box(&t)));
        });
        let c1_us = time_us(|| {
            black_box(compiled_1t.predict_labels(black_box(&t)));
        });
        let cm_us = time_us(|| {
            black_box(compiled_mt.predict_labels(black_box(&t)));
        });
        ref_total_us += reference_us;
        c1_total_us += c1_us;
        worst = worst.min(report_trio(
            &mut out,
            &format!("forest{n_trees}_labels/{rows}"),
            rows,
            n_trees,
            reference_us,
            c1_us,
            cm_us,
        ));
    }

    // 30-tree boosted regression model (margin accumulation).
    {
        let t = reg_table(rows, 3);
        let n_trees = 30;
        let trees: Vec<DecisionTreeModel> = (0..n_trees)
            .map(|i| {
                train_tree(
                    &t,
                    &(0..t.n_attrs()).collect::<Vec<_>>(),
                    &TrainParams {
                        dmax: 5,
                        ..TrainParams::for_task(Task::Regression)
                    },
                    i as u64,
                )
            })
            .collect();
        let gbt = GbtModel {
            trees,
            base: 0.5,
            eta: 0.1,
            objective: GbtObjective::SquaredError,
        };
        let compiled_1t = CompiledModel::from_gbt(&gbt).with_options(one_t);
        let compiled_mt = CompiledModel::from_gbt(&gbt).with_options(all_t);
        let reference_us = time_us(|| {
            black_box(gbt.predict_margins_reference(black_box(&t)));
        });
        let c1_us = time_us(|| {
            black_box(compiled_1t.predict_margins(black_box(&t)));
        });
        let cm_us = time_us(|| {
            black_box(compiled_mt.predict_margins(black_box(&t)));
        });
        ref_total_us += reference_us;
        c1_total_us += c1_us;
        worst = worst.min(report_trio(
            &mut out,
            &format!("gbt{n_trees}_margins/{rows}"),
            rows,
            n_trees,
            reference_us,
            c1_us,
            cm_us,
        ));
    }

    // Headline: the three archetypes served back-to-back. The aggregate
    // is what total serving throughput improves by; the worst case keeps
    // the adversarial deep-tree number visible rather than hidden in an
    // average.
    let aggregate = ref_total_us / c1_total_us;
    println!("aggregate single-thread speedup (all cases back-to-back): {aggregate:.2}x");
    println!("worst per-case single-thread speedup: {worst:.2}x");
    out.push("aggregate/speedup_1t", 0.0, rows, 41, Some(aggregate));
    out.push(
        "aggregate/worst_case_speedup_1t",
        0.0,
        rows,
        41,
        Some(worst),
    );
    out.write();
}
