//! `ts-elastic` acceptance bench: dynamic membership under training load.
//!
//! Two questions, timed on the same exact single-tree job:
//!
//! 1. **Join speedup** — a 2-worker cluster that doubles to 4 workers
//!    mid-run (scripted `FaultPlan::with_worker_join`) vs the static
//!    2-worker cluster, with the static 4-worker cluster as the ceiling.
//!    The joiners handshake, receive column replicas incrementally, and
//!    start taking plans while training continues.
//!
//! 2. **Preemption overhead** — a 4-worker cluster that loses one worker
//!    mid-run, either *gracefully* (scripted preemption: the victim drains,
//!    hands its columns off inside the grace window, departs with Goodbye)
//!    or *by crash* (silent death, lease expiry, §VI revoke-and-recover).
//!    Both runs use the same fast lease settings so the comparison isolates
//!    drain-vs-recovery, not detection latency.
//!
//! Models are bit-identical across every configuration — membership churn
//! never changes `mix_seed`-derived randomness (core/tests/faults.rs
//! asserts that); this bench only times the membership machinery.

use std::time::Duration;
use treeserver::{ClusterConfig, FaultPlan, JobSpec};
use ts_bench::*;
use ts_datatable::synth::{generate, SynthSpec};

/// Modeled ns per row-attribute touch — heavy so the timed region is
/// dominated by modeled compute, which the extra workers can absorb.
const ELASTIC_WORK_NS: u64 = 1_200;

fn main() {
    print_header(
        "ts-elastic: mid-run join speedup and preemption vs crash recovery",
        &format!("this bench overrides compute to {ELASTIC_WORK_NS} ns/unit"),
    );
    let mut report = BenchReport::new("elastic");

    let train = generate(&SynthSpec {
        rows: (16_000.0 * env_scale()) as usize,
        numeric: 5,
        categorical: 2,
        cat_cardinality: 5,
        noise: 0.05,
        concept_depth: 5,
        seed: 0xE1A5,
        ..Default::default()
    });
    let (train, test) = train.train_test_split(0.8, 7);
    let task = train.schema().task;
    let spec = || JobSpec::decision_tree(task).with_dmax(10);

    let cfg_for = |workers: usize, faults: Option<FaultPlan>| -> ClusterConfig {
        let mut cfg = ts_config(train.n_rows(), workers, 4);
        cfg.work_ns_per_unit = ELASTIC_WORK_NS;
        // Fast lease so the crash row pays realistic detection latency, not
        // the test-friendly 500 ms default; the graceful rows never use it.
        cfg.heartbeat_interval = Duration::from_millis(5);
        cfg.heartbeat_miss_threshold = 10;
        cfg.faults = faults;
        cfg
    };

    println!(
        "{:<34} {:>10} {:>10} {:>10}",
        "Configuration", "rows", "secs", "metric"
    );
    // Warm-up against allocator/page-cache cold starts, then best-of-2.
    let _ = run_treeserver(&train, &test, cfg_for(4, None), spec());
    let mut run = |name: &str, cfg: ClusterConfig| -> f64 {
        let a = run_treeserver(&train, &test, cfg.clone(), spec());
        let b = run_treeserver(&train, &test, cfg, spec());
        let r = if a.secs <= b.secs { a } else { b };
        println!(
            "{:<34} {:>10} {:>10.3} {:>10}",
            name,
            train.n_rows(),
            r.secs,
            fmt_metric(task, r.metric)
        );
        report.push_run(name, train.n_rows(), 1, &r);
        r.secs
    };

    // -- 1. join speedup -------------------------------------------------
    let static2 = run("join/static_2_workers", cfg_for(2, None));
    let elastic = run(
        "join/2_workers_plus_2_joiners",
        cfg_for(
            2,
            Some(FaultPlan::new(0xE1A5).with_worker_join(Duration::from_millis(10), 2)),
        ),
    );
    let static4 = run("join/static_4_workers", cfg_for(4, None));

    // -- 2. preemption overhead vs crash recovery ------------------------
    let clean = run("preempt/no_fault_4_workers", cfg_for(4, None));
    let graceful = run(
        "preempt/graceful_drain",
        cfg_for(
            4,
            Some(FaultPlan::new(0xE1A5).with_preemption(
                Duration::from_millis(10),
                4,
                Duration::from_secs(30),
            )),
        ),
    );
    let crash = run(
        "preempt/crash_recovery",
        cfg_for(4, Some(FaultPlan::new(0xE1A5).with_crash_at_delegation(3))),
    );

    println!(
        "\njoin: doubling mid-run = {:.2}x over static half size \
         (static full size would be {:.2}x)",
        static2 / elastic.max(1e-9),
        static2 / static4.max(1e-9),
    );
    println!(
        "preempt: graceful drain costs {:+.0}% over fault-free; \
         crash recovery costs {:+.0}%",
        (graceful / clean.max(1e-9) - 1.0) * 100.0,
        (crash / clean.max(1e-9) - 1.0) * 100.0,
    );
    report.write();
}
