//! Table VIII(c)-(d): effect of the per-tree column ratio |C|/|A| on a
//! 20-tree forest (Allstate and Higgs_boson shapes).
//!
//! Paper shape: time grows with the ratio (more columns to scan per node);
//! accuracy saturates early — 20-40% of the columns per tree suffice.

use treeserver::JobSpec;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    let n_trees = scaled_trees(20);
    print_header(
        "Table VIII(c)-(d): effect of |C|/|A|",
        &format!("{n_trees}-tree forest"),
    );
    for d in [PaperDataset::Allstate, PaperDataset::HiggsBoson] {
        let (train, test) = dataset(d);
        let task = train.schema().task;
        println!(
            "\n--- {} ({} rows, {} attrs) ---",
            d.name(),
            train.n_rows(),
            train.n_attrs()
        );
        println!("{:>8} {:>9} {:>10}", "|C|/|A|", "time (s)", "metric");
        for ratio in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
            let spec = JobSpec::random_forest_with_fraction(task, n_trees, ratio).with_seed(9);
            let r = run_treeserver(&train, &test, ts_config(train.n_rows(), 15, 10), spec);
            println!(
                "{:>7.0}% {:>9.2} {:>10}",
                ratio * 100.0,
                r.secs,
                fmt_metric(task, r.metric)
            );
        }
    }
}
