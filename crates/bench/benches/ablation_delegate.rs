//! §V ablation: delegate-worker row-index serving vs master-centric
//! alternatives.
//!
//! Compares, for the same exact single-tree training job:
//!
//! - **TreeServer**: the master ships only plans/conditions; `Ix` moves
//!   worker-to-worker via delegate workers.
//! - **Yggdrasil-style**: exact columnar training, but the master broadcasts
//!   a row->child bitvector to every machine at every level — the "single
//!   point of transmission bottleneck" the paper §II calls out.
//!
//! Shape to reproduce: the TreeServer master's outbound bytes are small and
//! roughly independent of |D|, while the Yggdrasil master's outbound grows
//! with rows x machines x levels.

use treeserver::{Cluster, JobSpec};
use ts_baselines::{YggdrasilConfig, YggdrasilTrainer};
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    print_header(
        "Ablation (§V): delegate workers vs master bitvector broadcast",
        "",
    );
    println!(
        "{:<12} {:>8} | {:>16} {:>16} | {:>18}",
        "Dataset", "rows", "TS master out", "TS workers out", "Ygg master out"
    );
    for d in [
        PaperDataset::MsLtrc,
        PaperDataset::Kdd99,
        PaperDataset::HiggsBoson,
        PaperDataset::LoanY1,
    ] {
        let (train, _) = dataset(d);
        let task = train.schema().task;

        let mut cfg = ts_config(train.n_rows(), 8, 4);
        cfg.work_ns_per_unit = 0; // traffic comparison, not timing
        let cluster = Cluster::launch(cfg, &train);
        let _ = cluster.train(JobSpec::decision_tree(task));
        let report = cluster.shutdown();
        let ts_master = report.master_sent_bytes;
        let ts_workers: u64 = report.per_node[1..].iter().map(|s| s.sent_bytes).sum();

        let ycfg = YggdrasilConfig {
            n_machines: 8,
            impurity: if task.is_classification() {
                ts_splits::Impurity::Gini
            } else {
                ts_splits::Impurity::Variance
            },
            ..Default::default()
        };
        let trainer = YggdrasilTrainer::new(ycfg);
        let all: Vec<usize> = (0..train.n_attrs()).collect();
        let (_, ystats) = trainer.train_tree(&train, &all);

        println!(
            "{:<12} {:>8} | {:>13} KB {:>13} KB | {:>15} KB",
            d.name(),
            train.n_rows(),
            ts_master / 1024,
            ts_workers / 1024,
            ystats.master_broadcast_bytes / 1024,
        );
    }
}
