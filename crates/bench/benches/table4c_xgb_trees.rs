//! Table IV(c): XGBoost accuracy vs number of trees on MS_LTRC- and
//! c14B-shaped data.
//!
//! Paper shape: boosting keeps improving as trees are added (unlike
//! bagging, whose accuracy is flat in Table IV(a)-(b)), while the time
//! grows linearly because the trees are sequential.

use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    print_header("Table IV(c): XGBoost, accuracy vs trees", "");
    for d in [PaperDataset::MsLtrc, PaperDataset::C14B] {
        let (train, test) = dataset(d);
        let task = train.schema().task;
        println!("\n--- {} ({} rows) ---", d.name(), train.n_rows());
        println!("{:>7} {:>9} {:>9}", "#trees", "time (s)", "accuracy");
        for n in [10usize, 20, 40, 80, 100] {
            let n = scaled_trees(n);
            let r = run_xgb(&train, &test, xgb_config(task, n));
            println!("{:>7} {:>9.2} {:>9}", n, r.secs, fmt_metric(task, r.metric));
        }
    }
}
