//! Table IV(a)-(b): running time vs number of trees (500..2000 in the
//! paper; scaled here) — TreeServer vs MLlib on MS_LTRC- and c14B-shaped
//! data.
//!
//! Paper shape: both systems scale linearly in tree count (cores are
//! saturated), TreeServer several times faster throughout; accuracy is
//! flat in the tree count for bagging.

use treeserver::JobSpec;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    // The paper's 500..2000 trees scaled by a tenth keeps the bench minutes.
    let counts: Vec<usize> = [50usize, 100, 150, 200]
        .iter()
        .map(|&c| scaled_trees(c))
        .collect();
    print_header(
        "Table IV(a)-(b): time vs number of trees",
        "counts = paper/10",
    );
    for d in [PaperDataset::MsLtrc, PaperDataset::C14B] {
        let (train, test) = dataset(d);
        let task = train.schema().task;
        println!("\n--- {} ({} rows) ---", d.name(), train.n_rows());
        println!(
            "{:>7} | {:>9} {:>9} | {:>9} {:>9}",
            "#trees", "TS s", "TS acc", "MLlib s", "ML acc"
        );
        for &n_trees in &counts {
            let ts = run_treeserver(
                &train,
                &test,
                ts_config(train.n_rows(), 15, 10),
                JobSpec::random_forest(task, n_trees).with_seed(2),
            );
            let ml = run_planet_forest(&train, &test, planet_config(task, 15, 10), n_trees, 2);
            println!(
                "{:>7} | {:>9.2} {:>9} | {:>9.2} {:>9}",
                n_trees,
                ts.secs,
                fmt_metric(task, ts.metric),
                ml.secs,
                fmt_metric(task, ml.metric),
            );
        }
    }
}
