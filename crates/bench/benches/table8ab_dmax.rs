//! Table VIII(a)-(b): effect of the maximum depth `dmax` on time and test
//! accuracy — one tree and a 20-tree forest on Higgs_boson-shaped data.
//!
//! Paper shape: accuracy keeps improving with depth (no overfitting at
//! these depths) while time grows sub-linearly (lower levels have fewer
//! rows per node).

use treeserver::JobSpec;
use ts_bench::*;
use ts_datatable::synth::PaperDataset;

fn main() {
    print_header("Table VIII(a)-(b): effect of dmax on Higgs_boson", "");
    let (train, test) = dataset(PaperDataset::HiggsBoson);
    let task = train.schema().task;
    for (label, n_trees) in [("1 tree", 1usize), ("20 trees", scaled_trees(20))] {
        println!("\n--- {label} ---");
        println!("{:>6} {:>9} {:>10}", "dmax", "time (s)", "accuracy");
        for dmax in [2u32, 4, 6, 8, 10, 12] {
            let spec = if n_trees == 1 {
                JobSpec::decision_tree(task).with_dmax(dmax)
            } else {
                JobSpec::random_forest(task, n_trees)
                    .with_dmax(dmax)
                    .with_seed(8)
            };
            let r = run_treeserver(&train, &test, ts_config(train.n_rows(), 15, 10), spec);
            println!(
                "{:>6} {:>9.2} {:>10}",
                dmax,
                r.secs,
                fmt_metric(task, r.metric)
            );
        }
    }
}
