//! Micro-benchmarks of the split kernels: the inner loops whose cost model
//! (`|Ix| * |C| * log|Ix|`) drives the §VI worker assignment.
//!
//! Plain timed loops (median of repeated runs) like the table benches, so
//! the workspace needs no external benchmark harness.
//!
//! The exact kernels are timed on **both** engine paths — the legacy
//! gather+sort kernels and the sorted-column engine's presorted-index scans
//! (`ts_splits::sorted`) — and the per-size speedup is printed alongside.
//! All timings are also recorded into `BENCH_splits.json` (see
//! `ts_bench::BenchReport`), which CI uploads as an artifact.

use std::hint::black_box;
use std::time::Instant;
use treeserver::{Cluster, JobSpec, Splitter};
use ts_bench::{print_header, ts_config, BenchReport};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{SortedColumn, Task};
use ts_splits::exact::{
    best_cat_split_classification, best_cat_split_regression, best_numeric_split,
};
use ts_splits::histogram::{BinCuts, NumericHistogram};
use ts_splits::impurity::{Impurity, LabelView};
use ts_splits::sketch::QuantileSketch;
use ts_splits::sorted::{
    best_cat_split_classification_at, best_cat_split_regression_at, best_numeric_split_at_path,
    NodeRows, NumericPath,
};
use tsrand::prelude::*;

fn data(n: usize, seed: u64) -> (Vec<f64>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let ys: Vec<u32> = values.iter().map(|&v| u32::from(v > 3.0)).collect();
    (values, ys)
}

fn cat_data(n: usize, n_values: u32, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n_values)).collect();
    let ys: Vec<u32> = codes.iter().map(|&c| u32::from(c % 3 == 0)).collect();
    let reals: Vec<f64> = codes
        .iter()
        .map(|&c| c as f64 * 0.5 + rng.gen_range(-1.0..1.0))
        .collect();
    (codes, ys, reals)
}

/// Times `f` over enough iterations to pass ~50ms, five rounds, and
/// reports the best round's per-iteration time (best-of-N because the
/// shared host's noise is one-sided: interference only ever slows a round).
fn time_us(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_millis() >= 50 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

fn report(name: &str, per_iter_us: f64) {
    println!("{name:<48} {per_iter_us:>12.1} us/iter");
}

/// Reports a legacy/sorted pair plus the speedup, and records both.
fn report_pair(out: &mut BenchReport, base: &str, n: usize, legacy_us: f64, sorted_us: f64) {
    report(&format!("{base}/legacy"), legacy_us);
    report(&format!("{base}/sorted"), sorted_us);
    println!(
        "{:<48} {:>11.2}x",
        format!("{base}/speedup"),
        legacy_us / sorted_us
    );
    out.push(&format!("{base}/legacy"), legacy_us * 1e-6, n, 0, None);
    out.push(&format!("{base}/sorted"), sorted_us * 1e-6, n, 0, None);
}

fn main() {
    print_header(
        "Micro: split kernels",
        "per-call cost of the §VI work model's unit operations",
    );
    let mut out = BenchReport::new("splits");

    // Exact numeric splits, classification: legacy gather+sort vs the
    // sorted-column engine's filtered scan over a prebuilt index.
    for n in [1_000usize, 10_000, 100_000] {
        let (values, ys) = data(n, 1);
        let index = SortedColumn::from_numeric(&values);
        let legacy_us = time_us(|| {
            black_box(best_numeric_split(
                black_box(&values),
                LabelView::Class(&ys, 2),
                Impurity::Gini,
            ));
        });
        let sorted_us = time_us(|| {
            black_box(best_numeric_split_at_path(
                NumericPath::SortedScan,
                black_box(&values),
                &index,
                NodeRows::All(n),
                None,
                LabelView::Class(&ys, 2),
                Impurity::Gini,
            ));
        });
        report_pair(
            &mut out,
            &format!("exact_numeric_split/{n}"),
            n,
            legacy_us,
            sorted_us,
        );
    }

    // Exact numeric splits, regression (variance impurity).
    for n in [10_000usize, 100_000] {
        let (values, raw) = data(n, 5);
        let ys: Vec<f64> = raw
            .iter()
            .zip(&values)
            .map(|(&y, &v)| y as f64 + v * 0.01)
            .collect();
        let index = SortedColumn::from_numeric(&values);
        let legacy_us = time_us(|| {
            black_box(best_numeric_split(
                black_box(&values),
                LabelView::Real(&ys),
                Impurity::Variance,
            ));
        });
        let sorted_us = time_us(|| {
            black_box(best_numeric_split_at_path(
                NumericPath::SortedScan,
                black_box(&values),
                &index,
                NodeRows::All(n),
                None,
                LabelView::Real(&ys),
                Impurity::Variance,
            ));
        });
        report_pair(
            &mut out,
            &format!("exact_numeric_reg_split/{n}"),
            n,
            legacy_us,
            sorted_us,
        );
    }

    // Exact categorical splits: one-vs-rest classification and Breiman
    // regression, legacy per-call allocation vs pooled engine aggregates.
    {
        let n = 100_000;
        let (codes, ys, reals) = cat_data(n, 32, 3);
        let legacy_us = time_us(|| {
            black_box(best_cat_split_classification(
                black_box(&codes),
                32,
                &ys,
                2,
                Impurity::Gini,
            ));
        });
        let sorted_us = time_us(|| {
            black_box(best_cat_split_classification_at(
                black_box(&codes),
                32,
                NodeRows::All(n),
                &ys,
                2,
                Impurity::Gini,
            ));
        });
        report_pair(
            &mut out,
            &format!("exact_categorical_split/{n}_32vals"),
            n,
            legacy_us,
            sorted_us,
        );

        let legacy_us = time_us(|| {
            black_box(best_cat_split_regression(black_box(&codes), 32, &reals));
        });
        let sorted_us = time_us(|| {
            black_box(best_cat_split_regression_at(
                black_box(&codes),
                32,
                NodeRows::All(n),
                &reals,
            ));
        });
        report_pair(
            &mut out,
            &format!("exact_breiman_split/{n}_32vals"),
            n,
            legacy_us,
            sorted_us,
        );
    }

    for n in [10_000usize, 100_000] {
        let (values, ys) = data(n, 2);
        let cuts = BinCuts::equi_depth(&values, 32);
        let us = time_us(|| {
            let mut h = NumericHistogram::new_class(cuts.n_bins(), 2);
            for (&v, &y) in values.iter().zip(&ys) {
                h.add_class(&cuts, v, y);
            }
            black_box(h.best_split(&cuts, Impurity::Gini));
        });
        report(&format!("histogram_pass/{n}"), us);
        out.push(&format!("histogram_pass/{n}"), us * 1e-6, n, 0, None);
    }

    {
        let (values, _) = data(100_000, 4);
        let us = time_us(|| {
            let mut s = QuantileSketch::new(128);
            for &v in &values {
                s.push(v, 1.0);
            }
            black_box(s.cut_points(32));
        });
        report("quantile_sketch_build_100k", us);
        out.push("quantile_sketch_build_100k", us * 1e-6, 100_000, 0, None);
    }

    // Cluster-level split plane: the exact engine ships a full per-column
    // `ColumnResult` (with per-shard `NodeStats`) for every column-task,
    // while `Splitter::Histogram` ships top-k nominations plus one elected
    // result (docs/HISTOGRAM.md). Multi-class data is the regime the vote
    // plane wins in — the stats payloads grow with the class count — so
    // this uses a Covtype-shaped 7-class table. The `metric` field of the
    // two records carries the split-plane bytes each mode moved.
    {
        let rows = ((24_000.0 * ts_bench::env_scale()) as usize).max(4_000);
        let table = generate(&SynthSpec {
            rows,
            numeric: 8,
            categorical: 2,
            cat_cardinality: 6,
            task: Task::Classification { n_classes: 7 },
            noise: 0.05,
            concept_depth: 6,
            seed: 5,
            ..Default::default()
        });
        let run = |splitter: Splitter| {
            let mut cfg = ts_config(rows, 8, 4);
            cfg.splitter = splitter;
            // Keep the upper tree on the distributed column path: the
            // splitter modes only differ there.
            cfg.tau_d = (rows as u64 / 40).max(400);
            cfg.obs = treeserver::obs::ObsConfig::enabled();
            let cluster = Cluster::launch(cfg, &table);
            let t0 = Instant::now();
            let _ = cluster.train(JobSpec::decision_tree(table.schema().task).with_dmax(8));
            let secs = t0.elapsed().as_secs_f64();
            (secs, cluster.shutdown())
        };
        let (exact_secs, exact_rep) = run(Splitter::Exact);
        let (hist_secs, hist_rep) = run(Splitter::Histogram {
            bins: 64,
            vote_k: 2,
        });
        let (exact_b, hist_b) = (exact_rep.split_bytes_sent, hist_rep.hist_bytes_sent);
        println!(
            "{:<48} {:>9.3} s {:>10.1} KB",
            format!("cluster_split_plane/exact/{rows}"),
            exact_secs,
            exact_b as f64 / 1024.0
        );
        println!(
            "{:<48} {:>9.3} s {:>10.1} KB",
            format!("cluster_split_plane/hist/{rows}"),
            hist_secs,
            hist_b as f64 / 1024.0
        );
        println!(
            "{:<48} {:>11.2}x bytes, {:.2}x time",
            "cluster_split_plane/reduction",
            exact_b as f64 / hist_b.max(1) as f64,
            exact_secs / hist_secs
        );
        out.push(
            &format!("cluster_split_plane/exact/{rows}"),
            exact_secs,
            rows,
            1,
            Some(exact_b as f64),
        );
        out.push(
            &format!("cluster_split_plane/hist/{rows}"),
            hist_secs,
            rows,
            1,
            Some(hist_b as f64),
        );
    }

    out.write();
}
