//! Criterion micro-benchmarks of the split kernels: the inner loops whose
//! cost model (`|Ix| * |C| * log|Ix|`) drives the §VI worker assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use ts_splits::exact::{best_cat_split_classification, best_numeric_split};
use ts_splits::histogram::{BinCuts, NumericHistogram};
use ts_splits::impurity::{Impurity, LabelView};
use ts_splits::sketch::QuantileSketch;

fn data(n: usize, seed: u64) -> (Vec<f64>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let ys: Vec<u32> = values.iter().map(|&v| u32::from(v > 3.0)).collect();
    (values, ys)
}

fn bench_exact_numeric(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_numeric_split");
    for n in [1_000usize, 10_000, 100_000] {
        let (values, ys) = data(n, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                best_numeric_split(&values, LabelView::Class(&ys, 2), Impurity::Gini)
            })
        });
    }
    g.finish();
}

fn bench_histogram_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram_pass");
    for n in [10_000usize, 100_000] {
        let (values, ys) = data(n, 2);
        let cuts = BinCuts::equi_depth(&values, 32);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut h = NumericHistogram::new_class(cuts.n_bins(), 2);
                for (&v, &y) in values.iter().zip(&ys) {
                    h.add_class(&cuts, v, y);
                }
                h.best_split(&cuts, Impurity::Gini)
            })
        });
    }
    g.finish();
}

fn bench_categorical(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 100_000;
    let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..32)).collect();
    let ys: Vec<u32> = codes.iter().map(|&c| u32::from(c % 3 == 0)).collect();
    c.bench_function("exact_categorical_split_100k_32vals", |b| {
        b.iter(|| best_cat_split_classification(&codes, 32, &ys, 2, Impurity::Gini))
    });
}

fn bench_sketch(c: &mut Criterion) {
    let (values, _) = data(100_000, 4);
    c.bench_function("quantile_sketch_build_100k", |b| {
        b.iter(|| {
            let mut s = QuantileSketch::new(128);
            for &v in &values {
                s.push(v, 1.0);
            }
            s.cut_points(32)
        })
    });
}

criterion_group!(
    benches,
    bench_exact_numeric,
    bench_histogram_pass,
    bench_categorical,
    bench_sketch
);
criterion_main!(benches);
