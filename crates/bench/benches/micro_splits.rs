//! Micro-benchmarks of the split kernels: the inner loops whose cost model
//! (`|Ix| * |C| * log|Ix|`) drives the §VI worker assignment.
//!
//! Plain timed loops (median of repeated runs) like the table benches, so
//! the workspace needs no external benchmark harness.

use std::hint::black_box;
use std::time::Instant;
use ts_bench::print_header;
use ts_splits::exact::{best_cat_split_classification, best_numeric_split};
use ts_splits::histogram::{BinCuts, NumericHistogram};
use ts_splits::impurity::{Impurity, LabelView};
use ts_splits::sketch::QuantileSketch;
use tsrand::prelude::*;

fn data(n: usize, seed: u64) -> (Vec<f64>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let ys: Vec<u32> = values.iter().map(|&v| u32::from(v > 3.0)).collect();
    (values, ys)
}

/// Times `f` over enough iterations to pass ~50ms, three rounds, and
/// reports the best round's per-iteration time.
fn time_us(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_millis() >= 50 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

fn report(name: &str, per_iter_us: f64) {
    println!("{name:<40} {per_iter_us:>12.1} us/iter");
}

fn main() {
    print_header(
        "Micro: split kernels",
        "per-call cost of the §VI work model's unit operations",
    );

    for n in [1_000usize, 10_000, 100_000] {
        let (values, ys) = data(n, 1);
        let us = time_us(|| {
            black_box(best_numeric_split(
                black_box(&values),
                LabelView::Class(&ys, 2),
                Impurity::Gini,
            ));
        });
        report(&format!("exact_numeric_split/{n}"), us);
    }

    for n in [10_000usize, 100_000] {
        let (values, ys) = data(n, 2);
        let cuts = BinCuts::equi_depth(&values, 32);
        let us = time_us(|| {
            let mut h = NumericHistogram::new_class(cuts.n_bins(), 2);
            for (&v, &y) in values.iter().zip(&ys) {
                h.add_class(&cuts, v, y);
            }
            black_box(h.best_split(&cuts, Impurity::Gini));
        });
        report(&format!("histogram_pass/{n}"), us);
    }

    {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..32)).collect();
        let ys: Vec<u32> = codes.iter().map(|&c| u32::from(c % 3 == 0)).collect();
        let us = time_us(|| {
            black_box(best_cat_split_classification(
                black_box(&codes),
                32,
                &ys,
                2,
                Impurity::Gini,
            ));
        });
        report("exact_categorical_split_100k_32vals", us);
    }

    {
        let (values, _) = data(100_000, 4);
        let us = time_us(|| {
            let mut s = QuantileSketch::new(128);
            for &v in &values {
                s.push(v, 1.0);
            }
            black_box(s.cut_points(32));
        });
        report("quantile_sketch_build_100k", us);
    }
}
