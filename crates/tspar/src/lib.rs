//! Data-parallel helpers over `std::thread::scope`.
//!
//! A dependency-free replacement for the narrow rayon subset the baseline
//! trainers and the deep-forest pipeline use: indexed parallel map over a
//! slice or range, indexed parallel mutation, and a [`ThreadPool`] value
//! that carries a configured degree of parallelism.
//!
//! Work is split into contiguous chunks, one per thread, which matches how
//! the call sites used rayon: coarse-grained, uniform-cost items. Results
//! come back in input order.

/// A configured degree of parallelism (rayon's `ThreadPool` stand-in —
/// threads are scoped per call rather than pooled).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool running `threads` ways parallel (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Indexed map over a slice on this pool; results in input order.
    pub fn map<T: Sync, U: Send>(&self, items: &[T], f: impl Fn(usize, &T) -> U + Sync) -> Vec<U> {
        par_map(items, self.threads, f)
    }

    /// Indexed map over `0..n` on this pool; results in index order.
    pub fn map_range<U: Send>(&self, n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
        par_map_range(n, self.threads, f)
    }

    /// Indexed in-place mutation of a slice on this pool.
    pub fn for_each_mut<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        par_for_each_mut(items, self.threads, f)
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Indexed parallel map over a slice with `threads` workers (0 means "use
/// the machine"); results in input order.
pub fn par_map<T: Sync, U: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U> {
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    run_indexed(
        items.len(),
        threads,
        &|i, slot: &mut Option<U>| {
            *slot = Some(f(i, &items[i]));
        },
        &mut out,
    );
    out.into_iter()
        .map(|v| v.expect("worker filled slot"))
        .collect()
}

/// Indexed parallel map over `0..n`; results in index order.
pub fn par_map_range<U: Send>(n: usize, threads: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(n, || None);
    run_indexed(
        n,
        threads,
        &|i, slot: &mut Option<U>| {
            *slot = Some(f(i));
        },
        &mut out,
    );
    out.into_iter()
        .map(|v| v.expect("worker filled slot"))
        .collect()
}

/// Indexed parallel in-place mutation of a slice.
pub fn par_for_each_mut<T: Send>(
    items: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut T) + Sync,
) {
    let n = items.len();
    run_indexed(n, threads, &f, items);
}

/// Splits `out` into one contiguous chunk per worker and applies
/// `f(global_index, slot)` to every slot. One chunk per thread is enough:
/// the call sites are coarse-grained, uniform-cost loops.
fn run_indexed<T: Send>(
    n: usize,
    threads: usize,
    f: &(impl Fn(usize, &mut T) + Sync),
    out: &mut [T],
) {
    assert_eq!(out.len(), n);
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = &mut *out;
        let mut start = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            scope.spawn(move || {
                for (off, slot) in head.iter_mut().enumerate() {
                    f(start + off, slot);
                }
            });
            start += take;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let out = par_map(&items, 8, |i, &v| v * 2 + i as u64);
        assert_eq!(out, (0..1_000).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_range_matches_sequential() {
        assert_eq!(
            par_map_range(257, 4, |i| i * i),
            (0..257).map(|i| i * i).collect::<Vec<_>>()
        );
        assert_eq!(par_map_range(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range(1, 4, |i| i + 9), vec![9]);
    }

    #[test]
    fn for_each_mut_touches_every_slot_once() {
        let mut v = vec![0u32; 503];
        par_for_each_mut(&mut v, 6, |i, slot| *slot += i as u32 + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn pool_carries_thread_count() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let pool = ThreadPool::new(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.map(&[1, 2, 3], |_, &v| v + 1), vec![2, 3, 4]);
        assert_eq!(pool.map_range(4, |i| i), vec![0, 1, 2, 3]);
        let mut v = vec![1u8; 5];
        pool.for_each_mut(&mut v, |_, s| *s *= 2);
        assert_eq!(v, vec![2; 5]);
    }
}
