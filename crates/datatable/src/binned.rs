//! Quantized bin ids for numeric columns — the histogram split path's
//! load-time index.
//!
//! The histogram split engine (docs/HISTOGRAM.md) never scans a numeric
//! column's values per node: each column is binned **once** when it enters a
//! store, and per-node work becomes an `O(|Ix|)` accumulation of per-bin
//! label aggregates followed by an `O(bins)` boundary scan. This module
//! provides the two pieces of that index:
//!
//! - [`BinCuts`]: candidate thresholds from an equi-depth quantile sweep
//!   (the PLANET/MLlib `maxBins` construction; paper §II, *Related
//!   Systems*), lossless when the column has at most `max_bins` distinct
//!   values, and
//! - [`BinnedColumn`]: the column's values quantized to `u8`/`u16` bin ids
//!   against those cuts, with a reserved trailing bin for missing values.
//!
//! `BinCuts` lives here (rather than in `ts-splits`, where the histogram
//! kernels consume it) because binning is a property of the *stored data*,
//! built alongside [`crate::sorted::SortedColumn`]; `ts-splits` re-exports
//! it for the kernels and baselines.

use tsjson::{Deserialize, Serialize};

/// Candidate split thresholds for one numeric attribute.
///
/// `cuts` is strictly increasing; values `v <= cuts[b]` with
/// `v > cuts[b-1]` fall into bin `b`, and values above the last cut fall
/// into the overflow bin `cuts.len()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinCuts {
    cuts: Vec<f64>,
}

impl BinCuts {
    /// Builds equi-depth cuts from (a sample of) the attribute values,
    /// keeping at most `max_bins - 1` thresholds (so at most `max_bins`
    /// bins), mirroring MLlib's `findSplits`.
    ///
    /// Degenerate inputs are well-defined: an all-missing or constant
    /// column yields **no cuts** — a single overflow bin that swallows
    /// every present value ([`Self::n_bins`] is 1). When the column has at
    /// most `max_bins` distinct present values the cuts are exactly those
    /// distinct values (minus the maximum), so binning is *lossless*: every
    /// exact split boundary is a bin boundary. The quantile sweep only
    /// engages above that, and always deduplicates, so cuts are strictly
    /// increasing for any input.
    pub fn equi_depth(values: &[f64], max_bins: usize) -> BinCuts {
        assert!(max_bins >= 2, "need at least two bins");
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_unstable_by(f64::total_cmp);
        if sorted.is_empty() {
            return BinCuts { cuts: Vec::new() };
        }
        let n = sorted.len();

        // Lossless fast path: few distinct values. The plain quantile sweep
        // can miss rare values entirely on skewed data (every quantile index
        // lands inside the dominant run), producing no usable cut even
        // though an exact split exists.
        let mut distinct: Vec<f64> = Vec::new();
        for &v in &sorted {
            if distinct.last().is_none_or(|&last| v > last) {
                distinct.push(v);
            }
            if distinct.len() > max_bins {
                break;
            }
        }
        if distinct.len() <= max_bins {
            distinct.pop(); // splitting at the max sends everything left
            return BinCuts { cuts: distinct };
        }

        let mut cuts = Vec::with_capacity(max_bins - 1);
        for i in 1..max_bins {
            let idx = (i * n) / max_bins;
            if idx == 0 || idx >= n {
                continue;
            }
            let c = sorted[idx - 1];
            if cuts.last().is_none_or(|&last| c > last) && c < sorted[n - 1] {
                cuts.push(c);
            }
        }
        BinCuts { cuts }
    }

    /// Wraps an explicit strictly-increasing threshold vector (tests,
    /// sketch-proposed candidates).
    ///
    /// # Panics
    /// Panics when `cuts` is not strictly increasing or contains NaN.
    pub fn from_cuts(cuts: Vec<f64>) -> BinCuts {
        assert!(
            cuts.windows(2).all(|w| w[0] < w[1]) && cuts.iter().all(|c| !c.is_nan()),
            "cuts must be strictly increasing and NaN-free"
        );
        BinCuts { cuts }
    }

    /// The candidate thresholds.
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Number of bins (`cuts + 1`; a cut-less column has the single
    /// overflow bin).
    pub fn n_bins(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The bin index of a value: the first bin whose cut is `>= v`.
    pub fn bin_of(&self, v: f64) -> usize {
        debug_assert!(!v.is_nan());
        self.cuts.partition_point(|&c| c < v)
    }

    /// Approximate wire size (what PLANET broadcasts per attribute).
    pub fn wire_bytes(&self) -> usize {
        8 * self.cuts.len() + 8
    }
}

/// A numeric column's values quantized to bin ids, built once at load time.
///
/// Slot layout: ids `0..n_bins()` are the real bins of the column's
/// [`BinCuts`]; the reserved trailing id [`Self::missing_bin`] marks missing
/// (NaN) rows, so histogram kernels need no second lookup into the raw
/// values. Ids are stored as `u8` when they fit (≤ 256 slots — the common
/// `--hist-bins 64` case costs one byte per row) and `u16` otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedColumn {
    cuts: BinCuts,
    ids: BinIds,
}

/// The quantized id payload of a [`BinnedColumn`].
#[derive(Debug, Clone, PartialEq)]
pub enum BinIds {
    /// At most 256 slots (bins + missing).
    U8(Vec<u8>),
    /// Up to 65 536 slots.
    U16(Vec<u16>),
}

impl BinnedColumn {
    /// Bins a full numeric column with fresh equi-depth cuts.
    pub fn build(values: &[f64], max_bins: usize) -> Self {
        let cuts = BinCuts::equi_depth(values, max_bins);
        Self::with_cuts(values, cuts)
    }

    /// Bins a full numeric column against existing cuts.
    ///
    /// # Panics
    /// Panics when the cuts imply more than 65 536 slots (`u16` ids).
    pub fn with_cuts(values: &[f64], cuts: BinCuts) -> Self {
        let slots = cuts.n_bins() + 1; // + reserved missing slot
        let missing = cuts.n_bins();
        let ids = if slots <= (u8::MAX as usize) + 1 {
            BinIds::U8(
                values
                    .iter()
                    .map(|&v| {
                        if v.is_nan() {
                            missing as u8
                        } else {
                            cuts.bin_of(v) as u8
                        }
                    })
                    .collect(),
            )
        } else {
            assert!(
                slots <= (u16::MAX as usize) + 1,
                "bin count exceeds u16 id range"
            );
            BinIds::U16(
                values
                    .iter()
                    .map(|&v| {
                        if v.is_nan() {
                            missing as u16
                        } else {
                            cuts.bin_of(v) as u16
                        }
                    })
                    .collect(),
            )
        };
        BinnedColumn { cuts, ids }
    }

    /// The cuts the ids were quantized against.
    pub fn cuts(&self) -> &BinCuts {
        &self.cuts
    }

    /// Number of real bins (excluding the missing slot).
    pub fn n_bins(&self) -> usize {
        self.cuts.n_bins()
    }

    /// The reserved slot id marking a missing value.
    pub fn missing_bin(&self) -> usize {
        self.cuts.n_bins()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.ids {
            BinIds::U8(v) => v.len(),
            BinIds::U16(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot id of one row (a real bin, or [`Self::missing_bin`]).
    #[inline]
    pub fn id(&self, row: usize) -> usize {
        match &self.ids {
            BinIds::U8(v) => v[row] as usize,
            BinIds::U16(v) => v[row] as usize,
        }
    }

    /// In-memory size of the id payload plus cuts (for memory accounting).
    pub fn payload_bytes(&self) -> usize {
        let ids = match &self.ids {
            BinIds::U8(v) => v.len(),
            BinIds::U16(v) => v.len() * 2,
        };
        ids + std::mem::size_of_val(self.cuts.cuts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_cuts_are_increasing_and_bounded() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let cuts = BinCuts::equi_depth(&values, 32);
        assert!(cuts.cuts().len() <= 31);
        assert!(cuts.cuts().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn equi_depth_few_distinct_values_is_lossless() {
        let values = [1.0, 1.0, 2.0, 2.0, 2.0];
        let cuts = BinCuts::equi_depth(&values, 32);
        assert_eq!(cuts.cuts(), &[1.0]);
        assert_eq!(cuts.n_bins(), 2);
    }

    #[test]
    fn equi_depth_skewed_rare_value_still_gets_a_cut() {
        // One 1.0 among many 2.0s: every quantile index lands inside the
        // 2.0 run, so the plain sweep would find no cut at all.
        let mut values = vec![2.0; 99];
        values.push(1.0);
        let cuts = BinCuts::equi_depth(&values, 32);
        assert_eq!(cuts.cuts(), &[1.0]);
    }

    #[test]
    fn equi_depth_all_missing_is_single_overflow_bin() {
        let cuts = BinCuts::equi_depth(&[f64::NAN, f64::NAN], 8);
        assert!(cuts.cuts().is_empty());
        assert_eq!(cuts.n_bins(), 1);
        assert_eq!(cuts.bin_of(123.0), 0);
    }

    #[test]
    fn equi_depth_constant_column_is_single_bin() {
        let cuts = BinCuts::equi_depth(&[7.0; 50], 32);
        assert!(cuts.cuts().is_empty());
        assert_eq!(cuts.n_bins(), 1);
    }

    #[test]
    fn equi_depth_dedups_heavy_value_runs() {
        // 40 distinct values but half the mass on one value: adjacent
        // quantile indices repeatedly land on 20.0 and must be deduped.
        let mut values: Vec<f64> = (0..40).map(f64::from).collect();
        values.extend(std::iter::repeat_n(20.0, 40));
        let cuts = BinCuts::equi_depth(&values, 8);
        assert!(cuts.cuts().windows(2).all(|w| w[0] < w[1]));
        assert!(!cuts.cuts().is_empty());
    }

    #[test]
    fn from_cuts_validates() {
        let c = BinCuts::from_cuts(vec![1.0, 2.0]);
        assert_eq!(c.n_bins(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_cuts_rejects_unsorted() {
        BinCuts::from_cuts(vec![2.0, 1.0]);
    }

    #[test]
    fn bin_of_respects_boundaries() {
        let cuts = BinCuts::from_cuts(vec![1.0, 5.0]);
        assert_eq!(cuts.bin_of(0.5), 0);
        assert_eq!(cuts.bin_of(1.0), 0);
        assert_eq!(cuts.bin_of(1.5), 1);
        assert_eq!(cuts.bin_of(5.0), 1);
        assert_eq!(cuts.bin_of(9.0), 2);
    }

    #[test]
    fn binned_column_ids_match_bin_of_with_missing_slot() {
        let values = [0.5, 1.0, 3.0, f64::NAN, 9.0];
        let b = BinnedColumn::with_cuts(&values, BinCuts::from_cuts(vec![1.0, 5.0]));
        assert_eq!(b.n_bins(), 3);
        assert_eq!(b.missing_bin(), 3);
        assert_eq!(b.len(), 5);
        assert_eq!(
            (0..5).map(|r| b.id(r)).collect::<Vec<_>>(),
            vec![0, 0, 1, 3, 2]
        );
        assert!(matches!(
            BinnedColumn::with_cuts(&values, BinCuts::from_cuts(vec![1.0])).ids,
            BinIds::U8(_)
        ));
    }

    #[test]
    fn binned_column_uses_u16_above_256_slots() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let b = BinnedColumn::build(&values, 1000);
        assert!(matches!(b.ids, BinIds::U16(_)));
        assert_eq!(b.n_bins(), 1000);
        // Lossless: id r equals the rank of value r.
        assert_eq!(b.id(0), 0);
        assert_eq!(b.id(999), 999);
        assert_eq!(b.payload_bytes(), 1000 * 2 + 999 * 8);
    }

    #[test]
    fn binned_column_all_missing() {
        let b = BinnedColumn::build(&[f64::NAN, f64::NAN], 4);
        assert_eq!(b.n_bins(), 1);
        assert_eq!(b.id(0), b.missing_bin());
        assert_eq!(b.id(1), 1);
    }
}
