//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on 11 public datasets (Table I) and on MNIST for the
//! deep-forest case study. Those artifacts are not shipped here; instead this
//! module generates datasets that match each one's *shape* — row count
//! (scaled), numeric/categorical attribute counts, task kind, class count and
//! (for Allstate) missing values — with a planted tree-structured concept so
//! the learning problem is non-trivial and exact-vs-approximate split quality
//! differences are observable. See DESIGN.md §2 for the substitution rationale.

use crate::column::{Column, MISSING_CAT};
use crate::schema::{AttrMeta, Schema, Task};
use crate::table::{DataTable, Labels};
use tsrand::rngs::StdRng;
use tsrand::{Rng, SeedableRng};

/// Specification of a synthetic table.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Number of rows to generate.
    pub rows: usize,
    /// Number of numeric attributes.
    pub numeric: usize,
    /// Number of categorical attributes.
    pub categorical: usize,
    /// Cardinality of each categorical attribute.
    pub cat_cardinality: u32,
    /// Prediction task.
    pub task: Task,
    /// Fraction of attribute cells set to missing (after labelling).
    pub missing_rate: f64,
    /// Label noise: class-flip probability (classification) or Gaussian
    /// sigma relative to the label range (regression).
    pub noise: f64,
    /// Depth of the planted ground-truth tree concept.
    pub concept_depth: u32,
    /// Number of latent factors (0 = the concept reads the observed
    /// attributes directly). With `latent = L > 0`, the concept is a tree
    /// over `L` hidden uniform variables and every observed column is a
    /// *noisy proxy* of one of them — mimicking the feature redundancy of
    /// real tabular data, where a random-forest's column subsampling can
    /// find substitutes for any informative feature.
    pub latent: usize,
    /// RNG seed; the same spec + seed always produces the same table.
    pub seed: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            rows: 10_000,
            numeric: 10,
            categorical: 0,
            cat_cardinality: 8,
            task: Task::Classification { n_classes: 2 },
            missing_rate: 0.0,
            noise: 0.05,
            concept_depth: 6,
            latent: 0,
            seed: 1,
        }
    }
}

/// A node of the planted concept tree.
enum ConceptNode {
    NumSplit {
        attr: usize,
        thresh: f64,
        left: usize,
        right: usize,
    },
    CatSplit {
        attr: usize,
        left_vals: Vec<u32>,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// The planted ground-truth concept: a random decision tree over the
/// attribute space whose leaves carry real values in `[0, 1)`. For
/// classification the leaf value is quantised to a class.
struct Concept {
    nodes: Vec<ConceptNode>,
}

impl Concept {
    fn random(spec: &SynthSpec, rng: &mut StdRng) -> Concept {
        let mut nodes = Vec::new();
        Self::grow(spec, rng, &mut nodes, 0);
        Concept { nodes }
    }

    fn grow(spec: &SynthSpec, rng: &mut StdRng, nodes: &mut Vec<ConceptNode>, depth: u32) -> usize {
        let id = nodes.len();
        let n_attrs = spec.numeric + spec.categorical;
        if depth >= spec.concept_depth || n_attrs == 0 {
            nodes.push(ConceptNode::Leaf {
                value: rng.gen::<f64>(),
            });
            return id;
        }
        // Reserve the slot, then grow children.
        nodes.push(ConceptNode::Leaf { value: 0.0 });
        let attr = rng.gen_range(0..n_attrs);
        let node = if attr < spec.numeric {
            // Numeric attribute values are uniform in [0,1); pick a threshold
            // away from the extremes so both sides stay populated.
            let thresh = rng.gen_range(0.2..0.8);
            let left = Self::grow(spec, rng, nodes, depth + 1);
            let right = Self::grow(spec, rng, nodes, depth + 1);
            ConceptNode::NumSplit {
                attr,
                thresh,
                left,
                right,
            }
        } else {
            let card = spec.cat_cardinality.max(2);
            let n_left = rng.gen_range(1..card);
            let mut vals: Vec<u32> = (0..card).collect();
            // Seeded partial shuffle to pick the left subset.
            for i in 0..n_left as usize {
                let j = rng.gen_range(i..card as usize);
                vals.swap(i, j);
            }
            let mut left_vals: Vec<u32> = vals[..n_left as usize].to_vec();
            left_vals.sort_unstable();
            let left = Self::grow(spec, rng, nodes, depth + 1);
            let right = Self::grow(spec, rng, nodes, depth + 1);
            ConceptNode::CatSplit {
                attr,
                left_vals,
                left,
                right,
            }
        };
        nodes[id] = node;
        id
    }

    /// Evaluates the concept for one row (before noise/missingness).
    fn eval(&self, num: &[Vec<f64>], cat: &[Vec<u32>], n_numeric: usize, row: usize) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                ConceptNode::Leaf { value } => return *value,
                ConceptNode::NumSplit {
                    attr,
                    thresh,
                    left,
                    right,
                } => {
                    i = if num[*attr][row] <= *thresh {
                        *left
                    } else {
                        *right
                    };
                }
                ConceptNode::CatSplit {
                    attr,
                    left_vals,
                    left,
                    right,
                } => {
                    let v = cat[*attr - n_numeric][row];
                    i = if left_vals.binary_search(&v).is_ok() {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Generates a table from a spec. Deterministic in `(spec, spec.seed)`.
pub fn generate(spec: &SynthSpec) -> DataTable {
    assert!(spec.rows > 0, "rows must be positive");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // The variables the concept reads: either the observed columns
    // themselves, or `latent` hidden factors every observed column proxies.
    let (concept_spec, concept_num, concept_cat);
    if spec.latent > 0 {
        concept_spec = SynthSpec {
            numeric: spec.latent,
            categorical: 0,
            ..spec.clone()
        };
        concept_num = (0..spec.latent)
            .map(|_| {
                (0..spec.rows)
                    .map(|_| rng.gen::<f64>())
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>();
        concept_cat = Vec::new();
    } else {
        concept_spec = spec.clone();
        concept_num = Vec::new();
        concept_cat = Vec::new();
    }
    let concept = Concept::random(&concept_spec, &mut rng);

    let mut gauss = {
        let mut spare: Option<f64> = None;
        move |rng: &mut StdRng| -> f64 {
            if let Some(v) = spare.take() {
                return v;
            }
            let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
            let r = (-2.0 * u1.ln()).sqrt();
            let a = 2.0 * std::f64::consts::PI * u2;
            spare = Some(r * a.sin());
            r * a.cos()
        }
    };

    // Raw attribute values (no missing yet).
    let mut num_cols: Vec<Vec<f64>>;
    let mut cat_cols: Vec<Vec<u32>>;
    if spec.latent > 0 {
        let l = spec.latent;
        num_cols = (0..spec.numeric)
            .map(|i| {
                let base = &concept_num[i % l];
                (0..spec.rows)
                    .map(|r| base[r] + gauss(&mut rng) * 0.18)
                    .collect()
            })
            .collect();
        // Quantisation buckets must match the declared schema cardinality
        // exactly, or generated codes would exceed `n_values`.
        let card = spec.cat_cardinality.max(1) as f64;
        cat_cols = (0..spec.categorical)
            .map(|j| {
                let base = &concept_num[(spec.numeric + j) % l];
                (0..spec.rows)
                    .map(|r| {
                        let v = (base[r] + gauss(&mut rng) * 0.18).clamp(0.0, 1.0 - 1e-9);
                        (v * card) as u32
                    })
                    .collect()
            })
            .collect();
    } else {
        num_cols = (0..spec.numeric)
            .map(|_| (0..spec.rows).map(|_| rng.gen::<f64>()).collect())
            .collect();
        cat_cols = (0..spec.categorical)
            .map(|_| {
                (0..spec.rows)
                    .map(|_| rng.gen_range(0..spec.cat_cardinality.max(1)))
                    .collect()
            })
            .collect();
    }

    // Labels from the concept, plus noise. With latent factors the concept
    // reads the hidden variables; otherwise the observed columns.
    let (eval_num, eval_cat, eval_numeric_count) = if spec.latent > 0 {
        (&concept_num, &concept_cat, spec.latent)
    } else {
        (&num_cols, &cat_cols, spec.numeric)
    };
    let labels = match spec.task {
        Task::Classification { n_classes } => {
            let k = n_classes.max(2);
            let ys = (0..spec.rows)
                .map(|r| {
                    let v = concept.eval(eval_num, eval_cat, eval_numeric_count, r);
                    let mut y = ((v * k as f64) as u32).min(k - 1);
                    if rng.gen::<f64>() < spec.noise {
                        y = rng.gen_range(0..k);
                    }
                    y
                })
                .collect();
            Labels::Class(ys)
        }
        Task::Regression => {
            let ys = (0..spec.rows)
                .map(|r| {
                    let v = concept.eval(eval_num, eval_cat, eval_numeric_count, r);
                    let g = gauss(&mut rng);
                    v * 100.0 + g * spec.noise * 100.0
                })
                .collect();
            Labels::Real(ys)
        }
    };

    // Inject missing values after labelling so missingness is uninformative.
    if spec.missing_rate > 0.0 {
        for col in &mut num_cols {
            for v in col.iter_mut() {
                if rng.gen::<f64>() < spec.missing_rate {
                    *v = f64::NAN;
                }
            }
        }
        for col in &mut cat_cols {
            for v in col.iter_mut() {
                if rng.gen::<f64>() < spec.missing_rate {
                    *v = MISSING_CAT;
                }
            }
        }
    }

    let mut attrs = Vec::with_capacity(spec.numeric + spec.categorical);
    let mut columns = Vec::with_capacity(spec.numeric + spec.categorical);
    for (i, col) in num_cols.into_iter().enumerate() {
        attrs.push(AttrMeta::numeric(format!("num{i}")));
        columns.push(Column::Numeric(col));
    }
    for (i, col) in cat_cols.into_iter().enumerate() {
        attrs.push(AttrMeta::categorical(
            format!("cat{i}"),
            spec.cat_cardinality.max(1),
        ));
        columns.push(Column::Categorical(col));
    }
    let task = match spec.task {
        Task::Classification { n_classes } => Task::Classification {
            n_classes: n_classes.max(2),
        },
        Task::Regression => Task::Regression,
    };
    DataTable::new(Schema::new(attrs, task), columns, labels)
}

/// The paper's Table I datasets, reproduced by shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PaperDataset {
    Allstate,
    HiggsBoson,
    MsLtrc,
    C14B,
    Covtype,
    Poker,
    Kdd99,
    Susy,
    LoanM1,
    LoanY1,
    LoanY2,
}

impl PaperDataset {
    /// All eleven datasets, in Table I order.
    pub const ALL: [PaperDataset; 11] = [
        PaperDataset::Allstate,
        PaperDataset::HiggsBoson,
        PaperDataset::MsLtrc,
        PaperDataset::C14B,
        PaperDataset::Covtype,
        PaperDataset::Poker,
        PaperDataset::Kdd99,
        PaperDataset::Susy,
        PaperDataset::LoanM1,
        PaperDataset::LoanY1,
        PaperDataset::LoanY2,
    ];

    /// The dataset name as printed in Table I.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Allstate => "Allstate",
            PaperDataset::HiggsBoson => "Higgs_boson",
            PaperDataset::MsLtrc => "MS_LTRC",
            PaperDataset::C14B => "c14B",
            PaperDataset::Covtype => "Covtype",
            PaperDataset::Poker => "Poker",
            PaperDataset::Kdd99 => "KDD99",
            PaperDataset::Susy => "SUSY",
            PaperDataset::LoanM1 => "loan_m1",
            PaperDataset::LoanY1 => "loan_y1",
            PaperDataset::LoanY2 => "loan_y2",
        }
    }

    /// Row count reported in the paper's Table I.
    pub fn paper_rows(&self) -> u64 {
        match self {
            PaperDataset::Allstate => 13_184_290,
            PaperDataset::HiggsBoson => 11_000_000,
            PaperDataset::MsLtrc => 723_412,
            PaperDataset::C14B => 473_134,
            PaperDataset::Covtype => 581_012,
            PaperDataset::Poker => 1_025_010,
            PaperDataset::Kdd99 => 4_898_431,
            PaperDataset::Susy => 5_000_000,
            PaperDataset::LoanM1 => 6_372_703,
            PaperDataset::LoanY1 => 29_581_722,
            PaperDataset::LoanY2 => 54_468_375,
        }
    }

    /// `(numeric, categorical)` attribute counts from Table I.
    pub fn paper_attrs(&self) -> (usize, usize) {
        match self {
            PaperDataset::Allstate => (13, 14),
            PaperDataset::HiggsBoson => (28, 0),
            PaperDataset::MsLtrc => (136, 1),
            PaperDataset::C14B => (700, 0),
            PaperDataset::Covtype => (54, 0),
            PaperDataset::Poker => (0, 11),
            PaperDataset::Kdd99 => (38, 3),
            PaperDataset::Susy => (18, 0),
            PaperDataset::LoanM1 | PaperDataset::LoanY1 | PaperDataset::LoanY2 => (14, 13),
        }
    }

    /// The prediction task: Allstate is the paper's sole regression dataset.
    pub fn task(&self) -> Task {
        match self {
            PaperDataset::Allstate => Task::Regression,
            PaperDataset::Covtype => Task::Classification { n_classes: 7 },
            PaperDataset::Poker => Task::Classification { n_classes: 10 },
            PaperDataset::Kdd99 => Task::Classification { n_classes: 5 },
            _ => Task::Classification { n_classes: 2 },
        }
    }

    /// Builds the shape-matched synthetic spec. `scale` multiplies the paper
    /// row count (e.g. `1e-2` turns 11 M Higgs rows into 110 k); rows are
    /// clamped to `[2_000, 400_000]` so every dataset remains exercisable on
    /// one host.
    pub fn spec(&self, scale: f64, seed: u64) -> SynthSpec {
        let rows = ((self.paper_rows() as f64 * scale) as usize).clamp(2_000, 400_000);
        let (numeric, categorical) = self.paper_attrs();
        SynthSpec {
            rows,
            numeric,
            categorical,
            cat_cardinality: 12,
            task: self.task(),
            missing_rate: if *self == PaperDataset::Allstate {
                0.05
            } else {
                0.0
            },
            noise: 0.08,
            concept_depth: 6,
            // Real tabular data has redundant informative features; a few
            // latent factors proxied by every column give random forests'
            // column subsampling realistic substitutes to find.
            latent: ((numeric + categorical) / 5).clamp(2, 8),
            seed: seed ^ self.paper_rows(),
        }
    }

    /// Generates the shape-matched table.
    pub fn generate(&self, scale: f64, seed: u64) -> DataTable {
        generate(&self.spec(scale, seed))
    }
}

/// A set of grey-scale images for the deep-forest case study.
#[derive(Debug, Clone)]
pub struct ImageSet {
    /// Row-major pixel intensities in `[0, 1]`, one `width*height` vector per image.
    pub images: Vec<Vec<f32>>,
    /// Class labels `0..n_classes`.
    pub labels: Vec<u32>,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of classes.
    pub n_classes: u32,
}

/// Generates an MNIST-like image set: 10 class templates drawn as random
/// strokes on a 28x28 canvas, with per-sample pixel noise and +-2 px shifts.
///
/// The deep-forest experiment (paper §VII/Table VII) needs images where
/// sliding-window features are informative: a fixed spatial template per
/// class gives exactly that.
pub fn mnist_like(n_train: usize, n_test: usize, seed: u64) -> (ImageSet, ImageSet) {
    const W: usize = 28;
    const H: usize = 28;
    const K: u32 = 10;
    let mut rng = StdRng::seed_from_u64(seed);

    // One template per class: a few random strokes (random-walk of a brush).
    let mut templates: Vec<Vec<f32>> = Vec::with_capacity(K as usize);
    for _ in 0..K {
        let mut img = vec![0f32; W * H];
        for _stroke in 0..4 {
            let mut x = rng.gen_range(4..(W - 4)) as i32;
            let mut y = rng.gen_range(4..(H - 4)) as i32;
            for _step in 0..30 {
                for dy in -1..=1i32 {
                    for dx in -1..=1i32 {
                        let (px, py) = (x + dx, y + dy);
                        if (0..W as i32).contains(&px) && (0..H as i32).contains(&py) {
                            img[py as usize * W + px as usize] = 1.0;
                        }
                    }
                }
                x = (x + rng.gen_range(-1i32..=1)).clamp(2, W as i32 - 3);
                y = (y + rng.gen_range(-1i32..=1)).clamp(2, H as i32 - 3);
            }
        }
        templates.push(img);
    }

    let sample = |rng: &mut StdRng, n: usize| -> ImageSet {
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i as u32) % K;
            let t = &templates[class as usize];
            let (sx, sy): (i32, i32) = (rng.gen_range(-3..=3), rng.gen_range(-3..=3));
            let mut img = vec![0f32; W * H];
            for y in 0..H as i32 {
                for x in 0..W as i32 {
                    let (ox, oy) = (x - sx, y - sy);
                    let base = if (0..W as i32).contains(&ox) && (0..H as i32).contains(&oy) {
                        t[oy as usize * W + ox as usize]
                    } else {
                        0.0
                    };
                    let noise: f32 = (rng.gen::<f32>() - 0.5) * 0.9;
                    img[y as usize * W + x as usize] = (base + noise).clamp(0.0, 1.0);
                }
            }
            images.push(img);
            labels.push(class);
        }
        ImageSet {
            images,
            labels,
            width: W,
            height: H,
            n_classes: K,
        }
    };

    let train = sample(&mut rng, n_train);
    let test = sample(&mut rng, n_test);
    (train, test)
}

/// Returns the fraction of rows whose label matches the planted concept's
/// majority behaviour — a quick sanity measure that a spec is learnable.
pub fn label_entropy(table: &DataTable) -> f64 {
    match table.labels() {
        Labels::Class(ys) => {
            let k = table.schema().task.n_classes().unwrap_or(2) as usize;
            let mut counts = vec![0usize; k];
            for &y in ys {
                counts[y as usize] += 1;
            }
            let n = ys.len() as f64;
            counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / n;
                    -p * p.log2()
                })
                .sum()
        }
        Labels::Real(_) => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    #[test]
    fn generate_is_deterministic() {
        let spec = SynthSpec {
            rows: 500,
            numeric: 3,
            categorical: 2,
            ..Default::default()
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn generate_respects_shape() {
        let spec = SynthSpec {
            rows: 300,
            numeric: 4,
            categorical: 3,
            cat_cardinality: 5,
            task: Task::Classification { n_classes: 4 },
            ..Default::default()
        };
        let t = generate(&spec);
        assert_eq!(t.n_rows(), 300);
        assert_eq!(t.n_attrs(), 7);
        assert_eq!(t.schema().attr_type(0), AttrType::Numeric);
        assert_eq!(
            t.schema().attr_type(4),
            AttrType::Categorical { n_values: 5 }
        );
        assert!(t.labels().as_class().unwrap().iter().all(|&y| y < 4));
    }

    #[test]
    fn missing_rate_injects_missing() {
        let spec = SynthSpec {
            rows: 2_000,
            numeric: 2,
            missing_rate: 0.2,
            ..Default::default()
        };
        let t = generate(&spec);
        let missing = t.column(0).n_missing();
        let frac = missing as f64 / 2_000.0;
        assert!((0.1..0.3).contains(&frac), "missing fraction {frac}");
    }

    #[test]
    fn labels_not_degenerate() {
        let t = generate(&SynthSpec {
            rows: 5_000,
            ..Default::default()
        });
        let e = label_entropy(&t);
        assert!(e > 0.2, "labels nearly constant: entropy {e}");
    }

    #[test]
    fn paper_dataset_shapes_match_table1() {
        let t = PaperDataset::Allstate.generate(1e-3, 7);
        assert_eq!(t.n_attrs(), 27);
        assert_eq!(t.schema().task, Task::Regression);
        assert!(t.column(0).n_missing() > 0, "Allstate has missing values");

        let t = PaperDataset::Poker.generate(1e-2, 7);
        assert_eq!(t.n_attrs(), 11);
        assert!(t.schema().attr_type(0).is_categorical());
        assert_eq!(t.schema().task, Task::Classification { n_classes: 10 });
    }

    #[test]
    fn paper_dataset_scaling_clamps() {
        // 1e-6 of 473k rows would be sub-minimum; clamp to 2000.
        let spec = PaperDataset::C14B.spec(1e-6, 1);
        assert_eq!(spec.rows, 2_000);
        // scale 1.0 of 54M clamps to 400k.
        let spec = PaperDataset::LoanY2.spec(1.0, 1);
        assert_eq!(spec.rows, 400_000);
    }

    #[test]
    fn mnist_like_shapes_and_determinism() {
        let (tr, te) = mnist_like(50, 20, 3);
        assert_eq!(tr.images.len(), 50);
        assert_eq!(te.images.len(), 20);
        assert_eq!(tr.images[0].len(), 28 * 28);
        assert!(tr.labels.iter().all(|&y| y < 10));
        assert!(tr.images[0].iter().all(|&p| (0.0..=1.0).contains(&p)));
        let (tr2, _) = mnist_like(50, 20, 3);
        assert_eq!(tr.images, tr2.images);
    }

    #[test]
    fn mnist_like_classes_are_separable_in_pixel_space() {
        // Same-class images should be closer to each other than to other
        // classes on average (templates + mild noise).
        let (tr, _) = mnist_like(100, 1, 9);
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        // Average same-class vs cross-class distances over many pairs (a
        // single pair can invert under the per-sample noise and shifts).
        let mut same = (0.0f32, 0u32);
        let mut cross = (0.0f32, 0u32);
        for i in 0..tr.images.len() {
            for j in (i + 1)..tr.images.len() {
                let d = dist(&tr.images[i], &tr.images[j]);
                if tr.labels[i] == tr.labels[j] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    cross = (cross.0 + d, cross.1 + 1);
                }
            }
        }
        let same = same.0 / same.1 as f32;
        let cross = cross.0 / cross.1 as f32;
        assert!(
            same < cross,
            "avg same-class dist {same} vs cross-class {cross}"
        );
    }
}
