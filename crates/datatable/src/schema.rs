//! Schema types: attribute metadata and the prediction task.

use tsjson::{Deserialize, Serialize};

/// The type of a (non-target) attribute.
///
/// TreeServer distinguishes only two attribute kinds (paper §II): *ordinal*
/// attributes split by `Ai <= v`, and *categorical* attributes split by
/// `Ai ∈ Sl`. We call ordinal attributes "numeric" since values are stored
/// as `f64`; integer ordinals are represented exactly up to 2^53.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// Ordinal attribute stored as `f64` (missing = NaN).
    Numeric,
    /// Categorical attribute with values `0..n_values` (missing = `MISSING_CAT`).
    Categorical {
        /// Number of distinct category codes (the size of `Si`).
        n_values: u32,
    },
}

impl AttrType {
    /// Whether this attribute is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self, AttrType::Categorical { .. })
    }
}

/// Metadata for a single attribute column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrMeta {
    /// Human-readable attribute name (e.g. "Age").
    pub name: String,
    /// The attribute type.
    pub ty: AttrType,
}

impl AttrMeta {
    /// Convenience constructor for a numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        AttrMeta {
            name: name.into(),
            ty: AttrType::Numeric,
        }
    }

    /// Convenience constructor for a categorical attribute with `n_values` codes.
    pub fn categorical(name: impl Into<String>, n_values: u32) -> Self {
        AttrMeta {
            name: name.into(),
            ty: AttrType::Categorical { n_values },
        }
    }
}

/// The prediction task for the target attribute `Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Classification into `n_classes` classes; labels are `0..n_classes`.
    Classification {
        /// Number of classes.
        n_classes: u32,
    },
    /// Regression on a real-valued target.
    Regression,
}

impl Task {
    /// Number of classes, or `None` for regression.
    pub fn n_classes(&self) -> Option<u32> {
        match self {
            Task::Classification { n_classes } => Some(*n_classes),
            Task::Regression => None,
        }
    }

    /// Whether this is a classification task.
    pub fn is_classification(&self) -> bool {
        matches!(self, Task::Classification { .. })
    }
}

/// A table schema: the attribute columns `A1..Am` (the target `Y` is kept
/// separately as [`crate::Labels`]) plus the prediction task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Per-attribute metadata, indexed by attribute id.
    pub attrs: Vec<AttrMeta>,
    /// The prediction task (determines the label representation).
    pub task: Task,
}

impl Schema {
    /// Creates a schema from attribute metadata and a task.
    pub fn new(attrs: Vec<AttrMeta>, task: Task) -> Self {
        Schema { attrs, task }
    }

    /// Number of attributes `m` (excluding the target).
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Type of attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    pub fn attr_type(&self, attr: usize) -> AttrType {
        self.attrs[attr].ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_meta_constructors() {
        let a = AttrMeta::numeric("age");
        assert_eq!(a.name, "age");
        assert_eq!(a.ty, AttrType::Numeric);
        assert!(!a.ty.is_categorical());

        let b = AttrMeta::categorical("edu", 5);
        assert_eq!(b.ty, AttrType::Categorical { n_values: 5 });
        assert!(b.ty.is_categorical());
    }

    #[test]
    fn task_helpers() {
        assert_eq!(Task::Classification { n_classes: 3 }.n_classes(), Some(3));
        assert_eq!(Task::Regression.n_classes(), None);
        assert!(Task::Classification { n_classes: 2 }.is_classification());
        assert!(!Task::Regression.is_classification());
    }

    #[test]
    fn schema_accessors() {
        let s = Schema::new(
            vec![AttrMeta::numeric("a"), AttrMeta::categorical("b", 4)],
            Task::Regression,
        );
        assert_eq!(s.n_attrs(), 2);
        assert_eq!(s.attr_type(1), AttrType::Categorical { n_values: 4 });
    }

    #[test]
    fn schema_serde_roundtrip() {
        let s = Schema::new(
            vec![AttrMeta::numeric("a"), AttrMeta::categorical("b", 4)],
            Task::Classification { n_classes: 7 },
        );
        let j = tsjson::to_string(&s).unwrap();
        let back: Schema = tsjson::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
