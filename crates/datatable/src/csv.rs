//! Minimal CSV reader/writer with schema inference.
//!
//! TreeServer loads tabular data "like in pandas" with runtime type
//! detection (paper §VIII, *Fairness of Implementation*). This module
//! provides the equivalent: a header row, comma separation, empty cells and
//! `?`/`NA` meaning missing, and per-column type inference (a column is
//! numeric iff every non-missing cell parses as `f64`; otherwise it is
//! categorical with a dictionary built in first-appearance order).

use crate::column::{Column, MISSING_CAT};
use crate::schema::{AttrMeta, Schema, Task};
use crate::table::{DataTable, Labels};
use std::collections::HashMap;
use std::fmt;

/// Error parsing a CSV input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A data row had a different number of cells than the header.
    RaggedRow {
        /// 1-based data row number.
        row: usize,
        /// Cells found.
        found: usize,
        /// Cells expected (header width).
        expected: usize,
    },
    /// The named target column was not found in the header.
    TargetNotFound(String),
    /// The target column had a missing value (targets must be complete).
    MissingTarget {
        /// 1-based data row number.
        row: usize,
    },
    /// A regression target cell did not parse as a number.
    BadRegressionTarget {
        /// 1-based data row number.
        row: usize,
        /// Offending cell text.
        cell: String,
    },
    /// The table had no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::RaggedRow {
                row,
                found,
                expected,
            } => {
                write!(f, "row {row} has {found} cells, expected {expected}")
            }
            CsvError::TargetNotFound(name) => {
                write!(f, "target column {name:?} not found in header")
            }
            CsvError::MissingTarget { row } => {
                write!(f, "row {row} has a missing target value")
            }
            CsvError::BadRegressionTarget { row, cell } => {
                write!(f, "row {row} regression target {cell:?} is not numeric")
            }
            CsvError::Empty => write!(f, "CSV input has no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

fn is_missing_cell(cell: &str) -> bool {
    let c = cell.trim();
    c.is_empty() || c == "?" || c.eq_ignore_ascii_case("na") || c.eq_ignore_ascii_case("nan")
}

/// Parses CSV text into a [`DataTable`], predicting the column named
/// `target` with the given `task`.
///
/// For classification the target dictionary is built in first-appearance
/// order; for regression the target must parse as numeric.
pub fn parse_csv(text: &str, target: &str, task_kind: TaskKind) -> Result<DataTable, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    let width = names.len();
    let target_idx = names
        .iter()
        .position(|&n| n == target)
        .ok_or_else(|| CsvError::TargetNotFound(target.to_string()))?;

    let mut cells: Vec<Vec<String>> = vec![Vec::new(); width];
    let mut n_rows = 0usize;
    for (i, line) in lines.enumerate() {
        let row: Vec<&str> = line.split(',').map(str::trim).collect();
        if row.len() != width {
            return Err(CsvError::RaggedRow {
                row: i + 1,
                found: row.len(),
                expected: width,
            });
        }
        for (j, cell) in row.iter().enumerate() {
            cells[j].push((*cell).to_string());
        }
        n_rows += 1;
    }
    if n_rows == 0 {
        return Err(CsvError::Empty);
    }

    // Target column.
    let labels = match task_kind {
        TaskKind::Classification => {
            let mut dict: HashMap<String, u32> = HashMap::new();
            let mut order: Vec<String> = Vec::new();
            let mut ys = Vec::with_capacity(n_rows);
            for (r, cell) in cells[target_idx].iter().enumerate() {
                if is_missing_cell(cell) {
                    return Err(CsvError::MissingTarget { row: r + 1 });
                }
                let next = dict.len() as u32;
                let code = *dict.entry(cell.clone()).or_insert_with(|| {
                    order.push(cell.clone());
                    next
                });
                ys.push(code);
            }
            Labels::Class(ys)
        }
        TaskKind::Regression => {
            let mut ys = Vec::with_capacity(n_rows);
            for (r, cell) in cells[target_idx].iter().enumerate() {
                if is_missing_cell(cell) {
                    return Err(CsvError::MissingTarget { row: r + 1 });
                }
                let v: f64 = cell.parse().map_err(|_| CsvError::BadRegressionTarget {
                    row: r + 1,
                    cell: cell.clone(),
                })?;
                ys.push(v);
            }
            Labels::Real(ys)
        }
    };
    let task = match (&labels, task_kind) {
        (Labels::Class(ys), TaskKind::Classification) => Task::Classification {
            n_classes: ys.iter().copied().max().map_or(0, |m| m + 1),
        },
        _ => Task::Regression,
    };

    // Attribute columns with type inference.
    let mut attrs = Vec::new();
    let mut columns = Vec::new();
    for (j, name) in names.iter().enumerate() {
        if j == target_idx {
            continue;
        }
        let col_cells = &cells[j];
        let all_numeric = col_cells
            .iter()
            .all(|c| is_missing_cell(c) || c.parse::<f64>().is_ok());
        if all_numeric {
            let vals: Vec<f64> = col_cells
                .iter()
                .map(|c| {
                    if is_missing_cell(c) {
                        f64::NAN
                    } else {
                        c.parse::<f64>().expect("checked numeric")
                    }
                })
                .collect();
            attrs.push(AttrMeta::numeric(*name));
            columns.push(Column::Numeric(vals));
        } else {
            let mut dict: HashMap<&str, u32> = HashMap::new();
            let mut codes = Vec::with_capacity(n_rows);
            for c in col_cells {
                if is_missing_cell(c) {
                    codes.push(MISSING_CAT);
                } else {
                    let next = dict.len() as u32;
                    let code = *dict.entry(c.as_str()).or_insert(next);
                    codes.push(code);
                }
            }
            attrs.push(AttrMeta::categorical(*name, dict.len() as u32));
            columns.push(Column::Categorical(codes));
        }
    }

    Ok(DataTable::new(Schema::new(attrs, task), columns, labels))
}

/// Which task to parse the target column as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Target is a class label (dictionary-encoded).
    Classification,
    /// Target is a real value.
    Regression,
}

/// Serialises a table back to CSV text. Categorical codes are written as
/// `c<code>` and class labels as `y<code>`; missing cells are empty.
pub fn write_csv(table: &DataTable) -> String {
    let mut out = String::new();
    for a in &table.schema().attrs {
        out.push_str(&a.name);
        out.push(',');
    }
    out.push_str("__target__\n");
    for r in 0..table.n_rows() {
        for c in 0..table.n_attrs() {
            match table.value(r, c) {
                crate::column::Value::Num(x) => out.push_str(&format!("{x}")),
                crate::column::Value::Cat(k) => out.push_str(&format!("c{k}")),
                crate::column::Value::Missing => {}
            }
            out.push(',');
        }
        match table.labels() {
            Labels::Class(v) => out.push_str(&format!("y{}", v[r])),
            Labels::Real(v) => out.push_str(&format!("{}", v[r])),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;
    use crate::schema::AttrType;

    const SAMPLE: &str = "\
age,edu,income,default
24,Bachelor,5000,No
28,Master,7500,No
44,Bachelor,?,No
32,Secondary,6000,Yes
";

    #[test]
    fn parse_infers_types_and_missing() {
        let t = parse_csv(SAMPLE, "default", TaskKind::Classification).unwrap();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_attrs(), 3);
        assert_eq!(t.schema().attr_type(0), AttrType::Numeric);
        assert_eq!(
            t.schema().attr_type(1),
            AttrType::Categorical { n_values: 3 }
        );
        assert!(t.value(2, 2).is_missing()); // income of row 3 is "?"
        assert_eq!(t.schema().task, Task::Classification { n_classes: 2 });
        // "No" seen first -> code 0; "Yes" -> 1.
        assert_eq!(t.labels().as_class().unwrap(), &[0, 0, 0, 1]);
    }

    #[test]
    fn parse_regression_target() {
        let text = "a,y\n1,2.5\n2,3.5\n";
        let t = parse_csv(text, "y", TaskKind::Regression).unwrap();
        assert_eq!(t.labels().as_real().unwrap(), &[2.5, 3.5]);
        assert_eq!(t.schema().task, Task::Regression);
    }

    #[test]
    fn error_on_missing_header_target() {
        let err = parse_csv(SAMPLE, "nope", TaskKind::Classification).unwrap_err();
        assert_eq!(err, CsvError::TargetNotFound("nope".into()));
    }

    #[test]
    fn error_on_ragged_row() {
        let text = "a,y\n1,2\n3\n";
        let err = parse_csv(text, "y", TaskKind::Regression).unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { row: 2, .. }));
    }

    #[test]
    fn error_on_missing_target_cell() {
        let text = "a,y\n1,\n";
        let err = parse_csv(text, "y", TaskKind::Regression).unwrap_err();
        assert_eq!(err, CsvError::MissingTarget { row: 1 });
    }

    #[test]
    fn error_on_bad_regression_target() {
        let text = "a,y\n1,hello\n";
        let err = parse_csv(text, "y", TaskKind::Regression).unwrap_err();
        assert!(matches!(err, CsvError::BadRegressionTarget { row: 1, .. }));
    }

    #[test]
    fn error_on_empty() {
        assert_eq!(
            parse_csv("a,y\n", "y", TaskKind::Regression).unwrap_err(),
            CsvError::Empty
        );
        assert_eq!(
            parse_csv("", "y", TaskKind::Regression).unwrap_err(),
            CsvError::MissingHeader
        );
    }

    #[test]
    fn write_then_reparse_keeps_shape() {
        let t = parse_csv(SAMPLE, "default", TaskKind::Classification).unwrap();
        let text = write_csv(&t);
        let t2 = parse_csv(&text, "__target__", TaskKind::Classification).unwrap();
        assert_eq!(t2.n_rows(), t.n_rows());
        assert_eq!(t2.n_attrs(), t.n_attrs());
        assert_eq!(t2.value(0, 0), Value::Num(24.0));
        assert!(t2.value(2, 2).is_missing());
    }
}
