//! Cross-validation splits for model selection.
//!
//! The paper's Fig. 2 motivates TreeServer with "many tree models with
//! different hyperparameters for model selection"; this module supplies the
//! standard k-fold machinery those workflows need.

use tsrand::rngs::StdRng;
use tsrand::seq::SliceRandom;
use tsrand::SeedableRng;

/// Produces `k` seeded, shuffled folds over `n` rows: for each fold, the
/// `(train_rows, validation_rows)` pair, with every row appearing in exactly
/// one validation set and fold sizes differing by at most one.
///
/// # Panics
/// Panics unless `2 <= k <= n`.
pub fn kfold_splits(n: usize, k: usize, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= n, "more folds than rows");
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);

    // Fold f gets rows [f*n/k, (f+1)*n/k) of the shuffle — balanced to ±1.
    let bounds: Vec<usize> = (0..=k).map(|f| f * n / k).collect();
    (0..k)
        .map(|f| {
            let valid: Vec<u32> = ids[bounds[f]..bounds[f + 1]].to_vec();
            let train: Vec<u32> = ids[..bounds[f]]
                .iter()
                .chain(&ids[bounds[f + 1]..])
                .copied()
                .collect();
            (train, valid)
        })
        .collect()
}

/// Stratified k-fold for classification: each validation fold approximately
/// preserves the class proportions of `labels`.
///
/// # Panics
/// Panics unless `2 <= k <= n` (with `n = labels.len()`).
pub fn stratified_kfold_splits(labels: &[u32], k: usize, seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
    let n = labels.len();
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= n, "more folds than rows");
    let mut rng = StdRng::seed_from_u64(seed);

    // Group row ids by class, shuffle within each class, deal them to folds
    // round-robin.
    let n_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); n_classes];
    for (i, &y) in labels.iter().enumerate() {
        by_class[y as usize].push(i as u32);
    }
    let mut folds: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut next = 0usize;
    for class_rows in &mut by_class {
        class_rows.shuffle(&mut rng);
        for &row in class_rows.iter() {
            folds[next].push(row);
            next = (next + 1) % k;
        }
    }
    (0..k)
        .map(|f| {
            let valid = folds[f].clone();
            let train: Vec<u32> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| folds[g].iter().copied())
                .collect();
            (train, valid)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn kfold_partitions_all_rows() {
        let folds = kfold_splits(103, 4, 1);
        assert_eq!(folds.len(), 4);
        let mut seen = HashSet::new();
        for (train, valid) in &folds {
            assert_eq!(train.len() + valid.len(), 103);
            let t: HashSet<_> = train.iter().collect();
            for v in valid {
                assert!(!t.contains(v), "row {v} in both halves");
                assert!(seen.insert(*v), "row {v} validated twice");
            }
        }
        assert_eq!(seen.len(), 103, "every row validated exactly once");
    }

    #[test]
    fn kfold_sizes_balanced() {
        let folds = kfold_splits(10, 3, 2);
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
    }

    #[test]
    fn kfold_is_seed_deterministic() {
        assert_eq!(kfold_splits(50, 5, 7), kfold_splits(50, 5, 7));
        assert_ne!(kfold_splits(50, 5, 7), kfold_splits(50, 5, 8));
    }

    #[test]
    fn stratified_preserves_proportions() {
        // 80/20 class balance over 100 rows, 4 folds of 25: expect 20±2 of
        // class 0 per fold.
        let labels: Vec<u32> = (0..100).map(|i| u32::from(i % 5 == 0)).collect();
        let folds = stratified_kfold_splits(&labels, 4, 3);
        let mut seen = HashSet::new();
        for (train, valid) in &folds {
            assert_eq!(train.len() + valid.len(), 100);
            let minority = valid.iter().filter(|&&r| labels[r as usize] == 1).count();
            assert!(
                (4..=6).contains(&minority),
                "fold has {minority} minority rows"
            );
            for v in valid {
                assert!(seen.insert(*v));
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    #[should_panic(expected = "more folds than rows")]
    fn too_many_folds_panics() {
        kfold_splits(3, 4, 0);
    }
}
