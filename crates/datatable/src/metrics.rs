//! Evaluation metrics used in the paper's tables: test accuracy for
//! classification and RMSE for regression (Table II uses "Accuracy = RMSE
//! for Allstate").

/// Fraction of positions where `pred == truth`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Root-mean-square error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    let mse = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64;
    mse.sqrt()
}

/// Area under the ROC curve for binary scores (rank statistic; ties get
/// half credit). Returns 0.5 when one class is absent.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn auc(scores: &[f64], truth: &[u32]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty inputs");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_unstable_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let n_pos = truth.iter().filter(|&&y| y == 1).count() as f64;
    let n_neg = truth.len() as f64 - n_pos;
    if n_pos == 0.0 || n_neg == 0.0 {
        return 0.5;
    }
    // Mann-Whitney U via average ranks (ties averaged).
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if truth[idx] == 1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Binary cross-entropy of probability predictions, clamped away from 0/1.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn log_loss(probs: &[f64], truth: &[u32]) -> f64 {
    assert_eq!(probs.len(), truth.len(), "length mismatch");
    assert!(!probs.is_empty(), "empty inputs");
    probs
        .iter()
        .zip(truth)
        .map(|(&p, &y)| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            if y == 1 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum::<f64>()
        / probs.len() as f64
}

/// A `k x k` confusion matrix; `m[t][p]` counts rows with true class `t`
/// predicted as `p`.
pub fn confusion_matrix(pred: &[u32], truth: &[u32], n_classes: u32) -> Vec<Vec<u64>> {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let k = n_classes as usize;
    let mut m = vec![vec![0u64; k]; k];
    for (&p, &t) in pred.iter().zip(truth) {
        m[t as usize][p as usize] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    fn auc_perfect_random_and_inverted() {
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &[0, 0, 1, 1]), 1.0);
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &[0, 0, 1, 1]), 0.0);
        // All-tied scores: exactly chance.
        assert!((auc(&[0.5; 6], &[0, 1, 0, 1, 0, 1]) - 0.5).abs() < 1e-12);
        // Single-class degenerate: defined as 0.5.
        assert_eq!(auc(&[0.3, 0.7], &[1, 1]), 0.5);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let truth = [0, 0, 1, 1];
        // One inversion among the 4 pos-neg pairs -> 3/4.
        assert!((auc(&scores, &truth) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn log_loss_rewards_confidence() {
        let confident = log_loss(&[0.99, 0.01], &[1, 0]);
        let hedged = log_loss(&[0.6, 0.4], &[1, 0]);
        assert!(confident < hedged);
        // Extreme wrong predictions stay finite thanks to clamping.
        assert!(log_loss(&[0.0], &[1]).is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rmse_empty_panics() {
        rmse(&[], &[]);
    }
}
