//! Column storage: whole columns and gathered column slices.

use tsjson::{Deserialize, Serialize};

/// Sentinel code for a missing categorical value.
pub const MISSING_CAT: u32 = u32::MAX;

/// One attribute column, stored contiguously.
///
/// Missing values are `NaN` for numeric columns and [`MISSING_CAT`] for
/// categorical columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Numeric (ordinal) values.
    Numeric(Vec<f64>),
    /// Categorical codes.
    Categorical(Vec<u32>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`.
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Numeric(v) => {
                let x = v[row];
                if x.is_nan() {
                    Value::Missing
                } else {
                    Value::Num(x)
                }
            }
            Column::Categorical(v) => {
                let c = v[row];
                if c == MISSING_CAT {
                    Value::Missing
                } else {
                    Value::Cat(c)
                }
            }
        }
    }

    /// Gathers the values at the given row ids into a dense buffer, in order.
    ///
    /// This is the operation a data-serving worker performs when a key worker
    /// requests the rows `Ix` of a column it holds.
    pub fn gather(&self, rows: &[u32]) -> ValuesBuf {
        match self {
            Column::Numeric(v) => ValuesBuf::Numeric(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::Categorical(v) => {
                ValuesBuf::Categorical(rows.iter().map(|&r| v[r as usize]).collect())
            }
        }
    }

    /// In-memory size of the column payload in bytes (used for memory and
    /// wire accounting).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len() * std::mem::size_of::<f64>(),
            Column::Categorical(v) => v.len() * std::mem::size_of::<u32>(),
        }
    }

    /// Number of missing entries.
    pub fn n_missing(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Categorical(v) => v.iter().filter(|&&c| c == MISSING_CAT).count(),
        }
    }

    /// The raw numeric values, if this is a numeric column.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            Column::Categorical(_) => None,
        }
    }

    /// The raw categorical codes, if this is a categorical column.
    pub fn as_categorical(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical(v) => Some(v),
            Column::Numeric(_) => None,
        }
    }
}

/// A single attribute value, as observed for one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A numeric value.
    Num(f64),
    /// A categorical code.
    Cat(u32),
    /// Missing.
    Missing,
}

impl Value {
    /// Whether this value is missing.
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }
}

/// A dense, gathered buffer of values for a subset of rows of one column.
///
/// This is what crosses the (simulated) wire when a worker serves column data
/// for the rows `Ix` of a subtree-task, and what subtree-tasks assemble into
/// a local dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValuesBuf {
    /// Numeric values aligned with the requested row order.
    Numeric(Vec<f64>),
    /// Categorical codes aligned with the requested row order.
    Categorical(Vec<u32>),
}

impl ValuesBuf {
    /// Number of values in the buffer.
    pub fn len(&self) -> usize {
        match self {
            ValuesBuf::Numeric(v) => v.len(),
            ValuesBuf::Categorical(v) => v.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at position `i` (position in the gathered order, not a row id).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ValuesBuf::Numeric(v) => {
                if v[i].is_nan() {
                    Value::Missing
                } else {
                    Value::Num(v[i])
                }
            }
            ValuesBuf::Categorical(v) => {
                if v[i] == MISSING_CAT {
                    Value::Missing
                } else {
                    Value::Cat(v[i])
                }
            }
        }
    }

    /// Payload size in bytes (for wire accounting).
    pub fn payload_bytes(&self) -> usize {
        match self {
            ValuesBuf::Numeric(v) => v.len() * std::mem::size_of::<f64>(),
            ValuesBuf::Categorical(v) => v.len() * std::mem::size_of::<u32>(),
        }
    }

    /// Converts the buffer into a full [`Column`] (used when a gathered subset
    /// becomes a local table of its own, e.g. inside a subtree-task).
    pub fn into_column(self) -> Column {
        match self {
            ValuesBuf::Numeric(v) => Column::Numeric(v),
            ValuesBuf::Categorical(v) => Column::Categorical(v),
        }
    }

    /// The raw numeric values, if this is a numeric buffer.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            ValuesBuf::Numeric(v) => Some(v),
            ValuesBuf::Categorical(_) => None,
        }
    }

    /// The raw categorical codes, if this is a categorical buffer.
    pub fn as_categorical(&self) -> Option<&[u32]> {
        match self {
            ValuesBuf::Categorical(v) => Some(v),
            ValuesBuf::Numeric(_) => None,
        }
    }

    /// Gathers a sub-subset by positions (not row ids).
    pub fn gather_positions(&self, pos: &[u32]) -> ValuesBuf {
        match self {
            ValuesBuf::Numeric(v) => {
                ValuesBuf::Numeric(pos.iter().map(|&p| v[p as usize]).collect())
            }
            ValuesBuf::Categorical(v) => {
                ValuesBuf::Categorical(pos.iter().map(|&p| v[p as usize]).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_column_values_and_missing() {
        let c = Column::Numeric(vec![1.0, f64::NAN, 3.5]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Num(1.0));
        assert!(c.value(1).is_missing());
        assert_eq!(c.n_missing(), 1);
        assert_eq!(c.payload_bytes(), 24);
    }

    #[test]
    fn categorical_column_values_and_missing() {
        let c = Column::Categorical(vec![2, MISSING_CAT, 0]);
        assert_eq!(c.value(0), Value::Cat(2));
        assert!(c.value(1).is_missing());
        assert_eq!(c.n_missing(), 1);
        assert_eq!(c.payload_bytes(), 12);
    }

    #[test]
    fn gather_preserves_request_order() {
        let c = Column::Numeric(vec![10.0, 11.0, 12.0, 13.0]);
        let g = c.gather(&[3, 1]);
        assert_eq!(g, ValuesBuf::Numeric(vec![13.0, 11.0]));
        assert_eq!(g.value(0), Value::Num(13.0));
    }

    #[test]
    fn gather_positions_on_buffer() {
        let b = ValuesBuf::Categorical(vec![5, 6, 7]);
        let g = b.gather_positions(&[2, 0]);
        assert_eq!(g, ValuesBuf::Categorical(vec![7, 5]));
    }

    #[test]
    fn buffer_into_column_roundtrip() {
        let b = ValuesBuf::Numeric(vec![1.0, 2.0]);
        let c = b.clone().into_column();
        assert_eq!(c.gather(&[0, 1]), b);
    }

    #[test]
    fn empty_buffers() {
        assert!(ValuesBuf::Numeric(vec![]).is_empty());
        assert!(Column::Categorical(vec![]).is_empty());
    }
}
