//! Columnar data tables for TreeServer.
//!
//! This crate is the data substrate of the TreeServer reproduction (ICDE 2022,
//! *Distributed Task-Based Training of Tree Models*). It provides:
//!
//! - a column-major [`DataTable`] with numeric and categorical attributes,
//!   explicit missing values and a separate target column ([`Labels`]),
//! - schema types ([`Schema`], [`AttrMeta`], [`AttrType`], [`Task`]),
//! - per-column load-time indices: presorted row orders ([`sorted`]) for the
//!   exact split engine and quantized bin ids ([`binned`]) for the histogram
//!   split path,
//! - a small CSV reader/writer with schema inference ([`csv`]),
//! - seeded synthetic dataset generators matching the *shapes* of the paper's
//!   evaluation datasets ([`synth`]), and
//! - evaluation metrics (accuracy, RMSE) in [`metrics`].
//!
//! The table is column-major on purpose: TreeServer partitions data among
//! machines **by columns**, so the natural unit of storage and of network
//! transfer is a column (or a gathered slice of one).

pub mod binned;
pub mod column;
pub mod csv;
pub mod cv;
pub mod metrics;
pub mod schema;
pub mod sorted;
pub mod synth;
pub mod table;

pub use binned::{BinCuts, BinnedColumn};
pub use column::{Column, Value, ValuesBuf, MISSING_CAT};
pub use schema::{AttrMeta, AttrType, Schema, Task};
pub use sorted::SortedColumn;
pub use table::{DataTable, Labels};
