//! The column-major data table and its target labels.

use crate::column::{Column, Value, ValuesBuf};
use crate::schema::{AttrType, Schema, Task};
use tsjson::{Deserialize, Serialize};

/// The target column `Y`.
///
/// Kept separately from the attribute columns because TreeServer replicates
/// `Y` on **every** machine (paper §III: impurity scores at each node are
/// evaluated from the `Y`-values of `Dx`), while attribute columns are
/// partitioned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Labels {
    /// Class labels `0..n_classes` for classification.
    Class(Vec<u32>),
    /// Real-valued targets for regression.
    Real(Vec<f64>),
}

impl Labels {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Labels::Class(v) => v.len(),
            Labels::Real(v) => v.len(),
        }
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gathers labels for the given row ids, preserving order.
    pub fn gather(&self, rows: &[u32]) -> Labels {
        match self {
            Labels::Class(v) => Labels::Class(rows.iter().map(|&r| v[r as usize]).collect()),
            Labels::Real(v) => Labels::Real(rows.iter().map(|&r| v[r as usize]).collect()),
        }
    }

    /// Class labels slice, if classification.
    pub fn as_class(&self) -> Option<&[u32]> {
        match self {
            Labels::Class(v) => Some(v),
            Labels::Real(_) => None,
        }
    }

    /// Real targets slice, if regression.
    pub fn as_real(&self) -> Option<&[f64]> {
        match self {
            Labels::Real(v) => Some(v),
            Labels::Class(_) => None,
        }
    }

    /// Payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Labels::Class(v) => v.len() * std::mem::size_of::<u32>(),
            Labels::Real(v) => v.len() * std::mem::size_of::<f64>(),
        }
    }
}

/// A column-major data table: schema, attribute columns, and the target.
///
/// Invariants: `columns.len() == schema.n_attrs()`, every column and the
/// labels have exactly `n_rows` entries, the label representation matches
/// `schema.task`, and each column's storage kind matches its declared
/// [`AttrType`]. [`DataTable::new`] checks all of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataTable {
    schema: Schema,
    columns: Vec<Column>,
    labels: Labels,
    n_rows: usize,
}

impl DataTable {
    /// Builds a table, validating all structural invariants.
    ///
    /// # Panics
    /// Panics if column counts/lengths/types or the label kind are
    /// inconsistent with the schema. Construction is a load-time operation;
    /// failing fast here keeps the whole training pipeline panic-free.
    pub fn new(schema: Schema, columns: Vec<Column>, labels: Labels) -> Self {
        assert_eq!(
            columns.len(),
            schema.n_attrs(),
            "column count must match schema"
        );
        let n_rows = labels.len();
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), n_rows, "column {i} length mismatch");
            match (c, schema.attr_type(i)) {
                (Column::Numeric(_), AttrType::Numeric) => {}
                (Column::Categorical(_), AttrType::Categorical { .. }) => {}
                _ => panic!("column {i} storage kind does not match schema type"),
            }
        }
        match (&labels, schema.task) {
            (Labels::Class(v), Task::Classification { n_classes }) => {
                debug_assert!(v.iter().all(|&y| y < n_classes), "class label out of range");
            }
            (Labels::Real(_), Task::Regression) => {}
            _ => panic!("label kind does not match schema task"),
        }
        DataTable {
            schema,
            columns,
            labels,
            n_rows,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows `n`.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes `m` (excluding the target).
    pub fn n_attrs(&self) -> usize {
        self.schema.n_attrs()
    }

    /// The attribute column with id `attr`.
    pub fn column(&self, attr: usize) -> &Column {
        &self.columns[attr]
    }

    /// All attribute columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The target labels.
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The value of attribute `attr` in row `row`.
    pub fn value(&self, row: usize, attr: usize) -> Value {
        self.columns[attr].value(row)
    }

    /// Gathers a row subset of one column.
    pub fn gather(&self, attr: usize, rows: &[u32]) -> ValuesBuf {
        self.columns[attr].gather(rows)
    }

    /// Returns a new table containing only the given rows (in order).
    pub fn select_rows(&self, rows: &[u32]) -> DataTable {
        let columns = self
            .columns
            .iter()
            .map(|c| c.gather(rows).into_column())
            .collect();
        DataTable::new(self.schema.clone(), columns, self.labels.gather(rows))
    }

    /// Splits the table into `(train, test)` with the first
    /// `ceil(train_frac * n)` of a seeded shuffle going to train.
    ///
    /// # Panics
    /// Panics unless `0.0 < train_frac < 1.0`.
    pub fn train_test_split(&self, train_frac: f64, seed: u64) -> (DataTable, DataTable) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0, 1)"
        );
        use tsrand::seq::SliceRandom;
        use tsrand::SeedableRng;
        let mut rng = tsrand::rngs::StdRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = (0..self.n_rows as u32).collect();
        ids.shuffle(&mut rng);
        let n_train = ((self.n_rows as f64) * train_frac).ceil() as usize;
        let n_train = n_train.clamp(1, self.n_rows - 1);
        let (train_ids, test_ids) = ids.split_at(n_train);
        (self.select_rows(train_ids), self.select_rows(test_ids))
    }

    /// Total payload bytes of all attribute columns plus labels.
    pub fn payload_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(Column::payload_bytes)
            .sum::<usize>()
            + self.labels.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrMeta;

    fn small_table() -> DataTable {
        // The paper's Fig. 1 customer table (Age, Education, HomeOwner, Income -> Default).
        let schema = Schema::new(
            vec![
                AttrMeta::numeric("Age"),
                AttrMeta::categorical("Education", 5),
                AttrMeta::categorical("HomeOwner", 2),
                AttrMeta::numeric("Income"),
            ],
            Task::Classification { n_classes: 2 },
        );
        // Education codes: 0 Primary, 1 Secondary, 2 Bachelor, 3 Master, 4 PhD.
        let columns = vec![
            Column::Numeric(vec![
                24.0, 28.0, 44.0, 32.0, 36.0, 48.0, 37.0, 42.0, 54.0, 47.0,
            ]),
            Column::Categorical(vec![2, 3, 2, 1, 4, 2, 1, 2, 1, 4]),
            Column::Categorical(vec![0, 1, 1, 1, 0, 1, 0, 0, 0, 1]),
            Column::Numeric(vec![
                5000.0, 7500.0, 5500.0, 6000.0, 10000.0, 6500.0, 3000.0, 6000.0, 4000.0, 8000.0,
            ]),
        ];
        let labels = Labels::Class(vec![0, 0, 0, 1, 0, 0, 1, 0, 1, 0]);
        DataTable::new(schema, columns, labels)
    }

    #[test]
    fn fig1_table_shape() {
        let t = small_table();
        assert_eq!(t.n_rows(), 10);
        assert_eq!(t.n_attrs(), 4);
        assert_eq!(t.value(0, 0), Value::Num(24.0));
        assert_eq!(t.value(4, 1), Value::Cat(4));
    }

    #[test]
    fn select_rows_matches_paper_node_x2() {
        // Node x2 of Fig. 1(b) holds rows {1,2,4,5,7} (1-based) = ids {0,1,3,4,6}.
        let t = small_table();
        let sub = t.select_rows(&[0, 1, 3, 4, 6]);
        assert_eq!(sub.n_rows(), 5);
        assert_eq!(sub.labels(), &Labels::Class(vec![0, 0, 1, 0, 1]));
        assert_eq!(sub.value(2, 0), Value::Num(32.0)); // original row 4's Age
    }

    #[test]
    fn train_test_split_partitions_rows() {
        let t = small_table();
        let (tr, te) = t.train_test_split(0.7, 42);
        assert_eq!(tr.n_rows() + te.n_rows(), t.n_rows());
        assert_eq!(tr.n_rows(), 7);
    }

    #[test]
    fn train_test_split_is_seed_deterministic() {
        let t = small_table();
        let (a, _) = t.train_test_split(0.5, 7);
        let (b, _) = t.train_test_split(0.5, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn mismatched_column_count_panics() {
        let schema = Schema::new(vec![AttrMeta::numeric("a")], Task::Regression);
        DataTable::new(schema, vec![], Labels::Real(vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "storage kind")]
    fn mismatched_column_kind_panics() {
        let schema = Schema::new(vec![AttrMeta::numeric("a")], Task::Regression);
        DataTable::new(
            schema,
            vec![Column::Categorical(vec![0])],
            Labels::Real(vec![1.0]),
        );
    }

    #[test]
    #[should_panic(expected = "label kind")]
    fn mismatched_labels_panic() {
        let schema = Schema::new(vec![AttrMeta::numeric("a")], Task::Regression);
        DataTable::new(
            schema,
            vec![Column::Numeric(vec![0.0])],
            Labels::Class(vec![0]),
        );
    }

    #[test]
    fn labels_gather_and_accessors() {
        let l = Labels::Class(vec![0, 1, 2]);
        assert_eq!(l.gather(&[2, 0]), Labels::Class(vec![2, 0]));
        assert_eq!(l.as_class(), Some(&[0u32, 1, 2][..]));
        assert!(l.as_real().is_none());
        let r = Labels::Real(vec![0.5]);
        assert!(r.as_class().is_none());
        assert_eq!(r.payload_bytes(), 8);
    }
}
