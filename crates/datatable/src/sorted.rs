//! Presorted per-column indices for the sorted-column split engine.
//!
//! The exact numeric kernel's dominant cost is re-sorting a column's values
//! for every node (`O(|Dx| log |Dx|)` per node per candidate column). Paying
//! the sort **once per column** at load time turns each node's scan into a
//! filtered linear pass over the presorted order — the structure the exact
//! distributed Random Forest literature builds on (see PAPERS.md) and the
//! hot-path optimization of docs/PERF.md.
//!
//! Determinism contract: the numeric order sorts by `(value, row id)` with
//! `f64::total_cmp`, exactly the comparator the legacy gather+sort kernel
//! uses on `(value, gathered position)`. Because node row sets are always
//! ascending, filtering this order by node membership yields the *same*
//! sequence the legacy kernel produces, so both paths pick byte-identical
//! splits.

use crate::column::{Column, ValuesBuf, MISSING_CAT};

/// A per-column index built once when a column enters a store (worker column
/// load, `LocalDataset` assembly) and shared by every node's split search.
#[derive(Debug, Clone, PartialEq)]
pub enum SortedColumn {
    /// Numeric column: row ids of all *present* (non-NaN) rows, sorted by
    /// `(value, row id)`. Missing rows are segregated out entirely — the
    /// kernels route them to the majority side after the boundary is chosen.
    Numeric {
        /// Presorted present-row ids.
        order: Vec<u32>,
        /// The rows' values in the same order. Redundant with gathering
        /// `column[order[i]]`, but that gather is a random-access pass the
        /// whole-column scan would otherwise repeat per node per column —
        /// caching it keeps the hot scan fully sequential.
        values: Vec<f64>,
    },
    /// Categorical column: the sorted distinct set of present codes. The
    /// one-vs-rest / Breiman kernels need no value order, but the distinct
    /// set ("seen during training", Appendix D) is otherwise recomputed per
    /// node.
    Categorical {
        /// Sorted, deduplicated present category codes.
        distinct: Vec<u32>,
    },
}

impl SortedColumn {
    /// Builds the index for a full column.
    pub fn build(col: &Column) -> Self {
        match col {
            Column::Numeric(v) => Self::from_numeric(v),
            Column::Categorical(c) => Self::from_categorical(c),
        }
    }

    /// Builds the index for a gathered buffer (positions play the role of
    /// row ids).
    pub fn build_buf(buf: &ValuesBuf) -> Self {
        match buf {
            ValuesBuf::Numeric(v) => Self::from_numeric(v),
            ValuesBuf::Categorical(c) => Self::from_categorical(c),
        }
    }

    /// Presorted index over a numeric slice.
    pub fn from_numeric(values: &[f64]) -> Self {
        let mut order: Vec<u32> = (0..values.len() as u32)
            .filter(|&r| !values[r as usize].is_nan())
            .collect();
        order.sort_unstable_by(|&a, &b| {
            values[a as usize]
                .total_cmp(&values[b as usize])
                .then(a.cmp(&b))
        });
        let sorted_values = order.iter().map(|&r| values[r as usize]).collect();
        SortedColumn::Numeric {
            order,
            values: sorted_values,
        }
    }

    /// Distinct-code index over a categorical slice.
    pub fn from_categorical(codes: &[u32]) -> Self {
        let mut distinct: Vec<u32> = codes
            .iter()
            .copied()
            .filter(|&c| c != MISSING_CAT)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        SortedColumn::Categorical { distinct }
    }

    /// The presorted present-row order of a numeric index.
    ///
    /// # Panics
    /// Panics when called on a categorical index — the caller dispatched on
    /// the wrong attribute type.
    pub fn numeric_order(&self) -> &[u32] {
        match self {
            SortedColumn::Numeric { order, .. } => order,
            SortedColumn::Categorical { .. } => {
                panic!("numeric_order on a categorical sorted index")
            }
        }
    }

    /// The present rows' values in presorted order (parallel to
    /// [`Self::numeric_order`]).
    ///
    /// # Panics
    /// Panics when called on a categorical index.
    pub fn numeric_values(&self) -> &[f64] {
        match self {
            SortedColumn::Numeric { values, .. } => values,
            SortedColumn::Categorical { .. } => {
                panic!("numeric_values on a categorical sorted index")
            }
        }
    }

    /// The cached sorted distinct set of a categorical index.
    ///
    /// # Panics
    /// Panics when called on a numeric index.
    pub fn distinct(&self) -> &[u32] {
        match self {
            SortedColumn::Categorical { distinct } => distinct,
            SortedColumn::Numeric { .. } => panic!("distinct on a numeric sorted index"),
        }
    }

    /// In-memory size of the index payload (for memory accounting).
    pub fn payload_bytes(&self) -> usize {
        match self {
            SortedColumn::Numeric { order, values } => {
                order.len() * std::mem::size_of::<u32>() + values.len() * std::mem::size_of::<f64>()
            }
            SortedColumn::Categorical { distinct } => distinct.len() * std::mem::size_of::<u32>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_order_sorted_by_value_then_row() {
        let s = SortedColumn::from_numeric(&[3.0, 1.0, 2.0, 1.0]);
        // Value 1.0 appears at rows 1 and 3; the tie breaks by row id.
        assert_eq!(s.numeric_order(), &[1, 3, 2, 0]);
    }

    #[test]
    fn numeric_order_excludes_missing() {
        let s = SortedColumn::from_numeric(&[f64::NAN, 5.0, f64::NAN, 4.0]);
        assert_eq!(s.numeric_order(), &[3, 1]);
        assert_eq!(s.numeric_values(), &[4.0, 5.0]);
        assert_eq!(s.payload_bytes(), 2 * 4 + 2 * 8);
    }

    #[test]
    fn numeric_order_total_order_on_specials() {
        // total_cmp puts -inf first and +inf last; NaN rows are dropped.
        let s = SortedColumn::from_numeric(&[f64::INFINITY, 0.0, f64::NEG_INFINITY, f64::NAN]);
        assert_eq!(s.numeric_order(), &[2, 1, 0]);
    }

    #[test]
    fn categorical_distinct_sorted_dedup_no_missing() {
        let s = SortedColumn::from_categorical(&[3, 1, 3, MISSING_CAT, 0]);
        assert_eq!(s.distinct(), &[0, 1, 3]);
        let empty = SortedColumn::from_categorical(&[MISSING_CAT]);
        assert!(empty.distinct().is_empty());
    }

    #[test]
    fn build_dispatches_on_column_kind() {
        let num = SortedColumn::build(&Column::Numeric(vec![2.0, 1.0]));
        assert_eq!(num.numeric_order(), &[1, 0]);
        let cat = SortedColumn::build_buf(&ValuesBuf::Categorical(vec![7, 7, 2]));
        assert_eq!(cat.distinct(), &[2, 7]);
    }

    #[test]
    #[should_panic(expected = "categorical sorted index")]
    fn numeric_order_on_categorical_panics() {
        SortedColumn::from_categorical(&[0]).numeric_order();
    }
}
