//! Property tests for the data substrate: CSV round-trips, row selection
//! algebra and split determinism over arbitrary generated tables.

use ts_datatable::csv::{parse_csv, write_csv, TaskKind};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{Column, Task, Value};
use tscheck::prelude::*;

fn any_spec() -> impl Strategy<Value = SynthSpec> {
    (
        2usize..200,
        0usize..4,
        0usize..4,
        2u32..6,
        0u64..10_000,
        any::<bool>(),
        prop_oneof![Just(0.0f64), Just(0.15f64)],
    )
        .prop_filter_map(
            "need at least one attribute",
            |(rows, numeric, categorical, card, seed, regression, missing_rate)| {
                if numeric + categorical == 0 {
                    return None;
                }
                Some(SynthSpec {
                    rows,
                    numeric,
                    categorical,
                    cat_cardinality: card,
                    task: if regression {
                        Task::Regression
                    } else {
                        Task::Classification { n_classes: 3 }
                    },
                    missing_rate,
                    noise: 0.1,
                    concept_depth: 3,
                    latent: 0,
                    seed,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// CSV write → parse preserves shape, types, missing cells and labels.
    #[test]
    fn csv_roundtrip_preserves_table(spec in any_spec()) {
        let t = generate(&spec);
        let task_kind = match spec.task {
            Task::Regression => TaskKind::Regression,
            Task::Classification { .. } => TaskKind::Classification,
        };
        let text = write_csv(&t);
        let back = parse_csv(&text, "__target__", task_kind).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        prop_assert_eq!(back.n_attrs(), t.n_attrs());
        for a in 0..t.n_attrs() {
            prop_assert_eq!(back.column(a).n_missing(), t.column(a).n_missing());
            for r in (0..t.n_rows()).step_by(7) {
                match (t.value(r, a), back.value(r, a)) {
                    (Value::Num(x), Value::Num(y)) => prop_assert_eq!(x, y),
                    (Value::Cat(_), Value::Cat(_)) => {} // dictionary may renumber
                    (Value::Missing, Value::Missing) => {}
                    (orig, parsed) => prop_assert!(
                        false,
                        "row {} attr {}: {:?} became {:?}", r, a, orig, parsed
                    ),
                }
            }
        }
        // Labels survive exactly (same dictionary order for y<code> names).
        match spec.task {
            Task::Regression => prop_assert_eq!(back.labels(), t.labels()),
            Task::Classification { .. } => {
                prop_assert_eq!(back.labels().len(), t.labels().len());
            }
        }
    }

    /// Selecting rows twice composes: select(A)(B) == select(A[B]).
    #[test]
    fn select_rows_composes(spec in any_spec(), seed in 0u64..100) {
        let t = generate(&spec);
        use tsrand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let first: Vec<u32> = (0..t.n_rows() as u32)
            .filter(|_| rng.gen_bool(0.6))
            .collect();
        if first.is_empty() {
            return Ok(());
        }
        let second: Vec<u32> = (0..first.len() as u32)
            .filter(|_| rng.gen_bool(0.6))
            .collect();
        if second.is_empty() {
            return Ok(());
        }
        let via_two = t.select_rows(&first).select_rows(&second);
        let composed: Vec<u32> = second.iter().map(|&i| first[i as usize]).collect();
        let direct = t.select_rows(&composed);
        // NaN payloads break PartialEq; compare via bit-census.
        prop_assert_eq!(via_two.n_rows(), direct.n_rows());
        for a in 0..t.n_attrs() {
            match (via_two.column(a), direct.column(a)) {
                (Column::Numeric(x), Column::Numeric(y)) => {
                    prop_assert!(x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()));
                }
                (x, y) => prop_assert_eq!(x, y),
            }
        }
        prop_assert_eq!(via_two.labels(), direct.labels());
    }

    /// Train/test split partitions rows exactly, for any fraction.
    #[test]
    fn split_partitions(spec in any_spec(), frac in 0.05f64..0.95, seed in 0u64..50) {
        let t = generate(&spec);
        if t.n_rows() < 2 {
            return Ok(());
        }
        let (tr, te) = t.train_test_split(frac, seed);
        prop_assert_eq!(tr.n_rows() + te.n_rows(), t.n_rows());
        prop_assert!(tr.n_rows() >= 1 && te.n_rows() >= 1);
    }
}
