//! The model registry: epoch-versioned compiled artifacts with
//! zero-downtime hot swap.
//!
//! A registry holds every compiled model ever published, indexed by a
//! monotonically increasing *epoch* (the publish sequence number, starting
//! at 0 for the model the registry was created with). Publishing is
//! thread-safe — a background trainer can hand over a replacement forest
//! while the serving loop is mid-run — and *swapping is per-batch atomic*:
//! the server reads `(epoch, Arc<model>)` exactly once per micro-batch, so
//! every row of a batch is scored by one self-consistent artifact and each
//! response can be tagged with the epoch that produced it. A torn read
//! (half old forest, half new) is impossible by construction; the
//! `batch_equiv` suite proves it by re-scoring every response against the
//! epoch named in its tag.

use std::sync::{Arc, Mutex};
use ts_serve::CompiledModel;

/// Epoch-versioned store of compiled models. Cheap to share: clone the
/// surrounding `Arc` and publish from any thread.
pub struct ModelRegistry {
    epochs: Mutex<Vec<Arc<CompiledModel>>>,
}

impl ModelRegistry {
    /// A registry whose epoch 0 is `initial`.
    pub fn new(initial: CompiledModel) -> ModelRegistry {
        ModelRegistry {
            epochs: Mutex::new(vec![Arc::new(initial)]),
        }
    }

    /// Publishes `model` as the new active artifact and returns its epoch.
    /// Older epochs stay resolvable so in-flight responses can be audited
    /// against the exact model that scored them.
    pub fn publish(&self, model: CompiledModel) -> u32 {
        let mut e = self.epochs.lock().unwrap_or_else(|p| p.into_inner());
        e.push(Arc::new(model));
        (e.len() - 1) as u32
    }

    /// The active `(epoch, model)` pair — one atomic read; callers must
    /// hold the returned `Arc` for the whole batch rather than re-reading.
    pub fn active(&self) -> (u32, Arc<CompiledModel>) {
        let e = self.epochs.lock().unwrap_or_else(|p| p.into_inner());
        ((e.len() - 1) as u32, Arc::clone(e.last().expect("epoch 0")))
    }

    /// The model published at `epoch`, if it exists.
    pub fn model(&self, epoch: u32) -> Option<Arc<CompiledModel>> {
        let e = self.epochs.lock().unwrap_or_else(|p| p.into_inner());
        e.get(epoch as usize).map(Arc::clone)
    }

    /// The newest epoch.
    pub fn latest_epoch(&self) -> u32 {
        let e = self.epochs.lock().unwrap_or_else(|p| p.into_inner());
        (e.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::synth::{generate, SynthSpec};
    use ts_serve::CompiledModel;

    fn model(seed: u64) -> CompiledModel {
        let table = generate(&SynthSpec {
            rows: 120,
            seed,
            ..SynthSpec::default()
        });
        let attrs: Vec<usize> = (0..table.schema().attrs.len()).collect();
        let params = ts_tree::TrainParams::for_task(table.schema().task);
        let tree = ts_tree::train_tree(&table, &attrs, &params, seed);
        CompiledModel::from_tree(&tree)
    }

    #[test]
    fn epochs_are_sequential_and_all_resolvable() {
        let reg = ModelRegistry::new(model(1));
        assert_eq!(reg.latest_epoch(), 0);
        assert_eq!(reg.publish(model(2)), 1);
        assert_eq!(reg.publish(model(3)), 2);
        let (epoch, _) = reg.active();
        assert_eq!(epoch, 2);
        for e in 0..=2 {
            assert!(reg.model(e).is_some(), "epoch {e} resolvable");
        }
        assert!(reg.model(3).is_none());
    }

    #[test]
    fn publish_from_another_thread_lands_atomically() {
        let reg = Arc::new(ModelRegistry::new(model(1)));
        let bg = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || reg.publish(model(9)))
        };
        let epoch = bg.join().unwrap();
        assert_eq!(epoch, 1);
        let (active, m) = reg.active();
        assert_eq!(active, 1);
        // The active pair is self-consistent: the Arc *is* epoch 1's model.
        assert!(Arc::ptr_eq(&m, &reg.model(1).unwrap()));
    }
}
