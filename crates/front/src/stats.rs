//! Serving-tier metrics, in the `ServeStats` mould: a private
//! [`MetricsRegistry`] with pre-resolved counter/histogram handles, plus
//! the rolling [`LatencyFeed`] the adaptive batch sizer reads (the same
//! ts-obs feed type the adaptive-τ scheduler consumes on the training
//! side — the measurement plane is shared, only the controller differs).

use std::sync::Arc;
use ts_obs::{Counter, Histogram, LatencyFeed, MetricsRegistry, MetricsSnapshot};

/// Counters, histograms and the request-latency feed for one front server.
#[derive(Debug)]
pub struct FrontStats {
    registry: MetricsRegistry,
    /// Every request offered to admission.
    pub requests: Arc<Counter>,
    /// Requests admitted to the batching queue.
    pub admitted: Arc<Counter>,
    /// Sheds because the bounded queue was full.
    pub shed_queue_full: Arc<Counter>,
    /// Sheds because the latency budget could not be met (backpressure).
    pub shed_backpressure: Arc<Counter>,
    /// Micro-batches dispatched to the engine.
    pub batches: Arc<Counter>,
    /// Batches cut by the deadline trigger.
    pub deadline_flushes: Arc<Counter>,
    /// Batches cut by the size trigger.
    pub full_flushes: Arc<Counter>,
    /// Model hot swaps applied.
    pub swaps: Arc<Counter>,
    /// Rows per dispatched batch.
    pub batch_rows: Arc<Histogram>,
    /// Queue depth observed at each admission.
    pub queue_depth: Arc<Histogram>,
    /// Admission-to-completion request latency, µs.
    pub latency_us: Arc<Histogram>,
    /// Rolling request-latency window; the adaptive sizer reads its p95.
    pub feed: LatencyFeed,
}

impl FrontStats {
    /// Fresh zeroed stats.
    pub fn new() -> FrontStats {
        let registry = MetricsRegistry::new();
        FrontStats {
            requests: registry.counter("front_requests"),
            admitted: registry.counter("front_admitted"),
            shed_queue_full: registry.counter("front_shed_queue_full"),
            shed_backpressure: registry.counter("front_shed_backpressure"),
            batches: registry.counter("front_batches"),
            deadline_flushes: registry.counter("front_deadline_flushes"),
            full_flushes: registry.counter("front_full_flushes"),
            swaps: registry.counter("front_swaps"),
            batch_rows: registry.histogram("front_batch_rows"),
            queue_depth: registry.histogram("front_queue_depth"),
            latency_us: registry.histogram("front_latency_us"),
            feed: LatencyFeed::default(),
            registry,
        }
    }

    /// The underlying registry (for export alongside other planes).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Point-in-time snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Default for FrontStats {
    fn default() -> Self {
        FrontStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_snapshot() {
        let s = FrontStats::new();
        s.requests.add(3);
        s.admitted.inc();
        s.batch_rows.observe(16);
        s.feed.record_request(1_000);
        let snap = s.snapshot();
        assert_eq!(snap.counter("front_requests"), 3);
        assert_eq!(snap.counter("front_admitted"), 1);
        assert_eq!(snap.counter("front_shed_queue_full"), 0);
        assert_eq!(snap.histogram("front_batch_rows").unwrap().count, 1);
        assert_eq!(s.feed.snapshot().request.count, 1);
    }
}
