//! Seeded open-loop arrival plans.
//!
//! A plan is a pure function of `(plan, seed)` — the same pair always
//! produces the same request stream, byte for byte, in the `FaultPlan`
//! style: all randomness flows through one seeded [`tsrand::StdRng`] and
//! virtual timestamps are derived arithmetic, never wall-clock reads.
//! *Open loop* means arrival times are drawn independently of how the
//! server is keeping up, which is what exposes real queueing behaviour
//! (a closed loop would throttle itself and hide overload).

use std::time::Duration;
use tsrand::{Rng, SeedableRng, StdRng};

/// How requests arrive over virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPlan {
    /// Memoryless Poisson arrivals at a constant mean rate: exponential
    /// inter-arrival gaps `-ln(1-u)/qps`.
    Poisson {
        /// Mean arrival rate, requests per (virtual) second. Must be > 0.
        qps: f64,
    },
    /// ON/OFF-modulated Poisson (bursty): the rate alternates between
    /// `on_qps` for `on` and `off_qps` for `off`. Phase switches use the
    /// memorylessness of the exponential — a gap that would cross a
    /// boundary is truncated there and redrawn at the new rate, which is
    /// distributionally exact for a modulated Poisson process.
    Bursty {
        /// Rate during the ON phase (requests/s). Must be > 0.
        on_qps: f64,
        /// Rate during the OFF phase (requests/s); 0 silences the phase.
        off_qps: f64,
        /// ON-phase length.
        on: Duration,
        /// OFF-phase length.
        off: Duration,
    },
}

impl ArrivalPlan {
    /// A stable lowercase name, used in bench/CI matrix labels.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPlan::Poisson { .. } => "poisson",
            ArrivalPlan::Bursty { .. } => "bursty",
        }
    }

    /// Generates the first `n` arrivals of this plan under `seed`.
    ///
    /// Each request is pinned to a uniformly-drawn row of the request
    /// table (`0..n_rows`) and to connection `id % n_conns` — connections
    /// model distinct clients, so per-connection response ordering is
    /// meaningful (see the epoch-monotonicity property).
    ///
    /// # Panics
    /// Panics if the plan can never emit (`qps <= 0`), or if `n_rows` or
    /// `n_conns` is 0.
    pub fn generate(&self, n: usize, n_rows: u32, n_conns: u32, seed: u64) -> Vec<Arrival> {
        assert!(n_rows > 0, "arrival rows must come from a non-empty table");
        assert!(n_conns > 0, "need at least one connection");
        let rate_ok = match self {
            ArrivalPlan::Poisson { qps } => *qps > 0.0,
            ArrivalPlan::Bursty { on_qps, .. } => *on_qps > 0.0,
        };
        assert!(rate_ok, "arrival plan needs a positive ON rate");

        let mut rng = StdRng::seed_from_u64(seed ^ 0xF507_A881_05EE_D001);
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64; // virtual ns
        let (mut qps, mut phase_on) = match self {
            ArrivalPlan::Poisson { qps } => (*qps, true),
            ArrivalPlan::Bursty { on_qps, .. } => (*on_qps, true),
        };
        let mut phase_end = match self {
            ArrivalPlan::Poisson { .. } => f64::INFINITY,
            ArrivalPlan::Bursty { on, .. } => on.as_nanos() as f64,
        };
        while out.len() < n {
            let u: f64 = rng.gen();
            let gap = if qps > 0.0 {
                -(1.0 - u).ln() / qps * 1e9
            } else {
                f64::INFINITY
            };
            if t + gap >= phase_end {
                if let ArrivalPlan::Bursty {
                    on_qps,
                    off_qps,
                    on,
                    off,
                } = self
                {
                    t = phase_end;
                    phase_on = !phase_on;
                    qps = if phase_on { *on_qps } else { *off_qps };
                    phase_end = t + if phase_on { on } else { off }.as_nanos() as f64;
                    continue; // redraw the gap at the new rate
                }
            }
            t += gap;
            let id = out.len() as u64;
            out.push(Arrival {
                id,
                conn: (id % n_conns as u64) as u32,
                at_ns: t as u64,
                row: rng.gen_range(0..n_rows),
            });
        }
        out
    }
}

/// One request of the open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Stream-unique request id (also the arrival index).
    pub id: u64,
    /// The issuing connection (`id % n_conns`).
    pub conn: u32,
    /// Virtual arrival time.
    pub at_ns: u64,
    /// The row of the request table this request asks to score.
    pub row: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_identical_and_seeds_differ() {
        let p = ArrivalPlan::Poisson { qps: 50_000.0 };
        let a = p.generate(200, 64, 8, 7);
        let b = p.generate(200, 64, 8, 7);
        assert_eq!(a, b);
        let c = p.generate(200, 64, 8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_times_are_monotone_and_rate_roughly_holds() {
        let p = ArrivalPlan::Poisson { qps: 100_000.0 };
        let arr = p.generate(10_000, 16, 4, 42);
        assert!(arr.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(arr.iter().enumerate().all(|(i, a)| a.id == i as u64));
        // 10k arrivals at 100k qps ≈ 0.1 virtual seconds.
        let span_s = arr.last().unwrap().at_ns as f64 / 1e9;
        assert!((0.08..0.12).contains(&span_s), "span {span_s}");
    }

    #[test]
    fn bursty_concentrates_arrivals_in_on_phases() {
        let p = ArrivalPlan::Bursty {
            on_qps: 200_000.0,
            off_qps: 2_000.0,
            on: Duration::from_millis(1),
            off: Duration::from_millis(4),
        };
        let arr = p.generate(5_000, 16, 4, 9);
        assert!(arr.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // Period 5ms, ON is the first 1ms of each period.
        let in_on = arr
            .iter()
            .filter(|a| a.at_ns % 5_000_000 < 1_000_000)
            .count();
        assert!(
            in_on as f64 > 0.9 * arr.len() as f64,
            "only {in_on}/{} arrivals in ON phases",
            arr.len()
        );
    }

    #[test]
    fn rows_and_conns_stay_in_range() {
        let p = ArrivalPlan::Poisson { qps: 10_000.0 };
        let arr = p.generate(1_000, 7, 3, 1);
        assert!(arr.iter().all(|a| a.row < 7 && a.conn < 3));
        assert!(arr.iter().any(|a| a.conn == 2));
    }
}
