//! ts-front: the online serving tier (the "request" half of the
//! north star), built deterministic-first.
//!
//! The training side of this workspace scores *tables*; production
//! serving scores *requests* — single rows arriving on their own clock,
//! where economics are dominated by batching and tail latency rather than
//! kernel speed. This crate closes that gap as a fully simulated,
//! property-tested pipeline:
//!
//! - [`ArrivalPlan`] — seeded open-loop request streams (Poisson and
//!   bursty ON/OFF), pure functions of `(plan, seed)` in the `FaultPlan`
//!   mould.
//! - [`FrontServer`] — a discrete-event loop over `ts_netsim::SimClock`
//!   that micro-batches requests under a latency budget (flush on
//!   deadline-or-full, adaptive target from the ts-obs [`LatencyFeed`]
//!   p95), sheds load with structured rejects, and scores every batch
//!   with the real compiled engine — model outputs are bitwise real,
//!   only *time* is virtual.
//! - [`ModelRegistry`] — epoch-versioned compiled artifacts with
//!   zero-downtime hot swap, atomically flipped between batches; every
//!   [`Response`] carries the epoch that scored it.
//! - [`FrontStats`] / per-request `SpanKind::Request` spans — the same
//!   observability planes as the training tier.
//! - [`FrontReport`] — the deterministic run log: byte-identical across
//!   same-seed runs (`log_bytes`), with exact p50/p99/p999 latency and
//!   sustained-QPS reductions for `BENCH_serve.json`.
//!
//! See `docs/SERVING.md` ("Request tier") for the policies and the
//! latency-invariant proof sketch, and `crates/front/tests/` for the
//! differential and property suites that pin them down.
//!
//! [`LatencyFeed`]: ts_obs::LatencyFeed

mod arrival;
mod registry;
mod server;
mod stats;

pub use arrival::{Arrival, ArrivalPlan};
pub use registry::ModelRegistry;
pub use server::{
    FrontConfig, FrontReport, FrontServer, LatencyQuantiles, RejectReason, Response, Score,
    ServiceModel, Shed, SwapRecord,
};
pub use stats::FrontStats;
