//! The deterministic front server: micro-batching, admission control and
//! hot swap as one discrete-event loop over a virtual [`SimClock`].
//!
//! # Execution model
//!
//! The server is a single-threaded discrete-event simulation. Three event
//! kinds exist — request arrival, deadline flush, batch completion — and
//! the loop always processes the globally earliest one (completions before
//! flushes before arrivals on ties), advancing the shared virtual clock
//! with [`SimClock::advance_to`]. Model *outputs* are real — every batch
//! is scored by the compiled engine, which is bitwise deterministic — while
//! *service time* is virtual, charged from a [`ServiceModel`]
//! (`overhead + per_row · rows` on a single serial executor). The result:
//! same seed, same config ⇒ byte-identical response logs, replayable from
//! a one-line `TS_SEED` recipe like every other suite in the workspace.
//!
//! # Batching policy (flush on deadline-or-full)
//!
//! Admitted requests join a FIFO forming queue. A batch is *cut* when the
//! queue reaches the current target size (full trigger) or when the oldest
//! queued request has waited `latency_budget` (deadline trigger) —
//! whichever comes first, so a lone straggler still flushes on time. With
//! `adaptive_batch`, the target floats between `min_batch` and `max_batch`
//! on the rolling request-latency p95 from the ts-obs [`LatencyFeed`]:
//! near-budget tails grow the target (amortise per-batch overhead — under
//! load, throughput is the only way out), comfortable tails shrink it back
//! toward fresher, smaller batches.
//!
//! # Admission control
//!
//! Admission enforces the latency invariant *by construction*: a request
//! `r` arriving at `t` is admitted only if the bounded queue has room and
//! the pessimistic drain of everything already admitted — executor busy,
//! then the queue cut into worst-case batches of exactly `target` rows,
//! batch `j` starting no earlier than its oldest member's deadline:
//! `F ← max(F, admit(j·target) + budget) + service(target)` — finishes
//! ahead of `r`'s own batch by `t + budget`. Real execution only
//! dominates that schedule (flushes trigger no later than the modelled
//! deadlines, carry at least as many rows, and amortise more overhead),
//! and every flush that can cover `r` triggers by `t + budget` (deadlines
//! key off requests admitted no later than `r`), so `r`'s batch starts by
//! `t + budget` and completes by `t + budget + service(r's batch)`. Sheds
//! are structured rejects ([`Shed`]) with a retry-after hint, never silent
//! drops.
//!
//! # Hot swap
//!
//! The engine artifact is read from the [`ModelRegistry`] exactly once per
//! cut, so a swap lands atomically *between* batches: every response is
//! tagged with the epoch that scored it, epochs are monotone across the
//! response log, and a torn batch (half old model, half new) cannot be
//! expressed. Swaps are scheduled at virtual times with a supplier
//! closure, so a background trainer can hand over a freshly compiled
//! forest without the serving loop ever blocking virtual time.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use ts_datatable::{DataTable, Task};
use ts_netsim::SimClock;
use ts_obs::{Event, ObsConfig, Recorder, SpanKind};
use ts_serve::CompiledModel;

use crate::arrival::Arrival;
use crate::registry::ModelRegistry;
use crate::stats::FrontStats;

/// Virtual cost of one engine dispatch: `batch_overhead_ns` of fixed
/// per-batch work (queue hop, block setup) plus `per_row_ns` per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed per-batch overhead, ns.
    pub batch_overhead_ns: u64,
    /// Marginal per-row cost, ns.
    pub per_row_ns: u64,
}

impl ServiceModel {
    /// Service time of a `rows`-row batch.
    pub fn service_ns(&self, rows: usize) -> u64 {
        self.batch_overhead_ns + self.per_row_ns * rows as u64
    }
}

impl Default for ServiceModel {
    fn default() -> Self {
        // ~20µs dispatch overhead + 5µs/row: the shape (not the absolute
        // scale) is what matters — overhead ≫ 0 makes batching worthwhile.
        ServiceModel {
            batch_overhead_ns: 20_000,
            per_row_ns: 5_000,
        }
    }
}

/// Front-server knobs. All times are virtual.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// End-to-end latency budget per admitted request; also the maximum
    /// time a request may sit in the forming queue (deadline trigger).
    pub latency_budget: Duration,
    /// Smallest adaptive batch target (and the floor used by nothing
    /// else — admission is per-request pessimistic and ignores it).
    pub min_batch: usize,
    /// Largest batch ever cut.
    pub max_batch: usize,
    /// Bound on the forming queue; arrivals beyond it shed `QueueFull`.
    pub queue_cap: usize,
    /// Float the batch target on the request-latency p95 feed.
    pub adaptive_batch: bool,
    /// Virtual engine cost model.
    pub service: ServiceModel,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            latency_budget: Duration::from_millis(2),
            min_batch: 1,
            max_batch: 64,
            queue_cap: 256,
            adaptive_batch: true,
            service: ServiceModel::default(),
        }
    }
}

/// The model output for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Score {
    /// Classification label.
    Label(u32),
    /// Regression value.
    Value(f64),
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Response {
    /// Request id.
    pub id: u64,
    /// Issuing connection.
    pub conn: u32,
    /// Scored row of the request table.
    pub row: u32,
    /// The registry epoch whose model produced `score`.
    pub epoch: u32,
    /// Virtual admission time.
    pub admit_ns: u64,
    /// Virtual batch-cut time (the request left the forming queue).
    pub dispatch_ns: u64,
    /// Virtual completion time.
    pub done_ns: u64,
    /// Sequence number of the batch that served this request.
    pub batch: u32,
    /// Rows in that batch.
    pub batch_rows: u32,
    /// The model output.
    pub score: Score,
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded forming queue was full.
    QueueFull,
    /// The latency budget could not be met (pessimistic chain overflow).
    Backpressure,
}

/// A structured shed response — the request was *answered*, not dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Request id.
    pub id: u64,
    /// Issuing connection.
    pub conn: u32,
    /// Virtual arrival time.
    pub at_ns: u64,
    /// Why.
    pub reason: RejectReason,
    /// Forming-queue depth observed at rejection.
    pub queue_depth: u32,
    /// Hint: virtual ns until admission is likely to succeed.
    pub retry_after_ns: u64,
}

/// One applied hot swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapRecord {
    /// Virtual time the flip was applied (a batch-cut boundary).
    pub at_ns: u64,
    /// The epoch that became active.
    pub epoch: u32,
}

/// Exact latency order statistics over all responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyQuantiles {
    /// Median, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
}

/// Everything one run produced, in deterministic order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrontReport {
    /// Responses in batch-cut order (FIFO, so also completion order).
    pub responses: Vec<Response>,
    /// Structured sheds in arrival order.
    pub sheds: Vec<Shed>,
    /// Applied hot swaps in order.
    pub swaps: Vec<SwapRecord>,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches cut by the deadline trigger.
    pub deadline_flushes: u64,
    /// Batches cut by the size trigger.
    pub full_flushes: u64,
}

impl FrontReport {
    /// Exact p50/p99/p999 of admission→completion latency. `None` when no
    /// request completed.
    pub fn latency_quantiles(&self) -> Option<LatencyQuantiles> {
        if self.responses.is_empty() {
            return None;
        }
        let mut lat: Vec<u64> = self
            .responses
            .iter()
            .map(|r| r.done_ns - r.admit_ns)
            .collect();
        lat.sort_unstable();
        let at = |q: f64| {
            let idx = ((q * (lat.len() - 1) as f64).round() as usize).min(lat.len() - 1);
            lat[idx]
        };
        Some(LatencyQuantiles {
            p50_ns: at(0.50),
            p99_ns: at(0.99),
            p999_ns: at(0.999),
        })
    }

    /// Completed requests per virtual second, first admission → last
    /// completion. 0.0 when fewer than one nanosecond elapsed.
    pub fn sustained_qps(&self) -> f64 {
        let (Some(first), Some(last)) = (
            self.responses.iter().map(|r| r.admit_ns).min(),
            self.responses.iter().map(|r| r.done_ns).max(),
        ) else {
            return 0.0;
        };
        if last <= first {
            return 0.0;
        }
        self.responses.len() as f64 / ((last - first) as f64 / 1e9)
    }

    /// Canonical little-endian serialization of the full response/shed/
    /// swap log. Two runs are replay-identical iff these bytes match —
    /// this is what the same-seed property compares, so *every*
    /// user-visible field is included (scores as raw f64 bits).
    pub fn log_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(self.responses.len() * 64);
        b.extend((self.responses.len() as u64).to_le_bytes());
        for r in &self.responses {
            b.extend(r.id.to_le_bytes());
            b.extend(r.conn.to_le_bytes());
            b.extend(r.row.to_le_bytes());
            b.extend(r.epoch.to_le_bytes());
            b.extend(r.admit_ns.to_le_bytes());
            b.extend(r.dispatch_ns.to_le_bytes());
            b.extend(r.done_ns.to_le_bytes());
            b.extend(r.batch.to_le_bytes());
            b.extend(r.batch_rows.to_le_bytes());
            match r.score {
                Score::Label(l) => {
                    b.push(0);
                    b.extend((l as u64).to_le_bytes());
                }
                Score::Value(v) => {
                    b.push(1);
                    b.extend(v.to_bits().to_le_bytes());
                }
            }
        }
        b.extend((self.sheds.len() as u64).to_le_bytes());
        for s in &self.sheds {
            b.extend(s.id.to_le_bytes());
            b.extend(s.conn.to_le_bytes());
            b.extend(s.at_ns.to_le_bytes());
            b.push(match s.reason {
                RejectReason::QueueFull => 0,
                RejectReason::Backpressure => 1,
            });
            b.extend(s.queue_depth.to_le_bytes());
            b.extend(s.retry_after_ns.to_le_bytes());
        }
        b.extend((self.swaps.len() as u64).to_le_bytes());
        for w in &self.swaps {
            b.extend(w.at_ns.to_le_bytes());
            b.extend(w.epoch.to_le_bytes());
        }
        b
    }
}

/// A scheduled hot swap: at virtual time `at_ns`, `supply` is invoked (it
/// may join a background training thread) and the result published.
struct SwapEntry {
    at_ns: u64,
    supply: Box<dyn FnOnce() -> CompiledModel + Send>,
}

/// An admitted request waiting in the forming queue.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    conn: u32,
    row: u32,
    admit_ns: u64,
}

/// A cut batch in virtual service; closed out at `done_ns`.
#[derive(Debug)]
struct Flight {
    done_ns: u64,
    /// `(span id, admit_ns)` per member, for SpanClose + latency feed.
    members: Vec<(u64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    Full,
    Deadline,
}

/// The simulated serving front. One server supports exactly one
/// [`run`](FrontServer::run) — build a fresh one per experiment so clocks,
/// spans and metrics always start from zero (replay-grade determinism).
pub struct FrontServer {
    cfg: FrontConfig,
    registry: Arc<ModelRegistry>,
    table: Arc<DataTable>,
    clock: SimClock,
    stats: Arc<FrontStats>,
    recorder: Option<Arc<Recorder>>,
    swaps: Vec<SwapEntry>,
}

impl FrontServer {
    /// A server scoring rows of `table` with the active model of
    /// `registry`, on a fresh virtual clock at 0.
    pub fn new(cfg: FrontConfig, registry: Arc<ModelRegistry>, table: Arc<DataTable>) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        assert!(
            (1..=cfg.max_batch).contains(&cfg.min_batch),
            "need 1 <= min_batch <= max_batch"
        );
        assert!(cfg.queue_cap >= 1, "queue_cap must be >= 1");
        assert!(
            cfg.latency_budget > Duration::ZERO,
            "latency budget must be positive"
        );
        FrontServer {
            cfg,
            registry,
            table,
            clock: SimClock::virtual_at(0),
            stats: Arc::new(FrontStats::new()),
            recorder: None,
            swaps: Vec::new(),
        }
    }

    /// The server's virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The server's metrics.
    pub fn stats(&self) -> Arc<FrontStats> {
        Arc::clone(&self.stats)
    }

    /// The model registry (for out-of-band publishes).
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// Attaches a ts-obs recorder on the server's virtual clock and
    /// returns it: every request becomes a `SpanKind::Request` span
    /// (open = admission, active = batch cut, close = completion).
    pub fn attach_recorder(&mut self) -> Arc<Recorder> {
        let src = self
            .clock
            .time_source()
            .expect("front clock is always virtual");
        let rec = Arc::new(Recorder::with_time_source(1, &ObsConfig::enabled(), src));
        self.recorder = Some(Arc::clone(&rec));
        rec
    }

    /// Schedules a hot swap: at virtual time `at`, `supply` is invoked
    /// (typically joining a background training thread) and its model
    /// published at the next batch boundary. Wall-clock blocking inside
    /// `supply` does not advance virtual time, so responses stay
    /// deterministic no matter how slow the background trainer is.
    pub fn schedule_swap(
        &mut self,
        at: Duration,
        supply: impl FnOnce() -> CompiledModel + Send + 'static,
    ) {
        self.swaps.push(SwapEntry {
            at_ns: at.as_nanos() as u64,
            supply: Box::new(supply),
        });
    }

    /// Runs the full stream to completion (every admitted request is
    /// answered; the forming queue drains through deadline flushes) and
    /// returns the deterministic report.
    ///
    /// # Panics
    /// Panics if `arrivals` is not sorted by `at_ns` or a request row is
    /// out of range for the request table.
    pub fn run(&mut self, arrivals: &[Arrival]) -> FrontReport {
        assert!(
            arrivals.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "arrivals must be time-sorted"
        );
        let n_rows = self.table.n_rows() as u32;
        assert!(
            arrivals.iter().all(|a| a.row < n_rows),
            "request row out of table range"
        );
        let mut swaps = std::mem::take(&mut self.swaps);
        swaps.sort_by_key(|s| s.at_ns);

        let mut st = RunState {
            cfg: self.cfg.clone(),
            budget: self.cfg.latency_budget.as_nanos() as u64,
            registry: Arc::clone(&self.registry),
            table: Arc::clone(&self.table),
            stats: Arc::clone(&self.stats),
            recorder: self.recorder.clone(),
            swaps,
            queue: VecDeque::new(),
            in_flight: VecDeque::new(),
            busy_until: 0,
            target: self.cfg.max_batch,
            batch_seq: 0,
            report: FrontReport::default(),
        };

        let mut i = 0usize;
        loop {
            // The three event sources; tie order: completion, then
            // deadline flush, then arrival — a flush at t never includes a
            // request arriving at the same instant.
            let candidates = [
                (st.in_flight.front().map(|f| f.done_ns), 0u8),
                (st.queue.front().map(|p| p.admit_ns + st.budget), 1),
                (arrivals.get(i).map(|a| a.at_ns), 2),
            ];
            let Some((now, pri)) = candidates
                .iter()
                .filter_map(|&(t, p)| t.map(|t| (t, p)))
                .min()
            else {
                break;
            };
            self.clock.advance_to(now);
            match pri {
                0 => st.on_completion(now),
                1 => {
                    st.cut(now, Trigger::Deadline);
                    st.cut_while_full(now);
                }
                _ => {
                    st.on_arrival(now, &arrivals[i]);
                    i += 1;
                }
            }
        }
        st.report
    }
}

/// All mutable per-run state, so the cut path can be shared between the
/// full trigger, the deadline trigger and post-completion cascades.
struct RunState {
    cfg: FrontConfig,
    budget: u64,
    registry: Arc<ModelRegistry>,
    table: Arc<DataTable>,
    stats: Arc<FrontStats>,
    recorder: Option<Arc<Recorder>>,
    swaps: Vec<SwapEntry>,
    queue: VecDeque<Pending>,
    in_flight: VecDeque<Flight>,
    busy_until: u64,
    target: usize,
    batch_seq: u32,
    report: FrontReport,
}

impl RunState {
    fn record(&self, ev: Event) {
        if let Some(rec) = &self.recorder {
            rec.record(0, ev);
        }
    }

    fn on_arrival(&mut self, now: u64, a: &Arrival) {
        self.stats.requests.inc();
        if self.queue.len() >= self.cfg.queue_cap {
            // Next guaranteed drain of the forming queue: the oldest
            // request's deadline flush.
            let drain = self.queue.front().map(|p| p.admit_ns + self.budget);
            self.shed(
                a,
                RejectReason::QueueFull,
                drain.map_or(0, |d| d.saturating_sub(now)),
            );
            return;
        }
        // Pessimistic completion chain of everything already admitted:
        // executor busy, then the queue drained in worst-case batches of
        // exactly `target` rows, each cut no earlier than its oldest
        // member's deadline. Real flushes only dominate this schedule —
        // they take at least `target` members when that many are queued
        // (the target never shrinks under a non-empty queue, see
        // `resize_target`), trigger no later than the modelled deadline,
        // and amortise more overhead when larger. If even the pessimistic
        // chain ahead of `a`'s own batch finishes inside the budget, the
        // latency invariant holds for `a`.
        let b = self.target;
        let batch_service = self.cfg.service.service_ns(b);
        let mut chain = self.busy_until.max(now);
        for j in 0..self.queue.len() / b {
            chain = chain.max(self.queue[j * b].admit_ns + self.budget) + batch_service;
        }
        if chain > now + self.budget {
            self.shed(a, RejectReason::Backpressure, chain - (now + self.budget));
            return;
        }
        self.stats.admitted.inc();
        self.queue.push_back(Pending {
            id: a.id,
            conn: a.conn,
            row: a.row,
            admit_ns: now,
        });
        self.stats.queue_depth.observe(self.queue.len() as u64);
        let span = a.id + 1; // 0 is "no span"
        self.record(Event::SpanOpen {
            trace: span,
            span,
            parent: 0,
            kind: SpanKind::Request,
            subject: a.id,
        });
        self.cut_while_full(now);
    }

    fn shed(&mut self, a: &Arrival, reason: RejectReason, retry_after_ns: u64) {
        match reason {
            RejectReason::QueueFull => self.stats.shed_queue_full.inc(),
            RejectReason::Backpressure => self.stats.shed_backpressure.inc(),
        }
        self.report.sheds.push(Shed {
            id: a.id,
            conn: a.conn,
            at_ns: a.at_ns,
            reason,
            queue_depth: self.queue.len() as u32,
            retry_after_ns,
        });
    }

    /// Cuts full batches while the forming queue is at/over target.
    fn cut_while_full(&mut self, now: u64) {
        while self.queue.len() >= self.target {
            self.cut(now, Trigger::Full);
        }
    }

    /// Cuts one batch of up to `target` oldest requests at virtual `now`.
    fn cut(&mut self, now: u64, trigger: Trigger) {
        // Apply every swap scheduled at or before this boundary — the only
        // place the active model can change, hence per-batch atomicity.
        while self.swaps.first().is_some_and(|s| s.at_ns <= now) {
            let entry = self.swaps.remove(0);
            let epoch = self.registry.publish((entry.supply)());
            self.stats.swaps.inc();
            self.report.swaps.push(SwapRecord { at_ns: now, epoch });
        }

        let k = self.queue.len().min(self.target);
        debug_assert!(k > 0, "cut on an empty queue");
        let members: Vec<Pending> = self.queue.drain(..k).collect();
        let rows: Vec<u32> = members.iter().map(|p| p.row).collect();

        // One atomic registry read per batch; `model` is held for the
        // whole score, so a concurrent publish cannot tear it.
        let (epoch, model) = self.registry.active();
        let sub = self.table.select_rows(&rows);
        let scores: Vec<Score> = match self.table.schema().task {
            Task::Classification { .. } => model
                .predict_labels(&sub)
                .into_iter()
                .map(Score::Label)
                .collect(),
            Task::Regression => model
                .predict_values(&sub)
                .into_iter()
                .map(Score::Value)
                .collect(),
        };

        let start = now.max(self.busy_until);
        let done = start + self.cfg.service.service_ns(k);
        self.busy_until = done;
        let batch = self.batch_seq;
        self.batch_seq += 1;

        self.stats.batches.inc();
        self.stats.batch_rows.observe(k as u64);
        self.report.batches += 1;
        match trigger {
            Trigger::Full => {
                self.stats.full_flushes.inc();
                self.report.full_flushes += 1;
            }
            Trigger::Deadline => {
                self.stats.deadline_flushes.inc();
                self.report.deadline_flushes += 1;
            }
        }

        let mut flight = Flight {
            done_ns: done,
            members: Vec::with_capacity(k),
        };
        for (p, score) in members.iter().zip(scores) {
            let span = p.id + 1;
            self.record(Event::SpanActive { span, node: 0 });
            flight.members.push((span, p.admit_ns));
            self.report.responses.push(Response {
                id: p.id,
                conn: p.conn,
                row: p.row,
                epoch,
                admit_ns: p.admit_ns,
                dispatch_ns: now,
                done_ns: done,
                batch,
                batch_rows: k as u32,
                score,
            });
        }
        self.in_flight.push_back(flight);
    }

    fn on_completion(&mut self, now: u64) {
        let flight = self.in_flight.pop_front().expect("completion event");
        debug_assert_eq!(flight.done_ns, now);
        for (span, admit_ns) in &flight.members {
            let latency = now - admit_ns;
            self.stats.latency_us.observe(latency / 1_000);
            self.stats.feed.record_request(latency);
            self.record(Event::SpanClose { span: *span });
        }
        if self.cfg.adaptive_batch {
            self.resize_target();
        }
    }

    /// Floats the batch target on the rolling request-latency p95: tails
    /// within 25% of the budget double it (amortise overhead — under
    /// pressure, throughput is the lever), tails under a quarter of the
    /// budget halve it (freshness is cheap). Shrinking is deferred until
    /// the forming queue is empty: every queued request was admitted
    /// against a pessimistic drain in `target`-sized batches, and a
    /// mid-queue shrink could fragment that drain into more per-batch
    /// overheads than admission accounted for, voiding the latency
    /// invariant. Growth is always safe — bigger batches only amortise.
    fn resize_target(&mut self) {
        let p95 = self.stats.feed.snapshot().request.p95_ns;
        if p95.saturating_mul(4) > self.budget.saturating_mul(3) {
            self.target = (self.target * 2).min(self.cfg.max_batch);
        } else if p95.saturating_mul(4) < self.budget && self.queue.is_empty() {
            self.target = (self.target / 2).max(self.cfg.min_batch);
        }
    }
}
