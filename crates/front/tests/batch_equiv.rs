//! Differential correctness: micro-batching and hot swap are *invisible*
//! to correctness. For every arrival plan × batch budget × swap schedule,
//! each response must be bit-identical to scoring its row **alone**
//! against the model epoch named in the response tag — and same-seed runs
//! must produce byte-identical response logs. Replay a failing combo with
//! `TS_SEED=<printed seed>`.

use std::sync::Arc;
use std::time::Duration;

use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_front::{ArrivalPlan, FrontConfig, FrontServer, ModelRegistry, Score, ServiceModel};
use ts_serve::CompiledModel;
use ts_tree::{train_tree, DecisionTreeModel, ForestModel, TrainParams};

fn base_seed() -> u64 {
    match std::env::var("TS_SEED") {
        Ok(s) => s
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).expect("hex TS_SEED"))
            .unwrap_or_else(|| s.parse().expect("decimal TS_SEED")),
        Err(_) => 0xF407_5EED,
    }
}

/// The arrival plans under test; `TS_ARRIVAL={poisson,bursty}` narrows the
/// sweep to one (the CI serve-matrix shards on it).
fn plans() -> Vec<ArrivalPlan> {
    let poisson = ArrivalPlan::Poisson { qps: 150_000.0 };
    let bursty = ArrivalPlan::Bursty {
        on_qps: 400_000.0,
        off_qps: 10_000.0,
        on: Duration::from_millis(1),
        off: Duration::from_millis(2),
    };
    match std::env::var("TS_ARRIVAL").as_deref() {
        Ok("poisson") => vec![poisson],
        Ok("bursty") => vec![bursty],
        _ => vec![poisson, bursty],
    }
}

fn synth(seed: u64, rows: usize, task: Task) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 6,
        categorical: 2,
        cat_cardinality: 5,
        task,
        missing_rate: 0.05,
        noise: 0.1,
        concept_depth: 4,
        seed,
        ..Default::default()
    })
}

fn forest(table: &DataTable, n_trees: usize, seed: u64) -> CompiledModel {
    let attrs: Vec<usize> = (0..table.n_attrs()).collect();
    let params = TrainParams {
        dmax: 5,
        ..TrainParams::for_task(table.schema().task)
    };
    let trees: Vec<DecisionTreeModel> = (0..n_trees)
        .map(|i| train_tree(table, &attrs, &params, seed.wrapping_add(i as u64 * 7919)))
        .collect();
    CompiledModel::from_forest(&ForestModel::new(trees, table.schema().task))
}

/// Runs one (plan, budget, swap-schedule) combo and checks every response
/// against the lone-row reference under the epoch it names. Returns the
/// canonical log bytes for the replay assertion.
fn check_combo(
    task: Task,
    plan: ArrivalPlan,
    budget: Duration,
    max_batch: usize,
    swap_ats: &[Duration],
    seed: u64,
) -> Vec<u8> {
    let train = Arc::new(synth(seed, 300, task));
    let eval = Arc::new(synth(seed ^ 0x5EED, 97, task));
    let registry = Arc::new(ModelRegistry::new(forest(&train, 4, seed)));
    let cfg = FrontConfig {
        latency_budget: budget,
        max_batch,
        queue_cap: 4096, // roomy: this suite is about correctness, not shed
        service: ServiceModel {
            batch_overhead_ns: 15_000,
            per_row_ns: 3_000,
        },
        ..FrontConfig::default()
    };
    let mut server = FrontServer::new(cfg, Arc::clone(&registry), Arc::clone(&eval));
    for (i, &at) in swap_ats.iter().enumerate() {
        let replacement = forest(&train, 4, seed ^ (0xABCD + i as u64));
        server.schedule_swap(at, move || replacement);
    }
    let arrivals = plan.generate(1_200, eval.n_rows() as u32, 8, seed);
    let report = server.run(&arrivals);

    assert_eq!(
        report.responses.len() + report.sheds.len(),
        arrivals.len(),
        "every request answered exactly once"
    );
    assert_eq!(report.swaps.len(), swap_ats.len(), "every swap applied");
    if !swap_ats.is_empty() {
        let epochs: std::collections::BTreeSet<u32> =
            report.responses.iter().map(|r| r.epoch).collect();
        assert!(
            epochs.len() > 1,
            "swap must land mid-run (epochs seen: {epochs:?}; seed {seed})"
        );
    }

    for r in &report.responses {
        let model = registry
            .model(r.epoch)
            .expect("response epoch resolves in the registry");
        let alone = eval.select_rows(&[r.row]);
        match r.score {
            Score::Label(got) => {
                let want = model.predict_labels(&alone)[0];
                assert_eq!(
                    got, want,
                    "request {} (row {}, epoch {}): batched label != lone-row label (seed {seed})",
                    r.id, r.row, r.epoch
                );
            }
            Score::Value(got) => {
                let want = model.predict_values(&alone)[0];
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "request {} (row {}, epoch {}): batched value bits != lone-row bits (seed {seed})",
                    r.id,
                    r.row,
                    r.epoch
                );
            }
        }
    }
    report.log_bytes()
}

/// Classification sweep: arrival plans × latency budgets × swap schedules,
/// each response re-scored alone under its tagged epoch.
#[test]
fn batched_responses_match_lone_row_reference_classification() {
    let seed = base_seed();
    let task = Task::Classification { n_classes: 3 };
    let swaps_mid = [Duration::from_millis(3)];
    let swaps_two = [Duration::from_millis(2), Duration::from_millis(5)];
    for plan in plans() {
        for (budget_us, max_batch) in [(400, 8), (2_000, 32), (10_000, 64)] {
            for swap_ats in [&[] as &[Duration], &swaps_mid, &swaps_two] {
                check_combo(
                    task,
                    plan,
                    Duration::from_micros(budget_us),
                    max_batch,
                    swap_ats,
                    seed ^ budget_us,
                );
            }
        }
    }
}

/// Regression sweep: raw f64 bit equality against the lone-row reference.
#[test]
fn batched_responses_match_lone_row_reference_regression() {
    let seed = base_seed() ^ 0x9E37;
    for plan in plans() {
        for swap_ats in [
            &[] as &[Duration],
            &[Duration::from_millis(3)] as &[Duration],
        ] {
            check_combo(
                Task::Regression,
                plan,
                Duration::from_millis(2),
                32,
                swap_ats,
                seed,
            );
        }
    }
}

/// Same seed, same config ⇒ byte-identical canonical logs, including a
/// mid-run swap; a different seed must diverge (the log actually encodes
/// the run).
#[test]
fn same_seed_replay_is_byte_identical() {
    let seed = base_seed() ^ 0xB10B;
    let task = Task::Classification { n_classes: 3 };
    for plan in plans() {
        let combo = |s: u64| {
            check_combo(
                task,
                plan,
                Duration::from_millis(1),
                16,
                &[Duration::from_millis(3)],
                s,
            )
        };
        let a = combo(seed);
        let b = combo(seed);
        assert_eq!(a, b, "same-seed logs must be byte-identical");
        let c = combo(seed ^ 1);
        assert_ne!(a, c, "different seeds must produce different logs");
    }
}
