//! Latency-invariant acceptance: under the virtual clock, no admitted
//! request ever completes later than
//! `admission_time + latency_budget + service(its own batch)` — the bound
//! admission control enforces by construction (see the proof sketch in
//! `crates/front/src/server.rs` and docs/SERVING.md). Also pins the
//! deadline-flush path on a lone straggler — the classic "last request of
//! a burst waits forever" bug.

use std::sync::Arc;
use std::time::Duration;

use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_front::{Arrival, ArrivalPlan, FrontConfig, FrontServer, ModelRegistry, ServiceModel};
use ts_serve::CompiledModel;
use ts_tree::{train_tree, TrainParams};

fn base_seed() -> u64 {
    match std::env::var("TS_SEED") {
        Ok(s) => s
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).expect("hex TS_SEED"))
            .unwrap_or_else(|| s.parse().expect("decimal TS_SEED")),
        Err(_) => 0x1A7E_0BEE,
    }
}

fn table(seed: u64) -> Arc<DataTable> {
    Arc::new(generate(&SynthSpec {
        rows: 64,
        numeric: 4,
        categorical: 0,
        task: Task::Classification { n_classes: 2 },
        noise: 0.1,
        concept_depth: 3,
        seed,
        ..Default::default()
    }))
}

fn registry(t: &DataTable, seed: u64) -> Arc<ModelRegistry> {
    let attrs: Vec<usize> = (0..t.n_attrs()).collect();
    let params = TrainParams {
        dmax: 4,
        ..TrainParams::for_task(t.schema().task)
    };
    let tree = train_tree(t, &attrs, &params, seed);
    Arc::new(ModelRegistry::new(CompiledModel::from_tree(&tree)))
}

/// Every admitted request meets the bound, across load levels, budgets
/// and both adaptive modes — including overloaded configs where admission
/// control is actively shedding.
#[test]
fn admitted_completion_never_exceeds_budget_plus_batch_service() {
    let seed = base_seed();
    let t = table(seed);
    let service = ServiceModel {
        batch_overhead_ns: 25_000,
        per_row_ns: 8_000,
    };
    for (qps, budget_us, adaptive) in [
        (20_000.0, 800, true),    // light load: deadline flushes dominate
        (120_000.0, 800, true),   // overload: sheds + full flushes
        (120_000.0, 800, false),  // same, fixed batch target
        (300_000.0, 2_500, true), // heavy burst pressure, wider budget
    ] {
        let cfg = FrontConfig {
            latency_budget: Duration::from_micros(budget_us),
            max_batch: 16,
            queue_cap: 64,
            adaptive_batch: adaptive,
            service,
            ..FrontConfig::default()
        };
        let budget_ns = cfg.latency_budget.as_nanos() as u64;
        let mut server = FrontServer::new(cfg, registry(&t, seed), Arc::clone(&t));
        let arrivals =
            ArrivalPlan::Poisson { qps }.generate(2_000, t.n_rows() as u32, 4, seed ^ budget_us);
        let report = server.run(&arrivals);
        assert!(!report.responses.is_empty());
        for r in &report.responses {
            let bound = r.admit_ns + budget_ns + service.service_ns(r.batch_rows as usize);
            assert!(
                r.done_ns <= bound,
                "request {} done at {} > bound {} (admit {}, batch_rows {}, \
                 qps {qps}, budget {budget_us}us, adaptive {adaptive}, seed {seed})",
                r.id,
                r.done_ns,
                bound,
                r.admit_ns,
                r.batch_rows,
            );
        }
    }
}

/// A lone straggler must be flushed by the deadline trigger, exactly at
/// `admit + budget`, in a batch of one — it can never wait for a batch
/// that will not fill.
#[test]
fn lone_straggler_fires_the_deadline_flush() {
    let seed = base_seed() ^ 0x57A6;
    let t = table(seed);
    let service = ServiceModel {
        batch_overhead_ns: 25_000,
        per_row_ns: 8_000,
    };
    let cfg = FrontConfig {
        latency_budget: Duration::from_micros(500),
        max_batch: 16,
        adaptive_batch: false,
        service,
        ..FrontConfig::default()
    };
    let mut server = FrontServer::new(cfg, registry(&t, seed), Arc::clone(&t));
    let lone = [Arrival {
        id: 0,
        conn: 0,
        at_ns: 1_000,
        row: 3,
    }];
    let report = server.run(&lone);
    assert_eq!(report.responses.len(), 1);
    assert_eq!(report.deadline_flushes, 1, "flush must be deadline-driven");
    assert_eq!(report.full_flushes, 0);
    let r = &report.responses[0];
    assert_eq!(
        r.dispatch_ns,
        1_000 + 500_000,
        "cut exactly at the deadline"
    );
    assert_eq!(r.batch_rows, 1);
    assert_eq!(r.done_ns, r.dispatch_ns + service.service_ns(1));
}

/// The burst variant: a 15-request burst (one short of the 16-row target)
/// followed by silence still flushes at the *first* request's deadline,
/// carrying the whole burst.
#[test]
fn underfull_burst_flushes_at_the_oldest_deadline() {
    let seed = base_seed() ^ 0xB025;
    let t = table(seed);
    let cfg = FrontConfig {
        latency_budget: Duration::from_micros(500),
        max_batch: 16,
        adaptive_batch: false,
        ..FrontConfig::default()
    };
    let mut server = FrontServer::new(cfg, registry(&t, seed), Arc::clone(&t));
    let burst: Vec<Arrival> = (0..15)
        .map(|i| Arrival {
            id: i,
            conn: i as u32 % 3,
            at_ns: 2_000 + i * 100, // all well inside one budget window
            row: (i % 64) as u32,
        })
        .collect();
    let report = server.run(&burst);
    assert_eq!(report.responses.len(), 15);
    assert_eq!(report.batches, 1, "one batch carries the whole burst");
    assert_eq!(report.deadline_flushes, 1);
    for r in &report.responses {
        assert_eq!(r.batch_rows, 15);
        assert_eq!(
            r.dispatch_ns,
            2_000 + 500_000,
            "flush keys off the oldest request's admission"
        );
    }
}
