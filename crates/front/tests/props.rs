//! tscheck property sweep for the serving front. Every case derives from
//! `TS_SEED` (the CI serve-matrix shards it across three fixed seeds ×
//! `TS_ARRIVAL` plans); replay any failure with the printed recipe.
//!
//! Properties:
//! (a) *conservation*: no admitted request is ever dropped and every shed
//!     request gets a structured reject — ids partition exactly;
//! (b) *replay determinism*: same-seed runs produce byte-identical
//!     canonical response logs;
//! (c) *swap monotonicity*: under hot swaps, the epochs observed by each
//!     connection are monotone non-decreasing.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_front::{ArrivalPlan, FrontConfig, FrontReport, FrontServer, ModelRegistry, ServiceModel};
use ts_serve::CompiledModel;
use ts_tree::{train_tree, DecisionTreeModel, ForestModel, TrainParams};
use tscheck::prelude::*;

fn synth(seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows: 89,
        numeric: 5,
        categorical: 1,
        cat_cardinality: 4,
        task: Task::Classification { n_classes: 3 },
        missing_rate: 0.05,
        noise: 0.1,
        concept_depth: 4,
        seed,
        ..Default::default()
    })
}

fn forest(table: &DataTable, seed: u64) -> CompiledModel {
    let attrs: Vec<usize> = (0..table.n_attrs()).collect();
    let params = TrainParams {
        dmax: 4,
        ..TrainParams::for_task(table.schema().task)
    };
    let trees: Vec<DecisionTreeModel> = (0..3)
        .map(|i| train_tree(table, &attrs, &params, seed.wrapping_add(i * 7919)))
        .collect();
    CompiledModel::from_forest(&ForestModel::new(trees, table.schema().task))
}

/// The plan under test, honouring the CI matrix's `TS_ARRIVAL` shard; the
/// seed still perturbs the rates so cases differ.
fn plan_for(seed: u64) -> ArrivalPlan {
    let bursty = seed % 2 == 1;
    let pick = match std::env::var("TS_ARRIVAL").as_deref() {
        Ok("poisson") => false,
        Ok("bursty") => true,
        _ => bursty,
    };
    let scale = 1.0 + (seed % 5) as f64 * 0.4;
    if pick {
        ArrivalPlan::Bursty {
            on_qps: 300_000.0 * scale,
            off_qps: 5_000.0,
            on: Duration::from_millis(1),
            off: Duration::from_millis(2),
        }
    } else {
        // Base rate sits above the config's ~138k qps service capacity
        // (6µs/row + 20µs/16-row batch) at every seed scale, so the
        // conservation property always exercises real sheds.
        ArrivalPlan::Poisson {
            qps: 160_000.0 * scale,
        }
    }
}

/// One seeded end-to-end run: tight queue + budget so sheds actually
/// happen, plus `n_swaps` scheduled hot swaps.
fn run(seed: u64, n_swaps: usize) -> (FrontReport, usize) {
    let table = Arc::new(synth(seed));
    let registry = Arc::new(ModelRegistry::new(forest(&table, seed)));
    let cfg = FrontConfig {
        latency_budget: Duration::from_micros(600),
        max_batch: 16,
        queue_cap: 24,
        adaptive_batch: true,
        service: ServiceModel {
            batch_overhead_ns: 20_000,
            per_row_ns: 6_000,
        },
        ..FrontConfig::default()
    };
    let mut server = FrontServer::new(cfg, registry, Arc::clone(&table));
    for i in 0..n_swaps {
        let table = Arc::clone(&table);
        let s = seed ^ (0x51AB + i as u64);
        // Inside the stream's virtual span at every seed scale (900
        // arrivals cover >= ~2.1ms even at the fastest Poisson rate).
        server.schedule_swap(Duration::from_micros(400 + 500 * i as u64), move || {
            forest(&table, s)
        });
    }
    let arrivals = plan_for(seed).generate(900, table.n_rows() as u32, 6, seed);
    let n = arrivals.len();
    (server.run(&arrivals), n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// (a) Conservation: every request is answered exactly once — the
    /// response ids and the structured-shed ids partition the arrival ids,
    /// and under this deliberately tight config both sides are non-empty.
    #[test]
    fn admitted_are_answered_and_sheds_are_structured(seed in any::<u64>()) {
        let (report, n) = run(seed, 0);
        prop_assert_eq!(report.responses.len() + report.sheds.len(), n);
        let answered: BTreeSet<u64> = report.responses.iter().map(|r| r.id).collect();
        let shed: BTreeSet<u64> = report.sheds.iter().map(|s| s.id).collect();
        prop_assert_eq!(answered.len(), report.responses.len(), "no duplicate responses");
        prop_assert_eq!(shed.len(), report.sheds.len(), "no duplicate sheds");
        prop_assert!(answered.is_disjoint(&shed), "a request is answered xor shed");
        let all: BTreeSet<u64> = answered.union(&shed).copied().collect();
        prop_assert_eq!(all, (0..n as u64).collect::<BTreeSet<u64>>());
        prop_assert!(!report.responses.is_empty(), "tight config still serves");
        prop_assert!(!report.sheds.is_empty(), "tight config must shed (else it tests nothing)");
        // Structured rejects carry a live queue depth within bounds.
        for s in &report.sheds {
            prop_assert!(s.queue_depth <= 24);
        }
    }

    /// (b) Replay determinism: the canonical log is a pure function of the
    /// seed, including under a hot swap.
    #[test]
    fn same_seed_runs_are_byte_identical(seed in any::<u64>()) {
        let (a, _) = run(seed, 1);
        let (b, _) = run(seed, 1);
        prop_assert_eq!(a.log_bytes(), b.log_bytes());
    }

    /// (c) Swap monotonicity: batches are cut in FIFO order off a
    /// monotone registry, so each connection observes non-decreasing
    /// epochs; with two swaps the run must actually cross epochs.
    #[test]
    fn epochs_are_monotone_per_connection_under_swaps(seed in any::<u64>()) {
        let (report, _) = run(seed, 2);
        prop_assert_eq!(report.swaps.len(), 2, "both swaps applied");
        for conn in 0..6u32 {
            let mut last = 0u32;
            // Responses are logged in batch-cut (service) order.
            for r in report.responses.iter().filter(|r| r.conn == conn) {
                prop_assert!(
                    r.epoch >= last,
                    "conn {} saw epoch {} after {}", conn, r.epoch, last
                );
                last = last.max(r.epoch);
            }
        }
        let seen: BTreeSet<u32> = report.responses.iter().map(|r| r.epoch).collect();
        prop_assert!(seen.len() >= 2, "run crosses at least one swap (saw {:?})", seen);
    }
}
