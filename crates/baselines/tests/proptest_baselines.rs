//! Property tests for the baseline trainers: structural invariants of
//! PLANET trees and XGBoost models on arbitrary data.

use ts_baselines::{Objective, PlanetConfig, PlanetTrainer, XgbConfig, XgbTrainer};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::Task;
use tscheck::prelude::*;

fn any_class_spec() -> impl Strategy<Value = SynthSpec> {
    (50usize..600, 1usize..5, 0usize..3, 0u64..2_000).prop_map(
        |(rows, numeric, categorical, seed)| SynthSpec {
            rows,
            numeric,
            categorical,
            cat_cardinality: 4,
            task: Task::Classification { n_classes: 2 },
            missing_rate: 0.05,
            noise: 0.1,
            concept_depth: 4,
            latent: 0,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// PLANET trees respect dmax, children partition parents, and every
    /// split threshold is one of the (at most max_bins - 1) candidates —
    /// the defining property of the approximation.
    #[test]
    fn planet_tree_structure(spec in any_class_spec(), max_bins in 2usize..16) {
        let t = generate(&spec);
        let trainer = PlanetTrainer::new(PlanetConfig {
            n_machines: 2,
            threads_per_machine: 1,
            max_bins,
            dmax: 5,
            ..Default::default()
        });
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let (model, stats) = trainer.train_tree(&t, &all);
        prop_assert!(model.max_depth() <= 5);
        prop_assert!(stats.levels <= 5);
        for n in &model.nodes {
            if let Some((_, l, r)) = &n.split {
                prop_assert_eq!(
                    model.nodes[*l].n_rows + model.nodes[*r].n_rows,
                    n.n_rows
                );
            }
        }
        // Prediction over the training table never panics, missing included.
        let _ = model.predict_labels(&t);
    }

    /// XGBoost models are finite and improve (or tie) training log-loss as
    /// rounds are added.
    #[test]
    fn xgb_training_loss_monotonicity(spec in any_class_spec()) {
        let t = generate(&spec);
        let loss_at = |rounds: usize| {
            let trainer = XgbTrainer::new(XgbConfig {
                n_rounds: rounds,
                threads: 1,
                max_depth: 3,
                ..XgbConfig::new(Objective::Logistic)
            });
            let m = trainer.train(&t);
            let margins = m.predict_margins(&t);
            let probs: Vec<f64> =
                margins.iter().map(|v| 1.0 / (1.0 + (-v[0]).exp())).collect();
            prop_assert!(probs.iter().all(|p| p.is_finite()));
            Ok(ts_datatable::metrics::log_loss(&probs, t.labels().as_class().unwrap()))
        };
        let l1 = loss_at(1)?;
        let l6 = loss_at(6)?;
        // Gradient descent on training loss: more rounds never hurt the
        // TRAINING loss beyond float noise.
        prop_assert!(l6 <= l1 + 1e-6, "training log-loss rose: {} -> {}", l1, l6);
    }

    /// The Yggdrasil baseline equals the local exact trainer on arbitrary
    /// data (the exactness triangle, randomised).
    #[test]
    fn yggdrasil_exactness_randomised(spec in any_class_spec()) {
        use ts_baselines::{YggdrasilConfig, YggdrasilTrainer};
        use ts_tree::{train_tree, TrainParams};
        let t = generate(&spec);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let (model, _) = YggdrasilTrainer::new(YggdrasilConfig {
            dmax: 6,
            ..Default::default()
        })
        .train_tree(&t, &all);
        let reference = train_tree(
            &t,
            &all,
            &TrainParams { dmax: 6, ..TrainParams::for_task(t.schema().task) },
            0,
        );
        prop_assert_eq!(model.canonicalize(), reference.canonicalize());
    }
}
