//! Baseline trainers the paper compares against (§II, §VIII).
//!
//! - [`planet`]: the PLANET algorithm as adopted by Spark MLlib — row
//!   partitioning, level-synchronous node construction via one
//!   histogram-aggregation "job" per level (`maxBins` equi-depth candidate
//!   thresholds, default 32), split decisions broadcast back. Both the
//!   parallel and the single-threaded variants of Table II, with per-level
//!   stage overhead modelling Spark's job-launch cost.
//! - [`xgb`]: an XGBoost-style booster — second-order gradients, weighted
//!   quantile sketch candidates ('approx' mode), L2-regularised leaf
//!   weights, shrinkage, sparsity-aware default directions, and strictly
//!   sequential trees (the dependency that makes boosting slow to scale
//!   with tree count, Table II(c)/IV(c)).
//! - [`yggdrasil`]: Yggdrasil's columnar **exact** trainer with the
//!   master-broadcast row-to-child bitvector per level — the communication
//!   pattern the paper's delegate-worker design (section V) eliminates; used
//!   by the ablation bench.
//!
//! All three charge their communication to a [`ts_netsim::NetStats`] so the
//! benches can compare traffic shapes, not just wall-clock.

pub mod planet;
pub mod xgb;
pub mod yggdrasil;

pub use planet::{PlanetConfig, PlanetStats, PlanetTrainer};
pub use xgb::{Objective, XgbConfig, XgbModel, XgbTrainer};
pub use yggdrasil::{YggdrasilConfig, YggdrasilStats, YggdrasilTrainer};
