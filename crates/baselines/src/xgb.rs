//! An XGBoost-style gradient booster (Chen & Guestrin 2016, 'approx' mode).
//!
//! What the paper's Table II(c)/IV(c) comparison needs from this baseline:
//!
//! - **second-order boosting**: each round fits a regression tree to the
//!   gradient/hessian statistics of the current margins, with L2-regularised
//!   leaf weights `w = -G/(H + λ)` and shrinkage `η`;
//! - **weighted quantile sketch** candidates: per-feature thresholds at
//!   hessian-weighted quantiles ([`ts_splits::sketch::QuantileSketch`]),
//!   `max_bins` per feature — the approximation the paper contrasts with
//!   TreeServer's exact splits;
//! - **sparsity-aware default directions**: missing values follow whichever
//!   child maximises the gain;
//! - **strictly sequential trees**: tree `t+1` needs tree `t`'s predictions,
//!   so a 100-tree boosted model cannot parallelise across trees — the
//!   structural reason XGBoost loses the wall-clock race in Table II(c)
//!   while sometimes winning on accuracy.
//!
//! Categorical attributes are consumed as ordinal codes, as XGBoost
//! historically does.

use ts_datatable::{Column, DataTable, Labels, MISSING_CAT};
use ts_splits::sketch::QuantileSketch;

/// Loss to optimise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Squared error (regression).
    SquaredError,
    /// Binary logistic loss; labels 0/1.
    Logistic,
    /// Softmax over `n_classes`; one tree per class per round.
    Softmax {
        /// Number of classes.
        n_classes: u32,
    },
}

/// Booster configuration (defaults follow common XGBoost settings).
#[derive(Debug, Clone)]
pub struct XgbConfig {
    /// Boosting rounds (trees per class).
    pub n_rounds: usize,
    /// Shrinkage `η`.
    pub eta: f64,
    /// L2 regularisation `λ`.
    pub lambda: f64,
    /// Minimum split gain `γ`.
    pub gamma: f64,
    /// Maximum tree depth.
    pub max_depth: u32,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Candidate thresholds per feature (sketch quantiles).
    pub max_bins: usize,
    /// Rayon threads for the feature-parallel scan.
    pub threads: usize,
    /// Modeled compute nanoseconds per row-attribute touch (see
    /// `treeserver::ClusterConfig::work_ns_per_unit`); each tree level
    /// sleeps `rows * features * ns / threads`.
    pub work_ns_per_unit: u64,
    /// The objective.
    pub objective: Objective,
}

impl XgbConfig {
    /// Defaults for a given objective.
    pub fn new(objective: Objective) -> XgbConfig {
        XgbConfig {
            n_rounds: 100,
            eta: 0.3,
            lambda: 1.0,
            gamma: 0.0,
            max_depth: 6,
            min_child_weight: 1.0,
            max_bins: 32,
            threads: 4,
            work_ns_per_unit: 0,
            objective,
        }
    }
}

/// A split decision: `(feature, threshold, default_left, left, right)`.
type XgbSplit = (usize, f64, bool, usize, usize);

/// One node of a boosted regression tree.
#[derive(Debug, Clone)]
struct XgbNode {
    /// `(feature, threshold, default_left, left, right)`.
    split: Option<XgbSplit>,
    /// Leaf weight (already shrunk by `η`).
    weight: f64,
}

/// One boosted regression tree.
#[derive(Debug, Clone)]
pub struct XgbTree {
    nodes: Vec<XgbNode>,
}

impl XgbTree {
    /// The raw contribution for one row.
    fn predict(&self, feat: impl Fn(usize) -> f64) -> f64 {
        let mut i = 0;
        loop {
            let n = &self.nodes[i];
            let Some((f, thr, default_left, l, r)) = n.split else {
                return n.weight;
            };
            let v = feat(f);
            let left = if v.is_nan() { default_left } else { v <= thr };
            i = if left { l } else { r };
        }
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// A trained boosted model.
#[derive(Debug, Clone)]
pub struct XgbModel {
    /// `rounds[r][k]`: round `r`'s tree for class `k` (one entry for
    /// regression/logistic).
    pub rounds: Vec<Vec<XgbTree>>,
    objective: Objective,
}

impl XgbModel {
    /// Raw margins per class for every row.
    pub fn predict_margins(&self, table: &DataTable) -> Vec<Vec<f64>> {
        let k = match self.objective {
            Objective::Softmax { n_classes } => n_classes as usize,
            _ => 1,
        };
        let n = table.n_rows();
        let mut margins = vec![vec![0f64; k]; n];
        for round in &self.rounds {
            for (c, tree) in round.iter().enumerate() {
                for (row, m) in margins.iter_mut().enumerate() {
                    m[c] += tree.predict(|f| feature_value(table, row, f));
                }
            }
        }
        margins
    }

    /// Regression predictions.
    pub fn predict_values(&self, table: &DataTable) -> Vec<f64> {
        assert_eq!(self.objective, Objective::SquaredError);
        self.predict_margins(table)
            .into_iter()
            .map(|m| m[0])
            .collect()
    }

    /// Class predictions.
    pub fn predict_labels(&self, table: &DataTable) -> Vec<u32> {
        match self.objective {
            Objective::Logistic => self
                .predict_margins(table)
                .into_iter()
                .map(|m| u32::from(m[0] > 0.0))
                .collect(),
            Objective::Softmax { .. } => self
                .predict_margins(table)
                .into_iter()
                .map(|m| {
                    let mut best = 0;
                    for (i, &v) in m.iter().enumerate().skip(1) {
                        if v > m[best] {
                            best = i;
                        }
                    }
                    best as u32
                })
                .collect(),
            Objective::SquaredError => panic!("predict_labels on a regression model"),
        }
    }

    /// Total trees (rounds × classes).
    pub fn n_trees(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// Reads a feature as `f64` (categorical codes become ordinals; missing is
/// NaN).
fn feature_value(table: &DataTable, row: usize, feature: usize) -> f64 {
    match table.column(feature) {
        Column::Numeric(v) => v[row],
        Column::Categorical(v) => {
            if v[row] == MISSING_CAT {
                f64::NAN
            } else {
                v[row] as f64
            }
        }
    }
}

/// The booster.
pub struct XgbTrainer {
    cfg: XgbConfig,
    pool: tspar::ThreadPool,
}

impl XgbTrainer {
    /// Creates a booster with its thread pool.
    pub fn new(cfg: XgbConfig) -> XgbTrainer {
        let pool = tspar::ThreadPool::new(cfg.threads.max(1));
        XgbTrainer { cfg, pool }
    }

    /// Trains the model.
    pub fn train(&self, table: &DataTable) -> XgbModel {
        let n = table.n_rows();
        let k = match self.cfg.objective {
            Objective::Softmax { n_classes } => n_classes as usize,
            _ => 1,
        };
        // Feature matrix view + per-feature candidate cuts (hessian weights
        // are ~uniform at round 0; XGBoost 'approx' refreshes sketches per
        // tree — we rebuild with current hessians each round for fidelity).
        let features: Vec<usize> = (0..table.n_attrs()).collect();

        let mut margins = vec![vec![0f64; k]; n];
        let mut rounds = Vec::with_capacity(self.cfg.n_rounds);
        for _round in 0..self.cfg.n_rounds {
            let mut class_trees = Vec::with_capacity(k);
            for class in 0..k {
                let (grad, hess) = self.grad_hess(table.labels(), &margins, class);
                let tree = build_tree(table, &features, &grad, &hess, &self.cfg, &self.pool);
                // Sequential dependency: margins update before the next
                // class/round can proceed.
                for (row, m) in margins.iter_mut().enumerate() {
                    m[class] += tree.predict(|f| feature_value(table, row, f));
                }
                class_trees.push(tree);
            }
            rounds.push(class_trees);
        }
        XgbModel {
            rounds,
            objective: self.cfg.objective,
        }
    }

    /// First/second-order statistics of the loss at the current margins.
    fn grad_hess(
        &self,
        labels: &Labels,
        margins: &[Vec<f64>],
        class: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        match (self.cfg.objective, labels) {
            (Objective::SquaredError, Labels::Real(ys)) => {
                let g = ys.iter().zip(margins).map(|(&y, m)| m[0] - y).collect();
                (g, vec![1.0; ys.len()])
            }
            (Objective::Logistic, Labels::Class(ys)) => {
                let mut g = Vec::with_capacity(ys.len());
                let mut h = Vec::with_capacity(ys.len());
                for (&y, m) in ys.iter().zip(margins) {
                    let p = 1.0 / (1.0 + (-m[0]).exp());
                    g.push(p - y as f64);
                    h.push((p * (1.0 - p)).max(1e-16));
                }
                (g, h)
            }
            (Objective::Softmax { .. }, Labels::Class(ys)) => {
                let mut g = Vec::with_capacity(ys.len());
                let mut h = Vec::with_capacity(ys.len());
                for (&y, m) in ys.iter().zip(margins) {
                    let max = m.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let denom: f64 = m.iter().map(|v| (v - max).exp()).sum();
                    let p = (m[class] - max).exp() / denom;
                    let target = f64::from(y as usize == class);
                    g.push(p - target);
                    h.push((2.0 * p * (1.0 - p)).max(1e-16));
                }
                (g, h)
            }
            _ => panic!("objective does not match the label kind"),
        }
    }
}

/// Per-(feature) gradient histogram over candidate bins.
struct FeatStats {
    /// `(G, H)` per bin.
    bins: Vec<(f64, f64)>,
    /// `(G, H)` of missing rows.
    missing: (f64, f64),
}

/// Builds one regression tree on (grad, hess), level-wise.
fn build_tree(
    table: &DataTable,
    features: &[usize],
    grad: &[f64],
    hess: &[f64],
    cfg: &XgbConfig,
    pool: &tspar::ThreadPool,
) -> XgbTree {
    let n = table.n_rows();

    // Per-feature candidate cuts from the hessian-weighted sketch.
    let cuts: Vec<Vec<f64>> = pool.map(features, |_, &f| {
        let mut sk = QuantileSketch::new((cfg.max_bins * 4).max(16));
        for (row, &h) in hess.iter().enumerate() {
            sk.push(feature_value(table, row, f), h);
        }
        sk.cut_points(cfg.max_bins)
    });

    let mut nodes = vec![XgbNode {
        split: None,
        weight: 0.0,
    }];
    let mut node_of_row: Vec<u32> = vec![0; n];
    // Frontier: (arena index, G, H).
    let mut frontier: Vec<(usize, f64, f64)> = {
        let g: f64 = grad.iter().sum();
        let h: f64 = hess.iter().sum();
        vec![(0, g, h)]
    };
    let mut slot_of_node: Vec<u32> = vec![0];

    for _depth in 0..cfg.max_depth {
        if frontier.is_empty() {
            break;
        }
        if cfg.work_ns_per_unit > 0 {
            let units = n as u64 * features.len() as u64 / cfg.threads.max(1) as u64;
            std::thread::sleep(std::time::Duration::from_nanos(
                units * cfg.work_ns_per_unit,
            ));
        }
        // Feature-parallel accumulation: stats[feature][frontier slot].
        let stats: Vec<Vec<FeatStats>> = pool.map(features, |ci, &f| {
            let mut per_node: Vec<FeatStats> = frontier
                .iter()
                .map(|_| FeatStats {
                    bins: vec![(0.0, 0.0); cuts[ci].len() + 1],
                    missing: (0.0, 0.0),
                })
                .collect();
            for row in 0..n {
                let slot = node_of_row[row];
                if slot == u32::MAX {
                    continue;
                }
                let s = &mut per_node[slot as usize];
                let v = feature_value(table, row, f);
                if v.is_nan() {
                    s.missing.0 += grad[row];
                    s.missing.1 += hess[row];
                } else {
                    let b = cuts[ci].partition_point(|&c| c < v);
                    s.bins[b].0 += grad[row];
                    s.bins[b].1 += hess[row];
                }
            }
            per_node
        });

        // Pick the best split per frontier node.
        let mut next_frontier = Vec::new();
        let mut decisions: Vec<Option<XgbSplit>> = vec![None; frontier.len()];
        for (slot, &(node, g_tot, h_tot)) in frontier.iter().enumerate() {
            let parent_score = g_tot * g_tot / (h_tot + cfg.lambda);
            let mut best: Option<(f64, usize, f64, bool, f64, f64)> = None;
            for (ci, &f) in features.iter().enumerate() {
                let st = &stats[ci][slot];
                let (gm, hm) = st.missing;
                let mut gl = 0.0;
                let mut hl = 0.0;
                for (b, &(gb, hb)) in st.bins.iter().enumerate().take(st.bins.len() - 1) {
                    gl += gb;
                    hl += hb;
                    let thr = cuts[ci][b];
                    // Try missing on each side; keep the better.
                    for default_left in [true, false] {
                        let (gl2, hl2) = if default_left {
                            (gl + gm, hl + hm)
                        } else {
                            (gl, hl)
                        };
                        let (gr2, hr2) = (g_tot - gl2, h_tot - hl2);
                        if hl2 < cfg.min_child_weight || hr2 < cfg.min_child_weight {
                            continue;
                        }
                        let gain = 0.5
                            * (gl2 * gl2 / (hl2 + cfg.lambda) + gr2 * gr2 / (hr2 + cfg.lambda)
                                - parent_score)
                            - cfg.gamma;
                        if gain > 0.0
                            && best.is_none_or(|(bg, bf, bt, _, _, _)| {
                                gain > bg || (gain == bg && (f < bf || (f == bf && thr < bt)))
                            })
                        {
                            best = Some((gain, f, thr, default_left, gl2, hl2));
                        }
                    }
                }
            }
            if let Some((_, f, thr, default_left, gl, hl)) = best {
                let l = nodes.len();
                let r = l + 1;
                nodes.push(XgbNode {
                    split: None,
                    weight: 0.0,
                });
                nodes.push(XgbNode {
                    split: None,
                    weight: 0.0,
                });
                nodes[node].split = Some((f, thr, default_left, l, r));
                decisions[slot] = Some((f, thr, default_left, l, r));
                next_frontier.push((l, gl, hl));
                next_frontier.push((r, g_tot - gl, h_tot - hl));
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        // Map arena node -> new slot.
        slot_of_node = vec![u32::MAX; nodes.len()];
        for (new_slot, &(node, _, _)) in next_frontier.iter().enumerate() {
            slot_of_node[node] = new_slot as u32;
        }
        for (row, slot_ref) in node_of_row.iter_mut().enumerate() {
            let slot = *slot_ref;
            if slot == u32::MAX {
                continue;
            }
            match decisions[slot as usize] {
                None => *slot_ref = u32::MAX,
                Some((f, thr, default_left, l, r)) => {
                    let v = feature_value(table, row, f);
                    let left = if v.is_nan() { default_left } else { v <= thr };
                    *slot_ref = slot_of_node[if left { l } else { r }];
                }
            }
        }
        frontier = next_frontier;
    }
    let _ = slot_of_node;

    // Leaf weights.
    for &(node, g, h) in &frontier {
        nodes[node].weight = cfg.eta * (-g / (h + cfg.lambda));
    }
    // Frontier nodes that never split on earlier levels already have their
    // weights… compute weights for every remaining leaf with stats: walk
    // once more — any leaf with weight 0 and no split gets its weight from
    // the accumulated routing below.
    fill_leaf_weights(table, &mut nodes, grad, hess, cfg);
    XgbTree { nodes }
}

/// Ensures every leaf carries the regularised weight of the rows that land
/// in it (levels that stopped early leave zero-initialised leaves).
fn fill_leaf_weights(
    table: &DataTable,
    nodes: &mut [XgbNode],
    grad: &[f64],
    hess: &[f64],
    cfg: &XgbConfig,
) {
    let n = table.n_rows();
    let mut gh: Vec<(f64, f64)> = vec![(0.0, 0.0); nodes.len()];
    for row in 0..n {
        let mut i = 0;
        while let Some((f, thr, default_left, l, r)) = nodes[i].split {
            let v = feature_value(table, row, f);
            let left = if v.is_nan() { default_left } else { v <= thr };
            i = if left { l } else { r };
        }
        gh[i].0 += grad[row];
        gh[i].1 += hess[row];
    }
    for (i, node) in nodes.iter_mut().enumerate() {
        if node.split.is_none() {
            let (g, h) = gh[i];
            node.weight = cfg.eta * (-g / (h + cfg.lambda));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::metrics::{accuracy, rmse};
    use ts_datatable::synth::{generate, SynthSpec};
    use ts_datatable::Task;

    fn binary_table(rows: usize, seed: u64) -> DataTable {
        generate(&SynthSpec {
            rows,
            numeric: 6,
            categorical: 1,
            noise: 0.05,
            concept_depth: 5,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn logistic_boosting_learns() {
        let t = binary_table(3_000, 1);
        let (tr, te) = t.train_test_split(0.8, 1);
        let trainer = XgbTrainer::new(XgbConfig {
            n_rounds: 20,
            ..XgbConfig::new(Objective::Logistic)
        });
        let model = trainer.train(&tr);
        let acc = accuracy(&model.predict_labels(&te), te.labels().as_class().unwrap());
        assert!(acc > 0.8, "xgb accuracy {acc}");
        assert_eq!(model.n_trees(), 20);
    }

    #[test]
    fn accuracy_improves_with_rounds() {
        let t = binary_table(3_000, 2);
        let (tr, te) = t.train_test_split(0.8, 2);
        let acc_at = |rounds: usize| {
            let trainer = XgbTrainer::new(XgbConfig {
                n_rounds: rounds,
                ..XgbConfig::new(Objective::Logistic)
            });
            let m = trainer.train(&tr);
            accuracy(&m.predict_labels(&te), te.labels().as_class().unwrap())
        };
        let a2 = acc_at(2);
        let a25 = acc_at(25);
        assert!(
            a25 >= a2 - 0.01,
            "boosting got worse with rounds: {a2} -> {a25}"
        );
        assert!(a25 > 0.8, "25-round accuracy {a25}");
    }

    #[test]
    fn regression_boosting_beats_mean() {
        let t = generate(&SynthSpec {
            rows: 3_000,
            numeric: 5,
            task: Task::Regression,
            noise: 0.05,
            seed: 3,
            ..Default::default()
        });
        let (tr, te) = t.train_test_split(0.8, 3);
        let trainer = XgbTrainer::new(XgbConfig {
            n_rounds: 30,
            ..XgbConfig::new(Objective::SquaredError)
        });
        let model = trainer.train(&tr);
        let truth = te.labels().as_real().unwrap();
        let pred = model.predict_values(&te);
        let mean = truth.iter().sum::<f64>() / truth.len() as f64;
        let base = rmse(&vec![mean; truth.len()], truth);
        let r = rmse(&pred, truth);
        assert!(r < base * 0.5, "rmse {r} vs mean baseline {base}");
    }

    #[test]
    fn softmax_multiclass_learns() {
        let t = generate(&SynthSpec {
            rows: 3_000,
            numeric: 6,
            task: Task::Classification { n_classes: 4 },
            noise: 0.05,
            concept_depth: 5,
            seed: 4,
            ..Default::default()
        });
        let (tr, te) = t.train_test_split(0.8, 4);
        let trainer = XgbTrainer::new(XgbConfig {
            n_rounds: 10,
            ..XgbConfig::new(Objective::Softmax { n_classes: 4 })
        });
        let model = trainer.train(&tr);
        assert_eq!(model.n_trees(), 40, "10 rounds x 4 classes");
        let acc = accuracy(&model.predict_labels(&te), te.labels().as_class().unwrap());
        assert!(acc > 0.6, "softmax accuracy {acc}");
    }

    #[test]
    fn missing_values_follow_default_direction() {
        let t = generate(&SynthSpec {
            rows: 2_000,
            numeric: 5,
            missing_rate: 0.15,
            seed: 5,
            ..Default::default()
        });
        let trainer = XgbTrainer::new(XgbConfig {
            n_rounds: 10,
            ..XgbConfig::new(Objective::Logistic)
        });
        let model = trainer.train(&t);
        // Predicting over missing-laden data must work and be non-trivial.
        let acc = accuracy(&model.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(acc > 0.7, "accuracy with missing values {acc}");
    }

    #[test]
    fn max_depth_bounds_tree_size() {
        let t = binary_table(2_000, 6);
        let trainer = XgbTrainer::new(XgbConfig {
            n_rounds: 1,
            max_depth: 2,
            ..XgbConfig::new(Objective::Logistic)
        });
        let model = trainer.train(&t);
        assert!(
            model.rounds[0][0].n_nodes() <= 7,
            "depth-2 tree has <= 7 nodes"
        );
    }

    #[test]
    fn training_time_scales_with_rounds() {
        // Boosting is sequential: 8 rounds should take clearly longer than 1.
        let t = binary_table(4_000, 7);
        let time = |rounds: usize| {
            let trainer = XgbTrainer::new(XgbConfig {
                n_rounds: rounds,
                ..XgbConfig::new(Objective::Logistic)
            });
            let start = std::time::Instant::now();
            let _ = trainer.train(&t);
            start.elapsed()
        };
        let t1 = time(1);
        let t8 = time(8);
        assert!(t8 > t1 * 3, "1 round {t1:?} vs 8 rounds {t8:?}");
    }
}
