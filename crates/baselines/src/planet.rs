//! PLANET / Spark-MLlib-style trainer: row partitioning, level-synchronous
//! histogram aggregation, approximate splits.
//!
//! The algorithm (paper §II, *Related Systems*; Panda et al. 2009; MLlib's
//! `RandomForest.run`):
//!
//! 1. Rows are partitioned among machines. Candidate thresholds per numeric
//!    attribute come from an up-front equi-depth binning with `max_bins`
//!    buckets (MLlib's `findSplits`, default `maxBins = 32`) — **one
//!    candidate per bucket**, which is why splits are approximate.
//! 2. Nodes are built **level by level**; each level is one "job": every
//!    machine scans its rows once, building a histogram per (active node,
//!    attribute); histograms are sent to the master and merged; the master
//!    picks each node's best bucket boundary and broadcasts the split
//!    decisions; machines update their row→node assignment.
//! 3. A fixed `stage_overhead` is charged per level-job, modelling Spark's
//!    job-launch/scheduling cost — a first-order reason MLlib keeps CPUs
//!    idle between levels.
//!
//! The level barrier is the paper's central criticism: until the level's
//! slowest histogram pass and its aggregation complete, nothing else runs —
//! there are no CPU-bound subtree-tasks to overlap with the IO.

use std::sync::Arc;
use std::time::Duration;
use ts_datatable::{AttrType, DataTable, Labels, Task};
use ts_netsim::{NetModel, NetStats};
use ts_splits::exact::ColumnSplit;
use ts_splits::histogram::{
    best_cat_from_class_stats, best_cat_from_reg_stats, BinCuts, NumericHistogram,
};
use ts_splits::impurity::{ClassCounts, Impurity, LabelView, NodeStats, RegAgg};
use ts_splits::SplitTest;
use ts_tree::trainer::prediction_from_stats;
use ts_tree::{DecisionTreeModel, Node, SplitInfo};

/// Configuration of the PLANET/MLlib baseline.
#[derive(Debug, Clone)]
pub struct PlanetConfig {
    /// Number of row-partition machines.
    pub n_machines: usize,
    /// Worker threads per machine (1 = the paper's "MLlib (Single Thread)").
    pub threads_per_machine: usize,
    /// Histogram bucket budget (MLlib's `maxBins`).
    pub max_bins: usize,
    /// Maximum tree depth.
    pub dmax: u32,
    /// Leaf threshold.
    pub tau_leaf: u64,
    /// Impurity function.
    pub impurity: Impurity,
    /// Per-level job-launch overhead (Spark stage scheduling).
    pub stage_overhead: Duration,
    /// Link model for histogram aggregation / split broadcast pacing.
    pub net: NetModel,
    /// Modeled compute nanoseconds per row-attribute touch (see
    /// `treeserver::ClusterConfig::work_ns_per_unit`); each machine's level
    /// scan sleeps `rows * candidates * ns / threads_per_machine`.
    pub work_ns_per_unit: u64,
}

impl Default for PlanetConfig {
    fn default() -> Self {
        PlanetConfig {
            n_machines: 4,
            threads_per_machine: 2,
            max_bins: 32,
            dmax: 10,
            tau_leaf: 1,
            impurity: Impurity::Gini,
            stage_overhead: Duration::ZERO,
            net: NetModel::instant(),
            work_ns_per_unit: 0,
        }
    }
}

/// Communication/work counters of one training run.
#[derive(Debug, Clone, Default)]
pub struct PlanetStats {
    /// Levels executed (= synchronous jobs launched).
    pub levels: u64,
    /// Histogram bytes aggregated at the master.
    pub histogram_bytes: u64,
    /// Bytes broadcast back (split decisions).
    pub broadcast_bytes: u64,
}

/// The PLANET/MLlib-style trainer.
pub struct PlanetTrainer {
    cfg: PlanetConfig,
    stats: Arc<NetStats>,
    pool: tspar::ThreadPool,
}

/// A node being grown; its position in the frontier vector is the dense
/// slot id rows are tagged with.
struct Frontier {
    /// Arena index of the node.
    node: usize,
}

impl PlanetTrainer {
    /// Creates a trainer; its thread pool holds
    /// `n_machines * threads_per_machine` threads (the cluster's total
    /// cores).
    pub fn new(cfg: PlanetConfig) -> PlanetTrainer {
        let threads = (cfg.n_machines * cfg.threads_per_machine).max(1);
        let pool = tspar::ThreadPool::new(threads);
        // Node 0 plays the Spark driver; 1..=n the executors.
        let stats = NetStats::new(cfg.n_machines + 1);
        PlanetTrainer { cfg, stats, pool }
    }

    /// Statistics of all runs so far.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Trains one tree over `candidates`, returning the model and run stats.
    pub fn train_tree(
        &self,
        table: &DataTable,
        candidates: &[usize],
    ) -> (DecisionTreeModel, PlanetStats) {
        let mut run = PlanetStats::default();
        let n = table.n_rows();
        let task = table.schema().task;
        let n_classes = task.n_classes().unwrap_or(0);

        // Up-front candidate thresholds per numeric attribute (findSplits).
        let cuts: Vec<Option<BinCuts>> = candidates
            .iter()
            .map(|&a| match table.schema().attr_type(a) {
                AttrType::Numeric => {
                    let ts_datatable::Column::Numeric(v) = table.column(a) else {
                        unreachable!()
                    };
                    // MLlib samples; we bin over all values (same candidates
                    // at our scale).
                    Some(BinCuts::equi_depth(v, self.cfg.max_bins))
                }
                AttrType::Categorical { .. } => None,
            })
            .collect();

        // Row partitions: contiguous chunks per machine.
        let chunk = n.div_ceil(self.cfg.n_machines);
        let ranges: Vec<std::ops::Range<usize>> = (0..self.cfg.n_machines)
            .map(|m| (m * chunk).min(n)..((m + 1) * chunk).min(n))
            .filter(|r| !r.is_empty())
            .collect();

        let mut node_of_row: Vec<u32> = vec![0; n];
        let root_stats = NodeStats::from_view(LabelView::of(table.labels(), n_classes));
        let mut nodes: Vec<Node> =
            vec![Node::leaf(prediction_from_stats(&root_stats), n as u64, 0)];
        let mut frontier: Vec<Frontier> = vec![Frontier { node: 0 }];
        let mut frontier_stats: Vec<NodeStats> = vec![root_stats];
        let mut depth = 0u32;

        while !frontier.is_empty() && depth < self.cfg.dmax {
            run.levels += 1;
            if !self.cfg.stage_overhead.is_zero() {
                std::thread::sleep(self.cfg.stage_overhead);
            }
            // Which frontier nodes may split at all.
            let splittable: Vec<bool> = frontier
                .iter()
                .zip(&frontier_stats)
                .map(|(_, s)| s.n() > self.cfg.tau_leaf && !s.is_pure())
                .collect();

            // --- Map phase: per machine, histograms for (node, attr). ---
            let per_machine: Vec<LevelHistograms> = self.pool.map(&ranges, |m, range| {
                if self.cfg.work_ns_per_unit > 0 {
                    let units = range.len() as u64 * candidates.len() as u64
                        / self.cfg.threads_per_machine.max(1) as u64;
                    std::thread::sleep(Duration::from_nanos(units * self.cfg.work_ns_per_unit));
                }
                let h = build_level_histograms(
                    table,
                    candidates,
                    &cuts,
                    &node_of_row,
                    range.clone(),
                    frontier.len(),
                    &splittable,
                    n_classes,
                );
                // Executor m ships its histograms to the driver.
                let bytes = h.wire_bytes();
                self.stats.record_send(m + 1, 0, bytes);
                let delay = self.cfg.net.delay_for(bytes);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                h
            });
            run.histogram_bytes += per_machine
                .iter()
                .map(|h| h.wire_bytes() as u64)
                .sum::<u64>();

            // --- Reduce phase at the driver: merge + pick best per node. ---
            let mut merged = per_machine
                .into_iter()
                .reduce(|mut a, b| {
                    a.merge(b);
                    a
                })
                .expect("at least one machine");

            let mut decisions: Vec<Option<(usize, ColumnSplit)>> = vec![None; frontier.len()];
            for (f_idx, dec) in decisions.iter_mut().enumerate() {
                if !splittable[f_idx] {
                    continue;
                }
                let mut best: Option<(usize, ColumnSplit)> = None;
                for (c_idx, &attr) in candidates.iter().enumerate() {
                    let split = merged.best_split(f_idx, c_idx, &cuts, self.cfg.impurity);
                    if let Some(s) = split {
                        let wins = match &best {
                            None => true,
                            Some((battr, bs)) => ColumnSplit::challenger_wins(&s, attr, bs, *battr),
                        };
                        if wins {
                            best = Some((attr, s));
                        }
                    }
                }
                *dec = best;
            }

            // --- Broadcast split decisions to every machine. ---
            let bcast_bytes: usize = decisions
                .iter()
                .flatten()
                .map(|(_, s)| s.test.wire_bytes() + 16)
                .sum::<usize>()
                .max(8);
            for m in 1..=ranges.len() {
                self.stats.record_send(0, m, bcast_bytes);
            }
            let delay = self.cfg.net.delay_for(bcast_bytes * ranges.len());
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            run.broadcast_bytes += (bcast_bytes * ranges.len()) as u64;

            // --- Apply splits: grow children, reassign rows. ---
            let mut next_frontier = Vec::new();
            let mut next_stats = Vec::new();
            let mut slot_children: Vec<Option<SlotDecision>> = vec![None; frontier.len()];
            for (f_idx, dec) in decisions.into_iter().enumerate() {
                let Some((attr, split)) = dec else { continue };
                let f = &frontier[f_idx];
                let l_idx = nodes.len();
                let r_idx = l_idx + 1;
                nodes.push(Node::leaf(
                    prediction_from_stats(&split.left),
                    split.n_left(),
                    depth + 1,
                ));
                nodes.push(Node::leaf(
                    prediction_from_stats(&split.right),
                    split.n_right(),
                    depth + 1,
                ));
                let seen = match table.schema().attr_type(attr) {
                    AttrType::Categorical { .. } => {
                        let ts_datatable::Column::Categorical(codes) = table.column(attr) else {
                            unreachable!()
                        };
                        // MLlib tracks per-node category presence through its
                        // stats; we recover it from the merged histogram.
                        Some(merged.seen_categories(f_idx, attr, candidates, codes))
                    }
                    AttrType::Numeric => None,
                };
                nodes[f.node].split = Some((
                    SplitInfo {
                        attr,
                        test: split.test.clone(),
                        gain: split.gain,
                        missing_left: split.missing_left,
                        seen,
                    },
                    l_idx,
                    r_idx,
                ));
                let l_slot = next_frontier.len();
                next_frontier.push(Frontier { node: l_idx });
                next_stats.push(split.left.clone());
                let r_slot = next_frontier.len();
                next_frontier.push(Frontier { node: r_idx });
                next_stats.push(split.right.clone());
                slot_children[f_idx] = Some((l_slot, r_slot, split.test, split.missing_left, attr));
            }

            // Row reassignment (each machine over its rows; the bitvector
            // stays local — PLANET ships the model, not row ids).
            self.pool.for_each_mut(&mut node_of_row, |row, slot| {
                let cur = *slot as usize;
                if cur == u32::MAX as usize {
                    return;
                }
                match &slot_children[cur] {
                    None => *slot = u32::MAX, // settled in a leaf
                    Some((l, r, test, missing_left, attr)) => {
                        let v = table.value(row, *attr);
                        let left = test.goes_left(v).unwrap_or(*missing_left);
                        *slot = if left { *l as u32 } else { *r as u32 };
                    }
                }
            });

            frontier = next_frontier;
            frontier_stats = next_stats;
            depth += 1;
        }

        (DecisionTreeModel::new(nodes, task), run)
    }

    /// Trains a bagged forest: trees sequentially (each tree is a full
    /// level-synchronous pass, as MLlib effectively serialises tree groups),
    /// per-tree column subsets of `sqrt(m)` like the paper's forests.
    pub fn train_forest(
        &self,
        table: &DataTable,
        n_trees: usize,
        seed: u64,
    ) -> (ts_tree::ForestModel, PlanetStats) {
        use tsrand::seq::SliceRandom;
        use tsrand::SeedableRng;
        // MLlib grows the trees of a forest through a shared node queue, so
        // Spark stages are amortised across the group rather than paid per
        // tree per level; model that by dividing the per-level overhead.
        let amortised = PlanetTrainer {
            cfg: PlanetConfig {
                stage_overhead: self.cfg.stage_overhead / n_trees.max(1) as u32,
                ..self.cfg.clone()
            },
            stats: Arc::clone(&self.stats),
            pool: tspar::ThreadPool::new(
                (self.cfg.n_machines * self.cfg.threads_per_machine).max(1),
            ),
        };
        let this = &amortised;
        let mut rng = tsrand::rngs::StdRng::seed_from_u64(seed);
        let m = table.n_attrs();
        let count = ((m as f64).sqrt().round() as usize).clamp(1, m);
        let mut total = PlanetStats::default();
        let trees: Vec<DecisionTreeModel> = (0..n_trees)
            .map(|_| {
                let mut cols: Vec<usize> = (0..m).collect();
                cols.shuffle(&mut rng);
                let mut c: Vec<usize> = cols[..count].to_vec();
                c.sort_unstable();
                let (t, s) = this.train_tree(table, &c);
                total.levels += s.levels;
                total.histogram_bytes += s.histogram_bytes;
                total.broadcast_bytes += s.broadcast_bytes;
                t
            })
            .collect();
        (ts_tree::ForestModel::new(trees, table.schema().task), total)
    }
}

/// Per-category classification stats: counts per category + missing rows.
type CatClassStats = (Vec<ClassCounts>, ClassCounts);
/// Per-category regression stats: aggregates per category + missing rows.
type CatRegStats = (Vec<RegAgg>, RegAgg);
/// A split decision applied to a frontier slot: `(left slot, right slot,
/// test, missing_left, attr)`.
type SlotDecision = (usize, usize, SplitTest, bool, usize);

/// One machine's histograms for every (frontier node, candidate attr).
struct LevelHistograms {
    /// `numeric[f_idx][c_idx]`: histogram or `None` for categorical attrs.
    numeric: Vec<Vec<Option<NumericHistogram>>>,
    /// `cat_class[f_idx][c_idx]`: per-category class counts (classification).
    cat_class: Vec<Vec<Option<CatClassStats>>>,
    /// `cat_reg[f_idx][c_idx]`: per-category regression stats.
    cat_reg: Vec<Vec<Option<CatRegStats>>>,
}

impl LevelHistograms {
    fn wire_bytes(&self) -> usize {
        let mut b = 0;
        for row in &self.numeric {
            for h in row.iter().flatten() {
                b += h.wire_bytes();
            }
        }
        for row in &self.cat_class {
            for (pv, _) in row.iter().flatten() {
                b += (pv.len() + 1) * pv.first().map_or(8, |c| c.counts().len() * 8);
            }
        }
        for row in &self.cat_reg {
            for (pv, _) in row.iter().flatten() {
                b += (pv.len() + 1) * 24;
            }
        }
        b + 16
    }

    fn merge(&mut self, other: LevelHistograms) {
        for (a, b) in self.numeric.iter_mut().zip(other.numeric) {
            for (x, y) in a.iter_mut().zip(b) {
                match (x, y) {
                    (Some(x), Some(y)) => x.merge(&y),
                    (x @ None, y @ Some(_)) => *x = y,
                    _ => {}
                }
            }
        }
        for (a, b) in self.cat_class.iter_mut().zip(other.cat_class) {
            for (x, y) in a.iter_mut().zip(b) {
                match (x, y) {
                    (Some((xp, xm)), Some((yp, ym))) => {
                        for (p, q) in xp.iter_mut().zip(&yp) {
                            p.merge(q);
                        }
                        xm.merge(&ym);
                    }
                    (x @ None, y @ Some(_)) => *x = y,
                    _ => {}
                }
            }
        }
        for (a, b) in self.cat_reg.iter_mut().zip(other.cat_reg) {
            for (x, y) in a.iter_mut().zip(b) {
                match (x, y) {
                    (Some((xp, xm)), Some((yp, ym))) => {
                        for (p, q) in xp.iter_mut().zip(&yp) {
                            p.merge(q);
                        }
                        xm.merge(&ym);
                    }
                    (x @ None, y @ Some(_)) => *x = y,
                    _ => {}
                }
            }
        }
    }

    fn best_split(
        &mut self,
        f_idx: usize,
        c_idx: usize,
        cuts: &[Option<BinCuts>],
        imp: Impurity,
    ) -> Option<ColumnSplit> {
        if let Some(h) = &self.numeric[f_idx][c_idx] {
            return h.best_split(cuts[c_idx].as_ref()?, imp);
        }
        if let Some((pv, missing)) = &self.cat_class[f_idx][c_idx] {
            return best_cat_from_class_stats(pv, missing, imp);
        }
        if let Some((pv, missing)) = &self.cat_reg[f_idx][c_idx] {
            return best_cat_from_reg_stats(pv, missing);
        }
        None
    }

    fn seen_categories(
        &self,
        f_idx: usize,
        attr: usize,
        candidates: &[usize],
        _codes: &[u32],
    ) -> Vec<u32> {
        let c_idx = candidates
            .iter()
            .position(|&a| a == attr)
            .expect("attr in candidates");
        if let Some((pv, _)) = &self.cat_class[f_idx][c_idx] {
            return pv
                .iter()
                .enumerate()
                .filter(|(_, c)| c.total() > 0)
                .map(|(i, _)| i as u32)
                .collect();
        }
        if let Some((pv, _)) = &self.cat_reg[f_idx][c_idx] {
            return pv
                .iter()
                .enumerate()
                .filter(|(_, a)| a.n > 0)
                .map(|(i, _)| i as u32)
                .collect();
        }
        Vec::new()
    }
}

/// Builds one machine's histograms: one scan over its row range.
#[allow(clippy::too_many_arguments)]
fn build_level_histograms(
    table: &DataTable,
    candidates: &[usize],
    cuts: &[Option<BinCuts>],
    node_of_row: &[u32],
    range: std::ops::Range<usize>,
    n_frontier: usize,
    splittable: &[bool],
    n_classes: u32,
) -> LevelHistograms {
    let task = table.schema().task;
    let mut h = LevelHistograms {
        numeric: vec![vec![None; candidates.len()]; n_frontier],
        cat_class: vec![vec![None; candidates.len()]; n_frontier],
        cat_reg: vec![vec![None; candidates.len()]; n_frontier],
    };
    // Initialise slots lazily per (node, attr) to keep memory tight.
    for row in range {
        let slot = node_of_row[row];
        if slot == u32::MAX {
            continue;
        }
        let f_idx = slot as usize;
        if !splittable[f_idx] {
            continue;
        }
        for (c_idx, &attr) in candidates.iter().enumerate() {
            match (table.column(attr), table.labels(), task) {
                (ts_datatable::Column::Numeric(v), labels, _) => {
                    let hist = h.numeric[f_idx][c_idx].get_or_insert_with(|| {
                        let nb = cuts[c_idx].as_ref().map_or(1, BinCuts::n_bins);
                        match task {
                            Task::Classification { .. } => {
                                NumericHistogram::new_class(nb, n_classes)
                            }
                            Task::Regression => NumericHistogram::new_reg(nb),
                        }
                    });
                    let cut = cuts[c_idx].as_ref().expect("numeric attr has cuts");
                    match labels {
                        Labels::Class(ys) => hist.add_class(cut, v[row], ys[row]),
                        Labels::Real(ys) => hist.add_reg(cut, v[row], ys[row]),
                    }
                }
                (ts_datatable::Column::Categorical(codes), Labels::Class(ys), _) => {
                    let (pv, missing) = h.cat_class[f_idx][c_idx].get_or_insert_with(|| {
                        let AttrType::Categorical { n_values } = table.schema().attr_type(attr)
                        else {
                            unreachable!()
                        };
                        (
                            vec![ClassCounts::new(n_classes); n_values as usize],
                            ClassCounts::new(n_classes),
                        )
                    });
                    let c = codes[row];
                    if c == ts_datatable::MISSING_CAT {
                        missing.add(ys[row]);
                    } else {
                        pv[c as usize].add(ys[row]);
                    }
                }
                (ts_datatable::Column::Categorical(codes), Labels::Real(ys), _) => {
                    let (pv, missing) = h.cat_reg[f_idx][c_idx].get_or_insert_with(|| {
                        let AttrType::Categorical { n_values } = table.schema().attr_type(attr)
                        else {
                            unreachable!()
                        };
                        (
                            vec![RegAgg::default(); n_values as usize],
                            RegAgg::default(),
                        )
                    });
                    let c = codes[row];
                    if c == ts_datatable::MISSING_CAT {
                        missing.add(ys[row]);
                    } else {
                        pv[c as usize].add(ys[row]);
                    }
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::metrics::{accuracy, rmse};
    use ts_datatable::synth::{generate, SynthSpec};
    use ts_tree::{train_tree, TrainParams};

    fn class_table(rows: usize, seed: u64) -> DataTable {
        generate(&SynthSpec {
            rows,
            numeric: 5,
            categorical: 2,
            cat_cardinality: 6,
            noise: 0.05,
            concept_depth: 5,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn planet_tree_learns_the_concept() {
        let t = class_table(4_000, 1);
        let (tr, te) = t.train_test_split(0.8, 1);
        let trainer = PlanetTrainer::new(PlanetConfig::default());
        let all: Vec<usize> = (0..tr.n_attrs()).collect();
        let (model, stats) = trainer.train_tree(&tr, &all);
        let acc = accuracy(&model.predict_labels(&te), te.labels().as_class().unwrap());
        assert!(acc > 0.75, "planet accuracy {acc}");
        assert!(stats.levels >= 3);
        assert!(stats.histogram_bytes > 0);
        assert!(stats.broadcast_bytes > 0);
    }

    #[test]
    fn planet_is_at_most_as_good_as_exact_on_train() {
        // Binned candidates are a subset of exact candidates, so training
        // impurity reduction can't beat the exact tree of the same depth.
        let t = class_table(3_000, 2);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let trainer = PlanetTrainer::new(PlanetConfig {
            max_bins: 8,
            ..Default::default()
        });
        let (approx, _) = trainer.train_tree(&t, &all);
        let exact = train_tree(&t, &all, &TrainParams::for_task(t.schema().task), 0);
        let acc_a = accuracy(&approx.predict_labels(&t), t.labels().as_class().unwrap());
        let acc_e = accuracy(&exact.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(
            acc_a <= acc_e + 0.02,
            "approx train acc {acc_a} should not beat exact {acc_e}"
        );
    }

    #[test]
    fn planet_respects_dmax_and_tau_leaf() {
        let t = class_table(2_000, 3);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let trainer = PlanetTrainer::new(PlanetConfig {
            dmax: 4,
            tau_leaf: 100,
            ..Default::default()
        });
        let (model, stats) = trainer.train_tree(&t, &all);
        assert!(model.max_depth() <= 4);
        assert!(stats.levels <= 4);
        for n in &model.nodes {
            if !n.is_leaf() {
                assert!(n.n_rows > 100);
            }
        }
    }

    #[test]
    fn planet_regression_reduces_rmse() {
        let t = generate(&SynthSpec {
            rows: 3_000,
            numeric: 5,
            categorical: 1,
            task: Task::Regression,
            seed: 4,
            ..Default::default()
        });
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let trainer = PlanetTrainer::new(PlanetConfig {
            impurity: Impurity::Variance,
            ..Default::default()
        });
        let (model, _) = trainer.train_tree(&t, &all);
        let truth = t.labels().as_real().unwrap();
        let pred = model.predict_values(&t);
        let mean = truth.iter().sum::<f64>() / truth.len() as f64;
        let base = rmse(&vec![mean; truth.len()], truth);
        assert!(rmse(&pred, truth) < base * 0.7);
    }

    #[test]
    fn planet_histogram_bytes_scale_with_machines() {
        let t = class_table(2_000, 5);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let small = PlanetTrainer::new(PlanetConfig {
            n_machines: 2,
            ..Default::default()
        });
        let big = PlanetTrainer::new(PlanetConfig {
            n_machines: 8,
            ..Default::default()
        });
        let (_, s2) = small.train_tree(&t, &all);
        let (_, s8) = big.train_tree(&t, &all);
        assert!(
            s8.histogram_bytes > s2.histogram_bytes * 2,
            "8 machines {} vs 2 machines {}",
            s8.histogram_bytes,
            s2.histogram_bytes
        );
    }

    #[test]
    fn planet_forest_trains_n_trees() {
        let t = class_table(1_500, 6);
        let trainer = PlanetTrainer::new(PlanetConfig::default());
        let (forest, stats) = trainer.train_forest(&t, 5, 9);
        assert_eq!(forest.n_trees(), 5);
        assert!(stats.levels >= 5);
        let acc = accuracy(&forest.predict_labels(&t), t.labels().as_class().unwrap());
        assert!(acc > 0.7, "forest accuracy {acc}");
    }

    #[test]
    fn stage_overhead_slows_training() {
        let t = class_table(800, 7);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let fast = PlanetTrainer::new(PlanetConfig {
            dmax: 5,
            ..Default::default()
        });
        let slow = PlanetTrainer::new(PlanetConfig {
            dmax: 5,
            stage_overhead: Duration::from_millis(30),
            ..Default::default()
        });
        let t0 = std::time::Instant::now();
        let _ = fast.train_tree(&t, &all);
        let fast_time = t0.elapsed();
        let t0 = std::time::Instant::now();
        let _ = slow.train_tree(&t, &all);
        let slow_time = t0.elapsed();
        assert!(
            slow_time > fast_time + Duration::from_millis(100),
            "fast {fast_time:?} slow {slow_time:?}"
        );
    }
}
