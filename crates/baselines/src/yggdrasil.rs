//! Yggdrasil-style trainer: column-partitioned **exact** splits, but
//! level-synchronous with a master-broadcast row→child bitvector.
//!
//! Yggdrasil (Abuzaid et al., NIPS 2016) shares TreeServer's column
//! partitioning and exactness, but (paper §II) it "still adopts a top-down
//! level-by-level node construction order" and "uses a master to broadcast a
//! bitvector of row-to-child-node assignment to all machines, causing a
//! single point of transmission bottleneck". This module reproduces exactly
//! that communication pattern so the `ablation_delegate` bench can compare
//! the master's outbound traffic against TreeServer's delegate-worker
//! design, where row sets travel worker-to-worker.
//!
//! Because the split kernels are the shared exact ones, the produced model
//! is bit-identical to the local exact trainer — asserted in tests.

use std::collections::HashMap;
use std::sync::Arc;
use ts_datatable::{AttrType, DataTable, SortedColumn};
use ts_netsim::{NetModel, NetStats};
use ts_splits::exact::ColumnSplit;
use ts_splits::impurity::{Impurity, LabelView, NodeStats};
use ts_splits::partition_rows;
use ts_splits::sorted::{best_split_at, distinct_categories_at, ColumnRef, NodeRows, RowBitmap};
use ts_tree::trainer::prediction_from_stats;
use ts_tree::{DecisionTreeModel, Node, SplitInfo};

/// Configuration of the Yggdrasil baseline.
#[derive(Debug, Clone)]
pub struct YggdrasilConfig {
    /// Number of column-partition machines.
    pub n_machines: usize,
    /// Maximum depth.
    pub dmax: u32,
    /// Leaf threshold.
    pub tau_leaf: u64,
    /// Impurity function.
    pub impurity: Impurity,
    /// Link model (applied to the bitvector broadcast pacing).
    pub net: NetModel,
}

impl Default for YggdrasilConfig {
    fn default() -> Self {
        YggdrasilConfig {
            n_machines: 4,
            dmax: 10,
            tau_leaf: 1,
            impurity: Impurity::Gini,
            net: NetModel::instant(),
        }
    }
}

/// Communication counters of one run.
#[derive(Debug, Clone, Default)]
pub struct YggdrasilStats {
    /// Levels executed.
    pub levels: u64,
    /// Bitvector bytes the master broadcast (the §V bottleneck).
    pub master_broadcast_bytes: u64,
    /// Split-condition bytes workers sent to the master.
    pub condition_bytes: u64,
}

/// The Yggdrasil-style trainer.
pub struct YggdrasilTrainer {
    cfg: YggdrasilConfig,
    stats: Arc<NetStats>,
}

impl YggdrasilTrainer {
    /// Creates a trainer (machine 0 is the master).
    pub fn new(cfg: YggdrasilConfig) -> YggdrasilTrainer {
        let stats = NetStats::new(cfg.n_machines + 1);
        YggdrasilTrainer { cfg, stats }
    }

    /// The shared network statistics.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Trains one exact tree; returns the model and the run's counters.
    pub fn train_tree(
        &self,
        table: &DataTable,
        candidates: &[usize],
    ) -> (DecisionTreeModel, YggdrasilStats) {
        let mut run = YggdrasilStats::default();
        let n = table.n_rows();
        let n_classes = table.schema().task.n_classes().unwrap_or(0);
        // Column -> machine (round-robin, no replication in Yggdrasil).
        let machine_of_col = |attr: usize| 1 + attr % self.cfg.n_machines;

        // Each machine presorts its columns once per tree; every level then
        // reuses the shared sorted-column engine (`ts_splits::sorted`), so
        // the model stays bit-identical to the local exact trainer.
        let sorted: HashMap<usize, SortedColumn> = candidates
            .iter()
            .map(|&a| (a, SortedColumn::build(table.column(a))))
            .collect();
        let view = LabelView::of(table.labels(), n_classes);
        let mut mask = RowBitmap::with_rows(n);

        let root_rows: Vec<u32> = (0..n as u32).collect();
        let root_stats = NodeStats::from_view(view);
        let mut nodes = vec![Node::leaf(prediction_from_stats(&root_stats), n as u64, 0)];
        // Frontier: (arena node, rows, stats).
        let mut frontier: Vec<(usize, Vec<u32>, NodeStats)> = vec![(0, root_rows, root_stats)];
        let mut depth = 0u32;

        while !frontier.is_empty() && depth < self.cfg.dmax {
            run.levels += 1;
            let mut next = Vec::new();
            let mut level_bitvector_bytes = 0u64;
            for (node, rows, stats) in frontier {
                if stats.n() <= self.cfg.tau_leaf || stats.is_pure() {
                    continue;
                }
                // Every machine evaluates its own columns exactly and sends
                // its best condition to the master. Node rows are strictly
                // ascending (the root is 0..n and partitions preserve
                // order), so the engine's node mask is valid here.
                let whole = rows.len() == n;
                let mut best: Option<(usize, ColumnSplit)> = None;
                {
                    let (node, mask_ref) = if whole {
                        (NodeRows::All(n), None)
                    } else {
                        mask.insert_all(&rows);
                        (NodeRows::Subset(&rows), Some(&mask))
                    };
                    for &attr in candidates {
                        let cref = ColumnRef::of_column(
                            table.column(attr),
                            &sorted[&attr],
                            table.schema().attr_type(attr),
                        );
                        if let Some(s) =
                            best_split_at(cref, node, mask_ref, view, self.cfg.impurity)
                        {
                            let wins = match &best {
                                None => true,
                                Some((battr, bs)) => {
                                    ColumnSplit::challenger_wins(&s, attr, bs, *battr)
                                }
                            };
                            if wins {
                                best = Some((attr, s));
                            }
                        }
                    }
                }
                if !whole {
                    mask.remove_all(&rows);
                }
                // Condition messages: one per machine holding candidates.
                let senders: std::collections::HashSet<usize> =
                    candidates.iter().map(|&a| machine_of_col(a)).collect();
                for &m in &senders {
                    self.stats.record_send(m, 0, 32);
                    run.condition_bytes += 32;
                }
                let Some((attr, split)) = best else { continue };

                // The winning machine computes the row→child bits for this
                // node; the MASTER then broadcasts them to every machine
                // (this is the bottleneck TreeServer §V removes).
                let bits = rows.len().div_ceil(8) as u64;
                let winner_machine = machine_of_col(attr);
                self.stats.record_send(winner_machine, 0, bits as usize);
                for m in 1..=self.cfg.n_machines {
                    self.stats.record_send(0, m, bits as usize);
                    level_bitvector_bytes += bits;
                }

                // Grow the tree (identical structure to the exact trainer).
                let (l_rows, r_rows) =
                    partition_rows(table.column(attr), &rows, &split.test, split.missing_left);
                let seen = match table.schema().attr_type(attr) {
                    AttrType::Categorical { n_values } => Some(if whole {
                        sorted[&attr].distinct().to_vec()
                    } else {
                        let codes = table
                            .column(attr)
                            .as_categorical()
                            .expect("categorical winner must be a categorical column");
                        distinct_categories_at(codes, NodeRows::Subset(&rows), n_values)
                    }),
                    AttrType::Numeric => None,
                };
                let l_idx = nodes.len();
                let r_idx = l_idx + 1;
                nodes.push(Node::leaf(
                    prediction_from_stats(&split.left),
                    split.n_left(),
                    depth + 1,
                ));
                nodes.push(Node::leaf(
                    prediction_from_stats(&split.right),
                    split.n_right(),
                    depth + 1,
                ));
                nodes[node].split = Some((
                    SplitInfo {
                        attr,
                        test: split.test.clone(),
                        gain: split.gain,
                        missing_left: split.missing_left,
                        seen,
                    },
                    l_idx,
                    r_idx,
                ));
                next.push((l_idx, l_rows, split.left.clone()));
                next.push((r_idx, r_rows, split.right.clone()));
            }
            run.master_broadcast_bytes += level_bitvector_bytes;
            let delay = self.cfg.net.delay_for(level_bitvector_bytes as usize);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            frontier = next;
            depth += 1;
        }
        (DecisionTreeModel::new(nodes, table.schema().task), run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::synth::{generate, SynthSpec};
    use ts_tree::{train_tree, TrainParams};

    fn sample(rows: usize, seed: u64) -> DataTable {
        generate(&SynthSpec {
            rows,
            numeric: 4,
            categorical: 2,
            noise: 0.05,
            concept_depth: 5,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn yggdrasil_is_exact() {
        // Same kernels, same tie-breaks: the model must equal the local
        // exact trainer's bit for bit (after canonical node ordering — both
        // build in different orders).
        let t = sample(2_000, 1);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let (model, _) = YggdrasilTrainer::new(YggdrasilConfig::default()).train_tree(&t, &all);
        let reference = train_tree(&t, &all, &TrainParams::for_task(t.schema().task), 0);
        assert_eq!(model.canonicalize(), reference.canonicalize());
    }

    #[test]
    fn broadcast_bytes_scale_with_rows_and_machines() {
        let t = sample(4_000, 2);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let (_, small) = YggdrasilTrainer::new(YggdrasilConfig {
            n_machines: 2,
            ..Default::default()
        })
        .train_tree(&t, &all);
        let (_, big) = YggdrasilTrainer::new(YggdrasilConfig {
            n_machines: 8,
            ..Default::default()
        })
        .train_tree(&t, &all);
        assert!(
            big.master_broadcast_bytes >= small.master_broadcast_bytes * 3,
            "8 machines {} vs 2 machines {}",
            big.master_broadcast_bytes,
            small.master_broadcast_bytes
        );
        // The root level alone broadcasts ~n/8 bytes per machine.
        assert!(small.master_broadcast_bytes as usize >= 2 * (4_000 / 8));
    }

    #[test]
    fn master_is_the_hot_sender() {
        let t = sample(3_000, 3);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let trainer = YggdrasilTrainer::new(YggdrasilConfig::default());
        let _ = trainer.train_tree(&t, &all);
        let snaps = trainer.stats().snapshot_all();
        let master_sent = snaps[0].sent_bytes;
        let max_worker_sent = snaps[1..].iter().map(|s| s.sent_bytes).max().unwrap();
        assert!(
            master_sent > max_worker_sent,
            "master {master_sent} should out-send every worker ({max_worker_sent})"
        );
    }

    #[test]
    fn respects_dmax() {
        let t = sample(1_500, 4);
        let all: Vec<usize> = (0..t.n_attrs()).collect();
        let (model, stats) = YggdrasilTrainer::new(YggdrasilConfig {
            dmax: 3,
            ..Default::default()
        })
        .train_tree(&t, &all);
        assert!(model.max_depth() <= 3);
        assert!(stats.levels <= 3);
    }
}
