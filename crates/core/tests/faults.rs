//! Seeded fault injection through `ClusterConfig::faults`: a `FaultPlan`
//! crash trigger kills a key worker right after the n-th subtree delegation
//! cluster-wide, and the engine's recovery (re-replication + tree restart)
//! must still produce *exactly* the fault-free model. Message-level plans
//! (drops, delays, duplicates) exercise the acked/retried fabric instead:
//! training must terminate with the byte-identical fault-free model under
//! any fault seed. See `docs/TESTING.md` and `docs/PROTOCOL.md`.

use std::time::Duration;
use treeserver::{Cluster, ClusterConfig, JobResult, JobSpec, RecoveryError};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::DataTable;
use ts_netsim::FaultPlan;
use ts_tree::{train_tree, TrainParams};
use tscheck::prelude::*;

fn table(seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows: 3_000,
        numeric: 6,
        categorical: 0,
        noise: 0.05,
        concept_depth: 5,
        seed,
        ..Default::default()
    })
}

/// Subtree-heavy shape so delegations happen early and often; replication 2
/// so a crashed worker's columns survive on a replica.
fn faulty_cfg(faults: Option<FaultPlan>) -> ClusterConfig {
    ClusterConfig {
        n_workers: 4,
        compers_per_worker: 2,
        replication: 2,
        tau_d: 100,
        tau_dfs: 400,
        faults,
        ..Default::default()
    }
}

#[test]
fn injected_crash_recovers_and_matches_reference() {
    let t = table(17);
    let params = TrainParams {
        dmax: 10,
        ..TrainParams::for_task(t.schema().task)
    };
    let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);

    let plan = FaultPlan::new(0xFA11).with_crash_at_delegation(3);
    let cluster = Cluster::launch(faulty_cfg(Some(plan)), &t);
    let model = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert_eq!(
        model.canonicalize(),
        reference.canonicalize(),
        "crash-recovered tree diverged from the exact trainer"
    );
}

#[test]
fn forest_with_injected_crash_matches_fault_free_forest() {
    let t = table(23);
    let spec = || JobSpec::random_forest(t.schema().task, 6).with_seed(21);
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::launch(faulty_cfg(faults), &t);
        let f = cluster.train(spec()).into_forest();
        cluster.shutdown();
        f.trees.iter().map(|m| m.canonicalize()).collect::<Vec<_>>()
    };
    let clean = run(None);
    let crashed = run(Some(FaultPlan::new(7).with_crash_at_delegation(4)));
    assert_eq!(clean.len(), 6);
    assert_eq!(
        clean, crashed,
        "restarted trees must reuse the same spec/seed and land on the same forest"
    );
}

/// The trigger is observable: exactly one `CrashInjected` and one
/// `WorkerCrashed`, and the recorded delegation index matches the plan.
#[cfg(feature = "obs")]
#[test]
fn injected_crash_is_recorded_by_obs() {
    let t = table(29);
    let mut cfg = faulty_cfg(Some(FaultPlan::new(99).with_crash_at_delegation(2)));
    cfg.obs = ts_obs::ObsConfig::enabled();
    let cluster = Cluster::launch(cfg, &t);
    let _ = cluster.train(JobSpec::decision_tree(t.schema().task));
    let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
    cluster.shutdown();

    let m = rec.metrics();
    assert_eq!(m.counter("crashes_injected"), 1);
    assert_eq!(m.counter("workers_crashed"), 1);
    let injected: Vec<_> = rec
        .events()
        .iter()
        .filter_map(|e| match e.event {
            ts_obs::Event::CrashInjected {
                node,
                at_delegation,
            } => Some((node, at_delegation)),
            _ => None,
        })
        .collect();
    assert_eq!(injected.len(), 1);
    let (node, at) = injected[0];
    assert!((1..=4).contains(&node), "killed a worker, not the master");
    assert_eq!(at, 2, "fired at the plan's delegation index");
}

/// A message-fault plan hitting every plane: 5% drops, 5% delays, 5%
/// duplicates, all derived purely from `(seed, edge, seq)`.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_message_drops(0.05)
        .with_message_delays(0.05, Duration::from_millis(2))
        .with_message_duplicates(0.05)
}

/// Serialized canonical form — "byte-identical" in the strictest sense.
fn tree_bytes(m: &ts_tree::DecisionTreeModel) -> String {
    m.canonicalize().to_json()
}

/// Fault-free golden run for the message-fault sweep, trained once.
fn golden_bytes() -> &'static str {
    static GOLDEN: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    GOLDEN.get_or_init(|| {
        let t = table(17);
        let cluster = Cluster::launch(faulty_cfg(None), &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        tree_bytes(&model)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Sweep fault seeds: under drops + delays + duplicates the acked/
    /// retried fabric still delivers every message exactly once and in
    /// order, so training terminates and the model is byte-identical to
    /// the fault-free golden run.
    #[test]
    fn lossy_fabric_training_is_byte_identical(fault_seed in any::<u64>()) {
        let t = table(17);
        let cluster = Cluster::launch(faulty_cfg(Some(lossy_plan(fault_seed))), &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        prop_assert_eq!(tree_bytes(&model), golden_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Scheduler-invariant property (`ts-sched`): across fault seeds and
    /// worker counts, with work stealing on and a lossy message plan,
    /// every planned task is executed **exactly once** — the multiset of
    /// dispatch events equals the multiset of worker-side executions
    /// equals the multiset of folded results, per `(task, node)` — and
    /// the model stays byte-identical to the fault-free golden run.
    #[cfg(feature = "obs")]
    #[test]
    fn stealing_executes_every_planned_task_exactly_once(
        fault_seed in any::<u64>(),
        n_workers in 2usize..=5,
    ) {
        let t = table(17);
        let mut cfg = faulty_cfg(Some(lossy_plan(fault_seed)));
        cfg.n_workers = n_workers;
        cfg.replication = 2.min(n_workers);
        cfg.steal = true;
        cfg.obs = ts_obs::ObsConfig::enabled();
        let cluster = Cluster::launch(cfg, &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
        cluster.shutdown();

        prop_assert_eq!(tree_bytes(&model), golden_bytes());
        prop_assert_eq!(rec.events_lost(), 0, "ring overflow would blind the count");

        // (task, node) multisets of the three lifecycle stages.
        let mut dispatched: Vec<(u64, u32)> = Vec::new();
        let mut computed: Vec<(u64, u32)> = Vec::new();
        let mut folded: Vec<(u64, u32)> = Vec::new();
        for e in rec.events().iter() {
            match e.event {
                ts_obs::Event::ColumnTaskDispatched { task, node, .. } => {
                    dispatched.push((task, node));
                }
                ts_obs::Event::SubtreeTaskDelegated { task, key_worker, .. } => {
                    dispatched.push((task, key_worker));
                }
                ts_obs::Event::TaskComputed { task, node, .. } => computed.push((task, node)),
                ts_obs::Event::ColumnTaskCompleted { task, node, .. } => {
                    folded.push((task, node));
                }
                ts_obs::Event::SubtreeTaskBuilt { task, node, .. } => folded.push((task, node)),
                _ => {}
            }
        }
        dispatched.sort_unstable();
        computed.sort_unstable();
        folded.sort_unstable();
        prop_assert!(!dispatched.is_empty(), "training dispatched no tasks?");
        prop_assert_eq!(
            &dispatched, &computed,
            "a dispatched task shard was executed zero or multiple times"
        );
        prop_assert_eq!(
            &dispatched, &folded,
            "a dispatched task shard was folded zero or multiple times"
        );
    }
}

/// The same guarantee holds for boosting, where label broadcasts between
/// rounds ride the data plane too. Mirrors the cluster shape of
/// `gbt_survives_worker_crash_between_rounds` (3 workers, τ_D = 300,
/// τ_dfs = 1 200, regression view).
#[test]
fn gbt_under_message_faults_matches_clean_run() {
    let t = generate(&SynthSpec {
        rows: 1_200,
        numeric: 4,
        task: ts_datatable::Task::Regression,
        seed: 23,
        ..Default::default()
    });
    let cfg = |faults: Option<FaultPlan>| ClusterConfig {
        n_workers: 3,
        compers_per_worker: 2,
        tau_d: 300,
        tau_dfs: 1_200,
        faults,
        ..Default::default()
    };
    let run = |faults: Option<FaultPlan>| {
        let view = treeserver::gbt::regression_view(&t, vec![0.0; t.n_rows()]);
        let cluster = Cluster::launch(cfg(faults), &view);
        let model = treeserver::train_gbt_on(
            &cluster,
            &t,
            treeserver::GbtConfig::for_task(ts_datatable::Task::Regression).with_rounds(3),
        );
        cluster.shutdown();
        model
    };
    let clean = run(None);
    for fault_seed in [0xA1u64, 0xB2, 0xC3] {
        assert_eq!(
            run(Some(lossy_plan(fault_seed))),
            clean,
            "gbt under fault seed {fault_seed:#x} diverged from the clean run"
        );
    }
}

/// Losing the last replica of a column is unrecoverable, and must fail the
/// job cleanly — a structured `JobResult::Failed`, not a panic.
#[test]
fn losing_the_last_replica_fails_the_job_cleanly() {
    let t = table(41);
    let cluster = Cluster::launch(
        ClusterConfig {
            n_workers: 2,
            compers_per_worker: 1,
            replication: 1, // no replica to fall back on
            tau_d: 100,
            tau_dfs: 400,
            ..Default::default()
        },
        &t,
    );
    cluster.kill_worker(1);
    let result = cluster.train(JobSpec::decision_tree(t.schema().task));
    assert!(
        matches!(result, JobResult::Failed(RecoveryError::ColumnLost { .. })),
        "expected a ColumnLost failure, got {:?}",
        result.failure()
    );
    // The degradation is sticky: later submissions fail immediately too.
    let again = cluster.train(JobSpec::decision_tree(t.schema().task));
    assert!(matches!(again, JobResult::Failed(_)));
    cluster.shutdown();
}

/// The acceptance scenario of the reliability layer: a worker crashes
/// mid-training *silently* (no announced `kill_worker` call — the injected
/// trigger just shuts the worker down). The master must *detect* the crash
/// via missed heartbeats, recover, and still produce the exact model — with
/// the detection and the fabric's retries visible in the obs event log.
#[cfg(feature = "obs")]
#[test]
fn silent_crash_is_detected_by_heartbeats_and_recovered() {
    let t = table(37);
    let params = TrainParams {
        dmax: 10,
        ..TrainParams::for_task(t.schema().task)
    };
    let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);

    // Message faults keep the reliable fabric on (so retries are possible
    // and observable); the crash trigger silences a worker mid-subtree.
    let plan = lossy_plan(0xDEAD_BEA7).with_crash_at_delegation(3);
    let mut cfg = faulty_cfg(Some(plan));
    cfg.heartbeat_interval = Duration::from_millis(5);
    cfg.heartbeat_miss_threshold = 10; // 50 ms lease: fast detection in tests
    cfg.obs = ts_obs::ObsConfig::enabled();
    let cluster = Cluster::launch(cfg, &t);
    let model = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
    cluster.shutdown();

    assert_eq!(
        model.canonicalize(),
        reference.canonicalize(),
        "detected-crash recovery diverged from the exact trainer"
    );

    let m = rec.metrics();
    assert_eq!(m.counter("crashes_injected"), 1);
    assert!(
        m.counter("heartbeats_missed") >= 1,
        "the lease detector never noticed the silent worker"
    );
    assert!(
        m.counter("workers_suspected") >= 1,
        "the silent worker was never declared dead"
    );
    assert!(
        m.counter("retries_sent") >= 1,
        "a lossy plan must force at least one retransmission"
    );

    // The event log names the crashed worker in the suspicion.
    let crashed: Vec<u32> = rec
        .events()
        .iter()
        .filter_map(|e| match e.event {
            ts_obs::Event::CrashInjected { node, .. } => Some(node),
            _ => None,
        })
        .collect();
    assert_eq!(crashed.len(), 1);
    let suspected = rec.events().iter().any(
        |e| matches!(e.event, ts_obs::Event::WorkerSuspected { worker } if worker == crashed[0]),
    );
    assert!(
        suspected,
        "WorkerSuspected {{ worker: {} }} not in the event log",
        crashed[0]
    );
    let retried = rec
        .events()
        .iter()
        .any(|e| matches!(e.event, ts_obs::Event::RetrySent { .. }));
    assert!(retried, "RetrySent not in the event log");
}

/// A plan pointing past the end of training never fires and never perturbs
/// the run.
#[test]
fn unfired_crash_trigger_is_inert() {
    let t = table(31);
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::launch(faulty_cfg(faults), &t);
        let m = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        m.canonicalize()
    };
    let clean = run(None);
    let inert = run(Some(FaultPlan::new(1).with_crash_at_delegation(1_000_000)));
    assert_eq!(clean, inert);
}
