//! Seeded fault injection through `ClusterConfig::faults`: a `FaultPlan`
//! crash trigger kills a key worker right after the n-th subtree delegation
//! cluster-wide, and the engine's recovery (re-replication + tree restart)
//! must still produce *exactly* the fault-free model. Message-level plans
//! (drops, delays, duplicates) exercise the acked/retried fabric instead:
//! training must terminate with the byte-identical fault-free model under
//! any fault seed. See `docs/TESTING.md` and `docs/PROTOCOL.md`.

use std::time::Duration;
use treeserver::{Cluster, ClusterConfig, JobResult, JobSpec, RecoveryError};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::DataTable;
use ts_netsim::FaultPlan;
use ts_tree::{train_tree, TrainParams};
use tscheck::prelude::*;

fn table(seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows: 3_000,
        numeric: 6,
        categorical: 0,
        noise: 0.05,
        concept_depth: 5,
        seed,
        ..Default::default()
    })
}

/// Subtree-heavy shape so delegations happen early and often; replication 2
/// so a crashed worker's columns survive on a replica.
fn faulty_cfg(faults: Option<FaultPlan>) -> ClusterConfig {
    ClusterConfig {
        n_workers: 4,
        compers_per_worker: 2,
        replication: 2,
        tau_d: 100,
        tau_dfs: 400,
        faults,
        ..Default::default()
    }
}

#[test]
fn injected_crash_recovers_and_matches_reference() {
    let t = table(17);
    let params = TrainParams {
        dmax: 10,
        ..TrainParams::for_task(t.schema().task)
    };
    let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);

    let plan = FaultPlan::new(0xFA11).with_crash_at_delegation(3);
    let cluster = Cluster::launch(faulty_cfg(Some(plan)), &t);
    let model = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert_eq!(
        model.canonicalize(),
        reference.canonicalize(),
        "crash-recovered tree diverged from the exact trainer"
    );
}

#[test]
fn forest_with_injected_crash_matches_fault_free_forest() {
    let t = table(23);
    let spec = || JobSpec::random_forest(t.schema().task, 6).with_seed(21);
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::launch(faulty_cfg(faults), &t);
        let f = cluster.train(spec()).into_forest();
        cluster.shutdown();
        f.trees.iter().map(|m| m.canonicalize()).collect::<Vec<_>>()
    };
    let clean = run(None);
    let crashed = run(Some(FaultPlan::new(7).with_crash_at_delegation(4)));
    assert_eq!(clean.len(), 6);
    assert_eq!(
        clean, crashed,
        "restarted trees must reuse the same spec/seed and land on the same forest"
    );
}

/// The trigger is observable: exactly one `CrashInjected` and one
/// `WorkerCrashed`, and the recorded delegation index matches the plan.
#[cfg(feature = "obs")]
#[test]
fn injected_crash_is_recorded_by_obs() {
    let t = table(29);
    let mut cfg = faulty_cfg(Some(FaultPlan::new(99).with_crash_at_delegation(2)));
    cfg.obs = ts_obs::ObsConfig::enabled();
    let cluster = Cluster::launch(cfg, &t);
    let _ = cluster.train(JobSpec::decision_tree(t.schema().task));
    let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
    cluster.shutdown();

    let m = rec.metrics();
    assert_eq!(m.counter("crashes_injected"), 1);
    assert_eq!(m.counter("workers_crashed"), 1);
    let injected: Vec<_> = rec
        .events()
        .iter()
        .filter_map(|e| match e.event {
            ts_obs::Event::CrashInjected {
                node,
                at_delegation,
            } => Some((node, at_delegation)),
            _ => None,
        })
        .collect();
    assert_eq!(injected.len(), 1);
    let (node, at) = injected[0];
    assert!((1..=4).contains(&node), "killed a worker, not the master");
    assert_eq!(at, 2, "fired at the plan's delegation index");
}

/// A message-fault plan hitting every plane: 5% drops, 5% delays, 5%
/// duplicates, all derived purely from `(seed, edge, seq)`.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_message_drops(0.05)
        .with_message_delays(0.05, Duration::from_millis(2))
        .with_message_duplicates(0.05)
}

/// Serialized canonical form — "byte-identical" in the strictest sense.
fn tree_bytes(m: &ts_tree::DecisionTreeModel) -> String {
    m.canonicalize().to_json()
}

/// Fault-free golden run for the message-fault sweep, trained once.
fn golden_bytes() -> &'static str {
    static GOLDEN: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    GOLDEN.get_or_init(|| {
        let t = table(17);
        let cluster = Cluster::launch(faulty_cfg(None), &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        tree_bytes(&model)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Sweep fault seeds: under drops + delays + duplicates the acked/
    /// retried fabric still delivers every message exactly once and in
    /// order, so training terminates and the model is byte-identical to
    /// the fault-free golden run.
    #[test]
    fn lossy_fabric_training_is_byte_identical(fault_seed in any::<u64>()) {
        let t = table(17);
        let cluster = Cluster::launch(faulty_cfg(Some(lossy_plan(fault_seed))), &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        prop_assert_eq!(tree_bytes(&model), golden_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Scheduler-invariant property (`ts-sched`): across fault seeds and
    /// worker counts, with work stealing on and a lossy message plan,
    /// every planned task is executed **exactly once** — the multiset of
    /// dispatch events equals the multiset of worker-side executions
    /// equals the multiset of folded results, per `(task, node)` — and
    /// the model stays byte-identical to the fault-free golden run.
    #[cfg(feature = "obs")]
    #[test]
    fn stealing_executes_every_planned_task_exactly_once(
        fault_seed in any::<u64>(),
        n_workers in 2usize..=5,
    ) {
        let t = table(17);
        let mut cfg = faulty_cfg(Some(lossy_plan(fault_seed)));
        cfg.n_workers = n_workers;
        cfg.replication = 2.min(n_workers);
        cfg.steal = true;
        cfg.obs = ts_obs::ObsConfig::enabled();
        let cluster = Cluster::launch(cfg, &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
        cluster.shutdown();

        prop_assert_eq!(tree_bytes(&model), golden_bytes());
        prop_assert_eq!(rec.events_lost(), 0, "ring overflow would blind the count");

        // (task, node) multisets of the three lifecycle stages.
        let mut dispatched: Vec<(u64, u32)> = Vec::new();
        let mut computed: Vec<(u64, u32)> = Vec::new();
        let mut folded: Vec<(u64, u32)> = Vec::new();
        for e in rec.events().iter() {
            match e.event {
                ts_obs::Event::ColumnTaskDispatched { task, node, .. } => {
                    dispatched.push((task, node));
                }
                ts_obs::Event::SubtreeTaskDelegated { task, key_worker, .. } => {
                    dispatched.push((task, key_worker));
                }
                ts_obs::Event::TaskComputed { task, node, .. } => computed.push((task, node)),
                ts_obs::Event::ColumnTaskCompleted { task, node, .. } => {
                    folded.push((task, node));
                }
                ts_obs::Event::SubtreeTaskBuilt { task, node, .. } => folded.push((task, node)),
                _ => {}
            }
        }
        dispatched.sort_unstable();
        computed.sort_unstable();
        folded.sort_unstable();
        prop_assert!(!dispatched.is_empty(), "training dispatched no tasks?");
        prop_assert_eq!(
            &dispatched, &computed,
            "a dispatched task shard was executed zero or multiple times"
        );
        prop_assert_eq!(
            &dispatched, &folded,
            "a dispatched task shard was folded zero or multiple times"
        );
    }
}

/// The same guarantee holds for boosting, where label broadcasts between
/// rounds ride the data plane too. Mirrors the cluster shape of
/// `gbt_survives_worker_crash_between_rounds` (3 workers, τ_D = 300,
/// τ_dfs = 1 200, regression view).
#[test]
fn gbt_under_message_faults_matches_clean_run() {
    let t = generate(&SynthSpec {
        rows: 1_200,
        numeric: 4,
        task: ts_datatable::Task::Regression,
        seed: 23,
        ..Default::default()
    });
    let cfg = |faults: Option<FaultPlan>| ClusterConfig {
        n_workers: 3,
        compers_per_worker: 2,
        tau_d: 300,
        tau_dfs: 1_200,
        faults,
        ..Default::default()
    };
    let run = |faults: Option<FaultPlan>| {
        let view = treeserver::gbt::regression_view(&t, vec![0.0; t.n_rows()]);
        let cluster = Cluster::launch(cfg(faults), &view);
        let model = treeserver::train_gbt_on(
            &cluster,
            &t,
            treeserver::GbtConfig::for_task(ts_datatable::Task::Regression).with_rounds(3),
        );
        cluster.shutdown();
        model
    };
    let clean = run(None);
    for fault_seed in [0xA1u64, 0xB2, 0xC3] {
        assert_eq!(
            run(Some(lossy_plan(fault_seed))),
            clean,
            "gbt under fault seed {fault_seed:#x} diverged from the clean run"
        );
    }
}

/// Losing the last replica of a column is unrecoverable, and must fail the
/// job cleanly — a structured `JobResult::Failed`, not a panic.
#[test]
fn losing_the_last_replica_fails_the_job_cleanly() {
    let t = table(41);
    let cluster = Cluster::launch(
        ClusterConfig {
            n_workers: 2,
            compers_per_worker: 1,
            replication: 1, // no replica to fall back on
            tau_d: 100,
            tau_dfs: 400,
            ..Default::default()
        },
        &t,
    );
    cluster.kill_worker(1);
    let result = cluster.train(JobSpec::decision_tree(t.schema().task));
    assert!(
        matches!(result, JobResult::Failed(RecoveryError::ColumnLost { .. })),
        "expected a ColumnLost failure, got {:?}",
        result.failure()
    );
    // The degradation is sticky: later submissions fail immediately too.
    let again = cluster.train(JobSpec::decision_tree(t.schema().task));
    assert!(matches!(again, JobResult::Failed(_)));
    cluster.shutdown();
}

/// The acceptance scenario of the reliability layer: a worker crashes
/// mid-training *silently* (no announced `kill_worker` call — the injected
/// trigger just shuts the worker down). The master must *detect* the crash
/// via missed heartbeats, recover, and still produce the exact model — with
/// the detection and the fabric's retries visible in the obs event log.
#[cfg(feature = "obs")]
#[test]
fn silent_crash_is_detected_by_heartbeats_and_recovered() {
    let t = table(37);
    let params = TrainParams {
        dmax: 10,
        ..TrainParams::for_task(t.schema().task)
    };
    let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);

    // Message faults keep the reliable fabric on (so retries are possible
    // and observable); the crash trigger silences a worker mid-subtree.
    let plan = lossy_plan(0xDEAD_BEA7).with_crash_at_delegation(3);
    let mut cfg = faulty_cfg(Some(plan));
    cfg.heartbeat_interval = Duration::from_millis(5);
    cfg.heartbeat_miss_threshold = 10; // 50 ms lease: fast detection in tests
    cfg.obs = ts_obs::ObsConfig::enabled();
    let cluster = Cluster::launch(cfg, &t);
    let model = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
    cluster.shutdown();

    assert_eq!(
        model.canonicalize(),
        reference.canonicalize(),
        "detected-crash recovery diverged from the exact trainer"
    );

    let m = rec.metrics();
    assert_eq!(m.counter("crashes_injected"), 1);
    assert!(
        m.counter("heartbeats_missed") >= 1,
        "the lease detector never noticed the silent worker"
    );
    assert!(
        m.counter("workers_suspected") >= 1,
        "the silent worker was never declared dead"
    );
    assert!(
        m.counter("retries_sent") >= 1,
        "a lossy plan must force at least one retransmission"
    );

    // The event log names the crashed worker in the suspicion.
    let crashed: Vec<u32> = rec
        .events()
        .iter()
        .filter_map(|e| match e.event {
            ts_obs::Event::CrashInjected { node, .. } => Some(node),
            _ => None,
        })
        .collect();
    assert_eq!(crashed.len(), 1);
    let suspected = rec.events().iter().any(
        |e| matches!(e.event, ts_obs::Event::WorkerSuspected { worker } if worker == crashed[0]),
    );
    assert!(
        suspected,
        "WorkerSuspected {{ worker: {} }} not in the event log",
        crashed[0]
    );
    let retried = rec
        .events()
        .iter()
        .any(|e| matches!(e.event, ts_obs::Event::RetrySent { .. }));
    assert!(retried, "RetrySent not in the event log");
}

// ----------------------------------------------------------------------
// Elastic membership (`ts-elastic`, docs/ELASTICITY.md): mid-training
// join/leave, spot preemption with grace windows, incremental column
// rebalancing. The CI `elastic-matrix` job sweeps these tests under fixed
// `TS_SEED`s with `TS_STEAL` both on and off.
// ----------------------------------------------------------------------

/// Fault-plan seed for the elastic tests, overridable by the CI matrix.
fn env_seed(default: u64) -> u64 {
    std::env::var("TS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Work-stealing toggle for the elastic tests (`TS_STEAL=1`).
fn env_steal() -> bool {
    std::env::var("TS_STEAL").is_ok_and(|s| s == "1" || s.eq_ignore_ascii_case("true"))
}

/// Satellite regression for the lease detector: an *announced* preemption
/// drains gracefully — `Goodbye`, not a missed-heartbeat suspicion — so the
/// run must finish with zero crash-recovery activity (no `WorkerSuspected`,
/// no `WorkerCrashed`, no `CrashInjected`, no tree revocation) and still
/// produce the fault-free model byte for byte.
#[cfg(feature = "obs")]
#[test]
fn graceful_preemption_drains_without_crash_recovery() {
    let t = table(17);
    let mut cfg = faulty_cfg(None);
    cfg.steal = env_steal();
    // Stretch the run so the preemption lands mid-training.
    cfg.work_ns_per_unit = 1_000;
    cfg.obs = ts_obs::ObsConfig::enabled();
    let cluster = Cluster::launch(cfg, &t);
    let h = cluster.submit(JobSpec::decision_tree(t.schema().task));
    std::thread::sleep(Duration::from_millis(10));
    // Generous grace: the drain must complete without escalating.
    cluster.preempt_worker(3, Duration::from_secs(30));
    let model = cluster.wait(h).into_tree();
    let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
    cluster.shutdown();

    assert_eq!(
        tree_bytes(&model),
        golden_bytes(),
        "a graceful drain must not perturb the model"
    );
    let m = rec.metrics();
    assert_eq!(m.counter("workers_draining"), 1, "drain was announced once");
    assert_eq!(
        m.counter("workers_departed"),
        1,
        "the leaver retired cleanly"
    );
    assert!(
        m.counter("columns_migrated") >= 1,
        "the leaver's columns were handed off"
    );
    // The satellite regression proper: zero crash-recovery activity.
    assert_eq!(
        m.counter("workers_suspected"),
        0,
        "lease detector fired on a drained worker"
    );
    assert_eq!(m.counter("workers_crashed"), 0);
    assert_eq!(m.counter("crashes_injected"), 0);
    assert_eq!(
        m.counter("workers_recovered"),
        0,
        "handoffs must not masquerade as recovery"
    );
}

/// The tentpole acceptance scenario: a 2-worker cluster doubles to 4 early
/// in a compute-bound run via scripted joins. The doubled run must beat the
/// static half-size run on wall clock AND produce the byte-identical model
/// (joins never revoke trees; randomness is scheduling-invariant).
#[test]
fn cluster_doubling_mid_run_beats_static_half_size() {
    let t = table(17);
    let base = || ClusterConfig {
        n_workers: 2,
        compers_per_worker: 2,
        replication: 2,
        tau_d: 100,
        tau_dfs: 400,
        // Compute-dominated: the modeled work makes capacity the
        // bottleneck, so extra machines translate into wall time.
        work_ns_per_unit: 4_000,
        steal: env_steal(),
        ..Default::default()
    };
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::launch(ClusterConfig { faults, ..base() }, &t);
        let start = std::time::Instant::now();
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        let wall = start.elapsed();
        cluster.shutdown();
        (wall, tree_bytes(&model))
    };
    let (static_wall, static_bytes) = run(None);
    // Two joiners 15 ms in: most of the run executes at double width.
    let join_plan = FaultPlan::new(env_seed(0xE1A5)).with_worker_join(Duration::from_millis(15), 2);
    let (elastic_wall, elastic_bytes) = run(Some(join_plan));

    assert_eq!(
        elastic_bytes, static_bytes,
        "mid-run joins must not change the trained model"
    );
    assert!(
        elastic_wall < static_wall,
        "doubling the cluster mid-run did not speed training up: \
         elastic {elastic_wall:?} vs static {static_wall:?}"
    );
}

// Membership churn under message faults: a scripted join AND a scripted
// preemption AND a lossy fabric, swept over fault seeds. Every planned
// task still executes exactly once (dispatch = execution = fold multisets
// per `(task, node)`), nothing is lost from the event rings, and the model
// matches the fault-free golden run.
#[cfg(feature = "obs")]
proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn membership_churn_under_faults_is_exactly_once(fault_seed in any::<u64>()) {
        let t = table(17);
        let plan = FaultPlan::new(fault_seed ^ env_seed(0))
            .with_message_drops(0.03)
            .with_message_duplicates(0.03)
            .with_worker_join(Duration::from_millis(8), 1)
            .with_preemption(Duration::from_millis(20), 2, Duration::from_secs(30));
        let mut cfg = faulty_cfg(Some(plan));
        cfg.work_ns_per_unit = 500; // long enough for both events to land mid-run
        cfg.steal = env_steal();
        cfg.obs = ts_obs::ObsConfig::enabled();
        let cluster = Cluster::launch(cfg, &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
        cluster.shutdown();

        prop_assert_eq!(tree_bytes(&model), golden_bytes());
        prop_assert_eq!(rec.events_lost(), 0, "ring overflow would blind the count");

        let mut dispatched: Vec<(u64, u32)> = Vec::new();
        let mut computed: Vec<(u64, u32)> = Vec::new();
        let mut folded: Vec<(u64, u32)> = Vec::new();
        for e in rec.events().iter() {
            match e.event {
                ts_obs::Event::ColumnTaskDispatched { task, node, .. } => {
                    dispatched.push((task, node));
                }
                ts_obs::Event::SubtreeTaskDelegated { task, key_worker, .. } => {
                    dispatched.push((task, key_worker));
                }
                ts_obs::Event::TaskComputed { task, node, .. } => computed.push((task, node)),
                ts_obs::Event::ColumnTaskCompleted { task, node, .. } => {
                    folded.push((task, node));
                }
                ts_obs::Event::SubtreeTaskBuilt { task, node, .. } => folded.push((task, node)),
                _ => {}
            }
        }
        dispatched.sort_unstable();
        computed.sort_unstable();
        folded.sort_unstable();
        prop_assert!(!dispatched.is_empty(), "training dispatched no tasks?");
        prop_assert_eq!(
            &dispatched, &computed,
            "a task shard executed zero or multiple times under churn"
        );
        prop_assert_eq!(
            &dispatched, &folded,
            "a task shard folded zero or multiple times under churn"
        );
        // The churn actually happened: someone joined, and — unless the
        // run outpaced the 20 ms trigger — someone drained.
        let m = rec.metrics();
        prop_assert_eq!(m.counter("workers_joined"), 1);
        prop_assert_eq!(m.counter("workers_crashed"), 0, "graceful churn must not crash-recover");
    }
}

/// A plan pointing past the end of training never fires and never perturbs
/// the run.
#[test]
fn unfired_crash_trigger_is_inert() {
    let t = table(31);
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::launch(faulty_cfg(faults), &t);
        let m = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        m.canonicalize()
    };
    let clean = run(None);
    let inert = run(Some(FaultPlan::new(1).with_crash_at_delegation(1_000_000)));
    assert_eq!(clean, inert);
}
