//! Seeded fault injection through `ClusterConfig::faults`: a `FaultPlan`
//! crash trigger kills a key worker right after the n-th subtree delegation
//! cluster-wide, and the engine's recovery (re-replication + tree restart)
//! must still produce *exactly* the fault-free model. See `docs/TESTING.md`.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::DataTable;
use ts_netsim::FaultPlan;
use ts_tree::{train_tree, TrainParams};

fn table(seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows: 3_000,
        numeric: 6,
        categorical: 0,
        noise: 0.05,
        concept_depth: 5,
        seed,
        ..Default::default()
    })
}

/// Subtree-heavy shape so delegations happen early and often; replication 2
/// so a crashed worker's columns survive on a replica.
fn faulty_cfg(faults: Option<FaultPlan>) -> ClusterConfig {
    ClusterConfig {
        n_workers: 4,
        compers_per_worker: 2,
        replication: 2,
        tau_d: 100,
        tau_dfs: 400,
        faults,
        ..Default::default()
    }
}

#[test]
fn injected_crash_recovers_and_matches_reference() {
    let t = table(17);
    let params = TrainParams {
        dmax: 10,
        ..TrainParams::for_task(t.schema().task)
    };
    let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);

    let plan = FaultPlan::new(0xFA11).with_crash_at_delegation(3);
    let cluster = Cluster::launch(faulty_cfg(Some(plan)), &t);
    let model = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert_eq!(
        model.canonicalize(),
        reference.canonicalize(),
        "crash-recovered tree diverged from the exact trainer"
    );
}

#[test]
fn forest_with_injected_crash_matches_fault_free_forest() {
    let t = table(23);
    let spec = || JobSpec::random_forest(t.schema().task, 6).with_seed(21);
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::launch(faulty_cfg(faults), &t);
        let f = cluster.train(spec()).into_forest();
        cluster.shutdown();
        f.trees.iter().map(|m| m.canonicalize()).collect::<Vec<_>>()
    };
    let clean = run(None);
    let crashed = run(Some(FaultPlan::new(7).with_crash_at_delegation(4)));
    assert_eq!(clean.len(), 6);
    assert_eq!(
        clean, crashed,
        "restarted trees must reuse the same spec/seed and land on the same forest"
    );
}

/// The trigger is observable: exactly one `CrashInjected` and one
/// `WorkerCrashed`, and the recorded delegation index matches the plan.
#[cfg(feature = "obs")]
#[test]
fn injected_crash_is_recorded_by_obs() {
    let t = table(29);
    let mut cfg = faulty_cfg(Some(FaultPlan::new(99).with_crash_at_delegation(2)));
    cfg.obs = ts_obs::ObsConfig::enabled();
    let cluster = Cluster::launch(cfg, &t);
    let _ = cluster.train(JobSpec::decision_tree(t.schema().task));
    let rec = std::sync::Arc::clone(cluster.obs().expect("obs enabled"));
    cluster.shutdown();

    let m = rec.metrics();
    assert_eq!(m.counter("crashes_injected"), 1);
    assert_eq!(m.counter("workers_crashed"), 1);
    let injected: Vec<_> = rec
        .events()
        .iter()
        .filter_map(|e| match e.event {
            ts_obs::Event::CrashInjected {
                node,
                at_delegation,
            } => Some((node, at_delegation)),
            _ => None,
        })
        .collect();
    assert_eq!(injected.len(), 1);
    let (node, at) = injected[0];
    assert!((1..=4).contains(&node), "killed a worker, not the master");
    assert_eq!(at, 2, "fired at the plan's delegation index");
}

/// A plan pointing past the end of training never fires and never perturbs
/// the run.
#[test]
fn unfired_crash_trigger_is_inert() {
    let t = table(31);
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::launch(faulty_cfg(faults), &t);
        let m = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        m.canonicalize()
    };
    let clean = run(None);
    let inert = run(Some(FaultPlan::new(1).with_crash_at_delegation(1_000_000)));
    assert_eq!(clean, inert);
}
