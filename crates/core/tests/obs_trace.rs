//! Observability integration tests (tentpole acceptance): train a small
//! forest with tracing enabled and check that the recorded task lifecycle
//! is internally consistent and that both exporters emit valid JSON.
#![cfg(feature = "obs")]

use std::collections::HashSet;

use treeserver::obs::{Event, ObsConfig};
use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::DataTable;

fn table(rows: usize, seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 4,
        categorical: 2,
        cat_cardinality: 5,
        noise: 0.05,
        concept_depth: 4,
        seed,
        ..Default::default()
    })
}

fn traced_cfg(workers: usize) -> ClusterConfig {
    ClusterConfig {
        n_workers: workers,
        compers_per_worker: 2,
        replication: 2.min(workers),
        tau_d: 150,
        tau_dfs: 600,
        obs: ObsConfig::enabled(),
        ..Default::default()
    }
}

/// Train a small forest with the recorder attached and return the cluster.
fn traced_forest(workers: usize, trees: usize) -> Cluster {
    let t = table(2_000, 7);
    let cluster = Cluster::launch(traced_cfg(workers), &t);
    let spec = JobSpec::random_forest(t.schema().task, trees).with_seed(3);
    let _ = cluster.train(spec);
    cluster
}

#[test]
fn lifecycle_events_pair_up_for_a_traced_forest() {
    let cluster = traced_forest(3, 6);
    let rec = cluster
        .obs()
        .expect("recorder attached when obs enabled")
        .clone();

    let events = rec.events();
    assert!(
        !events.is_empty(),
        "a traced training run must record events"
    );
    assert_eq!(
        rec.events_lost(),
        0,
        "ring sized for this run — no drops expected"
    );

    let mut dispatched = 0u64;
    let mut completed = 0u64;
    let mut submitted = HashSet::new();
    let mut finished = HashSet::new();
    for te in &events {
        match te.event {
            Event::ColumnTaskDispatched { .. } => dispatched += 1,
            Event::ColumnTaskCompleted { .. } => completed += 1,
            Event::JobSubmitted { job } => {
                assert!(submitted.insert(job), "job {job} submitted twice");
            }
            Event::JobFinished { job } => {
                assert!(finished.insert(job), "job {job} finished twice");
            }
            _ => {}
        }
    }
    assert!(dispatched > 0, "a column-task run must dispatch shards");
    assert_eq!(
        dispatched, completed,
        "every dispatched column shard must come back in a crash-free run"
    );
    assert_eq!(submitted, finished, "every submitted job must finish");

    // The metrics registry must agree with the ring (counters never drop).
    let snap = rec.metrics();
    assert_eq!(snap.counter("column_tasks_dispatched"), dispatched);
    assert_eq!(snap.counter("column_tasks_completed"), completed);
    assert_eq!(snap.counter("jobs_submitted"), submitted.len() as u64);
    assert_eq!(snap.counter("jobs_finished"), finished.len() as u64);

    cluster.shutdown();
}

#[test]
fn chrome_trace_is_valid_json_with_required_fields() {
    let cluster = traced_forest(2, 4);
    let rec = cluster.obs().expect("recorder attached").clone();

    let trace = rec.chrome_trace_json();
    let parsed: tsjson::Value = tsjson::from_str(&trace).expect("chrome trace must be valid JSON");
    let events = parsed["traceEvents"]
        .as_array()
        .expect("traceEvents must be an array");
    assert!(!events.is_empty(), "trace must contain events");
    for ev in events {
        let ph = ev["ph"].as_str().expect("every event needs a ph");
        assert!(
            ["X", "i", "C", "M", "s", "f"].contains(&ph),
            "unexpected phase {ph:?} in {ev}"
        );
        if ph == "s" || ph == "f" {
            assert!(
                ev["id"].as_u64().is_some(),
                "flow events need a span id: {ev}"
            );
        }
        assert!(ev.get("pid").is_some(), "every event needs a pid: {ev}");
        if ph != "M" {
            assert!(
                ev.get("ts").is_some(),
                "every non-metadata event needs ts: {ev}"
            );
        }
        if ph == "X" {
            assert!(
                ev["dur"].as_f64().unwrap_or(-1.0) >= 0.0,
                "span needs dur: {ev}"
            );
        }
    }
    // One process-name metadata record per machine that emitted events.
    let pids: HashSet<u64> = events
        .iter()
        .filter(|e| e["ph"] == "M")
        .map(|e| e["pid"].as_u64().unwrap())
        .collect();
    assert!(pids.contains(&0), "the master must be named in the trace");

    cluster.shutdown();
}

#[test]
fn metrics_json_parses_and_carries_histograms() {
    let cluster = traced_forest(2, 3);
    let rec = cluster.obs().expect("recorder attached").clone();

    let json = rec.metrics_json();
    let parsed: tsjson::Value = tsjson::from_str(&json).expect("metrics dump must be valid JSON");
    let counters = parsed["counters"].as_object().expect("counters object");
    assert!(counters.get("column_tasks_dispatched").is_some());
    assert!(parsed["histograms"]["column_task_latency_ns"]["count"]
        .as_u64()
        .is_some_and(|c| c > 0));
    assert!(parsed["events_total"].as_u64().is_some_and(|t| t > 0));

    cluster.shutdown();
}

#[test]
fn recorder_absent_when_runtime_disabled() {
    let t = table(500, 1);
    let cfg = ClusterConfig {
        n_workers: 2,
        compers_per_worker: 1,
        replication: 2,
        tau_d: 100,
        tau_dfs: 400,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let _ = cluster.train(JobSpec::decision_tree(t.schema().task));
    assert!(
        cluster.obs().is_none(),
        "obs must stay off unless requested"
    );
    cluster.shutdown();
}

#[test]
fn kernel_counters_surface_in_metrics() {
    // The sorted-column split engine ticks process-global counters; obs()
    // folds the delta since launch into the recorder's registry. A forest
    // over a 2k-row table must run exact numeric kernels, and calling obs()
    // twice must not double-count (the sync is monotone).
    let cluster = traced_forest(2, 4);
    let rec = cluster.obs().expect("recorder attached").clone();
    let snap = rec.metrics();
    let scans =
        snap.counter("split_kernel_sorted_scans") + snap.counter("split_kernel_gather_scans");
    assert!(scans > 0, "exact training must run numeric split kernels");
    let hits_then = snap.counter("split_scratch_pool_hits");
    let again = cluster.obs().expect("recorder attached").metrics();
    assert!(
        again.counter("split_scratch_pool_hits") >= hits_then,
        "counters are monotone"
    );
    cluster.shutdown();
}
