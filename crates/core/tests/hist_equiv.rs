//! Histogram-splitter differential suite (`Splitter::Histogram`,
//! docs/HISTOGRAM.md).
//!
//! The exact engine is the accuracy oracle: histogram training trades a
//! bounded accuracy loss for a leaner split plane. These tests pin down
//!
//! 1. per-path determinism — same seed, same config → byte-identical
//!    models, with and without work stealing and under mid-run joins;
//! 2. the lossy divergence bound against the exact oracle at the default
//!    bin budget; and
//! 3. the wire-byte win the mode exists for, measured by the split-plane
//!    counters (`ClusterReport::split_bytes_sent` / `hist_bytes_sent`).

use std::time::Duration;
use treeserver::{Cluster, ClusterConfig, FaultPlan, JobSpec, Splitter};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};

const HIST: Splitter = Splitter::Histogram {
    bins: 64,
    vote_k: 2,
};

/// Data/fault seed, overridable by the CI `hist-matrix` (`TS_SEED`).
fn env_seed(default: u64) -> u64 {
    std::env::var("TS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Work-stealing toggle for the matrix (`TS_STEAL=1`): the differential
/// contracts must hold with the stealing scheduler both off and on.
fn env_steal() -> bool {
    std::env::var("TS_STEAL").is_ok_and(|s| s == "1" || s.eq_ignore_ascii_case("true"))
}

/// A Covtype-shaped table: many classes make the per-shard `NodeStats`
/// payloads heavy, which is exactly the regime the histogram plane wins in.
fn covtype_like(seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows: 16_000,
        numeric: 8,
        categorical: 2,
        cat_cardinality: 6,
        task: Task::Classification { n_classes: 7 },
        noise: 0.05,
        concept_depth: 6,
        seed,
        ..Default::default()
    })
}

fn cfg(splitter: Splitter) -> ClusterConfig {
    ClusterConfig {
        n_workers: 8,
        splitter,
        // Keep the upper tree on the distributed column path: the splitter
        // modes only differ there (subtree tasks always train exact).
        tau_d: 400,
        ..ClusterConfig::default()
    }
}

fn train_tree(cfg: ClusterConfig, t: &DataTable) -> ts_tree::DecisionTreeModel {
    let cluster = Cluster::launch(cfg, t);
    let model = cluster
        .train(JobSpec::decision_tree(t.schema().task).with_dmax(8))
        .into_tree();
    cluster.shutdown();
    model.canonicalize()
}

#[test]
fn same_seed_replay_is_byte_identical_per_path() {
    let t = covtype_like(env_seed(11));
    for splitter in [Splitter::Exact, HIST] {
        let mut c = cfg(splitter);
        c.steal = env_steal();
        let a = train_tree(c.clone(), &t);
        let b = train_tree(c, &t);
        assert_eq!(a, b, "{splitter:?}: same-seed replay diverged");
    }
}

#[test]
fn hist_accuracy_tracks_the_exact_oracle() {
    for seed in [env_seed(11), 42] {
        let t = covtype_like(seed);
        let labels = t.labels().as_class().expect("classification table");
        let exact = train_tree(cfg(Splitter::Exact), &t);
        let hist = train_tree(cfg(HIST), &t);
        let acc_exact = accuracy(&exact.predict_labels(&t), labels);
        let acc_hist = accuracy(&hist.predict_labels(&t), labels);
        assert!(
            acc_exact - acc_hist <= 0.05,
            "seed {seed}: histogram accuracy {acc_hist:.4} diverged more than \
             0.05 from the exact oracle's {acc_exact:.4}"
        );
    }
}

#[test]
fn hist_models_are_steal_invariant() {
    // Work stealing changes who computes a task, never what it computes:
    // nominations fold arrival-order-independently on the master and the
    // election is totally ordered, so the model must not move.
    let t = covtype_like(7);
    let base = train_tree(cfg(HIST), &t);
    let mut scfg = cfg(HIST);
    scfg.steal = true;
    scfg.work_ns_per_unit = 5;
    scfg.work_scale = vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    let stolen = train_tree(scfg, &t);
    assert_eq!(stolen, base, "stealing changed a histogram-trained model");
}

#[test]
fn hist_models_survive_mid_run_joins_unchanged() {
    // A joiner receives columns by migration and must rebuild the same bin
    // indices the launch roster built at load (`install_columns`); per-attr
    // gains — and therefore the election — are holder-independent.
    let t = covtype_like(3);
    let mut bcfg = cfg(HIST);
    bcfg.steal = env_steal();
    let mut jcfg = bcfg.clone();
    let base = train_tree(bcfg, &t);
    jcfg.work_ns_per_unit = 500; // long enough for the join to land mid-run
    jcfg.faults =
        Some(FaultPlan::new(env_seed(0xB135)).with_worker_join(Duration::from_millis(8), 1));
    let joined = train_tree(jcfg, &t);
    assert_eq!(joined, base, "a mid-run join changed a histogram model");
}

#[cfg(feature = "obs")]
#[test]
fn hist_mode_at_least_halves_split_plane_bytes() {
    let t = covtype_like(5);
    let run = |splitter: Splitter| {
        let mut c = cfg(splitter);
        c.obs = treeserver::obs::ObsConfig::enabled();
        let cluster = Cluster::launch(c, &t);
        let _ = cluster
            .train(JobSpec::decision_tree(t.schema().task).with_dmax(8))
            .into_tree();
        cluster.shutdown()
    };
    let exact = run(Splitter::Exact);
    let hist = run(HIST);
    assert!(exact.split_bytes_sent > 0, "exact counter never moved");
    assert_eq!(exact.hist_bytes_sent, 0, "exact mode sent hist frames");
    assert!(hist.hist_bytes_sent > 0, "hist counter never moved");
    assert_eq!(hist.split_bytes_sent, 0, "hist mode sent full results");
    assert!(
        hist.hist_bytes_sent * 2 <= exact.split_bytes_sent,
        "histogram split plane is not >= 2x leaner: hist {} B vs exact {} B",
        hist.hist_bytes_sent,
        exact.split_bytes_sent
    );
}
