//! Scheduler-equivalence golden suite (`ts-sched`): work stealing and
//! adaptive τ are *scheduling* changes, so the models they produce must be
//! bit-identical to the static single-deque scheduler over the same golden
//! seed × dataset matrix as `golden.rs`.
//!
//! Exact training is scheduling-order-invariant by construction (every
//! random choice derives from the stable root-path id), so the exact
//! trainers are compared under every knob combination. Extra-trees forests
//! additionally depend on *which* tasks run as subtree-tasks — the τ_D
//! boundary — so they are only compared under static τ (stealing changes
//! who runs a task, never which kind of task it is).

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};

const SEEDS: [u64; 3] = [11, 42, 977];

fn datasets(seed: u64) -> [DataTable; 2] {
    [
        generate(&SynthSpec {
            rows: 12_000,
            numeric: 5,
            categorical: 2,
            cat_cardinality: 5,
            noise: 0.05,
            concept_depth: 5,
            seed,
            ..Default::default()
        }),
        generate(&SynthSpec {
            rows: 12_000,
            numeric: 4,
            categorical: 1,
            task: Task::Regression,
            seed,
            ..Default::default()
        }),
    ]
}

/// Trains one decision tree under `cfg` and returns the canonical model.
fn train_dt(cfg: ClusterConfig, t: &DataTable) -> ts_tree::DecisionTreeModel {
    let cluster = Cluster::launch(cfg, t);
    let model = cluster
        .train(JobSpec::decision_tree(t.schema().task).with_dmax(8))
        .into_tree();
    cluster.shutdown();
    model.canonicalize()
}

/// A steal-mode config with mildly heterogeneous workers: worker 1 runs at
/// a third of the speed of its peers, so stealing genuinely happens while
/// the model must not notice.
fn steal_cfg() -> ClusterConfig {
    ClusterConfig {
        steal: true,
        work_ns_per_unit: 5,
        work_scale: vec![3.0, 1.0, 1.0, 1.0],
        ..ClusterConfig::default()
    }
}

#[test]
fn stealing_produces_bit_identical_trees() {
    for seed in SEEDS {
        for t in datasets(seed) {
            let baseline = train_dt(ClusterConfig::default(), &t);
            let stolen = train_dt(steal_cfg(), &t);
            assert_eq!(
                stolen,
                baseline,
                "seed {seed}, task {:?}: stealing changed the model",
                t.schema().task
            );
        }
    }
}

#[test]
fn adaptive_tau_with_stealing_produces_bit_identical_trees() {
    for seed in SEEDS {
        for t in datasets(seed) {
            let baseline = train_dt(ClusterConfig::default(), &t);
            let mut cfg = steal_cfg();
            cfg.adaptive_tau = true;
            // The controller reads the rolling latency feed off the
            // recorder; without observability it falls back to static τ
            // and the test would not exercise the adaptive path.
            cfg.obs = treeserver::obs::ObsConfig::enabled();
            let adaptive = train_dt(cfg, &t);
            assert_eq!(
                adaptive,
                baseline,
                "seed {seed}, task {:?}: adaptive τ changed the exact model",
                t.schema().task
            );
        }
    }
}

#[test]
fn stealing_preserves_extra_trees_forests_under_static_tau() {
    // Extra-trees randomness derives from stable path ids, but which arm
    // (column vs subtree) draws it depends on τ_D — so this comparison is
    // only valid with τ static, which steal-only mode keeps.
    let t = datasets(SEEDS[0]).into_iter().next().unwrap();
    let spec = || {
        JobSpec::extra_trees(t.schema().task, 6)
            .with_dmax(6)
            .with_seed(7)
    };
    let base_cluster = Cluster::launch(ClusterConfig::default(), &t);
    let baseline = base_cluster.train(spec()).into_forest();
    base_cluster.shutdown();
    let steal_cluster = Cluster::launch(steal_cfg(), &t);
    let stolen = steal_cluster.train(spec()).into_forest();
    steal_cluster.shutdown();
    let canon = |f: ts_tree::ForestModel| -> Vec<ts_tree::DecisionTreeModel> {
        f.trees.iter().map(|m| m.canonicalize()).collect()
    };
    assert_eq!(
        canon(stolen),
        canon(baseline),
        "stealing changed an extra-trees forest"
    );
}
