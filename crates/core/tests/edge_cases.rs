//! Engine edge cases: degenerate datasets, extreme thresholds, tiny
//! clusters — anything that can make the task machinery trip over itself.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{AttrMeta, Column, DataTable, Labels, Schema, Task};

fn tiny_cfg() -> ClusterConfig {
    ClusterConfig {
        n_workers: 2,
        compers_per_worker: 1,
        replication: 1,
        tau_d: 4,
        tau_dfs: 16,
        ..Default::default()
    }
}

#[test]
fn constant_columns_make_a_single_leaf() {
    let t = DataTable::new(
        Schema::new(
            vec![AttrMeta::numeric("a"), AttrMeta::categorical("b", 3)],
            Task::Classification { n_classes: 2 },
        ),
        vec![
            Column::Numeric(vec![7.0; 40]),
            Column::Categorical(vec![1; 40]),
        ],
        Labels::Class((0..40).map(|i| i % 2).collect()),
    );
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert_eq!(m.n_nodes(), 1, "no column can split");
    assert_eq!(m.nodes[0].n_rows, 40);
}

#[test]
fn pure_labels_make_a_single_leaf() {
    let t = DataTable::new(
        Schema::new(
            vec![AttrMeta::numeric("a")],
            Task::Classification { n_classes: 2 },
        ),
        vec![Column::Numeric((0..30).map(f64::from).collect())],
        Labels::Class(vec![1; 30]),
    );
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert_eq!(m.n_nodes(), 1);
    assert_eq!(m.nodes[0].prediction.label(), 1);
}

#[test]
fn two_row_table_trains() {
    let t = DataTable::new(
        Schema::new(vec![AttrMeta::numeric("a")], Task::Regression),
        vec![Column::Numeric(vec![1.0, 2.0])],
        Labels::Real(vec![10.0, 20.0]),
    );
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let m = cluster
        .train(JobSpec::decision_tree(Task::Regression))
        .into_tree();
    cluster.shutdown();
    assert_eq!(m.n_nodes(), 3, "one split, two leaves");
}

#[test]
fn dmax_zero_is_a_prior_only_model() {
    let t = generate(&SynthSpec {
        rows: 500,
        numeric: 3,
        seed: 1,
        ..Default::default()
    });
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task).with_dmax(0))
        .into_tree();
    cluster.shutdown();
    assert_eq!(m.n_nodes(), 1);
}

#[test]
fn tau_leaf_larger_than_table_is_a_single_leaf() {
    let t = generate(&SynthSpec {
        rows: 200,
        numeric: 3,
        seed: 2,
        ..Default::default()
    });
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task).with_tau_leaf(10_000))
        .into_tree();
    cluster.shutdown();
    assert_eq!(m.n_nodes(), 1);
}

#[test]
fn single_attribute_single_worker() {
    let t = generate(&SynthSpec {
        rows: 800,
        numeric: 1,
        concept_depth: 3,
        seed: 3,
        ..Default::default()
    });
    let cfg = ClusterConfig {
        n_workers: 1,
        compers_per_worker: 1,
        replication: 1,
        tau_d: 50,
        tau_dfs: 200,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert!(m.n_nodes() > 1);
}

#[test]
fn more_workers_than_attributes() {
    let t = generate(&SynthSpec {
        rows: 1_000,
        numeric: 2,
        seed: 4,
        ..Default::default()
    });
    let cfg = ClusterConfig {
        n_workers: 6,
        compers_per_worker: 1,
        replication: 2,
        tau_d: 100,
        tau_dfs: 400,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert!(m.n_nodes() >= 1);
}

#[test]
fn full_replication_still_trains_exactly() {
    let t = generate(&SynthSpec {
        rows: 900,
        numeric: 4,
        seed: 5,
        ..Default::default()
    });
    let cfg = ClusterConfig {
        n_workers: 3,
        compers_per_worker: 2,
        replication: 3, // every worker holds every column
        tau_d: 100,
        tau_dfs: 400,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    let reference = ts_tree::train_tree(
        &t,
        &[0, 1, 2, 3],
        &ts_tree::TrainParams::for_task(t.schema().task),
        0,
    );
    assert_eq!(m.canonicalize(), reference.canonicalize());
}

#[test]
fn forest_larger_than_pool_completes() {
    let t = generate(&SynthSpec {
        rows: 400,
        numeric: 4,
        seed: 6,
        ..Default::default()
    });
    let cfg = ClusterConfig {
        n_pool: 2,
        ..tiny_cfg()
    };
    let cluster = Cluster::launch(cfg, &t);
    let f = cluster
        .train(JobSpec::random_forest(t.schema().task, 9).with_seed(1))
        .into_forest();
    cluster.shutdown();
    assert_eq!(f.n_trees(), 9);
}

#[test]
fn all_missing_column_is_skipped() {
    let t = DataTable::new(
        Schema::new(
            vec![AttrMeta::numeric("gone"), AttrMeta::numeric("ok")],
            Task::Classification { n_classes: 2 },
        ),
        vec![
            Column::Numeric(vec![f64::NAN; 60]),
            Column::Numeric((0..60).map(f64::from).collect()),
        ],
        Labels::Class((0..60).map(|i| u32::from(i >= 30)).collect()),
    );
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    // The split must be on the usable column and fit perfectly.
    let (info, _, _) = m.nodes[0].split.as_ref().expect("splits on 'ok'");
    assert_eq!(info.attr, 1);
    assert!(m.n_leaves() >= 2);
}

#[test]
fn many_concurrent_small_jobs() {
    let t = generate(&SynthSpec {
        rows: 300,
        numeric: 3,
        seed: 7,
        ..Default::default()
    });
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let handles: Vec<_> = (0..8)
        .map(|i| cluster.submit(JobSpec::decision_tree(t.schema().task).with_seed(i)))
        .collect();
    let models: Vec<_> = handles
        .into_iter()
        .map(|h| cluster.wait(h).into_tree())
        .collect();
    cluster.shutdown();
    // Identical specs => identical exact models, regardless of interleaving.
    for m in &models[1..] {
        assert_eq!(m.canonicalize(), models[0].canonicalize());
    }
}

#[test]
fn completed_trees_are_flushed_to_the_model_dir() {
    let dir = std::env::temp_dir().join(format!("ts-flush-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t = generate(&SynthSpec {
        rows: 400,
        numeric: 3,
        seed: 8,
        ..Default::default()
    });
    let cfg = ClusterConfig {
        model_dir: Some(dir.clone()),
        ..tiny_cfg()
    };
    let cluster = Cluster::launch(cfg, &t);
    let f = cluster
        .train(JobSpec::random_forest(t.schema().task, 3).with_seed(1))
        .into_forest();
    cluster.shutdown();
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 3, "one JSON per completed tree");
    // Each flushed file parses back into one of the forest's trees.
    for p in files {
        let loaded =
            ts_tree::DecisionTreeModel::from_json(&std::fs::read_to_string(p).unwrap()).unwrap();
        assert!(f.trees.contains(&loaded));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn entropy_impurity_trains_and_differs_from_gini_only_in_splits() {
    // The paper's Fig. 2 submits jobs with either Gini or entropy; both must
    // flow through the engine and match their local-trainer counterparts.
    let t = generate(&SynthSpec {
        rows: 1_000,
        numeric: 4,
        seed: 9,
        ..Default::default()
    });
    let cluster = Cluster::launch(tiny_cfg(), &t);
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task).with_impurity(ts_splits::Impurity::Entropy))
        .into_tree();
    cluster.shutdown();
    let reference = ts_tree::train_tree(
        &t,
        &[0, 1, 2, 3],
        &ts_tree::TrainParams {
            impurity: ts_splits::Impurity::Entropy,
            ..ts_tree::TrainParams::for_task(t.schema().task)
        },
        0,
    );
    assert_eq!(m.canonicalize(), reference.canonicalize());
}

#[test]
fn extra_trees_survive_column_less_workers() {
    // Regression: with more workers than attribute replicas, some workers
    // hold no columns; extra-trees node resampling must never land on them
    // (it used to, collapsing most trees into single leaves).
    let t = generate(&SynthSpec {
        rows: 600,
        numeric: 2,
        concept_depth: 3,
        seed: 4,
        ..Default::default()
    });
    let cfg = ClusterConfig {
        n_workers: 6,
        compers_per_worker: 1,
        replication: 1,
        tau_d: 50,
        tau_dfs: 200,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let f = cluster
        .train(JobSpec::extra_trees(t.schema().task, 8).with_seed(1))
        .into_forest();
    cluster.shutdown();
    for (i, tree) in f.trees.iter().enumerate() {
        assert!(tree.n_nodes() > 1, "tree {i} degenerated to a single leaf");
    }
}
