//! ts-trace acceptance: a seeded *faulty* training run yields a
//! `TraceReport` whose phase totals tile the critical path's wall clock
//! exactly (well within the 1% criterion), with spans correctly parented
//! across machines — the task span opened on the master is received on a
//! worker and still chains task → plan → job inside one trace.
#![cfg(feature = "obs")]

use std::time::Duration;

use treeserver::obs::{ObsConfig, SpanKind};
use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::DataTable;
use ts_netsim::FaultPlan;

fn table(rows: usize, seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric: 4,
        categorical: 2,
        cat_cardinality: 5,
        noise: 0.05,
        concept_depth: 4,
        seed,
        ..Default::default()
    })
}

/// A faulty, traced cluster: messages drop and stall, so the reliable
/// fabric's retries are in play while spans ride the frames.
fn faulty_traced_forest(workers: usize, trees: usize) -> Cluster {
    let t = table(2_000, 11);
    let cfg = ClusterConfig {
        n_workers: workers,
        compers_per_worker: 2,
        replication: 2.min(workers),
        tau_d: 150,
        tau_dfs: 600,
        faults: Some(
            FaultPlan::new(0x7A11)
                .with_message_drops(0.03)
                .with_message_delays(0.15, Duration::from_millis(2)),
        ),
        obs: ObsConfig::enabled(),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let spec = JobSpec::random_forest(t.schema().task, trees).with_seed(5);
    let _ = cluster.train(spec);
    cluster
}

#[test]
fn faulty_run_report_phases_tile_wall_clock_and_spans_parent_across_machines() {
    let cluster = faulty_traced_forest(3, 4);
    let rec = cluster
        .obs()
        .expect("recorder attached when obs enabled")
        .clone();

    // --- TraceReport: non-empty critical path, exact phase tiling. ---
    let report = cluster
        .trace_report()
        .expect("a finished job must leave a closed job span");
    assert!(
        !report.critical_path.is_empty(),
        "critical path must have at least the job span"
    );
    assert!(report.wall_ns > 0, "the job took real time");
    // The acceptance bar is "within 1% of wall clock"; the decomposition
    // telescopes, so it holds exactly.
    assert_eq!(
        report.phase_sum_ns(),
        report.wall_ns,
        "phase totals must tile the critical-path wall clock exactly"
    );
    let drift = report.wall_ns / 100;
    assert!(
        report.phase_sum_ns().abs_diff(report.wall_ns) <= drift,
        "phase totals within 1% of wall clock"
    );
    // The path is a contiguous tiling in time order.
    for w in report.critical_path.windows(2) {
        assert_eq!(w[0].end_ns, w[1].start_ns, "segments must be contiguous");
    }

    // --- Cross-machine parenting through the fabric. ---
    let dag = rec.span_dag();
    assert!(!dag.is_empty(), "a traced run reconstructs spans");
    let remote_task = dag
        .spans()
        .find(|s| {
            matches!(s.kind, SpanKind::ColumnTask | SpanKind::SubtreeTask)
                && s.recv_nodes.iter().any(|&n| n >= 1)
        })
        .expect("some task span must have been received on a worker");
    let plan = dag
        .span(remote_task.parent)
        .expect("task spans are parented under a plan span");
    assert_eq!(plan.kind, SpanKind::Plan, "task parent is the plan span");
    assert_eq!(
        plan.trace, remote_task.trace,
        "parent and child share the trace"
    );
    // Walk plan -> ... -> job root: child plans hang off task spans, so
    // follow parents until the job span.
    let mut cur = plan;
    let mut hops = 0;
    while cur.kind != SpanKind::Job {
        cur = dag
            .span(cur.parent)
            .expect("parent chain must stay inside the DAG");
        assert_eq!(cur.trace, remote_task.trace, "chain stays in one trace");
        hops += 1;
        assert!(hops < 10_000, "parent chain must terminate at the job span");
    }
    assert_eq!(
        cur.span, remote_task.trace,
        "the trace id is the root job span id"
    );

    // --- Latency feed saw the same spans the master closed. ---
    let feed = cluster
        .latency_feed()
        .expect("feed readable when obs enabled");
    assert!(
        feed.column.count > 0,
        "column-task completions must feed the rolling window"
    );
    assert!(
        feed.column.p50_ns > 0 && feed.column.p95_ns >= feed.column.p50_ns,
        "quantiles are ordered and non-zero: {feed:?}"
    );

    cluster.shutdown();
}

#[test]
fn trace_report_survives_multiple_jobs_and_names_the_latest() {
    let t = table(1_200, 3);
    let cfg = ClusterConfig {
        n_workers: 2,
        compers_per_worker: 2,
        replication: 2,
        tau_d: 150,
        tau_dfs: 600,
        obs: ObsConfig::enabled(),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let first = cluster.train(JobSpec::decision_tree(t.schema().task));
    let second = cluster.train(JobSpec::decision_tree(t.schema().task).with_seed(9));
    assert!(first.failure().is_none() && second.failure().is_none());

    let report = cluster.trace_report().expect("two jobs finished");
    // The report analyzes the slowest-*finishing* job — with sequential
    // train() calls that is the second one.
    assert_eq!(report.job, 1, "job ids are 0-based and sequential");
    assert_eq!(report.phase_sum_ns(), report.wall_ns);
    assert!(report.spans_total > 1, "a tree run opens plan + task spans");
    cluster.shutdown();
}
