//! Golden distributed-vs-local equivalence harness: with the paper's
//! *default* thresholds (`τ_D = 10,000`, `τ_dfs = 80,000`) the cluster must
//! reproduce the single-machine exact trainer bit-for-bit. The datasets are
//! sized above `τ_D` so the root genuinely runs as sharded column-tasks and
//! the frontier later crosses into subtree-task territory — the τ boundary
//! the equivalence guarantee has to survive.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::synth::{generate, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_tree::{train_tree, TrainParams};

const SEEDS: [u64; 3] = [11, 42, 977];

fn datasets(seed: u64) -> [DataTable; 2] {
    [
        generate(&SynthSpec {
            rows: 12_000,
            numeric: 5,
            categorical: 2,
            cat_cardinality: 5,
            noise: 0.05,
            concept_depth: 5,
            seed,
            ..Default::default()
        }),
        generate(&SynthSpec {
            rows: 12_000,
            numeric: 4,
            categorical: 1,
            task: Task::Regression,
            seed,
            ..Default::default()
        }),
    ]
}

#[test]
fn default_thresholds_match_local_trainer_across_seeds() {
    let cfg = ClusterConfig::default();
    assert_eq!(cfg.tau_d, 10_000, "test assumes the paper's default τ_D");
    assert_eq!(
        cfg.tau_dfs, 80_000,
        "test assumes the paper's default τ_dfs"
    );
    for seed in SEEDS {
        for t in datasets(seed) {
            let params = TrainParams {
                dmax: 8,
                ..TrainParams::for_task(t.schema().task)
            };
            let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);
            let cluster = Cluster::launch(ClusterConfig::default(), &t);
            let model = cluster
                .train(JobSpec::decision_tree(t.schema().task).with_dmax(8))
                .into_tree();
            cluster.shutdown();
            assert_eq!(
                model.canonicalize(),
                reference.canonicalize(),
                "seed {seed}, task {:?}: cluster diverged from the exact trainer",
                t.schema().task
            );
        }
    }
}
