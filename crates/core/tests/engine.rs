//! Engine integration tests: the distributed cluster must produce *exactly*
//! the trees the single-threaded exact trainer produces, regardless of
//! cluster shape, thresholds, pool size or scheduling interleaving — plus
//! fault-tolerance and statistics behaviour.

use treeserver::{Cluster, ClusterConfig, JobSpec};
use ts_datatable::metrics::accuracy;
use ts_datatable::synth::{generate, PaperDataset, SynthSpec};
use ts_datatable::{DataTable, Task};
use ts_tree::{train_tree, TrainParams};

fn table(rows: usize, numeric: usize, categorical: usize, seed: u64) -> DataTable {
    generate(&SynthSpec {
        rows,
        numeric,
        categorical,
        cat_cardinality: 6,
        noise: 0.05,
        concept_depth: 5,
        seed,
        ..Default::default()
    })
}

fn small_cfg(workers: usize, compers: usize, tau_d: u64) -> ClusterConfig {
    ClusterConfig {
        n_workers: workers,
        compers_per_worker: compers,
        replication: 2.min(workers),
        tau_d,
        tau_dfs: tau_d * 4,
        ..Default::default()
    }
}

/// Reference model via the local exact trainer.
fn reference_tree(t: &DataTable, dmax: u32) -> ts_tree::DecisionTreeModel {
    let params = TrainParams {
        dmax,
        ..TrainParams::for_task(t.schema().task)
    };
    train_tree(t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0)
}

#[test]
fn single_tree_matches_local_trainer_exactly() {
    let t = table(3_000, 5, 2, 1);
    let reference = reference_tree(&t, 10);
    // Sweep cluster shapes: column-task heavy (tiny tau_d), subtree-heavy
    // (huge tau_d), single worker, many workers.
    for (workers, compers, tau_d) in [(1, 1, 100), (3, 2, 200), (4, 3, 1_000_000), (2, 4, 50)] {
        let cluster = Cluster::launch(small_cfg(workers, compers, tau_d), &t);
        let model = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        assert_eq!(
            model.canonicalize(),
            reference.canonicalize(),
            "cluster ({workers}w x {compers}c, tau_d={tau_d}) diverged from the exact trainer"
        );
    }
}

#[test]
fn regression_tree_matches_local_trainer_exactly() {
    let t = generate(&SynthSpec {
        rows: 2_000,
        numeric: 4,
        categorical: 2,
        task: Task::Regression,
        seed: 9,
        ..Default::default()
    });
    let reference = reference_tree(&t, 10);
    let cluster = Cluster::launch(small_cfg(3, 2, 150), &t);
    let model = cluster
        .train(JobSpec::decision_tree(Task::Regression))
        .into_tree();
    cluster.shutdown();
    assert_eq!(model.canonicalize(), reference.canonicalize());
}

#[test]
fn forest_is_identical_across_cluster_shapes() {
    let t = table(2_500, 6, 0, 3);
    let spec = || JobSpec::random_forest(t.schema().task, 8).with_seed(42);
    let run = |workers: usize, compers: usize, tau_d: u64| {
        let cluster = Cluster::launch(small_cfg(workers, compers, tau_d), &t);
        let f = cluster.train(spec()).into_forest();
        cluster.shutdown();
        f
    };
    let canon = |f: ts_tree::ForestModel| -> Vec<ts_tree::DecisionTreeModel> {
        f.trees.iter().map(|t| t.canonicalize()).collect()
    };
    let a = canon(run(1, 2, 300));
    let b = canon(run(4, 3, 300));
    let c = canon(run(3, 1, 5_000));
    assert_eq!(a, b, "worker count changed the model");
    assert_eq!(a, c, "tau_d changed the model");
}

#[test]
fn npool_does_not_change_models() {
    let t = table(1_500, 5, 1, 4);
    let run = |n_pool: usize| {
        let cfg = ClusterConfig {
            n_pool,
            ..small_cfg(3, 2, 200)
        };
        let cluster = Cluster::launch(cfg, &t);
        let f = cluster
            .train(JobSpec::random_forest(t.schema().task, 6).with_seed(5))
            .into_forest();
        cluster.shutdown();
        f
    };
    let canon = |f: ts_tree::ForestModel| -> Vec<ts_tree::DecisionTreeModel> {
        f.trees.iter().map(|t| t.canonicalize()).collect()
    };
    assert_eq!(canon(run(1)), canon(run(6)));
}

#[test]
fn tau_dfs_does_not_change_models() {
    let t = table(1_500, 4, 0, 5);
    let run = |tau_dfs: u64| {
        let cfg = ClusterConfig {
            tau_dfs,
            ..small_cfg(3, 2, 100)
        };
        let cluster = Cluster::launch(cfg, &t);
        let m = cluster
            .train(JobSpec::decision_tree(t.schema().task))
            .into_tree();
        cluster.shutdown();
        m
    };
    assert_eq!(run(50).canonicalize(), run(1_000_000).canonicalize());
}

#[test]
fn dmax_and_tau_leaf_are_respected() {
    let t = table(2_000, 5, 0, 6);
    let cluster = Cluster::launch(small_cfg(3, 2, 200), &t);
    let m = cluster
        .train(
            JobSpec::decision_tree(t.schema().task)
                .with_dmax(4)
                .with_tau_leaf(50),
        )
        .into_tree();
    cluster.shutdown();
    assert!(m.max_depth() <= 4);
    for n in &m.nodes {
        if !n.is_leaf() {
            assert!(n.n_rows > 50, "internal node with {} rows", n.n_rows);
        }
    }
    // And it still matches the local trainer with the same knobs.
    let params = TrainParams {
        dmax: 4,
        tau_leaf: 50,
        ..TrainParams::for_task(t.schema().task)
    };
    let reference = train_tree(&t, &(0..t.n_attrs()).collect::<Vec<_>>(), &params, 0);
    assert_eq!(m.canonicalize(), reference.canonicalize());
}

#[test]
fn forest_accuracy_beats_baseline() {
    // Dataset seed picked so the concept is learnable under the in-repo
    // RNG stream: seed 9 holds >0.84 across forest seeds, while seed 7
    // (used with the old external RNG) generates a much noisier draw.
    let t = table(4_000, 8, 0, 9);
    let (tr, te) = t.train_test_split(0.8, 1);
    let cluster = Cluster::launch(small_cfg(4, 2, 300), &tr);
    let f = cluster
        .train(JobSpec::random_forest(tr.schema().task, 12).with_seed(3))
        .into_forest();
    cluster.shutdown();
    let acc = accuracy(&f.predict_labels(&te), te.labels().as_class().unwrap());
    assert!(acc > 0.75, "forest test accuracy {acc}");
}

#[test]
fn extra_trees_train_and_are_seed_deterministic() {
    let t = table(1_200, 4, 1, 8);
    let run = |seed: u64| {
        let cluster = Cluster::launch(small_cfg(3, 2, 200), &t);
        let f = cluster
            .train(JobSpec::extra_trees(t.schema().task, 4).with_seed(seed))
            .into_forest();
        cluster.shutdown();
        f
    };
    let canon = |f: &ts_tree::ForestModel| -> Vec<ts_tree::DecisionTreeModel> {
        f.trees.iter().map(|t| t.canonicalize()).collect()
    };
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(canon(&a), canon(&b), "same seed must reproduce the forest");
    assert_ne!(canon(&a), canon(&c), "different seeds should differ");
    assert!(a.trees.iter().all(|t| t.n_nodes() > 1));
}

#[test]
fn missing_values_and_paper_shapes_train() {
    // Allstate shape: regression, mixed columns, missing values.
    let t = PaperDataset::Allstate.generate(2e-4, 11);
    let cluster = Cluster::launch(small_cfg(3, 2, 300), &t);
    let m = cluster
        .train(JobSpec::decision_tree(Task::Regression))
        .into_tree();
    cluster.shutdown();
    assert!(m.n_nodes() > 1);
    // Prediction over missing-laden data works (stop-at-node semantics).
    let preds = m.predict_values(&t);
    assert_eq!(preds.len(), t.n_rows());
    // Matches the local trainer bit-for-bit even with missing values.
    assert_eq!(m.canonicalize(), reference_tree(&t, 10).canonicalize());
}

#[test]
fn concurrent_jobs_complete_independently() {
    let t = table(1_500, 5, 0, 13);
    let cluster = Cluster::launch(small_cfg(3, 2, 200), &t);
    let h1 = cluster.submit(JobSpec::decision_tree(t.schema().task));
    let h2 = cluster.submit(JobSpec::random_forest(t.schema().task, 4).with_seed(9));
    let h3 = cluster.submit(JobSpec::extra_trees(t.schema().task, 3).with_seed(2));
    let r2 = cluster.wait(h2).into_forest();
    let r1 = cluster.wait(h1).into_tree();
    let r3 = cluster.wait(h3).into_forest();
    cluster.shutdown();
    assert_eq!(r2.n_trees(), 4);
    assert_eq!(r3.n_trees(), 3);
    assert_eq!(r1.canonicalize(), reference_tree(&t, 10).canonicalize());
}

#[test]
fn worker_crash_recovers_and_completes() {
    let t = table(3_000, 6, 0, 17);
    let cfg = ClusterConfig {
        n_workers: 4,
        compers_per_worker: 2,
        replication: 2,
        tau_d: 100,
        tau_dfs: 400,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, &t);
    let h = cluster.submit(JobSpec::random_forest(t.schema().task, 6).with_seed(21));
    // Let some tasks start, then kill a worker mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(30));
    cluster.kill_worker(2);
    let f = cluster.wait(h).into_forest();
    cluster.shutdown();
    assert_eq!(f.n_trees(), 6);
    let acc = accuracy(&f.predict_labels(&t), t.labels().as_class().unwrap());
    assert!(acc > 0.7, "post-crash forest accuracy {acc}");
}

#[test]
fn master_never_ships_row_sets() {
    // §V: the master's outbound traffic must not scale with |Ix| — row sets
    // travel worker-to-worker. Train with column-task-heavy settings and
    // compare the master's sent bytes against the per-plan overheads.
    let t = table(4_000, 6, 0, 23);
    let cluster = Cluster::launch(small_cfg(4, 2, 100), &t);
    let _ = cluster.train(JobSpec::decision_tree(t.schema().task));
    let report = cluster.report();
    cluster.shutdown();
    // Workers exchanged row ids (4 bytes/row across many nodes); if the
    // master relayed them its outbound would be comparable to the workers'.
    let worker_sent: u64 = report.per_node[1..].iter().map(|s| s.sent_bytes).sum();
    assert!(
        report.master_sent_bytes < worker_sent / 4,
        "master sent {} vs workers {}",
        report.master_sent_bytes,
        worker_sent
    );
}

#[test]
fn report_collects_cpu_and_memory() {
    let t = table(2_000, 5, 0, 29);
    let cluster = Cluster::launch(small_cfg(3, 2, 300), &t);
    let _ = cluster.train(JobSpec::random_forest(t.schema().task, 6));
    let report = cluster.report();
    cluster.shutdown();
    assert!(report.avg_cpu_percent > 0.0);
    assert!(report.avg_peak_mem_bytes > 0.0);
    assert_eq!(report.per_node.len(), 4);
}

#[test]
fn launch_from_dfs_trains_identically() {
    let dir = std::env::temp_dir().join(format!("ts-core-dfs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dfs = ts_dfs::Dfs::new(ts_dfs::DfsConfig::local(&dir)).unwrap();
    let t = table(1_000, 4, 1, 31);
    dfs.put_table("train", &t, 2, 300).unwrap();
    let cluster = Cluster::launch_from_dfs(small_cfg(2, 2, 200), &dfs, "train").unwrap();
    let m = cluster
        .train(JobSpec::decision_tree(t.schema().task))
        .into_tree();
    cluster.shutdown();
    assert_eq!(m.canonicalize(), reference_tree(&t, 10).canonicalize());
}
