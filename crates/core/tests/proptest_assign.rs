//! Property tests for the §VI assignment cost model: for any cluster shape
//! and any task, charges are consistent, holders are real, and deduction
//! restores the matrix.

use treeserver::assign::{
    assign_column_task, assign_subtree, ColumnMap, LoadMatrix, COMP, RECV, SEND,
};
use tscheck::prelude::*;

fn shapes() -> impl Strategy<Value = (usize, usize, usize, Vec<usize>, u64, Option<usize>)> {
    (2usize..8, 1usize..30, 1usize..4).prop_flat_map(|(workers, attrs, repl)| {
        let repl = repl.min(workers);
        (
            Just(workers),
            Just(attrs),
            Just(repl),
            tscheck::collection::vec(0..attrs, 1..attrs.max(2)),
            1u64..100_000,
            tscheck::option::of(1..=workers),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Subtree assignment: the key worker exists, every column source holds
    /// its column, requesters are exactly {key} ∪ remote holders when a
    /// parent exists (empty for roots), and deducting the charges restores
    /// the zero matrix.
    #[test]
    fn subtree_assignment_invariants(
        (workers, attrs, repl, mut cands, n_rows, parent) in shapes()
    ) {
        cands.sort_unstable();
        cands.dedup();
        let colmap = ColumnMap::round_robin(attrs, workers, repl);
        let worker_ids: Vec<usize> = (1..=workers).collect();
        let mut m = LoadMatrix::new(workers + 1);
        let asg = assign_subtree(&mut m, &colmap, &worker_ids, &cands, n_rows, parent);

        prop_assert!(worker_ids.contains(&asg.key_worker));
        prop_assert_eq!(asg.col_sources.len(), cands.len());
        for &(attr, holder) in &asg.col_sources {
            prop_assert!(colmap.holders(attr).contains(&holder),
                "worker {} does not hold column {}", holder, attr);
        }
        match parent {
            None => prop_assert!(asg.ix_requesters.is_empty()),
            Some(_) => {
                prop_assert!(asg.ix_requesters.contains(&asg.key_worker));
                for &(_, h) in &asg.col_sources {
                    if h != asg.key_worker {
                        prop_assert!(asg.ix_requesters.contains(&h));
                    }
                }
            }
        }
        // Charges were applied...
        let applied: u64 = (1..=workers)
            .map(|w| m.get(w, COMP) + m.get(w, SEND) + m.get(w, RECV))
            .sum();
        prop_assert!(applied > 0, "a subtree task always charges compute");
        // ... and deduct to zero.
        m.deduct(&asg.charges);
        for w in 1..=workers {
            for d in [COMP, SEND, RECV] {
                prop_assert_eq!(m.get(w, d), 0, "worker {} dim {}", w, d);
            }
        }
    }

    /// Column-task assignment: shards cover the candidates exactly once,
    /// each shard worker holds all its columns, requesters equal the shard
    /// workers (when a parent exists), and charges deduct to zero.
    #[test]
    fn column_assignment_invariants(
        (workers, attrs, repl, mut cands, n_rows, parent) in shapes()
    ) {
        cands.sort_unstable();
        cands.dedup();
        let colmap = ColumnMap::round_robin(attrs, workers, repl);
        let mut m = LoadMatrix::new(workers + 1);
        let asg = assign_column_task(&mut m, &colmap, &cands, n_rows, parent);

        let mut covered: Vec<usize> =
            asg.shards.iter().flat_map(|(_, c)| c.iter().copied()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, cands.clone());
        for (w, cols) in &asg.shards {
            for c in cols {
                prop_assert!(colmap.holders(*c).contains(w));
            }
        }
        match parent {
            None => prop_assert!(asg.ix_requesters.is_empty()),
            Some(_) => {
                let shard_workers: Vec<usize> = asg.shards.iter().map(|&(w, _)| w).collect();
                prop_assert_eq!(asg.ix_requesters.clone(), shard_workers);
            }
        }
        m.deduct(&asg.charges);
        for w in 1..=workers {
            for d in [COMP, SEND, RECV] {
                prop_assert_eq!(m.get(w, d), 0);
            }
        }
    }

    /// Repeated assignments spread load: after assigning the same subtree
    /// task many times, no worker's Comp exceeds the per-worker fair share
    /// by more than one task's worth.
    #[test]
    fn repeated_subtree_assignment_balances_comp(
        workers in 2usize..6,
        reps in 4usize..20,
    ) {
        let attrs = 8;
        let colmap = ColumnMap::round_robin(attrs, workers, 2.min(workers));
        let worker_ids: Vec<usize> = (1..=workers).collect();
        let cands: Vec<usize> = (0..attrs).collect();
        let mut m = LoadMatrix::new(workers + 1);
        for _ in 0..reps {
            let _ = assign_subtree(&mut m, &colmap, &worker_ids, &cands, 1_000, None);
        }
        let comps: Vec<u64> = (1..=workers).map(|w| m.get(w, COMP)).collect();
        let max = *comps.iter().max().unwrap();
        let min = *comps.iter().min().unwrap();
        // One task's compute is 1_000 * 8 * log2 ≈ fixed; min-comp greedy
        // keeps the gap within one task.
        prop_assert!(max - min <= 1_000 * 8 * 11,
            "comp imbalance {:?}", comps);
    }
}
