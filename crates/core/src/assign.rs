//! Worker assignment for tasks — the paper's §VI cost model.
//!
//! The master tracks per-worker Computation / Send / Receive workloads in
//! the matrix `M_work` and assigns each new plan greedily:
//!
//! - **Subtree-task**: the key worker is the one with minimum Comp (the task
//!   is CPU-bound), charged `|Ix| · |C| · log|Ix|`. Each candidate column is
//!   then assigned to one of its replica holders, chosen to minimise the
//!   maximum of the four affected Send/Recv cells, with the `Ix` transfer
//!   from the parent worker counted only on a holder's first column.
//! - **Column-task**: each column goes to the holder minimising
//!   `max(Recv_j, Send_parent)` after the update, charged `|Ix|` Comp.
//!
//! Local data incurs no communication charge ("TreeServer properly skips
//! adding communication workloads whenever the requested data is local").
//! All charges are remembered per task and deducted when its result arrives.

use crate::recovery::{AttrId, RecoveryError};
use std::collections::HashMap;
use ts_netsim::NodeId;

/// Column index into a workload row: computation.
pub const COMP: usize = 0;
/// Column index: bytes/rows to send.
pub const SEND: usize = 1;
/// Column index: bytes/rows to receive.
pub const RECV: usize = 2;

/// The master's workload matrix `M_work` (one row per machine; the master's
/// own row is unused).
#[derive(Debug, Clone)]
pub struct LoadMatrix {
    rows: Vec<[u64; 3]>,
}

impl LoadMatrix {
    /// Creates a matrix for `n_nodes` machines (master + workers).
    pub fn new(n_nodes: usize) -> LoadMatrix {
        LoadMatrix {
            rows: vec![[0; 3]; n_nodes],
        }
    }

    /// Current value of one cell.
    pub fn get(&self, node: NodeId, dim: usize) -> u64 {
        self.rows[node][dim]
    }

    /// Number of machines the matrix tracks.
    pub fn n_nodes(&self) -> usize {
        self.rows.len()
    }

    /// Adds workload to a cell.
    pub fn add(&mut self, node: NodeId, dim: usize, amount: u64) {
        self.rows[node][dim] += amount;
    }

    /// Deducts previously-charged workload (saturating: fault recovery may
    /// clear charges that were already partially deducted).
    pub fn sub(&mut self, node: NodeId, dim: usize, amount: u64) {
        self.rows[node][dim] = self.rows[node][dim].saturating_sub(amount);
    }

    /// Applies a charge set produced by an assignment.
    pub fn apply(&mut self, charges: &[(NodeId, [u64; 3])]) {
        for &(node, ref c) in charges {
            for (d, &amount) in c.iter().enumerate() {
                self.rows[node][d] += amount;
            }
        }
    }

    /// Deducts a charge set (task completed or revoked).
    pub fn deduct(&mut self, charges: &[(NodeId, [u64; 3])]) {
        for &(node, ref c) in charges {
            for (d, &amount) in c.iter().enumerate() {
                self.sub(node, d, amount);
            }
        }
    }

    /// Resets every cell (fault recovery after revoking all in-flight work).
    pub fn clear(&mut self) {
        for r in &mut self.rows {
            *r = [0; 3];
        }
    }
}

/// Which workers hold each column (attr id → replica holders, each a worker
/// `NodeId`). Built at load time; updated on worker crash.
#[derive(Debug, Clone)]
pub struct ColumnMap {
    holders: Vec<Vec<NodeId>>,
}

impl ColumnMap {
    /// Distributes `n_attrs` columns over workers `1..=n_workers` round-robin
    /// with `replication` copies each (replica `r` of column `a` goes to
    /// worker `1 + (a + r) % n_workers`).
    pub fn round_robin(n_attrs: usize, n_workers: usize, replication: usize) -> ColumnMap {
        assert!(replication >= 1 && replication <= n_workers);
        let holders = (0..n_attrs)
            .map(|a| (0..replication).map(|r| 1 + (a + r) % n_workers).collect())
            .collect();
        ColumnMap { holders }
    }

    /// The replica holders of a column.
    pub fn holders(&self, attr: usize) -> &[NodeId] {
        &self.holders[attr]
    }

    /// All columns a given worker holds.
    pub fn columns_of(&self, worker: NodeId) -> Vec<usize> {
        (0..self.holders.len())
            .filter(|&a| self.holders[a].contains(&worker))
            .collect()
    }

    /// Number of columns.
    pub fn n_attrs(&self) -> usize {
        self.holders.len()
    }

    /// Removes a crashed worker from every replica list; returns the columns
    /// that lost a replica.
    ///
    /// If the worker held the *last* replica of some column the map is left
    /// untouched and `RecoveryError::ColumnLost` names the first such column
    /// — the data is unrecoverable and the caller should fail the job
    /// cleanly rather than continue with a hole in the schema.
    pub fn remove_worker(&mut self, worker: NodeId) -> Result<Vec<AttrId>, RecoveryError> {
        // Check before mutating so a doomed cluster still has an intact map
        // to report from.
        for (a, h) in self.holders.iter().enumerate() {
            if h == &[worker] {
                return Err(RecoveryError::ColumnLost {
                    attr: a,
                    dead: worker,
                });
            }
        }
        let mut lost = Vec::new();
        for (a, h) in self.holders.iter_mut().enumerate() {
            let before = h.len();
            h.retain(|&w| w != worker);
            if h.len() < before {
                lost.push(a);
            }
        }
        Ok(lost)
    }

    /// Removes one worker from one column's replica list, but only if
    /// another holder remains (graceful drain: the leaver stops being a
    /// holder attr-by-attr as each handoff completes, and must never leave
    /// a column unservable). Returns whether the worker was removed.
    pub fn drop_holder(&mut self, attr: usize, worker: NodeId) -> bool {
        let h = &mut self.holders[attr];
        if h.len() >= 2 && h.contains(&worker) {
            h.retain(|&w| w != worker);
            true
        } else {
            false
        }
    }

    /// Adds a worker as a holder of a column (re-replication).
    pub fn add_holder(&mut self, attr: usize, worker: NodeId) {
        if !self.holders[attr].contains(&worker) {
            self.holders[attr].push(worker);
        }
    }

    /// Plans the incremental migration that folds a joining `worker` into
    /// the map: returns `(attr, source holder)` pairs to copy onto the
    /// joiner. The plan moves the fewest bytes that both restore the
    /// replication factor and give the joiner a useful share of columns
    /// (all columns are the same byte size, so fewest bytes = fewest
    /// columns):
    ///
    /// 1. every under-replicated column gains the joiner as a replica,
    ///    single-holder columns first (the same priority `remove_worker`
    ///    uses — those are one crash away from `ColumnLost`);
    /// 2. the joiner is topped up to its fair share (`n_attrs ·
    ///    replication / n_workers_after`) with columns taken from the
    ///    richest holders, so future tasks can actually land on it.
    ///
    /// The map is **not** mutated: the joiner becomes a holder only when
    /// its `ReplicateDone` arrives (via [`ColumnMap::add_holder`]), so
    /// column tasks never target data still in flight. This is deliberately
    /// asymmetric with `remove_worker`, which must mutate eagerly because
    /// a crashed holder is gone whether or not recovery succeeds.
    pub fn add_worker(&self, worker: NodeId, replication: usize) -> Vec<(AttrId, NodeId)> {
        let mut plan: Vec<(AttrId, NodeId)> = Vec::new();
        let mut planned = vec![false; self.holders.len()];
        // Per-holder column counts, counting planned copies as the joiner's.
        let mut held: HashMap<NodeId, usize> = HashMap::new();
        for h in &self.holders {
            for &w in h {
                *held.entry(w).or_insert(0) += 1;
            }
        }

        // Phase 1: restore replication, single-holder columns first.
        let mut deficits: Vec<usize> = (0..self.holders.len())
            .filter(|&a| self.holders[a].len() < replication && !self.holders[a].contains(&worker))
            .collect();
        deficits.sort_unstable_by_key(|&a| (self.holders[a].len(), a));
        for a in deficits {
            // Source: the least-loaded current holder (ties to the lowest
            // worker id) so the copy traffic spreads.
            let &src = self.holders[a]
                .iter()
                .min_by_key(|&&w| (held.get(&w).copied().unwrap_or(0), w))
                .expect("a held column");
            plan.push((a, src));
            planned[a] = true;
        }

        // Phase 2: top the joiner up to its fair share, pulling columns off
        // the richest holders.
        let n_workers_after = held.keys().filter(|&&w| w != worker).count() + 1;
        let total: usize = self.holders.iter().map(|h| h.len()).sum();
        let fair = (total + plan.len()) / n_workers_after;
        let mut joiner_holds = self.columns_of(worker).len() + plan.len();
        while joiner_holds < fair {
            // The candidate column: held by the currently richest holder,
            // not yet planned and not already on the joiner; ties break to
            // the lowest attr for determinism.
            let pick = (0..self.holders.len())
                .filter(|&a| !planned[a] && !self.holders[a].contains(&worker))
                .filter_map(|a| {
                    self.holders[a]
                        .iter()
                        .map(|&w| (held.get(&w).copied().unwrap_or(0), w))
                        .max_by_key(|&(load, w)| (load, std::cmp::Reverse(w)))
                        .map(|(load, w)| (load, a, w))
                })
                .max_by_key(|&(load, a, _)| (load, std::cmp::Reverse(a)));
            let Some((_, a, src)) = pick else { break };
            plan.push((a, src));
            planned[a] = true;
            joiner_holds += 1;
        }

        plan.sort_unstable();
        plan
    }
}

/// Result of assigning a subtree-task.
#[derive(Debug, Clone)]
pub struct SubtreeAssignment {
    /// The worker that collects `Dx` and builds `∆x`.
    pub key_worker: NodeId,
    /// Per candidate column, the holder the key worker will ask (sorted by
    /// attribute id for deterministic dataset layout).
    pub col_sources: Vec<(usize, NodeId)>,
    /// Workload charges applied to `M_work` (deduct on completion).
    pub charges: Vec<(NodeId, [u64; 3])>,
    /// Distinct workers that will request `Ix` from the parent worker.
    pub ix_requesters: Vec<NodeId>,
}

/// Result of assigning a column-task.
#[derive(Debug, Clone)]
pub struct ColumnAssignment {
    /// Per-worker column shards (each worker holds all its assigned columns).
    pub shards: Vec<(NodeId, Vec<usize>)>,
    /// Workload charges applied to `M_work`.
    pub charges: Vec<(NodeId, [u64; 3])>,
    /// Distinct workers that will request `Ix` (= the shard workers).
    pub ix_requesters: Vec<NodeId>,
}

struct ChargeSet {
    map: HashMap<NodeId, [u64; 3]>,
}

impl ChargeSet {
    fn new() -> ChargeSet {
        ChargeSet {
            map: HashMap::new(),
        }
    }

    fn add(&mut self, m: &mut LoadMatrix, node: NodeId, dim: usize, amount: u64) {
        m.add(node, dim, amount);
        self.map.entry(node).or_insert([0; 3])[dim] += amount;
    }

    fn into_vec(self) -> Vec<(NodeId, [u64; 3])> {
        let mut v: Vec<_> = self.map.into_iter().collect();
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    }
}

/// `|Ix| · |C| · log2|Ix|` — the paper's subtree compute estimate.
fn subtree_comp_cost(n_rows: u64, n_cols: usize) -> u64 {
    let log = 64 - n_rows.max(2).leading_zeros() as u64; // ~ceil(log2)
    n_rows * n_cols as u64 * log
}

/// Assigns a subtree-task (paper §VI, "Assignment of a Subtree-Task").
///
/// `parent_worker` is `None` for root tasks (no `Ix` transfer happens).
pub fn assign_subtree(
    m: &mut LoadMatrix,
    colmap: &ColumnMap,
    workers: &[NodeId],
    candidates: &[usize],
    n_rows: u64,
    parent_worker: Option<NodeId>,
) -> SubtreeAssignment {
    assert!(!workers.is_empty());
    let mut charges = ChargeSet::new();

    // Key worker: minimum current computation workload.
    let key = *workers
        .iter()
        .min_by_key(|&&w| (m.get(w, COMP), w))
        .expect("nonempty worker list");
    charges.add(m, key, COMP, subtree_comp_cost(n_rows, candidates.len()));

    // The key worker itself fetches Ix (for the Y values).
    let mut requesters: Vec<NodeId> = Vec::new();
    if let Some(pa) = parent_worker {
        requesters.push(key);
        charges.add(m, key, RECV, n_rows);
        if pa != key {
            charges.add(m, pa, SEND, n_rows);
        }
    }

    let mut col_sources = Vec::with_capacity(candidates.len());
    let mut cands = candidates.to_vec();
    cands.sort_unstable();
    for &attr in &cands {
        let holders = colmap.holders(attr);
        debug_assert!(!holders.is_empty(), "column {attr} has no holder");
        // Pick the holder minimising the max of the four §VI updates.
        let mut best: Option<(u64, NodeId)> = None;
        for &j in holders {
            // Updates (1)+(2) — the Ix transfer — apply only on a remote
            // holder's first assigned column (it requests Ix exactly once).
            let is_first = parent_worker.is_some() && !requesters.contains(&j);
            let score = if j == key {
                // Column local to the key worker: no transfers at all beyond
                // the Ix request already counted for the key.
                let vals = [
                    m.get(j, RECV),
                    parent_worker.map_or(0, |pa| m.get(pa, SEND)),
                    m.get(j, SEND),
                    m.get(key, RECV),
                ];
                *vals.iter().max().expect("4 values")
            } else {
                let ix_in = if is_first { n_rows } else { 0 };
                let vals = [
                    m.get(j, RECV) + ix_in,
                    parent_worker.map_or(0, |pa| m.get(pa, SEND) + ix_in),
                    m.get(j, SEND) + n_rows,
                    m.get(key, RECV) + n_rows,
                ];
                *vals.iter().max().expect("4 values")
            };
            if best.is_none_or(|(bs, bj)| score < bs || (score == bs && j < bj)) {
                best = Some((score, j));
            }
        }
        let (_, j) = best.expect("at least one holder");
        // Apply the chosen updates.
        if j != key {
            if let Some(pa) = parent_worker {
                if !requesters.contains(&j) {
                    charges.add(m, j, RECV, n_rows);
                    if pa != j {
                        charges.add(m, pa, SEND, n_rows);
                    }
                    requesters.push(j);
                }
            }
            charges.add(m, j, SEND, n_rows);
            charges.add(m, key, RECV, n_rows);
        }
        col_sources.push((attr, j));
    }

    requesters.sort_unstable();
    requesters.dedup();
    SubtreeAssignment {
        key_worker: key,
        col_sources,
        charges: charges.into_vec(),
        ix_requesters: requesters,
    }
}

/// Assigns a column-task (paper §VI, "Assignment of a Column-Task").
pub fn assign_column_task(
    m: &mut LoadMatrix,
    colmap: &ColumnMap,
    candidates: &[usize],
    n_rows: u64,
    parent_worker: Option<NodeId>,
) -> ColumnAssignment {
    let mut charges = ChargeSet::new();
    let mut shards: HashMap<NodeId, Vec<usize>> = HashMap::new();
    let mut cands = candidates.to_vec();
    cands.sort_unstable();
    for &attr in &cands {
        let holders = colmap.holders(attr);
        // Primary key: the paper's max(Recv_j, Send_pa) network rule.
        // Secondary key: scan compute, which breaks the tie that would
        // otherwise pile every column onto the first chosen worker (its Ix
        // transfer is only counted once, so its network score never grows).
        let mut best: Option<((u64, u64), NodeId)> = None;
        for &j in holders {
            let is_first = !shards.contains_key(&j);
            let net = match parent_worker {
                Some(pa) => {
                    let ix_in = if is_first { n_rows } else { 0 };
                    let recv_j = m.get(j, RECV) + ix_in;
                    let send_pa = m.get(pa, SEND) + if is_first && pa != j { n_rows } else { 0 };
                    recv_j.max(send_pa)
                }
                // Root task: no Ix transfer.
                None => 0,
            };
            let score = (net, m.get(j, COMP) + n_rows);
            if best.is_none_or(|(bs, bj)| score < bs || (score == bs && j < bj)) {
                best = Some((score, j));
            }
        }
        let (_, j) = best.expect("at least one holder");
        let is_first = !shards.contains_key(&j);
        if is_first {
            if let Some(pa) = parent_worker {
                charges.add(m, j, RECV, n_rows);
                if pa != j {
                    charges.add(m, pa, SEND, n_rows);
                }
            }
        }
        // One-pass scan cost per column.
        charges.add(m, j, COMP, n_rows);
        shards.entry(j).or_default().push(attr);
    }
    let mut shards: Vec<(NodeId, Vec<usize>)> = shards.into_iter().collect();
    shards.sort_unstable_by_key(|&(w, _)| w);
    let ix_requesters: Vec<NodeId> = if parent_worker.is_some() {
        shards.iter().map(|&(w, _)| w).collect()
    } else {
        Vec::new()
    };
    ColumnAssignment {
        shards,
        charges: charges.into_vec(),
        ix_requesters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(n: usize) -> Vec<NodeId> {
        (1..=n).collect()
    }

    #[test]
    fn round_robin_replication() {
        let cm = ColumnMap::round_robin(5, 3, 2);
        assert_eq!(cm.holders(0), &[1, 2]);
        assert_eq!(cm.holders(2), &[3, 1]);
        assert_eq!(cm.columns_of(1), vec![0, 2, 3]);
        assert_eq!(cm.n_attrs(), 5);
    }

    #[test]
    fn key_worker_is_min_comp() {
        let mut m = LoadMatrix::new(4);
        m.add(1, COMP, 100);
        m.add(2, COMP, 10);
        m.add(3, COMP, 50);
        let cm = ColumnMap::round_robin(4, 3, 2);
        let a = assign_subtree(&mut m, &cm, &workers(3), &[0, 1], 1000, Some(1));
        assert_eq!(a.key_worker, 2);
        // Comp charge was applied to the key worker.
        assert!(m.get(2, COMP) > 10);
    }

    #[test]
    fn subtree_charges_deduct_to_zero() {
        let mut m = LoadMatrix::new(4);
        let cm = ColumnMap::round_robin(6, 3, 2);
        let a = assign_subtree(&mut m, &cm, &workers(3), &[0, 1, 2, 3], 500, Some(2));
        m.deduct(&a.charges);
        for w in 1..=3 {
            for d in 0..3 {
                assert_eq!(m.get(w, d), 0, "worker {w} dim {d}");
            }
        }
    }

    #[test]
    fn subtree_requesters_cover_key_and_holders() {
        let mut m = LoadMatrix::new(4);
        let cm = ColumnMap::round_robin(6, 3, 1);
        let a = assign_subtree(&mut m, &cm, &workers(3), &[0, 1, 2], 100, Some(1));
        // Key worker always requests; every distinct remote holder too.
        assert!(a.ix_requesters.contains(&a.key_worker));
        for &(_, h) in &a.col_sources {
            if h != a.key_worker {
                assert!(a.ix_requesters.contains(&h), "holder {h} must request Ix");
            }
        }
        // Requester list is sorted and deduplicated.
        assert!(a.ix_requesters.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn root_subtree_has_no_requesters() {
        let mut m = LoadMatrix::new(4);
        let cm = ColumnMap::round_robin(6, 3, 2);
        let a = assign_subtree(&mut m, &cm, &workers(3), &[0, 1, 2], 100, None);
        assert!(a.ix_requesters.is_empty());
        // No Recv charge for Ix on the key worker either.
        let key_charge = a
            .charges
            .iter()
            .find(|&&(w, _)| w == a.key_worker)
            .unwrap()
            .1;
        assert_eq!(key_charge[RECV] % 100, 0, "only column transfers counted");
    }

    #[test]
    fn column_sources_are_sorted_and_held() {
        let mut m = LoadMatrix::new(5);
        let cm = ColumnMap::round_robin(8, 4, 2);
        let a = assign_subtree(&mut m, &cm, &workers(4), &[5, 1, 3], 100, Some(2));
        let attrs: Vec<usize> = a.col_sources.iter().map(|&(a, _)| a).collect();
        assert_eq!(attrs, vec![1, 3, 5]);
        for &(attr, h) in &a.col_sources {
            assert!(cm.holders(attr).contains(&h));
        }
    }

    #[test]
    fn column_task_shards_cover_all_candidates() {
        let mut m = LoadMatrix::new(4);
        let cm = ColumnMap::round_robin(10, 3, 2);
        let a = assign_column_task(&mut m, &cm, &[0, 1, 2, 3, 4], 200, Some(1));
        let mut covered: Vec<usize> = a.shards.iter().flat_map(|(_, c)| c.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
        for (w, cols) in &a.shards {
            for c in cols {
                assert!(cm.holders(*c).contains(w), "worker {w} must hold col {c}");
            }
        }
        assert_eq!(a.ix_requesters.len(), a.shards.len());
    }

    #[test]
    fn column_task_balances_receive_load() {
        // With every column on both workers, the greedy rule should spread
        // columns rather than pile them on one worker.
        let mut m = LoadMatrix::new(3);
        let cm = ColumnMap::round_robin(8, 2, 2);
        let a = assign_column_task(&mut m, &cm, &(0..8).collect::<Vec<_>>(), 100, Some(1));
        assert_eq!(a.shards.len(), 2, "both workers should get a shard");
        let sizes: Vec<usize> = a.shards.iter().map(|(_, c)| c.len()).collect();
        assert!(sizes.iter().all(|&s| s >= 2), "shards {sizes:?} too skewed");
    }

    #[test]
    fn column_task_deducts_to_zero() {
        let mut m = LoadMatrix::new(4);
        let cm = ColumnMap::round_robin(5, 3, 2);
        let a = assign_column_task(&mut m, &cm, &[0, 1, 2], 50, Some(3));
        m.deduct(&a.charges);
        for w in 1..=3 {
            for d in 0..3 {
                assert_eq!(m.get(w, d), 0);
            }
        }
    }

    #[test]
    fn remove_worker_keeps_replicas() {
        let mut cm = ColumnMap::round_robin(4, 3, 2);
        let lost = cm.remove_worker(2).expect("replicas survive with k = 2");
        assert!(!lost.is_empty());
        for a in 0..4 {
            assert!(!cm.holders(a).is_empty());
            assert!(!cm.holders(a).contains(&2));
        }
        cm.add_holder(0, 3);
        assert!(cm.holders(0).contains(&3));
    }

    #[test]
    fn removing_last_replica_errors() {
        let mut cm = ColumnMap::round_robin(2, 2, 1);
        // Worker 1 is column 0's only holder: removal must fail cleanly and
        // leave the map untouched for the failure report.
        let err = cm.remove_worker(1).unwrap_err();
        assert_eq!(err, RecoveryError::ColumnLost { attr: 0, dead: 1 });
        assert_eq!(cm.holders(0), &[1]);
        assert_eq!(cm.holders(1), &[2]);
    }

    #[test]
    fn add_worker_restores_replication_single_holder_first() {
        // Start from a crash: drop worker 2 so some columns are down a
        // replica, then plan a join.
        let mut cm = ColumnMap::round_robin(6, 3, 2);
        cm.remove_worker(2).expect("replicas survive");
        let plan = cm.add_worker(4, 2);
        // Every under-replicated column must be in the plan, sourced from a
        // current holder.
        for a in 0..6 {
            if cm.holders(a).len() < 2 {
                let entry = plan.iter().find(|&&(pa, _)| pa == a);
                let &(_, src) = entry.expect("deficit column {a} planned");
                assert!(cm.holders(a).contains(&src));
            }
        }
        // The map itself is untouched until ReplicateDone lands.
        assert!(cm.columns_of(4).is_empty());
        // Deterministic: planning twice gives the same answer.
        assert_eq!(plan, cm.add_worker(4, 2));
    }

    #[test]
    fn add_worker_tops_up_to_fair_share() {
        // Fully-replicated map: no deficits, so the plan is pure top-up.
        let cm = ColumnMap::round_robin(8, 2, 2);
        let plan = cm.add_worker(3, 2);
        // 16 replica instances over 3 workers → fair share ≥ 5 columns, and
        // no column is planned twice.
        assert!(plan.len() >= 5, "plan {plan:?} leaves the joiner starved");
        let mut attrs: Vec<usize> = plan.iter().map(|&(a, _)| a).collect();
        attrs.sort_unstable();
        attrs.dedup();
        assert_eq!(attrs.len(), plan.len(), "no duplicate columns");
        for &(a, src) in &plan {
            assert!(cm.holders(a).contains(&src), "source must hold {a}");
            assert!(!cm.holders(a).contains(&3));
        }
    }

    #[test]
    fn add_worker_noop_when_joiner_already_at_share() {
        let mut cm = ColumnMap::round_robin(3, 3, 1);
        // Give the joiner everything first: nothing left to plan.
        for a in 0..3 {
            cm.add_holder(a, 4);
        }
        assert!(cm.add_worker(4, 1).is_empty());
    }

    #[test]
    fn load_matrix_saturating_sub() {
        let mut m = LoadMatrix::new(2);
        m.add(1, SEND, 5);
        m.sub(1, SEND, 10);
        assert_eq!(m.get(1, SEND), 0);
        m.add(1, COMP, 3);
        m.clear();
        assert_eq!(m.get(1, COMP), 0);
    }
}
