//! Gradient-boosted trees on the TreeServer engine.
//!
//! The paper's tree-scheduling discussion (§III) distinguishes bagging
//! (trees independent — trained concurrently in the pool) from boosting,
//! where "the next layer of trees can only be scheduled for training when
//! all trees in the previous layer is fully constructed". The paper's own
//! deep-forest pipeline realises such dependencies at the *client*: each
//! dependent stage is submitted as a TreeServer job once its prerequisites
//! finish (§VII). This module applies the same pattern to classic gradient
//! boosting:
//!
//! 1. round `t`: submit a single-regression-tree job fitted to the current
//!    pseudo-targets (negative gradients) and wait for it;
//! 2. update the margins with the shrunk tree predictions;
//! 3. broadcast the next round's pseudo-targets to every worker with
//!    [`crate::Cluster::update_labels`] — `Y` is replicated on all machines,
//!    so re-labelling is a column broadcast, accounted like any transfer;
//! 4. repeat.
//!
//! Each individual tree still trains with full TreeServer parallelism
//! (column-tasks + subtree-tasks across all workers); only the *rounds* are
//! sequential — exactly the dependency structure that makes boosting slower
//! than bagging in the paper's Table II(c).

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::job::JobSpec;
use ts_datatable::{DataTable, Labels, Task};
use ts_splits::Impurity;
use ts_tree::DecisionTreeModel;
use tsjson::{Deserialize, Serialize};

/// Loss to optimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GbtObjective {
    /// Squared error (regression tables).
    SquaredError,
    /// Binary logistic loss (2-class tables).
    Logistic,
}

/// Boosting hyperparameters.
#[derive(Debug, Clone)]
pub struct GbtConfig {
    /// Boosting rounds (= trees).
    pub n_rounds: usize,
    /// Shrinkage `η` applied to each tree's contribution.
    pub eta: f64,
    /// Maximum depth per tree (boosted trees are shallow; 5 by default).
    pub dmax: u32,
    /// Leaf threshold per tree.
    pub tau_leaf: u64,
    /// The loss.
    pub objective: GbtObjective,
    /// Seed (reserved for future subsampling; trees are deterministic).
    pub seed: u64,
}

impl GbtConfig {
    /// Defaults for a task: squared error for regression tables, logistic
    /// for 2-class classification.
    ///
    /// # Panics
    /// Panics for multi-class tables (not supported by this extension).
    pub fn for_task(task: Task) -> GbtConfig {
        let objective = match task {
            Task::Regression => GbtObjective::SquaredError,
            Task::Classification { n_classes: 2 } => GbtObjective::Logistic,
            Task::Classification { n_classes } => {
                panic!("GBT on the engine supports 2 classes, got {n_classes}")
            }
        };
        GbtConfig {
            n_rounds: 50,
            eta: 0.1,
            dmax: 5,
            tau_leaf: 10,
            objective,
            seed: 0,
        }
    }

    /// Builder: rounds.
    pub fn with_rounds(mut self, n: usize) -> Self {
        self.n_rounds = n;
        self
    }

    /// Builder: shrinkage.
    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Builder: depth.
    pub fn with_dmax(mut self, dmax: u32) -> Self {
        self.dmax = dmax;
        self
    }
}

/// A boosted additive model: `margin(x) = base + η · Σ tree_t(x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtModel {
    /// The regression trees, in round order.
    pub trees: Vec<DecisionTreeModel>,
    /// Constant base margin (prior).
    pub base: f64,
    /// Shrinkage.
    pub eta: f64,
    /// The loss the model was trained for.
    pub objective: GbtObjective,
}

impl GbtModel {
    /// Raw margins for every row, on the compiled batched path. Per row the
    /// accumulation order is tree order, the same sequence of f64 additions
    /// as the reference loop, so the result is bit-identical to
    /// [`predict_margins_reference`](Self::predict_margins_reference).
    pub fn predict_margins(&self, table: &DataTable) -> Vec<f64> {
        let view = ts_tree::TableView::of(table);
        let mut m = vec![self.base; table.n_rows()];
        for t in &self.trees {
            ts_tree::CompiledTree::compile(t).add_margins_table(&view, self.eta, &mut m);
        }
        m
    }

    /// Reference per-row traversal for [`predict_margins`](Self::predict_margins).
    pub fn predict_margins_reference(&self, table: &DataTable) -> Vec<f64> {
        let mut m = vec![self.base; table.n_rows()];
        for t in &self.trees {
            for (row, margin) in m.iter_mut().enumerate() {
                *margin += self.eta * t.predict_row(table, row, u32::MAX).value();
            }
        }
        m
    }

    /// Regression predictions (= margins).
    pub fn predict_values(&self, table: &DataTable) -> Vec<f64> {
        assert_eq!(self.objective, GbtObjective::SquaredError);
        self.predict_margins(table)
    }

    /// Class predictions (logistic: margin > 0).
    pub fn predict_labels(&self, table: &DataTable) -> Vec<u32> {
        assert_eq!(self.objective, GbtObjective::Logistic);
        self.predict_margins(table)
            .into_iter()
            .map(|m| u32::from(m > 0.0))
            .collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Trains a boosted model on a fresh cluster over `table`.
///
/// The cluster is launched with a *regression* view of the table (the first
/// round's pseudo-targets as `Y`), so every round's tree is a regression
/// tree; the original labels stay at the client for gradient computation.
pub fn train_gbt(cluster_cfg: ClusterConfig, table: &DataTable, cfg: GbtConfig) -> GbtModel {
    // Launch over a regression view so every round's tree is a regression
    // tree from the start; the view's labels are immediately replaced by
    // round 0's pseudo-targets inside train_gbt_on.
    let boosted_view = regression_view(table, vec![0.0; table.n_rows()]);
    let cluster = Cluster::launch(cluster_cfg, &boosted_view);
    let model = train_gbt_on(&cluster, table, cfg);
    cluster.shutdown();
    model
}

/// Like [`train_gbt`], but on an existing cluster the caller owns — useful
/// for training several boosted models without re-loading columns, or for
/// injecting faults mid-boosting in tests. The cluster must have been
/// launched over (a label-view of) `table` and be quiescent.
pub fn train_gbt_on(cluster: &Cluster, table: &DataTable, cfg: GbtConfig) -> GbtModel {
    assert!(cfg.n_rounds >= 1, "need at least one round");
    let n = table.n_rows();

    // Base margin and gradient function per objective.
    let (base, targets): (f64, Vec<f64>) = match (cfg.objective, table.labels()) {
        (GbtObjective::SquaredError, Labels::Real(ys)) => {
            let mean = ys.iter().sum::<f64>() / n as f64;
            (mean, ys.clone())
        }
        (GbtObjective::Logistic, Labels::Class(ys)) => {
            assert!(ys.iter().all(|&y| y < 2), "logistic needs 0/1 labels");
            (0.0, ys.iter().map(|&y| y as f64).collect())
        }
        _ => panic!("objective does not match the table's label kind"),
    };
    let pseudo = |margins: &[f64]| -> Vec<f64> {
        match cfg.objective {
            // -∂L/∂m for squared error: the residual.
            GbtObjective::SquaredError => targets.iter().zip(margins).map(|(y, m)| y - m).collect(),
            // -∂L/∂m for logistic: y - sigmoid(m).
            GbtObjective::Logistic => targets
                .iter()
                .zip(margins)
                .map(|(y, m)| y - 1.0 / (1.0 + (-m).exp()))
                .collect(),
        }
    };

    let mut margins = vec![base; n];
    // Round 0's pseudo-targets replace whatever labels the cluster was
    // launched with.
    cluster.update_labels(&Labels::Real(pseudo(&margins)));

    let tree_spec = || {
        JobSpec::decision_tree(Task::Regression)
            .with_impurity(Impurity::Variance)
            .with_dmax(cfg.dmax)
            .with_tau_leaf(cfg.tau_leaf)
            .with_seed(cfg.seed)
    };

    let mut trees = Vec::with_capacity(cfg.n_rounds);
    for round in 0..cfg.n_rounds {
        obs_event!(
            cluster.stats(),
            0,
            ts_obs::Event::GbtRound {
                round: round as u32
            }
        );
        // Canonical node order makes the whole model deterministic (the
        // cluster's arena order depends on result arrival, the tree itself
        // does not).
        let tree = cluster.train(tree_spec()).into_tree().canonicalize();
        // Batched margin update; same per-row addition as the per-row walk,
        // so gradients (and hence the whole model) are unchanged.
        ts_tree::CompiledTree::compile(&tree).add_margins_table(
            &ts_tree::TableView::of(table),
            cfg.eta,
            &mut margins,
        );
        trees.push(tree);
        if round + 1 < cfg.n_rounds {
            // The boosting dependency: the next round's targets exist only
            // now. Broadcast them to every worker.
            cluster.update_labels(&Labels::Real(pseudo(&margins)));
        }
    }
    GbtModel {
        trees,
        base,
        eta: cfg.eta,
        objective: cfg.objective,
    }
}

/// The regression view: same columns, residuals as `Y`. Public so callers
/// that launch their own cluster (e.g. the CLI, which needs the cluster
/// handle for reports and trace export) can prepare the launch table the
/// same way [`train_gbt`] does.
pub fn regression_view(table: &DataTable, residuals: Vec<f64>) -> DataTable {
    let schema = ts_datatable::Schema::new(table.schema().attrs.clone(), Task::Regression);
    DataTable::new(schema, table.columns().to_vec(), Labels::Real(residuals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::metrics::{accuracy, rmse};
    use ts_datatable::synth::{generate, SynthSpec};

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            n_workers: 3,
            compers_per_worker: 2,
            tau_d: 300,
            tau_dfs: 1_200,
            ..Default::default()
        }
    }

    #[test]
    fn gbt_regression_beats_mean_and_improves_with_rounds() {
        let t = generate(&SynthSpec {
            rows: 2_000,
            numeric: 5,
            task: Task::Regression,
            noise: 0.05,
            concept_depth: 4,
            seed: 11,
            ..Default::default()
        });
        let (tr, te) = t.train_test_split(0.8, 1);
        let truth = te.labels().as_real().unwrap();
        let mean = truth.iter().sum::<f64>() / truth.len() as f64;
        let base_rmse = rmse(&vec![mean; truth.len()], truth);

        let short = train_gbt(
            cfg(),
            &tr,
            GbtConfig::for_task(Task::Regression)
                .with_rounds(3)
                .with_eta(0.3),
        );
        let long = train_gbt(
            cfg(),
            &tr,
            GbtConfig::for_task(Task::Regression)
                .with_rounds(30)
                .with_eta(0.3),
        );
        let r_short = rmse(&short.predict_values(&te), truth);
        let r_long = rmse(&long.predict_values(&te), truth);
        assert!(
            r_short < base_rmse,
            "3 rounds {r_short} vs mean {base_rmse}"
        );
        assert!(
            r_long < r_short,
            "boosting must improve: {r_short} -> {r_long}"
        );
        assert_eq!(long.n_trees(), 30);
    }

    #[test]
    fn gbt_logistic_classifies() {
        let t = generate(&SynthSpec {
            rows: 2_000,
            numeric: 5,
            noise: 0.05,
            concept_depth: 4,
            seed: 13,
            ..Default::default()
        });
        let (tr, te) = t.train_test_split(0.8, 2);
        let model = train_gbt(
            cfg(),
            &tr,
            GbtConfig::for_task(tr.schema().task)
                .with_rounds(25)
                .with_eta(0.3),
        );
        let acc = accuracy(&model.predict_labels(&te), te.labels().as_class().unwrap());
        assert!(acc > 0.8, "gbt accuracy {acc}");
    }

    #[test]
    fn gbt_is_deterministic() {
        let t = generate(&SynthSpec {
            rows: 800,
            numeric: 4,
            task: Task::Regression,
            seed: 17,
            ..Default::default()
        });
        let run = || {
            train_gbt(
                cfg(),
                &t,
                GbtConfig::for_task(Task::Regression).with_rounds(5),
            )
        };
        assert_eq!(run(), run(), "exact trees + fixed gradients => same model");
    }

    #[test]
    fn gbt_model_serde_roundtrip() {
        let t = generate(&SynthSpec {
            rows: 400,
            numeric: 3,
            task: Task::Regression,
            seed: 19,
            ..Default::default()
        });
        let m = train_gbt(
            cfg(),
            &t,
            GbtConfig::for_task(Task::Regression).with_rounds(2),
        );
        let j = tsjson::to_string(&m).unwrap();
        let back: GbtModel = tsjson::from_str(&j).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn gbt_survives_worker_crash_between_rounds() {
        let t = generate(&SynthSpec {
            rows: 1_200,
            numeric: 4,
            task: Task::Regression,
            seed: 23,
            ..Default::default()
        });
        let view = super::regression_view(&t, vec![0.0; t.n_rows()]);
        let cluster = Cluster::launch(cfg(), &view);
        // First a short boosted model, then a crash, then another: both
        // must complete and the post-crash model must match a clean run
        // (exactness is fault-independent).
        let before = train_gbt_on(
            &cluster,
            &t,
            GbtConfig::for_task(Task::Regression).with_rounds(3),
        );
        cluster.kill_worker(2);
        let after = train_gbt_on(
            &cluster,
            &t,
            GbtConfig::for_task(Task::Regression).with_rounds(3),
        );
        cluster.shutdown();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "supports 2 classes")]
    fn gbt_rejects_multiclass() {
        GbtConfig::for_task(Task::Classification { n_classes: 5 });
    }

    #[test]
    fn compiled_margins_match_reference_bitwise() {
        let t = generate(&SynthSpec {
            rows: 900,
            numeric: 4,
            categorical: 2,
            task: Task::Regression,
            seed: 29,
            ..Default::default()
        });
        let m = train_gbt(
            cfg(),
            &t,
            GbtConfig::for_task(Task::Regression).with_rounds(6),
        );
        let fast = m.predict_margins(&t);
        let slow = m.predict_margins_reference(&t);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
