//! The wire protocol: task-channel and data-channel messages.
//!
//! Two planes, as in the paper's Fig. 6:
//!
//! - **Task channel** (master ↔ workers): plans out, results back, plus the
//!   §V control messages (`ConfirmBest`, `DropTask`, `ServeQuota`).
//! - **Data channel** (worker ↔ worker): `Ix` requests served by parent
//!   workers and column-data requests served by column holders. The master
//!   never appears on this plane — that is the whole point of §V.
//!
//! Every message reports an approximate serialized size so the fabric can
//! account and pace it.
//!
//! Task- and data-plane frames that belong to a training job also carry a
//! [`TraceCtx`] — the id of the master-allocated span that originated the
//! work — as a plain (never feature-gated) field: context propagation is
//! part of the wire protocol, so a worker can causally parent its events
//! to the master's delegation across machines, and the reliable fabric
//! can attribute retransmissions and duplicate drops to the same span
//! (see `docs/PROTOCOL.md` and `docs/OBSERVABILITY.md`). The context is
//! carried out in plans, copied by workers into their data-plane requests,
//! and echoed back on results. It does not count toward `wire_bytes`: two
//! u64s ride inside the 24-byte frame header the sizes already charge.

use crate::ids::{ParentRef, Side, TaskId, TreeId};
use ts_datatable::{Column, ValuesBuf};
use ts_netsim::{NodeId, WireSized};
use ts_obs::TraceCtx;
use ts_splits::exact::ColumnSplit;
use ts_splits::impurity::NodeStats;
use ts_splits::{Impurity, SplitTest};
use ts_tree::{DecisionTreeModel, Prediction};

/// Per-tree training parameters carried inside plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Impurity function for split scoring.
    pub impurity: Impurity,
    /// Maximum node depth (`u32::MAX` = unbounded).
    pub dmax: u32,
    /// Leaf threshold `τ_leaf`.
    pub tau_leaf: u64,
    /// `true` for completely-random (extra-trees) splits.
    pub extra_trees: bool,
}

/// Histogram-mode parameters of a column-task shard (`--splitter hist`,
/// see `docs/HISTOGRAM.md`). Present on a `ColumnPlan` only when the
/// cluster runs the quantized histogram splitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistPlanConf {
    /// Bin budget the worker's load-time `BinnedColumn` indices were built
    /// with (workers assert it matches; cuts are never shipped per task).
    pub bins: u32,
    /// How many top `(attr, gain)` candidates to nominate.
    pub vote_k: u32,
    /// Exactly one shard per task is designated to carry the node's label
    /// statistics in its nomination — the others omit them, which is where
    /// most of the byte saving over the exact path comes from.
    pub want_stats: bool,
}

/// A plan for a column-task shard: "evaluate these columns of node `x`".
#[derive(Debug, Clone)]
pub struct ColumnPlan {
    /// The task this shard belongs to.
    pub task: TaskId,
    /// The tree under construction.
    pub tree: TreeId,
    /// Attribute ids this worker must evaluate (it holds all of them).
    pub cols: Vec<usize>,
    /// Where to fetch `Ix`.
    pub parent: ParentRef,
    /// `|Dx|` (known from the parent's split counters, §V).
    pub n_rows: u64,
    /// Node depth.
    pub depth: u32,
    /// Training parameters of the tree.
    pub params: TreeParams,
    /// Extra-trees only: the seed for the random split draw.
    pub random_seed: Option<u64>,
    /// Histogram-mode parameters (`None`: exact sorted-scan scoring).
    pub hist: Option<HistPlanConf>,
    /// The column-task span this plan shard carries (all shards of a task
    /// share it).
    pub ctx: TraceCtx,
}

/// A plan for a subtree-task: "collect `Dx` and build `∆x`".
#[derive(Debug, Clone)]
pub struct SubtreePlan {
    /// The task id.
    pub task: TaskId,
    /// The tree under construction.
    pub tree: TreeId,
    /// For every candidate column, the worker to request it from (computed
    /// by the master's §VI assignment; sorted by attribute id).
    pub col_sources: Vec<(usize, NodeId)>,
    /// Where to fetch `Ix`.
    pub parent: ParentRef,
    /// `|Dx|`.
    pub n_rows: u64,
    /// Node depth (the local trainer's base depth).
    pub depth: u32,
    /// Training parameters of the tree.
    pub params: TreeParams,
    /// Seed for extra-trees randomness inside the subtree.
    pub seed: u64,
    /// The subtree-task span this delegation carries.
    pub ctx: TraceCtx,
}

/// The best split one worker found among its assigned columns, with the
/// `|Ixl|`/`|Ixr|` counters and child statistics the paper sends back so the
/// master can type the child tasks without ever seeing `Ix` (§V).
#[derive(Debug, Clone)]
pub struct ColumnTaskBest {
    /// The winning attribute (among this worker's assigned columns).
    pub attr: usize,
    /// The split and its exact child statistics.
    pub split: ColumnSplit,
    /// Categorical split-attributes: the category codes seen in `Dx`.
    pub seen: Option<Vec<u32>>,
}

/// Messages on the task channel.
#[derive(Debug, Clone)]
pub enum TaskMsg {
    /// Master → worker: evaluate columns of a node.
    ColumnPlan(ColumnPlan),
    /// Master → worker (the key worker): build a subtree.
    SubtreePlan(SubtreePlan),
    /// Worker → master: result of a column-task shard.
    ColumnResult {
        /// The task.
        task: TaskId,
        /// Reporting worker.
        worker: NodeId,
        /// Best split among the worker's columns (`None`: no column splits).
        best: Option<ColumnTaskBest>,
        /// The node's own label statistics over `Dx` (for the node's stored
        /// prediction and the leaf decision).
        node_stats: NodeStats,
        /// The task span, echoed from the plan.
        ctx: TraceCtx,
    },
    /// Worker → master: a completed subtree.
    SubtreeResult {
        /// The task.
        task: TaskId,
        /// Reporting worker.
        worker: NodeId,
        /// The built subtree (depths relative to the subtree root).
        subtree: DecisionTreeModel,
        /// The task span, echoed from the plan.
        ctx: TraceCtx,
    },
    /// Worker → master: histogram-mode shard result — the shard's top
    /// `vote_k` candidate columns as bare `(attr, gain)` summaries instead
    /// of full splits (PV-Tree-style voting, `docs/HISTOGRAM.md`). Node
    /// statistics ride along only on the task's designated stats shard.
    HistNominate {
        /// The task.
        task: TaskId,
        /// Reporting worker.
        worker: NodeId,
        /// Top candidates, best first: `(attr, gain)`. Empty when none of
        /// the shard's columns yields a positive-gain split.
        cands: Vec<(usize, f64)>,
        /// The node's label statistics over `Dx`; `Some` only on the
        /// designated stats shard (`HistPlanConf::want_stats`).
        node_stats: Option<NodeStats>,
        /// The task span, echoed from the plan.
        ctx: TraceCtx,
    },
    /// Master → elected worker: the vote elected your attribute `attr` —
    /// send the full split (test, child stats, seen categories) for it.
    HistFetch {
        /// The task.
        task: TaskId,
        /// The elected attribute.
        attr: usize,
        /// The task span (carried so the worker can echo it on `HistBest`).
        ctx: TraceCtx,
    },
    /// Worker → master: the full split answering a `HistFetch`.
    HistBest {
        /// The task.
        task: TaskId,
        /// Reporting worker.
        worker: NodeId,
        /// The elected attribute's full split (`None` only if the recount
        /// over the retained rows finds no positive-gain split after all).
        best: Option<ColumnTaskBest>,
        /// The task span, echoed from the fetch.
        ctx: TraceCtx,
    },
    /// Master → winner worker: your split is the overall best — partition
    /// `Ix` and serve the child tasks (you are now a delegate worker).
    ConfirmBest {
        /// The confirmed task.
        task: TaskId,
    },
    /// Master → loser workers: free your task object for `task`.
    DropTask {
        /// The dropped task.
        task: TaskId,
    },
    /// Master → delegate worker: exactly `quota` workers will request the
    /// `side` half of `task`'s rows; free the buffer after serving them all
    /// (quota 0 means the child became a leaf — free immediately).
    ServeQuota {
        /// The delegate's task.
        task: TaskId,
        /// Which half.
        side: Side,
        /// Number of distinct requesters to expect.
        quota: u32,
    },
    /// Master → worker: revoke every task belonging to a tree (fault
    /// recovery).
    RevokeTree {
        /// The revoked tree.
        tree: TreeId,
    },
    /// Master → worker: store these columns (crash re-replication target).
    LoadColumns {
        /// `(attr id, column)` pairs.
        columns: Vec<(usize, Column)>,
    },
    /// Master → holder: copy your columns `attrs` to worker `to` over the
    /// data channel. Used by crash re-replication (source is a surviving
    /// replica), join top-up and pre-departure handoff (`ts-elastic`
    /// migrations). Carries the migration span so cross-machine column
    /// movement shows up in the trace DAG.
    ReplicateTo {
        /// Columns to copy.
        attrs: Vec<usize>,
        /// The new holder.
        to: NodeId,
        /// The migration span (NONE for crash re-replication).
        ctx: TraceCtx,
    },
    /// Worker → master: the replicated columns have arrived and are
    /// servable; the master may now list this worker as a holder.
    ReplicateDone {
        /// Columns now held.
        attrs: Vec<usize>,
        /// The reporting worker.
        worker: NodeId,
        /// The migration span, echoed from `ReplicateTo`.
        ctx: TraceCtx,
    },
    /// Client → worker: replace the full target column (boosting rounds
    /// re-label between trees; `Y` is replicated on every machine, so the
    /// update is a broadcast).
    LoadLabels {
        /// The new target values (must match the table's row count).
        labels: ts_datatable::Labels,
    },
    /// Worker → master: liveness beacon. Sent unreliably on a fixed
    /// interval; the master's lease detector declares a worker dead after
    /// `heartbeat_miss_threshold` consecutive missed intervals.
    Heartbeat {
        /// The beating worker.
        worker: NodeId,
    },
    /// Worker → master: the worker's ready queue ran dry (`ts-sched`,
    /// stealing mode only). The scheduler serves this worker next — from
    /// its own deque if non-empty, otherwise by stealing from the tail of
    /// the most-loaded peer's deque. Rate-limited worker-side: at most one
    /// outstanding request, acked by `Donate` or implicitly by any new
    /// plan. Purely an accelerator — a lost request costs latency, never
    /// progress (the capacity-based dispatch feeds idle workers anyway).
    StealRequest {
        /// The idle worker.
        worker: NodeId,
    },
    /// Master → thief worker: acks a `StealRequest` — a plan stolen from
    /// `victim`'s deque has been dispatched on the thief's behalf. Carries
    /// the stolen task's span so the steal is visible in the span DAG
    /// (`SpanRecv` on the thief under the stolen task's trace).
    Donate {
        /// The stolen task.
        task: TaskId,
        /// The worker whose deque gave the plan up.
        victim: NodeId,
        /// The stolen task's span context.
        ctx: TraceCtx,
    },
    /// Joining worker → master: membership handshake (`ts-elastic`). The
    /// worker is spawned with no columns; the master adds it to the roster,
    /// arms its heartbeat lease, registers its affinity deque and starts
    /// incremental column migration toward it.
    Hello {
        /// The joining worker.
        worker: NodeId,
    },
    /// Master → joining worker: the `Hello` was accepted. Purely an ack —
    /// plans and migrated columns follow on their own frames.
    Welcome {
        /// The accepted worker.
        worker: NodeId,
    },
    /// Master → worker: a scripted preemption was announced — stop taking
    /// new work, finish or return what is in flight, hand your columns off
    /// and leave with `Goodbye` before the grace window expires.
    Drain,
    /// Draining worker → master: all in-flight work is done and flushed;
    /// retire my lease without invoking crash recovery. The worker keeps
    /// serving its data plane until the master sends the final `Shutdown`.
    Goodbye {
        /// The departing worker.
        worker: NodeId,
    },
    /// Master → worker: stop all threads.
    Shutdown,
}

impl WireSized for TaskMsg {
    fn wire_bytes(&self) -> usize {
        const HDR: usize = 24;
        match self {
            TaskMsg::ColumnPlan(p) => HDR + 8 * p.cols.len() + 32,
            TaskMsg::SubtreePlan(p) => HDR + 12 * p.col_sources.len() + 40,
            TaskMsg::ColumnResult {
                best, node_stats, ..
            } => {
                HDR + stats_bytes(node_stats)
                    + best.as_ref().map_or(1, |b| {
                        8 + b.split.test.wire_bytes()
                            + stats_bytes(&b.split.left)
                            + stats_bytes(&b.split.right)
                            + b.seen.as_ref().map_or(0, |s| 4 * s.len())
                    })
            }
            TaskMsg::SubtreeResult { subtree, .. } => HDR + tree_bytes(subtree),
            // Histogram voting: a nomination is `vote_k` (attr, gain) pairs
            // (8 + 4 bytes each — attrs fit u32 on the wire) plus node
            // stats on the one designated shard; the fetch is one attr id;
            // the elected worker's reply prices exactly like the exact
            // path's best payload.
            TaskMsg::HistNominate {
                cands, node_stats, ..
            } => HDR + 12 * cands.len() + node_stats.as_ref().map_or(1, stats_bytes),
            TaskMsg::HistFetch { .. } => HDR + 8,
            TaskMsg::HistBest { best, .. } => {
                HDR + best.as_ref().map_or(1, |b| {
                    8 + b.split.test.wire_bytes()
                        + stats_bytes(&b.split.left)
                        + stats_bytes(&b.split.right)
                        + b.seen.as_ref().map_or(0, |s| 4 * s.len())
                })
            }
            TaskMsg::ConfirmBest { .. }
            | TaskMsg::DropTask { .. }
            | TaskMsg::ServeQuota { .. }
            | TaskMsg::RevokeTree { .. }
            | TaskMsg::Heartbeat { .. }
            | TaskMsg::StealRequest { .. }
            | TaskMsg::Donate { .. }
            | TaskMsg::Hello { .. }
            | TaskMsg::Welcome { .. }
            | TaskMsg::Drain
            | TaskMsg::Goodbye { .. }
            | TaskMsg::Shutdown => HDR,
            TaskMsg::ReplicateTo { attrs, .. } | TaskMsg::ReplicateDone { attrs, .. } => {
                HDR + 8 * attrs.len()
            }
            TaskMsg::LoadLabels { labels } => HDR + labels.payload_bytes(),
            TaskMsg::LoadColumns { columns } => {
                HDR + columns
                    .iter()
                    .map(|(_, c)| 8 + c.payload_bytes())
                    .sum::<usize>()
            }
        }
    }

    fn trace_ctx(&self) -> TraceCtx {
        match self {
            TaskMsg::ColumnPlan(p) => p.ctx,
            TaskMsg::SubtreePlan(p) => p.ctx,
            TaskMsg::ColumnResult { ctx, .. }
            | TaskMsg::SubtreeResult { ctx, .. }
            // The histogram election rides the task span end to end:
            // nominate → fetch → best.
            | TaskMsg::HistNominate { ctx, .. }
            | TaskMsg::HistFetch { ctx, .. }
            | TaskMsg::HistBest { ctx, .. }
            // A donation belongs to the stolen task's trace: the thief's
            // `SpanRecv` is the steal edge in the span DAG.
            | TaskMsg::Donate { ctx, .. }
            // Elastic column migrations carry their own span end to end.
            | TaskMsg::ReplicateTo { ctx, .. }
            | TaskMsg::ReplicateDone { ctx, .. } => *ctx,
            // Control traffic is outside any trace.
            _ => TraceCtx::NONE,
        }
    }
}

/// Messages on the data channel.
#[derive(Debug, Clone)]
pub enum DataMsg {
    /// Request the `side` half of `parent_task`'s row split, to be applied
    /// to the requester's task `for_task`.
    ReqIx {
        /// The parent task whose delegate is addressed.
        parent_task: TaskId,
        /// Which half.
        side: Side,
        /// Who asks (the response goes back there).
        requester: NodeId,
        /// The requester-side task waiting for the rows.
        for_task: TaskId,
        /// The tree both tasks belong to (fault-recovery bookkeeping).
        tree: TreeId,
        /// The requesting task's span (copied from its plan).
        ctx: TraceCtx,
    },
    /// The requested row ids.
    RespIx {
        /// The requester-side task.
        for_task: TaskId,
        /// The rows `Ix` (sorted).
        rows: Vec<u32>,
        /// The requesting task's span, echoed from the request.
        ctx: TraceCtx,
    },
    /// Key worker → holder: send me these columns gathered over `for_task`'s
    /// rows (the holder fetches `Ix` from the parent worker itself).
    ReqCols {
        /// The subtree task.
        for_task: TaskId,
        /// Attribute ids to gather (the holder has them all).
        attrs: Vec<usize>,
        /// Where the response goes.
        key_worker: NodeId,
        /// Where the holder can fetch `Ix`.
        parent: ParentRef,
        /// The tree the task belongs to (fault-recovery bookkeeping).
        tree: TreeId,
        /// The subtree task's span (copied from its plan).
        ctx: TraceCtx,
    },
    /// Holder → key worker: gathered column data.
    RespCols {
        /// The subtree task.
        for_task: TaskId,
        /// Attribute ids, aligned with `bufs`.
        attrs: Vec<usize>,
        /// Gathered values, aligned with the task's `Ix` order.
        bufs: Vec<ValuesBuf>,
        /// The subtree task's span, echoed from the request.
        ctx: TraceCtx,
    },
    /// Master-directed replication: the column payload a holder copies to a
    /// new holder (crash recovery, join top-up or pre-departure handoff).
    ReplicateCols {
        /// `(attr id, column)` pairs copied from the source holder.
        columns: Vec<(usize, Column)>,
        /// The migration span, forwarded from `ReplicateTo`.
        ctx: TraceCtx,
    },
    /// Stop the data loop (sent by the worker to itself during shutdown).
    Shutdown,
}

impl WireSized for DataMsg {
    fn wire_bytes(&self) -> usize {
        const HDR: usize = 24;
        match self {
            DataMsg::ReqIx { .. } => HDR,
            DataMsg::RespIx { rows, .. } => HDR + 4 * rows.len(),
            DataMsg::ReqCols { attrs, .. } => HDR + 8 * attrs.len(),
            DataMsg::RespCols { bufs, .. } => {
                HDR + bufs.iter().map(|b| 8 + b.payload_bytes()).sum::<usize>()
            }
            DataMsg::ReplicateCols { columns, .. } => {
                HDR + columns
                    .iter()
                    .map(|(_, c)| 8 + c.payload_bytes())
                    .sum::<usize>()
            }
            DataMsg::Shutdown => HDR,
        }
    }

    fn trace_ctx(&self) -> TraceCtx {
        match self {
            DataMsg::ReqIx { ctx, .. }
            | DataMsg::RespIx { ctx, .. }
            | DataMsg::ReqCols { ctx, .. }
            | DataMsg::RespCols { ctx, .. }
            | DataMsg::ReplicateCols { ctx, .. } => *ctx,
            DataMsg::Shutdown => TraceCtx::NONE,
        }
    }
}

fn stats_bytes(s: &NodeStats) -> usize {
    match s {
        NodeStats::Class(c) => 8 + 8 * c.counts().len(),
        NodeStats::Reg(_) => 24,
    }
}

fn tree_bytes(t: &DecisionTreeModel) -> usize {
    t.nodes
        .iter()
        .map(|n| {
            let pred = match &n.prediction {
                Prediction::Class { pmf, .. } => 4 + 4 * pmf.len(),
                Prediction::Real(_) => 8,
            };
            let split = n.split.as_ref().map_or(0, |(info, _, _)| {
                info.test.wire_bytes() + info.seen.as_ref().map_or(0, |s| 4 * s.len()) + 16
            });
            16 + pred + split
        })
        .sum()
}

/// Wire size of a split test plus child stats (used by assignment cost
/// estimates).
pub fn split_wire_bytes(test: &SplitTest) -> usize {
    test.wire_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_splits::impurity::{LabelView, NodeStats};

    #[test]
    fn respix_scales_with_rows() {
        let small = DataMsg::RespIx {
            for_task: TaskId(1),
            rows: vec![1, 2],
            ctx: TraceCtx::NONE,
        };
        let big = DataMsg::RespIx {
            for_task: TaskId(1),
            rows: vec![0; 1000],
            ctx: TraceCtx::NONE,
        };
        assert!(big.wire_bytes() > small.wire_bytes() + 3900);
    }

    #[test]
    fn trace_ctx_rides_frames_without_wire_cost() {
        // Builds in every feature combination: TraceCtx is a plain field,
        // not gated behind `obs`.
        use ts_obs::SpanId;
        let ctx = TraceCtx::new(3, SpanId(41));
        let m = DataMsg::ReqIx {
            parent_task: TaskId(5),
            side: Side::Left,
            requester: 2,
            for_task: TaskId(6),
            tree: TreeId(1),
            ctx,
        };
        assert_eq!(m.trace_ctx(), ctx);
        // The context rides inside the accounted frame header.
        assert_eq!(m.wire_bytes(), 24);
        assert_eq!(TaskMsg::Shutdown.trace_ctx(), TraceCtx::NONE);
        assert_eq!(DataMsg::Shutdown.trace_ctx(), TraceCtx::NONE);
    }

    #[test]
    fn respcols_counts_payload() {
        let m = DataMsg::RespCols {
            for_task: TaskId(1),
            attrs: vec![0],
            bufs: vec![ValuesBuf::Numeric(vec![0.0; 100])],
            ctx: TraceCtx::NONE,
        };
        assert!(m.wire_bytes() >= 800);
    }

    #[test]
    fn column_result_size_includes_stats() {
        let stats = NodeStats::from_view(LabelView::Class(&[0, 1, 1], 2));
        let m = TaskMsg::ColumnResult {
            task: TaskId(0),
            worker: 1,
            best: None,
            node_stats: stats,
            ctx: TraceCtx::NONE,
        };
        assert!(m.wire_bytes() >= 24 + 24);
    }

    #[test]
    fn hist_nomination_is_cheaper_than_a_full_column_result() {
        // The byte economy the histogram path is built on: for a non-binary
        // task, vote_k bare (attr, gain) summaries cost less than one full
        // split with two per-class child stats — and the k-1 losing shards
        // skip even the node stats.
        let k = 7u32; // Covtype-like multi-class
        let labels: Vec<u32> = (0..21).map(|i| i % k).collect();
        let stats = NodeStats::from_view(LabelView::Class(&labels, k));
        let split = ColumnSplit {
            test: SplitTest::NumericLe(1.5),
            gain: 0.25,
            missing_left: false,
            left: stats.clone(),
            right: stats.clone(),
        };
        let exact = TaskMsg::ColumnResult {
            task: TaskId(0),
            worker: 1,
            best: Some(ColumnTaskBest {
                attr: 3,
                split: split.clone(),
                seen: None,
            }),
            node_stats: stats.clone(),
            ctx: TraceCtx::NONE,
        };
        let losing_nomination = TaskMsg::HistNominate {
            task: TaskId(0),
            worker: 1,
            cands: vec![(3, 0.25), (5, 0.20)],
            node_stats: None,
            ctx: TraceCtx::NONE,
        };
        let stats_nomination = TaskMsg::HistNominate {
            task: TaskId(0),
            worker: 2,
            cands: vec![(3, 0.25), (5, 0.20)],
            node_stats: Some(stats.clone()),
            ctx: TraceCtx::NONE,
        };
        assert_eq!(losing_nomination.wire_bytes(), 24 + 24 + 1);
        assert!(losing_nomination.wire_bytes() * 2 < exact.wire_bytes());
        assert!(stats_nomination.wire_bytes() < exact.wire_bytes());
        // The single fetched full answer prices like the exact best payload.
        let fetch = TaskMsg::HistFetch {
            task: TaskId(0),
            attr: 3,
            ctx: TraceCtx::NONE,
        };
        assert_eq!(fetch.wire_bytes(), 24 + 8);
        let best = TaskMsg::HistBest {
            task: TaskId(0),
            worker: 1,
            best: Some(ColumnTaskBest {
                attr: 3,
                split,
                seen: None,
            }),
            ctx: TraceCtx::NONE,
        };
        let exact_best_payload = exact.wire_bytes() - stats_bytes(&stats);
        assert_eq!(best.wire_bytes(), exact_best_payload);
    }

    #[test]
    fn hist_frames_carry_the_task_span() {
        use ts_obs::SpanId;
        let ctx = TraceCtx::new(9, SpanId(123));
        let nom = TaskMsg::HistNominate {
            task: TaskId(1),
            worker: 2,
            cands: vec![],
            node_stats: None,
            ctx,
        };
        let fetch = TaskMsg::HistFetch {
            task: TaskId(1),
            attr: 0,
            ctx,
        };
        let best = TaskMsg::HistBest {
            task: TaskId(1),
            worker: 2,
            best: None,
            ctx,
        };
        assert_eq!(nom.trace_ctx(), ctx);
        assert_eq!(fetch.trace_ctx(), ctx);
        assert_eq!(best.trace_ctx(), ctx);
        assert_eq!(best.wire_bytes(), 25, "no-split reply is one flag byte");
    }

    #[test]
    fn control_messages_are_small() {
        assert_eq!(TaskMsg::Shutdown.wire_bytes(), 24);
        assert_eq!(
            TaskMsg::ServeQuota {
                task: TaskId(1),
                side: Side::Left,
                quota: 3
            }
            .wire_bytes(),
            24
        );
    }

    #[test]
    fn membership_frames_are_header_only_and_migrations_carry_spans() {
        use ts_obs::SpanId;
        for m in [
            TaskMsg::Hello { worker: 3 },
            TaskMsg::Welcome { worker: 3 },
            TaskMsg::Drain,
            TaskMsg::Goodbye { worker: 3 },
        ] {
            assert_eq!(m.wire_bytes(), 24, "membership frames are pure control");
            assert_eq!(m.trace_ctx(), TraceCtx::NONE);
        }
        // A migration's span rides the already-charged header end to end:
        // ReplicateTo → ReplicateCols → ReplicateDone.
        let ctx = TraceCtx::new(5, SpanId(77));
        let to = TaskMsg::ReplicateTo {
            attrs: vec![1, 2],
            to: 4,
            ctx,
        };
        assert_eq!(to.wire_bytes(), 24 + 16);
        assert_eq!(to.trace_ctx(), ctx);
        let done = TaskMsg::ReplicateDone {
            attrs: vec![1, 2],
            worker: 4,
            ctx,
        };
        assert_eq!(done.trace_ctx(), ctx);
        let cols = DataMsg::ReplicateCols {
            columns: vec![],
            ctx,
        };
        assert_eq!(cols.trace_ctx(), ctx);
    }

    #[test]
    fn steal_frames_are_header_only_and_donate_carries_the_stolen_span() {
        use ts_obs::SpanId;
        let req = TaskMsg::StealRequest { worker: 3 };
        assert_eq!(req.wire_bytes(), 24, "steal request is pure control");
        assert_eq!(req.trace_ctx(), TraceCtx::NONE);
        let ctx = TraceCtx::new(7, SpanId(99));
        let don = TaskMsg::Donate {
            task: TaskId(12),
            victim: 1,
            ctx,
        };
        // The stolen task's context rides the already-charged header, so
        // stealing shows up in the span DAG at zero wire cost.
        assert_eq!(don.wire_bytes(), 24);
        assert_eq!(don.trace_ctx(), ctx);
    }
}
