//! The master machine: tree/task scheduling, result folding, load-balanced
//! assignment, and fault recovery.
//!
//! Two threads, as in the paper (§IV, Fig. 14(a)):
//!
//! - `θ_main` ([`Master::main_loop`]): admits trees into the active pool
//!   (at most `n_pool` at a time), pops plans from the head of the deque
//!   `Bplan`, runs the §VI greedy assignment against `M_work`, and ships
//!   plans (plus delegate serve-quotas) to workers.
//! - `θ_recv` ([`Master::recv_loop`]): folds column-task results into the
//!   task table `Ttask`, picks the overall best split, confirms the winner
//!   (making it the delegate worker), types the child tasks from the
//!   returned `|Ixl|`/`|Ixr|` counters, grafts completed subtrees, and
//!   tracks per-tree progress (Appendix C's `T_prog`) to flush finished
//!   trees and complete jobs.
//!
//! Hybrid scheduling (§III, Fig. 4/5): a new task goes to the **head** of
//! `Bplan` when `|Dx| <= τ_dfs` (depth-first — reaches CPU-bound
//! subtree-tasks quickly) and to the **tail** otherwise (breadth-first —
//! generates parallelism early).

use crate::assign::{assign_column_task, assign_subtree, ColumnMap, LoadMatrix, COMP};
use crate::config::ClusterConfig;
use crate::ids::{ParentRef, Side, TaskId, TreeId};
use crate::job::{JobHandle, JobKind, JobResult, JobSpec, TreeSpec};
use crate::messages::{ColumnPlan, ColumnTaskBest, SubtreePlan, TaskMsg};
use crate::recovery::RecoveryError;
use crate::sched::{PlanQueue, StealInfo, TauController};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ts_datatable::Task;
#[cfg(feature = "obs")]
use ts_netsim::WireSized;
use ts_netsim::{Fabric, FabricReceiver, NodeId};
use ts_obs::{SpanId, TraceCtx};
use ts_splits::exact::ColumnSplit;
use ts_splits::impurity::NodeStats;
use ts_tree::{
    graft_nodes, trainer::prediction_from_stats, DecisionTreeModel, Node, Prediction, SplitInfo,
};
use tschan::sync::Mutex;
use tschan::{Receiver, Sender};
use tsrand::rngs::StdRng;
use tsrand::{Rng, SeedableRng};

/// A task descriptor waiting in `Bplan` for worker assignment.
#[derive(Debug, Clone)]
struct PlanDesc {
    task: TaskId,
    tree: TreeId,
    node: usize,
    parent: ParentRef,
    n_rows: u64,
    depth: u32,
    /// Root-path identifier: 1 for the root, `p<<1` / `p<<1|1` for left /
    /// right children. Stable across scheduling interleavings, so all
    /// randomness (extra-trees sampling, subtree seeds) derives from it
    /// rather than from racy task ids.
    path: u64,
    /// The trace (job span id) this plan belongs to.
    trace: u64,
    /// The plan's own span, opened when the plan is created; `SpanActive`
    /// when `θ_main` pops it, closed when its dispatch sends are done.
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    span: u64,
}

/// SplitMix64 finaliser: decorrelates path-derived seeds.
fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The master's record of an in-flight task (`Ttask`).
struct MasterTask {
    tree: TreeId,
    node: usize,
    n_rows: u64,
    depth: u32,
    path: u64,
    charges: Vec<(NodeId, [u64; 3])>,
    /// Every worker this task involves on either plane: shards / key
    /// worker / column sources / `Ix` parent. A draining worker cannot
    /// depart while any in-flight task touches it (`ts-elastic`).
    touches: Vec<NodeId>,
    kind: TaskKind,
    /// The trace (job span id) the task belongs to.
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    trace: u64,
    /// The task's span (the one its plan/result frames carry).
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    span: u64,
    /// Dispatch clock reading (`Fabric::clock`), for the master-side
    /// task-latency histograms; virtual time under `SimClock::virtual_at`,
    /// so seeded replays measure identical latencies.
    #[cfg(feature = "obs")]
    started_ns: u64,
}

#[allow(clippy::large_enum_variant)] // Column is the hot variant; boxing it costs more
enum TaskKind {
    Column {
        pending: usize,
        involved: Vec<NodeId>,
        best: Option<(NodeId, ColumnTaskBest)>,
        node_stats: Option<NodeStats>,
    },
    /// Histogram-mode column task (`docs/HISTOGRAM.md`): shards nominate
    /// bare `(attr, gain)` candidates; once all have voted the master
    /// elects a winner and fetches the one full split it needs.
    Hist {
        pending: usize,
        involved: Vec<NodeId>,
        /// Accumulated nominations as `(gain, attr, worker)` triples.
        cands: Vec<(f64, usize, NodeId)>,
        /// Node statistics from the designated stats shard.
        node_stats: Option<NodeStats>,
        /// The elected full split, filled by `HistBest`.
        best: Option<(NodeId, ColumnTaskBest)>,
        /// The worker a `HistFetch` is outstanding to.
        fetched: Option<NodeId>,
    },
    Subtree,
}

/// A tree being built.
struct ActiveTree {
    job: u64,
    /// Index of this tree within its job.
    index: usize,
    /// The owning job's trace id (= its root span).
    trace: u64,
    spec: TreeSpec,
    nodes: Vec<Node>,
    /// Outstanding tasks (Appendix C's per-tree progress counter).
    pending: u64,
}

/// One submitted job.
struct JobState {
    total: usize,
    done: usize,
    models: Vec<Option<DecisionTreeModel>>,
    kind: JobKind,
    notify: Sender<JobResult>,
    /// The job's root span; doubles as the trace id for every span the job
    /// produces (plans, tasks, child plans, ...).
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    span: u64,
}

/// Trees waiting for pool admission.
struct QueuedTree {
    job: u64,
    index: usize,
    spec: TreeSpec,
    /// The owning job's trace id (= its root span).
    trace: u64,
}

struct Registry {
    jobs: HashMap<u64, JobState>,
    queue: VecDeque<QueuedTree>,
    active: HashMap<TreeId, ActiveTree>,
    next_tree: u64,
    next_job: u64,
}

/// Master-side state of one draining worker (announced preemption,
/// `ts-elastic`; see `docs/ELASTICITY.md` for the state machine).
struct DrainState {
    /// Clock deadline (`begin_drain` time + grace window); a drain still
    /// incomplete past it escalates to ordinary crash recovery.
    deadline_ns: u64,
    /// Columns the leaver is still the holder of record for, pending
    /// handoff to another worker (`ReplicateDone` retires them one by one).
    migrating: BTreeSet<usize>,
    /// The leaver reported its task queue idle (`Goodbye` received).
    goodbye: bool,
}

/// One worker's liveness lease.
struct HbLease {
    /// Clock reading of the most recent heartbeat (or lease creation).
    last_ns: u64,
    /// Missed-interval count already reported via `HeartbeatMissed`, so each
    /// detector pass emits at most one event per worker.
    reported: u64,
}

/// Shared master state; the two master threads and the `Cluster` handle all
/// hold an `Arc<Master>`.
pub struct Master {
    cfg: ClusterConfig,
    n_rows: usize,
    n_attrs: usize,
    data_task: Mutex<Task>,
    workers: Mutex<Vec<NodeId>>,
    colmap: Mutex<ColumnMap>,
    /// The plan queue `Bplan` (`ts-sched`): single-deque by default,
    /// per-worker deques with stealing when `cfg.steal` is set. Condvar-
    /// signalled either way — pushes, completions and steal requests wake
    /// `θ_main` immediately (no blind `poll_sleep`).
    plans: PlanQueue<PlanDesc>,
    /// Adaptive `τ_D`/`τ_dfs` (`cfg.adaptive_tau`); holds the statics
    /// until the `LatencyFeed` has enough samples of both task kinds.
    tau: Mutex<TauController>,
    /// Clock reading of the last controller update (throttles feed
    /// snapshots to about twice per heartbeat interval).
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    last_tau_update: AtomicU64,
    ttask: Mutex<HashMap<TaskId, MasterTask>>,
    mwork: Mutex<LoadMatrix>,
    registry: Mutex<Registry>,
    next_task: AtomicU64,
    /// Span-id allocator for ts-trace. Master-allocated so ids are unique
    /// cluster-wide; starts at 1 because 0 means "no span".
    next_span: AtomicU64,
    /// Cluster-wide count of subtree delegations, driving the fault plan's
    /// `crash_at_delegation` trigger (global so the trigger is independent
    /// of which worker happens to be picked as key worker).
    delegations: AtomicU64,
    shutdown: AtomicBool,
    fabric: Fabric<TaskMsg>,
    /// Liveness leases per worker, refreshed by `Heartbeat` messages and
    /// swept by `check_heartbeats` on the main loop.
    last_hb: Mutex<HashMap<NodeId, HbLease>>,
    /// Clock reading of the last detector sweep (throttles the sweep to
    /// roughly twice per heartbeat interval).
    last_hb_sweep: AtomicU64,
    /// Set once recovery proved impossible: every pending and future job
    /// fails with this reason instead of training.
    degraded: Mutex<Option<RecoveryError>>,
    /// Workers mid-drain, keyed by node id (`ts-elastic` preemption).
    draining: Mutex<HashMap<NodeId, DrainState>>,
    /// In-flight elastic migrations: `(attr, destination) → source`.
    /// Distinguishes join/drain migrations from crash re-replication when
    /// a `ReplicateDone` arrives.
    migrations: Mutex<HashMap<(usize, NodeId), NodeId>>,
}

impl Master {
    /// Creates the master state.
    pub fn new(
        cfg: ClusterConfig,
        n_rows: usize,
        n_attrs: usize,
        data_task: Task,
        colmap: ColumnMap,
        fabric: Fabric<TaskMsg>,
    ) -> Arc<Master> {
        let workers: Vec<NodeId> = (1..=cfg.n_workers).collect();
        let now = fabric.clock().now_ns();
        let leases: HashMap<NodeId, HbLease> = workers
            .iter()
            .map(|&w| {
                (
                    w,
                    HbLease {
                        last_ns: now,
                        reported: 0,
                    },
                )
            })
            .collect();
        let plans = if cfg.steal {
            PlanQueue::new_stealing(cfg.effective_steal_capacity())
        } else {
            PlanQueue::new_single()
        };
        plans.set_workers(&workers);
        let tau = Mutex::new(TauController::new(cfg.tau_d, cfg.tau_dfs));
        Arc::new(Master {
            cfg,
            n_rows,
            n_attrs,
            data_task: Mutex::new(data_task),
            workers: Mutex::new(workers),
            colmap: Mutex::new(colmap),
            plans,
            tau,
            last_tau_update: AtomicU64::new(0),
            ttask: Mutex::new(HashMap::new()),
            mwork: Mutex::new(LoadMatrix::new(0)),
            registry: Mutex::new(Registry {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                active: HashMap::new(),
                next_tree: 0,
                next_job: 0,
            }),
            next_task: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            delegations: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            fabric,
            last_hb: Mutex::new(leases),
            last_hb_sweep: AtomicU64::new(0),
            degraded: Mutex::new(None),
            draining: Mutex::new(HashMap::new()),
            migrations: Mutex::new(HashMap::new()),
        })
    }

    /// Initialises the load matrix once the cluster size is known.
    pub fn init_load_matrix(&self, n_nodes: usize) {
        *self.mwork.lock() = LoadMatrix::new(n_nodes);
    }

    /// Submits a job; returns the handle and the result channel.
    ///
    /// On a degraded cluster (recovery proved impossible) the job fails
    /// immediately with the stored reason.
    pub fn submit(&self, spec: JobSpec) -> (JobHandle, Receiver<JobResult>) {
        let trees = spec.expand(self.n_attrs);
        let (tx, rx) = tschan::bounded(1);
        if let Some(err) = self.degraded.lock().clone() {
            let mut reg = self.registry.lock();
            let job_id = reg.next_job;
            reg.next_job += 1;
            drop(reg);
            let _ = tx.send(JobResult::Failed(err));
            return (JobHandle(job_id), rx);
        }
        // The job's root span doubles as the trace id: every descendant
        // span (plans, tasks) carries it across the fabric.
        let job_span = self.new_span();
        let mut reg = self.registry.lock();
        let job_id = reg.next_job;
        reg.next_job += 1;
        reg.jobs.insert(
            job_id,
            JobState {
                total: trees.len(),
                done: 0,
                models: vec![None; trees.len()],
                kind: spec.kind.clone(),
                notify: tx,
                span: job_span,
            },
        );
        for (index, spec) in trees.into_iter().enumerate() {
            reg.queue.push_back(QueuedTree {
                job: job_id,
                index,
                spec,
                trace: job_span,
            });
        }
        drop(reg);
        // Wake θ_main so admission does not wait out a queue timeout.
        self.plans.notify();
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::JobSubmitted { job: job_id }
        );
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SpanOpen {
                trace: job_span,
                span: job_span,
                parent: 0,
                kind: ts_obs::SpanKind::Job,
                subject: job_id,
            }
        );
        (JobHandle(job_id), rx)
    }

    /// The current prediction task (boosting rounds may retarget it).
    pub fn data_task(&self) -> Task {
        *self.data_task.lock()
    }

    /// Retargets the prediction task (see `Cluster::update_labels`).
    pub fn set_data_task(&self, task: Task) {
        *self.data_task.lock() = task;
    }

    /// The currently live workers.
    pub fn live_workers(&self) -> Vec<NodeId> {
        self.workers.lock().clone()
    }

    /// Requests shutdown: `θ_main` notifies workers and both loops exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake θ_main if it is blocked on an empty plan queue.
        self.plans.notify();
    }

    fn new_task(&self) -> TaskId {
        TaskId(self.next_task.fetch_add(1, Ordering::Relaxed))
    }

    fn new_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn placeholder_pred(&self) -> Prediction {
        match self.data_task() {
            Task::Classification { n_classes } => Prediction::Class {
                label: 0,
                pmf: vec![0.0; n_classes as usize],
            },
            Task::Regression => Prediction::Real(0.0),
        }
    }

    /// The thresholds in force right now: the adaptive controller's when
    /// `cfg.adaptive_tau` is set, the static configuration otherwise.
    fn current_tau(&self) -> (u64, u64) {
        if self.cfg.adaptive_tau {
            let tau = self.tau.lock();
            (tau.tau_d(), tau.tau_dfs())
        } else {
            (self.cfg.tau_d, self.cfg.tau_dfs)
        }
    }

    /// Folds a fresh `LatencyFeed` snapshot into the τ controller, at most
    /// about twice per heartbeat interval. No-op unless `cfg.adaptive_tau`
    /// is set and a recorder is attached (the feed lives on the recorder).
    #[cfg(feature = "obs")]
    fn maybe_update_tau(&self) {
        if !self.cfg.adaptive_tau {
            return;
        }
        let Some(rec) = self.fabric.stats().recorder() else {
            return;
        };
        let interval = (self.cfg.heartbeat_interval.as_nanos() as u64).max(2);
        let now = self.fabric.clock().now_ns();
        let last = self.last_tau_update.load(Ordering::Relaxed);
        if now.saturating_sub(last) < interval / 2 {
            return;
        }
        self.last_tau_update.store(now, Ordering::Relaxed);
        self.tau.lock().update(&rec.latency_feed().snapshot());
    }

    #[cfg(not(feature = "obs"))]
    fn maybe_update_tau(&self) {}

    /// Inserts a plan into `Bplan` per the hybrid BFS/DFS rule. In steal
    /// mode the plan lands on its parent worker's deque (§VI affinity);
    /// roots go to the shared global deque.
    fn enqueue_plan(&self, desc: PlanDesc) {
        let (_, tau_dfs) = self.current_tau();
        let head = desc.n_rows <= tau_dfs;
        let affinity = match desc.parent {
            ParentRef::Root => None,
            ParentRef::Node { worker, .. } => Some(worker),
        };
        #[cfg(feature = "obs")]
        let (depth, rows) = (desc.depth, desc.n_rows);
        let _qlen = self.plans.push(desc, affinity, head);
        #[cfg(feature = "obs")]
        {
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::BplanPush {
                    end: if head {
                        ts_obs::DequeEnd::Head
                    } else {
                        ts_obs::DequeEnd::Tail
                    },
                    depth,
                    rows,
                    qlen: _qlen as u32,
                }
            );
        }
    }

    // ------------------------------------------------------------------
    // θ_main: admission + assignment.
    // ------------------------------------------------------------------

    /// The master's main thread.
    pub fn main_loop(self: Arc<Self>) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                let mut workers = self.workers.lock().clone();
                // Draining workers left the roster but are still alive
                // (serving their data plane): they need the Shutdown too.
                workers.extend(self.draining.lock().keys().copied());
                for w in workers {
                    let _ = self.fabric.send(0, w, TaskMsg::Shutdown);
                }
                // Wake θ_recv so it can exit.
                let _ = self.fabric.send(0, 0, TaskMsg::Shutdown);
                return;
            }
            self.check_heartbeats();
            self.admit_trees();
            self.maybe_update_tau();
            // Bound the wait so the heartbeat detector and shutdown flag
            // keep being polled even while the queue is idle; any push,
            // completion or steal request wakes the condvar immediately.
            let timeout = (self.cfg.heartbeat_interval / 2)
                .clamp(Duration::from_millis(1), Duration::from_millis(50));
            // Steal victims are ranked by §VI COMP load; snapshot it before
            // blocking on the queue (never hold both locks at once).
            let comp: Vec<u64> = if self.plans.stealing() {
                let mw = self.mwork.lock();
                (0..mw.n_nodes()).map(|n| mw.get(n, COMP)).collect()
            } else {
                Vec::new()
            };
            if let Some((d, steal)) = self.plans.next_timeout(timeout, &comp) {
                self.assign_plan(d, steal);
            }
        }
    }

    /// Lease-based failure detector (run on `θ_main`): a worker whose last
    /// heartbeat is older than `heartbeat_interval * heartbeat_miss_threshold`
    /// is declared dead and handed to the normal crash-recovery path. The
    /// sweep is throttled to about twice per heartbeat interval.
    ///
    /// A false positive (e.g. a heavily descheduled but healthy worker) is
    /// survivable: recovery revokes and restarts in-flight trees, which
    /// preserves the trained model; the declared-dead worker's late results
    /// refer to revoked trees and are silently dropped.
    fn check_heartbeats(&self) {
        let interval = (self.cfg.heartbeat_interval.as_nanos() as u64).max(1);
        let now = self.fabric.clock().now_ns();
        let last = self.last_hb_sweep.load(Ordering::Relaxed);
        if now.saturating_sub(last) < interval / 2 {
            return;
        }
        self.last_hb_sweep.store(now, Ordering::Relaxed);
        if self.degraded.lock().is_some() {
            return;
        }
        let threshold = u64::from(self.cfg.heartbeat_miss_threshold);
        let mut suspects: Vec<NodeId> = Vec::new();
        {
            let live = self.workers.lock().clone();
            let mut hb = self.last_hb.lock();
            for &w in &live {
                let lease = hb.entry(w).or_insert(HbLease {
                    last_ns: now,
                    reported: 0,
                });
                let missed = now.saturating_sub(lease.last_ns) / interval;
                if missed > lease.reported {
                    lease.reported = missed;
                    obs_event!(
                        self.fabric.stats(),
                        0,
                        ts_obs::Event::HeartbeatMissed {
                            worker: w as u32,
                            missed,
                        }
                    );
                }
                if missed >= threshold {
                    suspects.push(w);
                }
            }
        }
        for w in suspects {
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::WorkerSuspected { worker: w as u32 }
            );
            self.recover_or_degrade(w);
        }
        // Elastic drains piggyback on the same sweep: escalate leavers that
        // blew their grace window, and re-check departure conditions that
        // have no direct trigger (a queued plan of the leaver's finally
        // dispatched and completed).
        self.escalate_expired_drains(now);
        self.maybe_finish_drains();
    }

    /// A drain that outlives its grace window stops being graceful: the
    /// leaver is re-listed and handed to ordinary crash recovery, exactly
    /// as if it had gone silent (spot preemption fired before the handoff
    /// finished).
    fn escalate_expired_drains(&self, now: u64) {
        let expired: Vec<NodeId> = {
            let draining = self.draining.lock();
            draining
                .iter()
                .filter(|&(_, st)| now >= st.deadline_ns)
                .map(|(&w, _)| w)
                .collect()
        };
        for w in expired {
            self.draining.lock().remove(&w);
            // Its outbound handoffs die with it; survivor-sourced
            // re-replications stay useful and complete normally.
            self.migrations.lock().retain(|_, &mut from| from != w);
            // Re-list the worker so the crash path's dedupe accepts it.
            {
                let mut workers = self.workers.lock();
                if !workers.contains(&w) {
                    workers.push(w);
                    workers.sort_unstable();
                }
            }
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::WorkerSuspected { worker: w as u32 }
            );
            self.recover_or_degrade(w);
        }
    }

    /// Refreshes a worker's liveness lease (`θ_recv`, on every heartbeat).
    /// Heartbeats from already-declared-dead workers carry no lease and are
    /// ignored.
    fn on_heartbeat(&self, worker: NodeId) {
        let now = self.fabric.clock().now_ns();
        if let Some(lease) = self.last_hb.lock().get_mut(&worker) {
            lease.last_ns = now;
            lease.reported = 0;
        }
    }

    /// Admits queued trees while the active pool has room (`n_pool`).
    fn admit_trees(&self) {
        loop {
            let root = {
                let mut reg = self.registry.lock();
                if reg.active.len() >= self.cfg.n_pool {
                    return;
                }
                let Some(q) = reg.queue.pop_front() else {
                    return;
                };
                let tree = TreeId(reg.next_tree);
                reg.next_tree += 1;
                let trace = q.trace;
                reg.active.insert(
                    tree,
                    ActiveTree {
                        job: q.job,
                        index: q.index,
                        trace,
                        spec: q.spec,
                        nodes: vec![Node::leaf(self.placeholder_pred(), 0, 0)],
                        pending: 1,
                    },
                );
                PlanDesc {
                    task: self.new_task(),
                    tree,
                    node: 0,
                    parent: ParentRef::Root,
                    n_rows: self.n_rows as u64,
                    depth: 0,
                    path: 1,
                    trace,
                    span: self.new_span(),
                }
            };
            // Root plans hang directly off the job span.
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::SpanOpen {
                    trace: root.trace,
                    span: root.span,
                    parent: root.trace,
                    kind: ts_obs::SpanKind::Plan,
                    subject: root.task.0,
                }
            );
            self.enqueue_plan(root);
        }
    }

    /// Assigns one plan to workers (§VI) and ships it. When the plan was
    /// stolen (`steal`), the thief is told first via a `Donate` frame so
    /// its pending steal request is acknowledged before (or with) the
    /// plan traffic it produced.
    fn assign_plan(&self, desc: PlanDesc, steal: Option<StealInfo>) {
        // Fetch the tree's spec; a missing tree was revoked by recovery.
        let (candidates, params, tree_seed) = {
            let reg = self.registry.lock();
            match reg.active.get(&desc.tree) {
                Some(t) => (t.spec.candidates.clone(), t.spec.params, t.spec.seed),
                None => return,
            }
        };
        let workers = self.workers.lock().clone();
        let (tau_d, _) = self.current_tau();
        let parent_worker = match desc.parent {
            ParentRef::Root => None,
            ParentRef::Node { worker, .. } => Some(worker),
        };
        // The plan span leaves the queue: open→active is queue wait,
        // active→close is assignment + dispatch sends.
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SpanActive {
                span: desc.span,
                node: 0,
            }
        );
        // The task span: carried by every plan/result frame of this task,
        // closed by θ_recv when the folded result is final.
        let task_span = self.new_span();
        let ctx = TraceCtx::new(desc.trace, SpanId(task_span));
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SpanOpen {
                trace: desc.trace,
                span: task_span,
                parent: desc.span,
                kind: if desc.n_rows <= tau_d {
                    ts_obs::SpanKind::SubtreeTask
                } else {
                    ts_obs::SpanKind::ColumnTask
                },
                subject: desc.task.0,
            }
        );
        #[cfg(feature = "obs")]
        let started_ns = self.fabric.clock().now_ns();

        // Acknowledge a stolen plan before any of its traffic: the Donate
        // frame clears the thief's outstanding steal request and carries the
        // task span, which draws the steal edge in the span DAG.
        if let Some(info) = steal {
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::PlanStolen {
                    task: desc.task.0,
                    victim: info.victim as u32,
                    thief: info.thief as u32,
                }
            );
            let _ = self.fabric.send(
                0,
                info.thief,
                TaskMsg::Donate {
                    task: desc.task,
                    victim: info.victim,
                    ctx,
                },
            );
        }

        let mut msgs: Vec<(NodeId, TaskMsg)> = Vec::new();
        if desc.n_rows <= tau_d {
            // Subtree-task.
            let asg = {
                let mut mwork = self.mwork.lock();
                let colmap = self.colmap.lock();
                assign_subtree(
                    &mut mwork,
                    &colmap,
                    &workers,
                    &candidates,
                    desc.n_rows,
                    parent_worker,
                )
            };
            let mut touches: Vec<NodeId> = vec![asg.key_worker];
            touches.extend(asg.col_sources.iter().map(|&(_, w)| w));
            touches.extend(parent_worker);
            touches.sort_unstable();
            touches.dedup();
            self.ttask.lock().insert(
                desc.task,
                MasterTask {
                    tree: desc.tree,
                    node: desc.node,
                    n_rows: desc.n_rows,
                    depth: desc.depth,
                    path: desc.path,
                    charges: asg.charges.clone(),
                    touches,
                    kind: TaskKind::Subtree,
                    trace: desc.trace,
                    span: task_span,
                    #[cfg(feature = "obs")]
                    started_ns,
                },
            );
            if let ParentRef::Node {
                worker,
                task: ptask,
                side,
            } = desc.parent
            {
                msgs.push((
                    worker,
                    TaskMsg::ServeQuota {
                        task: ptask,
                        side,
                        quota: asg.ix_requesters.len() as u32,
                    },
                ));
            }
            self.plans.note_dispatched(&[asg.key_worker]);
            msgs.push((
                asg.key_worker,
                TaskMsg::SubtreePlan(SubtreePlan {
                    task: desc.task,
                    tree: desc.tree,
                    col_sources: asg.col_sources,
                    parent: desc.parent,
                    n_rows: desc.n_rows,
                    depth: desc.depth,
                    params,
                    seed: mix_seed(tree_seed, desc.path),
                    ctx,
                }),
            ));
        } else if params.extra_trees {
            // Extra-trees column-task: one randomly chosen worker resamples
            // among the columns it holds (round-robin placement makes this
            // distributionally equivalent to uniform attribute sampling;
            // see DESIGN.md).
            let mut rng = StdRng::seed_from_u64(mix_seed(tree_seed, desc.path));
            // Only workers that actually hold columns can resample; with
            // more workers than attribute replicas, some hold none.
            let (w, cols) = {
                let colmap = self.colmap.lock();
                let eligible: Vec<NodeId> = workers
                    .iter()
                    .copied()
                    .filter(|&w| !colmap.columns_of(w).is_empty())
                    .collect();
                assert!(!eligible.is_empty(), "no worker holds any column");
                let w = eligible[rng.gen_range(0..eligible.len())];
                (w, colmap.columns_of(w))
            };
            let charges = vec![(w, [desc.n_rows, 0, 0])];
            self.mwork.lock().apply(&charges);
            self.plans.note_dispatched(&[w]);
            let mut touches: Vec<NodeId> = vec![w];
            touches.extend(parent_worker);
            touches.sort_unstable();
            touches.dedup();
            self.ttask.lock().insert(
                desc.task,
                MasterTask {
                    tree: desc.tree,
                    node: desc.node,
                    n_rows: desc.n_rows,
                    depth: desc.depth,
                    path: desc.path,
                    charges,
                    touches,
                    kind: TaskKind::Column {
                        pending: 1,
                        involved: vec![w],
                        best: None,
                        node_stats: None,
                    },
                    trace: desc.trace,
                    span: task_span,
                    #[cfg(feature = "obs")]
                    started_ns,
                },
            );
            if let ParentRef::Node {
                worker,
                task: ptask,
                side,
            } = desc.parent
            {
                msgs.push((
                    worker,
                    TaskMsg::ServeQuota {
                        task: ptask,
                        side,
                        quota: 1,
                    },
                ));
            }
            msgs.push((
                w,
                TaskMsg::ColumnPlan(ColumnPlan {
                    task: desc.task,
                    tree: desc.tree,
                    cols,
                    parent: desc.parent,
                    n_rows: desc.n_rows,
                    depth: desc.depth,
                    params,
                    random_seed: Some(rng.gen()),
                    hist: None,
                    ctx,
                }),
            ));
        } else {
            // Column-task, sharded over column holders. The shard layout is
            // identical for both splitters; only the scoring mode and the
            // result protocol differ (exact full results vs histogram
            // nominations, `docs/HISTOGRAM.md`).
            let asg = {
                let mut mwork = self.mwork.lock();
                let colmap = self.colmap.lock();
                assign_column_task(&mut mwork, &colmap, &candidates, desc.n_rows, parent_worker)
            };
            let involved: Vec<NodeId> = asg.shards.iter().map(|&(w, _)| w).collect();
            self.plans.note_dispatched(&involved);
            let mut touches = involved.clone();
            touches.extend(parent_worker);
            touches.sort_unstable();
            touches.dedup();
            let kind = match self.cfg.splitter {
                crate::config::Splitter::Exact => TaskKind::Column {
                    pending: involved.len(),
                    involved: involved.clone(),
                    best: None,
                    node_stats: None,
                },
                crate::config::Splitter::Histogram { .. } => TaskKind::Hist {
                    pending: involved.len(),
                    involved: involved.clone(),
                    cands: Vec::new(),
                    node_stats: None,
                    best: None,
                    fetched: None,
                },
            };
            self.ttask.lock().insert(
                desc.task,
                MasterTask {
                    tree: desc.tree,
                    node: desc.node,
                    n_rows: desc.n_rows,
                    depth: desc.depth,
                    path: desc.path,
                    charges: asg.charges.clone(),
                    touches,
                    kind,
                    trace: desc.trace,
                    span: task_span,
                    #[cfg(feature = "obs")]
                    started_ns,
                },
            );
            if let ParentRef::Node {
                worker,
                task: ptask,
                side,
            } = desc.parent
            {
                msgs.push((
                    worker,
                    TaskMsg::ServeQuota {
                        task: ptask,
                        side,
                        quota: involved.len() as u32,
                    },
                ));
            }
            for (i, (w, cols)) in asg.shards.into_iter().enumerate() {
                // In histogram mode exactly one shard (the first, in the
                // assignment's deterministic order) carries node stats.
                let hist = match self.cfg.splitter {
                    crate::config::Splitter::Exact => None,
                    crate::config::Splitter::Histogram { bins, vote_k } => {
                        Some(crate::messages::HistPlanConf {
                            bins: bins as u32,
                            vote_k: vote_k as u32,
                            want_stats: i == 0,
                        })
                    }
                };
                msgs.push((
                    w,
                    TaskMsg::ColumnPlan(ColumnPlan {
                        task: desc.task,
                        tree: desc.tree,
                        cols,
                        parent: desc.parent,
                        n_rows: desc.n_rows,
                        depth: desc.depth,
                        params,
                        random_seed: None,
                        hist,
                        ctx,
                    }),
                ));
            }
        }
        for (to, msg) in msgs {
            let delegated_subtree = matches!(msg, TaskMsg::SubtreePlan(_));
            #[cfg(feature = "obs")]
            if let Some(rec) = self.fabric.stats().recorder() {
                match &msg {
                    TaskMsg::ColumnPlan(p) => rec.record(
                        0,
                        ts_obs::Event::ColumnTaskDispatched {
                            task: p.task.0,
                            node: to as u32,
                            cols: p.cols.len() as u32,
                            bytes: msg.wire_bytes() as u64,
                        },
                    ),
                    TaskMsg::SubtreePlan(p) => rec.record(
                        0,
                        ts_obs::Event::SubtreeTaskDelegated {
                            task: p.task.0,
                            key_worker: to as u32,
                            rows: p.n_rows,
                        },
                    ),
                    _ => {}
                }
            }
            let _ = self.fabric.send(0, to, msg);
            if delegated_subtree {
                self.note_delegation(to);
            }
        }
        // Dispatch done: the plan span ends here; the task span stays open
        // until θ_recv folds the final result.
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SpanClose { span: desc.span }
        );
    }

    /// Counts cluster-wide subtree delegations and fires the fault plan's
    /// crash trigger on the n-th one: the key worker that just received the
    /// plan is silenced with a task-channel `Shutdown` (the worker cascades
    /// it into its own data loop and heartbeat thread — see
    /// `Worker::task_loop`). Nothing here announces the crash to the
    /// scheduler: the worker simply goes dark, and the heartbeat detector
    /// (`check_heartbeats`) must *discover* it and run recovery.
    /// `Cluster::kill_worker` remains the externally-announced variant.
    fn note_delegation(&self, key_worker: NodeId) {
        let nth = self.delegations.fetch_add(1, Ordering::Relaxed) + 1;
        let Some(at) = self
            .cfg
            .faults
            .as_ref()
            .and_then(|p| p.crash_at_delegation())
        else {
            return;
        };
        if nth != at {
            return;
        }
        // Re-replication needs a surviving replica; with one worker left the
        // injection is skipped rather than aborting training.
        if self.workers.lock().len() <= 1 {
            return;
        }
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::CrashInjected {
                node: key_worker as u32,
                at_delegation: nth
            }
        );
        let _ = self.fabric.send(0, key_worker, TaskMsg::Shutdown);
    }

    // ------------------------------------------------------------------
    // θ_recv: results.
    // ------------------------------------------------------------------

    /// The master's receiving thread.
    pub fn recv_loop(self: Arc<Self>, rx: FabricReceiver<TaskMsg>) {
        while let Ok(msg) = rx.recv() {
            #[cfg(feature = "obs")]
            self.count_split_plane_bytes(&msg);
            match msg {
                TaskMsg::Heartbeat { worker } => self.on_heartbeat(worker),
                TaskMsg::ColumnResult {
                    task,
                    worker,
                    best,
                    node_stats,
                    ..
                } => self.on_column_result(task, worker, best, node_stats),
                TaskMsg::HistNominate {
                    task,
                    worker,
                    cands,
                    node_stats,
                    ..
                } => self.on_hist_nominate(task, worker, cands, node_stats),
                TaskMsg::HistBest {
                    task, worker, best, ..
                } => self.on_hist_best(task, worker, best),
                TaskMsg::SubtreeResult {
                    task,
                    worker,
                    subtree,
                    ..
                } => self.on_subtree_result(task, worker, subtree),
                TaskMsg::ReplicateDone { attrs, worker, .. } => {
                    self.on_replicate_done(attrs, worker)
                }
                TaskMsg::Shutdown => return,
                TaskMsg::StealRequest { worker } => self.on_steal_request(worker),
                TaskMsg::Hello { worker } => self.on_hello(worker),
                TaskMsg::Goodbye { worker } => self.on_goodbye(worker),
                _ => unreachable!("worker-bound message delivered to the master"),
            }
        }
    }

    /// Folds split-phase result traffic into the per-kind byte counters
    /// (`split_bytes_sent` for exact full results, `hist_bytes_sent` for
    /// the nomination/fetch/best election). Frames common to both modes
    /// (plans, confirms, quotas) are deliberately excluded from both, so
    /// the two counters compare exactly the traffic the splitter choice
    /// changes (`docs/HISTOGRAM.md`).
    #[cfg(feature = "obs")]
    fn count_split_plane_bytes(&self, msg: &TaskMsg) {
        let Some(rec) = self.fabric.stats().recorder() else {
            return;
        };
        match msg {
            TaskMsg::ColumnResult { .. } => rec
                .registry()
                .counter("split_bytes_sent")
                .add(msg.wire_bytes() as u64),
            TaskMsg::HistNominate { .. } | TaskMsg::HistBest { .. } => rec
                .registry()
                .counter("hist_bytes_sent")
                .add(msg.wire_bytes() as u64),
            _ => {}
        }
    }

    /// A worker's compute pool ran dry: queue it for the stealing pop and
    /// wake `θ_main`. Requests are accelerators, not obligations — losing
    /// one costs latency, never progress (the next completion re-triggers).
    /// The `StealRequested` event is recorded at the origin (the worker),
    /// not here, so the counter sees each request exactly once.
    fn on_steal_request(&self, worker: NodeId) {
        self.plans.mark_hungry(worker);
    }

    // ------------------------------------------------------------------
    // Elastic membership (`ts-elastic`, see `docs/ELASTICITY.md`).
    // ------------------------------------------------------------------

    /// A pre-provisioned spare slot handshakes in: add it to the roster,
    /// arm its heartbeat lease, register its affinity deque, ack with
    /// `Welcome`, and start incremental column migration toward it. The
    /// joiner becomes a column holder only as each `ReplicateDone` lands,
    /// so column tasks never target data still in flight — but subtree
    /// tasks can pick it as key worker immediately (they fetch columns
    /// remotely anyway).
    fn on_hello(&self, worker: NodeId) {
        if self.degraded.lock().is_some() || self.draining.lock().contains_key(&worker) {
            return;
        }
        {
            let mut workers = self.workers.lock();
            if workers.contains(&worker) {
                return; // duplicate Hello
            }
            workers.push(worker);
            workers.sort_unstable();
        }
        let now = self.fabric.clock().now_ns();
        self.last_hb.lock().insert(
            worker,
            HbLease {
                last_ns: now,
                reported: 0,
            },
        );
        let live = self.workers.lock().clone();
        self.plans.set_workers(&live);
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::WorkerJoined {
                node: worker as u32
            }
        );
        let _ = self.fabric.send(0, worker, TaskMsg::Welcome { worker });

        // Plan the join top-up and route one ReplicateTo per source. The
        // migration span rides every frame of the handoff (ReplicateTo →
        // ReplicateCols → ReplicateDone), so retries and duplicate drops
        // attribute to it.
        let plan = self.colmap.lock().add_worker(worker, self.cfg.replication);
        let mut by_source: HashMap<NodeId, Vec<usize>> = HashMap::new();
        {
            let mut migs = self.migrations.lock();
            for &(attr, src) in &plan {
                migs.insert((attr, worker), src);
                by_source.entry(src).or_default().push(attr);
            }
        }
        let mut by_source: Vec<(NodeId, Vec<usize>)> = by_source.into_iter().collect();
        by_source.sort_unstable_by_key(|&(s, _)| s);
        for (src, attrs) in by_source {
            let span = self.new_span();
            let _ = self.fabric.send(
                0,
                src,
                TaskMsg::ReplicateTo {
                    attrs,
                    to: worker,
                    ctx: TraceCtx::new(span, SpanId(span)),
                },
            );
        }
    }

    /// Starts a graceful drain of `worker` ahead of an announced preemption
    /// with the given grace window. The leaver is removed from scheduling
    /// immediately (so the lease sweep and the assigner both skip it), its
    /// queued plans are reclaimed onto the global deque, its columns are
    /// handed off, and a `Drain` frame tells it to finish up and `Goodbye`.
    pub fn begin_drain(&self, worker: NodeId, grace: Duration) {
        if self.degraded.lock().is_some()
            || self.draining.lock().contains_key(&worker)
            || !self.workers.lock().contains(&worker)
        {
            return;
        }
        // Never drain the last worker: there is nowhere to hand off to.
        if self.workers.lock().len() <= 1 {
            return;
        }
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::WorkerDraining {
                node: worker as u32
            }
        );
        self.workers.lock().retain(|&w| w != worker);
        let live = self.workers.lock().clone();
        // Reclaim the leaver's queued plans; they re-enter on the global
        // deque (their affinity points at a machine that is leaving).
        let reclaimed = self.plans.drain_worker(worker);
        self.plans.set_workers(&live);
        for d in reclaimed {
            self.plans.push(d, None, false);
        }

        // Column handoff. Two cases per held column:
        //  - another holder exists → the leaver stops being a holder now;
        //    if that leaves the column under-replicated, a survivor
        //    re-replicates it (exactly the crash-recovery move, minus the
        //    crash).
        //  - the leaver is the sole holder → it keeps serving the column
        //    and copies it to a live non-holder itself; the handoff
        //    completing is what retires it as holder (`migrating` set).
        let mut sends: Vec<(NodeId, Vec<usize>, NodeId)> = Vec::new(); // (src, attrs, to)
        let mut migrating: BTreeSet<usize> = BTreeSet::new();
        {
            let mut colmap = self.colmap.lock();
            let mut migs = self.migrations.lock();
            let mut load: HashMap<NodeId, usize> = live
                .iter()
                .map(|&w| (w, colmap.columns_of(w).len()))
                .collect();
            let mut by_pair: HashMap<(NodeId, NodeId), Vec<usize>> = HashMap::new();
            for attr in colmap.columns_of(worker) {
                if colmap.drop_holder(attr, worker) {
                    // Survivors still hold it; top the replication back up
                    // if the departure cut below k and a target exists.
                    if colmap.holders(attr).len() < self.cfg.replication {
                        let src = colmap.holders(attr)[0];
                        if let Some(&target) = live
                            .iter()
                            .filter(|&&w| !colmap.holders(attr).contains(&w))
                            .min_by_key(|&&w| (load[&w], w))
                        {
                            *load.get_mut(&target).expect("live") += 1;
                            migs.insert((attr, target), src);
                            by_pair.entry((src, target)).or_default().push(attr);
                        }
                    }
                } else {
                    // Sole holder: the leaver hands the column off itself.
                    let Some(&target) = live
                        .iter()
                        .filter(|&&w| !colmap.holders(attr).contains(&w))
                        .min_by_key(|&&w| (load[&w], w))
                    else {
                        continue; // no live target; escalation will decide
                    };
                    *load.get_mut(&target).expect("live") += 1;
                    migs.insert((attr, target), worker);
                    migrating.insert(attr);
                    by_pair.entry((worker, target)).or_default().push(attr);
                }
            }
            let mut pairs: Vec<((NodeId, NodeId), Vec<usize>)> = by_pair.into_iter().collect();
            pairs.sort_unstable_by_key(|&(k, _)| k);
            for ((src, to), attrs) in pairs {
                sends.push((src, attrs, to));
            }
        }
        for (src, attrs, to) in sends {
            let span = self.new_span();
            let _ = self.fabric.send(
                0,
                src,
                TaskMsg::ReplicateTo {
                    attrs,
                    to,
                    ctx: TraceCtx::new(span, SpanId(span)),
                },
            );
        }
        let deadline_ns = self
            .fabric
            .clock()
            .now_ns()
            .saturating_add(grace.as_nanos() as u64);
        self.draining.lock().insert(
            worker,
            DrainState {
                deadline_ns,
                migrating,
                goodbye: false,
            },
        );
        let _ = self.fabric.send(0, worker, TaskMsg::Drain);
        // A steal request from the leaver may already be queued; forget it.
        self.plans.notify();
    }

    /// The draining worker reports its task queue idle. Departure still
    /// waits on column handoffs and on in-flight tasks that reference the
    /// leaver on the data plane.
    fn on_goodbye(&self, worker: NodeId) {
        if let Some(st) = self.draining.lock().get_mut(&worker) {
            st.goodbye = true;
        }
        self.maybe_finish_drains();
    }

    /// Replicated columns landed at `worker`. Join/drain migrations are
    /// recognised by the `(attr, destination)` key recorded when the
    /// `ReplicateTo` went out; anything else is crash re-replication and
    /// keeps the `WorkerRecovered` semantics.
    fn on_replicate_done(&self, attrs: Vec<usize>, worker: NodeId) {
        let mut any_recovery = false;
        {
            let mut colmap = self.colmap.lock();
            let mut migs = self.migrations.lock();
            let mut draining = self.draining.lock();
            for &a in &attrs {
                colmap.add_holder(a, worker);
                match migs.remove(&(a, worker)) {
                    Some(from) => {
                        obs_event!(
                            self.fabric.stats(),
                            0,
                            ts_obs::Event::ColumnMigrated {
                                attr: a as u32,
                                from: from as u32,
                                to: worker as u32,
                            }
                        );
                        if let Some(st) = draining.get_mut(&from) {
                            // Pre-departure handoff: the leaver stops being
                            // this column's holder the moment the copy is
                            // servable elsewhere.
                            colmap.drop_holder(a, from);
                            st.migrating.remove(&a);
                        }
                    }
                    None => any_recovery = true,
                }
            }
        }
        if any_recovery {
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::WorkerRecovered {
                    node: worker as u32
                }
            );
        }
        self.maybe_finish_drains();
    }

    /// Finalises every drain whose conditions are all met: `Goodbye`
    /// received, no column still migrating off the leaver, no in-flight
    /// task touching it, and no queued plan that would fetch `Ix` from it.
    /// Finalisation retires the lease and sends the final `Shutdown`; the
    /// leaver exits through the ordinary shutdown cascade — zero crash
    /// recovery, zero tree revocation.
    fn maybe_finish_drains(&self) {
        let ready: Vec<NodeId> = {
            let draining = self.draining.lock();
            if draining.is_empty() {
                return;
            }
            let ttask = self.ttask.lock();
            draining
                .iter()
                .filter(|&(_, st)| st.goodbye && st.migrating.is_empty())
                .filter(|&(w, _)| !ttask.values().any(|t| t.touches.contains(w)))
                .map(|(&w, _)| w)
                .collect()
        };
        for w in ready {
            let parented = self.plans.any_match(
                |d: &PlanDesc| matches!(d.parent, ParentRef::Node { worker, .. } if worker == w),
            );
            if parented {
                continue;
            }
            if self.draining.lock().remove(&w).is_none() {
                continue;
            }
            self.last_hb.lock().remove(&w);
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::WorkerDeparted { node: w as u32 }
            );
            // The leaver holds no columns by now (handoffs retired them),
            // so the reliable Shutdown is the last frame it will ever see;
            // it acks and exits through the normal cascade.
            let _ = self.fabric.send(0, w, TaskMsg::Shutdown);
        }
    }

    /// Whether a worker is currently mid-drain (test and cluster helper).
    pub fn is_draining(&self, worker: NodeId) -> bool {
        self.draining.lock().contains_key(&worker)
    }

    fn on_column_result(
        &self,
        task: TaskId,
        worker: NodeId,
        best: Option<ColumnTaskBest>,
        node_stats: NodeStats,
    ) {
        let finished = {
            let mut ttask = self.ttask.lock();
            let Some(entry) = ttask.get_mut(&task) else {
                return; // revoked
            };
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::ColumnTaskCompleted {
                    task: task.0,
                    node: worker as u32,
                    latency_ns: self
                        .fabric
                        .clock()
                        .now_ns()
                        .saturating_sub(entry.started_ns),
                }
            );
            let TaskKind::Column {
                pending,
                best: stored,
                node_stats: stats_slot,
                ..
            } = &mut entry.kind
            else {
                unreachable!("column result for a subtree task");
            };
            *pending -= 1;
            if let Some(b) = best {
                let replace = match stored {
                    None => true,
                    Some((_, incumbent)) => ColumnSplit::challenger_wins(
                        &b.split,
                        b.attr,
                        &incumbent.split,
                        incumbent.attr,
                    ),
                };
                if replace {
                    *stored = Some((worker, b));
                }
            }
            if stats_slot.is_none() {
                *stats_slot = Some(node_stats);
            }
            if *pending == 0 {
                ttask.remove(&task)
            } else {
                None
            }
        };
        // One shard of this worker's outstanding work came back (stale
        // results of revoked tasks returned above and never reach this —
        // the queue's accounting was reset when the tasks were revoked).
        self.plans.note_completed(worker);
        if let Some(entry) = finished {
            self.mwork.lock().deduct(&entry.charges);
            self.finalize_column_task(task, entry);
        }
    }

    /// One shard of a histogram-mode column task voted: fold its
    /// `(attr, gain)` nominations. When the last shard reports, either the
    /// node is a leaf (or nobody found a split) and the task finalizes
    /// immediately, or the master elects the globally best candidate by
    /// `(gain desc, attr asc, worker asc)` and fetches the single full
    /// split it needs from the nominating worker.
    fn on_hist_nominate(
        &self,
        task: TaskId,
        worker: NodeId,
        noms: Vec<(usize, f64)>,
        stats: Option<NodeStats>,
    ) {
        enum Outcome {
            Wait,
            Leaf(Box<MasterTask>),
            Fetch(NodeId, usize, TraceCtx),
        }
        let outcome = {
            let mut ttask = self.ttask.lock();
            let Some(entry) = ttask.get_mut(&task) else {
                return; // revoked
            };
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::ColumnTaskCompleted {
                    task: task.0,
                    node: worker as u32,
                    latency_ns: self
                        .fabric
                        .clock()
                        .now_ns()
                        .saturating_sub(entry.started_ns),
                }
            );
            let TaskKind::Hist {
                pending,
                cands,
                node_stats,
                fetched,
                ..
            } = &mut entry.kind
            else {
                unreachable!("hist nomination for a non-hist task");
            };
            *pending -= 1;
            cands.extend(noms.into_iter().map(|(attr, gain)| (gain, attr, worker)));
            if node_stats.is_none() {
                *node_stats = stats;
            }
            if *pending > 0 {
                Outcome::Wait
            } else {
                // All shards voted. Leaf conditions short-circuit the fetch
                // round-trip entirely; so does an empty candidate set.
                let params = {
                    let reg = self.registry.lock();
                    reg.active.get(&entry.tree).map(|t| t.spec.params)
                };
                let must_leaf = match (&params, &node_stats) {
                    (Some(p), Some(ns)) => {
                        entry.depth >= p.dmax || entry.n_rows <= p.tau_leaf || ns.is_pure()
                    }
                    _ => true, // revoked tree: finalize handles the drops
                };
                let elected = if must_leaf {
                    None
                } else {
                    // Election: total order over (gain desc, attr asc,
                    // worker asc) — deterministic whatever the nomination
                    // arrival order, which is what keeps same-seed replays
                    // byte-identical under stealing and elastic membership.
                    cands
                        .iter()
                        .copied()
                        .max_by(|&(ga, aa, wa), &(gb, ab, wb)| {
                            ga.total_cmp(&gb).then(ab.cmp(&aa)).then(wb.cmp(&wa))
                        })
                        .map(|(_, attr, w)| (w, attr))
                };
                match elected {
                    None => Outcome::Leaf(Box::new(ttask.remove(&task).expect("present"))),
                    Some((w, attr)) => {
                        *fetched = Some(w);
                        Outcome::Fetch(w, attr, TraceCtx::new(entry.trace, SpanId(entry.span)))
                    }
                }
            }
        };
        // One shard of this worker's outstanding work came back (mirrors
        // the exact path's per-shard queue accounting).
        self.plans.note_completed(worker);
        match outcome {
            Outcome::Wait => {}
            Outcome::Leaf(entry) => {
                self.mwork.lock().deduct(&entry.charges);
                self.finalize_column_task(task, *entry);
            }
            Outcome::Fetch(w, attr, ctx) => {
                let msg = TaskMsg::HistFetch { task, attr, ctx };
                #[cfg(feature = "obs")]
                if let Some(rec) = self.fabric.stats().recorder() {
                    rec.registry()
                        .counter("hist_bytes_sent")
                        .add(ts_netsim::WireSized::wire_bytes(&msg) as u64);
                }
                let _ = self.fabric.send(0, w, msg);
            }
        }
    }

    /// The elected worker answered the `HistFetch` with its full split:
    /// the task is complete — finalize exactly like an exact column task.
    fn on_hist_best(&self, task: TaskId, worker: NodeId, best: Option<ColumnTaskBest>) {
        let entry = {
            let mut ttask = self.ttask.lock();
            let Some(entry) = ttask.get_mut(&task) else {
                return; // revoked
            };
            let TaskKind::Hist {
                fetched,
                best: slot,
                ..
            } = &mut entry.kind
            else {
                unreachable!("hist best for a non-hist task");
            };
            assert_eq!(
                *fetched,
                Some(worker),
                "HistBest from a worker that was not fetched"
            );
            *slot = best.map(|b| (worker, b));
            ttask.remove(&task).expect("present")
        };
        self.mwork.lock().deduct(&entry.charges);
        self.finalize_column_task(task, entry);
    }

    /// All shards of a column-task have reported: pick the winner, update
    /// the tree, spawn child tasks (or leaves), and notify the workers.
    fn finalize_column_task(&self, task: TaskId, entry: MasterTask) {
        // The last shard has been folded: the task span is complete,
        // whatever the outcome (leaf, winner, or revoked tree).
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SpanClose { span: entry.span }
        );
        let (involved, best, node_stats) = match entry.kind {
            TaskKind::Column {
                involved,
                best,
                node_stats,
                ..
            } => (involved, best, node_stats),
            // A finished hist election carries the fetched full split in
            // the same shape; the shared winner/leaf logic below is what
            // keeps both splitters' control flow (ConfirmBest first, then
            // drops and quotas) identical.
            TaskKind::Hist {
                involved,
                best,
                node_stats,
                ..
            } => (involved, best, node_stats),
            TaskKind::Subtree => unreachable!(),
        };
        let node_stats = node_stats.expect("at least one shard reported");
        let params = {
            let reg = self.registry.lock();
            reg.active.get(&entry.tree).map(|t| t.spec.params)
        };
        let Some(params) = params else {
            // Tree revoked while results were in flight: just tell the
            // workers to drop their task objects (outside any lock — sends
            // sleep under the link model).
            for w in involved {
                let _ = self.fabric.send(0, w, TaskMsg::DropTask { task });
            }
            return;
        };

        // Leaf conditions at this node itself (relevant for root tasks; for
        // child tasks the parent's finalize already filtered these).
        let must_leaf =
            entry.depth >= params.dmax || entry.n_rows <= params.tau_leaf || node_stats.is_pure();

        let Some((winner, best)) = (if must_leaf { None } else { best }) else {
            // Leaf: fill the node's prediction and drop all task objects.
            let pred = prediction_from_stats(&node_stats);
            let done_tree = {
                let mut reg = self.registry.lock();
                let Some(tree) = reg.active.get_mut(&entry.tree) else {
                    return;
                };
                tree.nodes[entry.node] = Node::leaf(pred, entry.n_rows, entry.depth);
                tree.pending -= 1;
                tree.pending == 0
            };
            for w in involved {
                let _ = self.fabric.send(0, w, TaskMsg::DropTask { task });
            }
            if done_tree {
                self.finish_tree(entry.tree);
            }
            return;
        };
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SplitChosen {
                task: task.0,
                node: winner as u32,
                attr: best.attr as u32,
                gain: best.split.gain,
            }
        );

        // Winner path: update the tree, create children.
        let mut quota_zero_sides: Vec<Side> = Vec::new();
        let mut child_plans: Vec<PlanDesc> = Vec::new();
        let done_tree = {
            let mut reg = self.registry.lock();
            let Some(tree) = reg.active.get_mut(&entry.tree) else {
                // Revoked mid-flight: release the lock before the paced sends.
                drop(reg);
                for w in involved {
                    let _ = self.fabric.send(0, w, TaskMsg::DropTask { task });
                }
                return;
            };
            let node_pred = prediction_from_stats(&node_stats);
            let l_idx = tree.nodes.len();
            let r_idx = l_idx + 1;
            let child_depth = entry.depth + 1;
            tree.nodes.push(Node::leaf(
                prediction_from_stats(&best.split.left),
                best.split.n_left(),
                child_depth,
            ));
            tree.nodes.push(Node::leaf(
                prediction_from_stats(&best.split.right),
                best.split.n_right(),
                child_depth,
            ));
            tree.nodes[entry.node] = Node {
                split: Some((
                    SplitInfo {
                        attr: best.attr,
                        test: best.split.test.clone(),
                        gain: best.split.gain,
                        missing_left: best.split.missing_left,
                        seen: best.seen.clone(),
                    },
                    l_idx,
                    r_idx,
                )),
                prediction: node_pred,
                n_rows: entry.n_rows,
                depth: entry.depth,
            };

            let mut n_child_tasks = 0u64;
            for (side, stats, child_node) in [
                (Side::Left, &best.split.left, l_idx),
                (Side::Right, &best.split.right, r_idx),
            ] {
                let n_child = stats.n();
                let child_leaf =
                    child_depth >= params.dmax || n_child <= params.tau_leaf || stats.is_pure();
                if child_leaf {
                    quota_zero_sides.push(side);
                } else {
                    n_child_tasks += 1;
                    child_plans.push(PlanDesc {
                        task: self.new_task(),
                        tree: entry.tree,
                        node: child_node,
                        parent: ParentRef::Node {
                            worker: winner,
                            task,
                            side,
                        },
                        n_rows: n_child,
                        depth: child_depth,
                        path: match side {
                            Side::Left => entry.path.wrapping_shl(1),
                            Side::Right => entry.path.wrapping_shl(1) | 1,
                        },
                        trace: entry.trace,
                        span: self.new_span(),
                    });
                }
            }
            tree.pending = tree.pending - 1 + n_child_tasks;
            tree.pending == 0
        };

        // Notify workers. ConfirmBest must reach the winner before any
        // ServeQuota for this task does; both ride the same FIFO channel, so
        // sending ConfirmBest first (and only then enqueueing child plans
        // that trigger θ_main quotas) guarantees the order.
        let _ = self.fabric.send(0, winner, TaskMsg::ConfirmBest { task });
        for w in involved {
            if w != winner {
                let _ = self.fabric.send(0, w, TaskMsg::DropTask { task });
            }
        }
        for side in quota_zero_sides {
            let _ = self.fabric.send(
                0,
                winner,
                TaskMsg::ServeQuota {
                    task,
                    side,
                    quota: 0,
                },
            );
        }
        for plan in child_plans {
            // Child plans are causally parented to the column task whose
            // winning split spawned them — this is the job→plan→task→plan
            // chain the critical-path walk follows.
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::SpanOpen {
                    trace: plan.trace,
                    span: plan.span,
                    parent: entry.span,
                    kind: ts_obs::SpanKind::Plan,
                    subject: plan.task.0,
                }
            );
            self.enqueue_plan(plan);
        }
        if done_tree {
            self.finish_tree(entry.tree);
        }
    }

    #[cfg_attr(not(feature = "obs"), allow(unused_variables))]
    fn on_subtree_result(&self, task: TaskId, worker: NodeId, subtree: DecisionTreeModel) {
        let Some(entry) = self.ttask.lock().remove(&task) else {
            return; // revoked
        };
        self.plans.note_completed(worker);
        self.mwork.lock().deduct(&entry.charges);
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SubtreeTaskBuilt {
                task: task.0,
                node: worker as u32,
                nodes: subtree.n_nodes() as u32,
                latency_ns: self
                    .fabric
                    .clock()
                    .now_ns()
                    .saturating_sub(entry.started_ns),
            }
        );
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::SpanClose { span: entry.span }
        );
        let done_tree = {
            let mut reg = self.registry.lock();
            let Some(tree) = reg.active.get_mut(&entry.tree) else {
                return;
            };
            graft_nodes(&mut tree.nodes, entry.node, subtree);
            tree.pending -= 1;
            tree.pending == 0
        };
        if done_tree {
            self.finish_tree(entry.tree);
        }
    }

    /// Flushes a completed tree into its job; completes the job when its
    /// last tree lands.
    fn finish_tree(&self, tree_id: TreeId) {
        let mut reg = self.registry.lock();
        let tree = reg.active.remove(&tree_id).expect("tree just completed");
        debug_assert_eq!(tree.pending, 0);
        let model = DecisionTreeModel::new(tree.nodes, self.data_task());
        if let Some(dir) = &self.cfg.model_dir {
            // Flush the finished tree immediately (paper §III); failures are
            // reported but do not abort training.
            let path = dir.join(format!("tree_{}.json", tree_id.0));
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, model.to_json()))
            {
                eprintln!("treeserver: failed to flush {}: {e}", path.display());
            }
        }
        let job = reg.jobs.get_mut(&tree.job).expect("job exists");
        job.models[tree.index] = Some(model);
        job.done += 1;
        if job.done == job.total {
            let job = reg.jobs.remove(&tree.job).expect("just present");
            let models: Vec<DecisionTreeModel> = job
                .models
                .into_iter()
                .map(|m| m.expect("all trees done"))
                .collect();
            let result = match job.kind {
                JobKind::DecisionTree => {
                    JobResult::Tree(models.into_iter().next().expect("one tree"))
                }
                JobKind::RandomForest { .. } | JobKind::ExtraTrees { .. } => {
                    JobResult::Forest(ts_tree::ForestModel::new(models, self.data_task()))
                }
            };
            // Record before notifying: `Cluster::wait` returns on the send,
            // and observers may snapshot the rings immediately after.
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::SpanClose { span: job.span }
            );
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::JobFinished { job: tree.job }
            );
            #[cfg(feature = "obs")]
            if let Some(rec) = self.fabric.stats().recorder() {
                if rec.log_latency_feed() {
                    let feed = rec.latency_feed().snapshot();
                    eprintln!(
                        "treeserver: job {} latency feed: column p50={}ns p95={}ns (n={}), \
                         subtree p50={}ns p95={}ns (n={})",
                        tree.job,
                        feed.column.p50_ns,
                        feed.column.p95_ns,
                        feed.column.count,
                        feed.subtree.p50_ns,
                        feed.subtree.p95_ns,
                        feed.subtree.count,
                    );
                }
            }
            let _ = job.notify.send(result);
        }
    }

    // ------------------------------------------------------------------
    // Fault recovery (paper §IV "Fault Tolerance" / Appendix E).
    // ------------------------------------------------------------------

    /// Runs crash recovery for `dead`; if recovery is impossible, fails
    /// every pending (and future) job with the structured reason instead of
    /// panicking. Safe to call from both the heartbeat detector and
    /// `Cluster::kill_worker` — duplicate declarations are ignored.
    pub fn recover_or_degrade(&self, dead: NodeId) {
        if let Err(e) = self.handle_worker_crash(dead) {
            self.fail_all_jobs(e);
        }
    }

    /// Handles a worker crash: re-replicates its columns from surviving
    /// replicas and restarts every in-flight tree (completed trees are
    /// unaffected). See DESIGN.md §7 for the tree-granularity note.
    ///
    /// Errors when no trainable cluster can be restored (last replica of a
    /// column died, no replication target, or no workers left); the caller
    /// should then fail all jobs — see [`Master::recover_or_degrade`].
    pub fn handle_worker_crash(&self, dead: NodeId) -> Result<(), RecoveryError> {
        // Deduplicate: the detector and an explicit kill may both declare
        // the same worker dead; a degraded cluster has nothing to recover.
        if self.degraded.lock().is_some() || !self.workers.lock().contains(&dead) {
            return Ok(());
        }
        obs_event!(
            self.fabric.stats(),
            0,
            ts_obs::Event::WorkerCrashed { node: dead as u32 }
        );
        // 1. Membership: drop the worker from scheduling, liveness tracking
        // and the reliable fabric's retransmission table.
        self.workers.lock().retain(|&w| w != dead);
        self.last_hb.lock().remove(&dead);
        self.fabric.forget_destination(dead);
        // Elastic migrations headed for the dead worker will never land.
        self.migrations.lock().retain(|&(_, to), _| to != dead);
        let live = self.workers.lock().clone();
        if live.is_empty() {
            return Err(RecoveryError::NoWorkersLeft { dead });
        }

        // 2. Column re-replication planning. Columns down to a single
        // surviving replica are scheduled first — another crash would lose
        // them for good.
        let mut transfer: HashMap<NodeId, (NodeId, Vec<usize>)> = HashMap::new();
        {
            let mut colmap = self.colmap.lock();
            let mut lost = colmap.remove_worker(dead)?;
            lost.sort_by_key(|&a| (colmap.holders(a).len(), a));
            let mut load: HashMap<NodeId, usize> = live
                .iter()
                .map(|&w| (w, colmap.columns_of(w).len()))
                .collect();
            for attr in lost {
                let source = colmap.holders(attr)[0];
                let Some(&target) = live
                    .iter()
                    .filter(|&&w| !colmap.holders(attr).contains(&w))
                    .min_by_key(|&&w| (load[&w], w))
                else {
                    return Err(RecoveryError::NoReplicationTarget { attr });
                };
                *load.get_mut(&target).expect("live") += 1;
                transfer
                    .entry(source)
                    .or_insert((target, Vec::new()))
                    .1
                    .push(attr);
                // The holder list is updated when ReplicateDone arrives.
            }
        }

        // 3. Revoke all in-flight trees and restart them under fresh ids.
        let mut revoked: Vec<TreeId> = Vec::new();
        let mut new_roots: Vec<PlanDesc> = Vec::new();
        {
            let mut reg = self.registry.lock();
            let old: Vec<TreeId> = reg.active.keys().copied().collect();
            for tid in old {
                let t = reg.active.remove(&tid).expect("present");
                revoked.push(tid);
                let new_id = TreeId(reg.next_tree);
                reg.next_tree += 1;
                let trace = t.trace;
                reg.active.insert(
                    new_id,
                    ActiveTree {
                        job: t.job,
                        index: t.index,
                        trace,
                        spec: t.spec,
                        nodes: vec![Node::leaf(self.placeholder_pred(), 0, 0)],
                        pending: 1,
                    },
                );
                new_roots.push(PlanDesc {
                    task: self.new_task(),
                    tree: new_id,
                    node: 0,
                    parent: ParentRef::Root,
                    n_rows: self.n_rows as u64,
                    depth: 0,
                    path: 1,
                    trace,
                    span: self.new_span(),
                });
            }
        }
        self.ttask.lock().clear();
        self.mwork.lock().clear();
        // Reset the queue wholesale — deques, hunger, and the per-worker
        // outstanding counts (results for revoked tasks must not undercount
        // the fresh dispatches) — and install the surviving roster.
        self.plans.clear();
        self.plans.set_workers(&live);
        for root in new_roots {
            // Restarted roots hang off the job span again, like the
            // originals; the revoked subtrees' spans simply never close.
            obs_event!(
                self.fabric.stats(),
                0,
                ts_obs::Event::SpanOpen {
                    trace: root.trace,
                    span: root.span,
                    parent: root.trace,
                    kind: ts_obs::SpanKind::Plan,
                    subject: root.task.0,
                }
            );
            self.enqueue_plan(root);
        }

        // 4. Notify workers.
        for &w in &live {
            for &tid in &revoked {
                let _ = self.fabric.send(0, w, TaskMsg::RevokeTree { tree: tid });
            }
        }
        for (source, (target, attrs)) in transfer {
            let _ = self.fabric.send(
                0,
                source,
                TaskMsg::ReplicateTo {
                    attrs,
                    to: target,
                    ctx: TraceCtx::NONE,
                },
            );
        }
        Ok(())
    }

    /// Graceful degradation: records the terminal reason, clears all
    /// scheduling state, and fails every pending job (active and queued)
    /// with a diagnosable report. Subsequent submits fail immediately.
    fn fail_all_jobs(&self, err: RecoveryError) {
        eprintln!("treeserver: cluster degraded, failing all jobs: {err}");
        *self.degraded.lock() = Some(err.clone());
        let jobs: Vec<JobState> = {
            let mut reg = self.registry.lock();
            reg.active.clear();
            reg.queue.clear();
            reg.jobs.drain().map(|(_, j)| j).collect()
        };
        self.ttask.lock().clear();
        self.mwork.lock().clear();
        self.plans.clear();
        for j in jobs {
            let _ = j.notify.send(JobResult::Failed(err.clone()));
        }
    }

    /// The degradation reason, if recovery has failed.
    pub fn degraded_reason(&self) -> Option<RecoveryError> {
        self.degraded.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_netsim::{Fabric, NetModel, NetStats};

    fn test_master(
        n_rows: usize,
        tau_dfs: u64,
    ) -> (Arc<Master>, Vec<ts_netsim::FabricReceiver<TaskMsg>>) {
        let stats = NetStats::new(3);
        let (fabric, rxs) = Fabric::new(3, NetModel::instant(), stats);
        let cfg = ClusterConfig {
            n_workers: 2,
            tau_dfs,
            ..ClusterConfig::default()
        };
        let colmap = crate::assign::ColumnMap::round_robin(4, 2, 2);
        let m = Master::new(
            cfg,
            n_rows,
            4,
            Task::Classification { n_classes: 2 },
            colmap,
            fabric,
        );
        m.init_load_matrix(3);
        (m, rxs)
    }

    #[test]
    fn enqueue_respects_hybrid_bfs_dfs_rule() {
        // Fig. 5: |Dx| > tau_dfs appends (breadth-first tail), smaller
        // pushes to the head (depth-first).
        let (m, _rxs) = test_master(1_000, 100);
        let mk = |task: u64, n_rows: u64| PlanDesc {
            task: TaskId(task),
            tree: TreeId(0),
            node: 0,
            parent: ParentRef::Root,
            n_rows,
            depth: 0,
            path: 1,
            trace: 0,
            span: 0,
        };
        m.enqueue_plan(mk(1, 500)); // big -> tail
        m.enqueue_plan(mk(2, 600)); // big -> tail (after 1)
        m.enqueue_plan(mk(3, 50)); // small -> head
        m.enqueue_plan(mk(4, 20)); // small -> head (before 3)
        let mut order: Vec<u64> = Vec::new();
        while let Some((p, steal)) = m.plans.try_next(&[]) {
            assert!(steal.is_none(), "single mode never steals");
            order.push(p.task.0);
        }
        assert_eq!(order, vec![4, 3, 1, 2]);
    }

    #[test]
    fn submit_expands_trees_into_the_queue() {
        let (m, _rxs) = test_master(1_000, 100);
        let (h1, _rx1) = m.submit(JobSpec::random_forest(
            Task::Classification { n_classes: 2 },
            5,
        ));
        let (h2, _rx2) = m.submit(JobSpec::decision_tree(Task::Classification {
            n_classes: 2,
        }));
        assert_ne!(h1, h2);
        let reg = m.registry.lock();
        assert_eq!(reg.queue.len(), 6, "5 forest trees + 1 decision tree");
        assert_eq!(reg.jobs.len(), 2);
    }

    #[test]
    fn admit_respects_npool() {
        let (m, _rxs) = test_master(10, 1_000);
        {
            let mut reg = m.registry.lock();
            reg.jobs.insert(
                0,
                JobState {
                    total: 10,
                    done: 0,
                    models: vec![None; 10],
                    kind: JobKind::RandomForest {
                        n_trees: 10,
                        col_fraction: -1.0,
                    },
                    notify: tschan::bounded(1).0,
                    span: 0,
                },
            );
            for index in 0..10 {
                reg.queue.push_back(QueuedTree {
                    job: 0,
                    index,
                    spec: JobSpec::random_forest(Task::Classification { n_classes: 2 }, 10)
                        .expand(4)
                        .remove(index),
                    trace: 0,
                });
            }
        }
        // Shrink the pool and admit.
        let mut m2 = Arc::try_unwrap(m).ok().expect("sole owner");
        m2.cfg.n_pool = 3;
        let m = Arc::new(m2);
        m.admit_trees();
        let reg = m.registry.lock();
        assert_eq!(reg.active.len(), 3, "pool capped at 3");
        assert_eq!(reg.queue.len(), 7);
        drop(reg);
        assert_eq!(m.plans.len(), 3, "one root plan per admitted tree");
    }

    #[test]
    fn mix_seed_is_stable_and_spread() {
        let a = mix_seed(1, 1);
        let b = mix_seed(1, 2);
        let c = mix_seed(2, 1);
        assert_eq!(a, mix_seed(1, 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn placeholder_matches_task_kind() {
        let (m, _rxs) = test_master(10, 100);
        match m.placeholder_pred() {
            Prediction::Class { pmf, .. } => assert_eq!(pmf.len(), 2),
            Prediction::Real(_) => panic!("classification master"),
        }
    }

    #[test]
    fn heartbeat_refreshes_lease_and_fresh_workers_are_not_suspected() {
        let (m, _rxs) = test_master(10, 100);
        m.on_heartbeat(1);
        m.on_heartbeat(2);
        m.check_heartbeats();
        assert_eq!(m.live_workers(), vec![1, 2]);
        assert!(m.degraded.lock().is_none());
    }

    #[test]
    fn silent_worker_is_suspected_and_impossible_recovery_degrades_cleanly() {
        // Runs on a virtual clock: the 10 ms of silence is an `advance`,
        // not a real sleep, so the detector's verdict is deterministic no
        // matter how heavily the test host is loaded.
        let stats = NetStats::new(3);
        let (fabric, _rxs) = Fabric::new_faulty(
            3,
            NetModel::instant(),
            stats,
            None,
            ts_netsim::SimClock::virtual_at(0),
        );
        let cfg = ClusterConfig {
            n_workers: 2,
            heartbeat_interval: std::time::Duration::from_millis(1),
            heartbeat_miss_threshold: 3,
            ..ClusterConfig::default()
        };
        let colmap = crate::assign::ColumnMap::round_robin(4, 2, 2);
        let m = Master::new(
            cfg,
            1_000,
            4,
            Task::Classification { n_classes: 2 },
            colmap,
            fabric,
        );
        m.init_load_matrix(3);
        let (_h, rx) = m.submit(JobSpec::decision_tree(Task::Classification {
            n_classes: 2,
        }));
        // Worker 2 keeps beating; worker 1 goes silent past the 3 ms lease.
        m.fabric
            .clock()
            .advance(std::time::Duration::from_millis(10));
        m.on_heartbeat(2);
        m.check_heartbeats();
        // 2 workers at replication 2: every live worker already holds the
        // dead worker's columns, so no re-replication target exists and the
        // job must fail with the structured reason rather than panic.
        assert!(!m.live_workers().contains(&1), "worker 1 declared dead");
        let res = rx.recv().expect("failure notification");
        assert!(
            matches!(
                res,
                JobResult::Failed(RecoveryError::NoReplicationTarget { .. })
            ),
            "unexpected result: {res:?}"
        );
        assert!(m.degraded_reason().is_some());
        // Later submissions fail immediately with the same reason.
        let (_h2, rx2) = m.submit(JobSpec::decision_tree(Task::Classification {
            n_classes: 2,
        }));
        assert!(matches!(
            rx2.recv().expect("immediate failure"),
            JobResult::Failed(_)
        ));
    }

    #[test]
    fn stolen_plan_sends_donate_to_the_thief_before_any_plan_traffic() {
        // Steal-mode master over 3 workers. A child plan parked on worker
        // 1's deque is stolen by hungry worker 2; the thief's first frame
        // must be the Donate carrying the stolen task.
        let stats = NetStats::new(4);
        let (fabric, rxs) = Fabric::new(4, NetModel::instant(), stats);
        let cfg = ClusterConfig {
            n_workers: 3,
            steal: true,
            ..ClusterConfig::default()
        };
        let colmap = crate::assign::ColumnMap::round_robin(4, 3, 2);
        let m = Master::new(
            cfg,
            1_000,
            4,
            Task::Classification { n_classes: 2 },
            colmap,
            fabric,
        );
        m.init_load_matrix(4);
        let (_h, _rx) = m.submit(JobSpec::decision_tree(Task::Classification {
            n_classes: 2,
        }));
        m.admit_trees();
        // Drain the root from the global deque: nobody is hungry yet, so
        // this is a plain pop, not a steal.
        let (root, steal) = m.plans.try_next(&[]).expect("root plan queued");
        assert!(steal.is_none(), "global pop is not a steal");
        // Park a child on worker 1's deque, then let worker 2 go hungry.
        m.enqueue_plan(PlanDesc {
            task: TaskId(99),
            tree: root.tree,
            node: 0,
            parent: ParentRef::Node {
                worker: 1,
                task: root.task,
                side: Side::Left,
            },
            n_rows: 50,
            depth: 1,
            path: 2,
            trace: root.trace,
            span: 0,
        });
        m.on_steal_request(2);
        let (stolen, steal) = m.plans.try_next(&[]).expect("stolen child");
        assert_eq!(stolen.task, TaskId(99));
        assert_eq!(
            steal,
            Some(StealInfo {
                victim: 1,
                thief: 2
            })
        );
        m.assign_plan(stolen, steal);
        let first = rxs[2].try_recv().expect("thief was messaged");
        match first {
            TaskMsg::Donate { task, victim, .. } => {
                assert_eq!(task, TaskId(99));
                assert_eq!(victim, 1);
            }
            other => panic!("thief's first frame was {other:?}, not Donate"),
        }
    }

    #[test]
    fn duplicate_crash_declarations_are_ignored() {
        let (m, _rxs) = test_master(10, 100);
        // First declaration fails recovery (no replication target) and
        // degrades; the second must be a no-op, not a second degradation.
        m.recover_or_degrade(1);
        let first = m.degraded_reason();
        assert!(first.is_some());
        m.recover_or_degrade(1);
        m.recover_or_degrade(2);
        assert_eq!(m.degraded_reason(), first);
    }
}
