//! Structured recovery errors: graceful degradation instead of panics.
//!
//! When a worker dies, the master tries to repair the cluster (§VI:
//! revoke in-flight trees, re-replicate the dead worker's columns,
//! restart). Repair can be *impossible* — the dead worker held the last
//! replica of a column, no live worker can receive a new replica, or no
//! workers remain at all. Those used to be `panic!`/`assert!` sites deep
//! inside the master; they now surface as a [`RecoveryError`] that fails
//! every pending job cleanly with a diagnosable report, leaving the
//! process (and any co-hosted clusters) alive.
//!
//! A *graceful* departure (`ts-elastic` drain after an announced
//! preemption, see `docs/ELASTICITY.md`) never constructs these errors:
//! the leaver hands its columns off before it goes, so there is nothing to
//! recover. Only a drain that blows its grace window escalates into the
//! crash path — and can then fail with one of these.

use std::fmt;
use ts_netsim::NodeId;

/// Column index into the schema (same index space as `ColumnMap`).
pub type AttrId = usize;

/// Why crash recovery could not restore a trainable cluster.
///
/// Returned by `Master::handle_worker_crash` and carried to callers via
/// `JobResult::Failed`. Every variant names the resource that was lost so
/// the report is actionable (raise `replication`, add workers, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Worker `dead` held the *last* replica of column `attr`: the data is
    /// gone and no re-replication source exists. Raising
    /// `ClusterConfig::replication` prevents this.
    ColumnLost {
        /// The column whose final replica vanished.
        attr: AttrId,
        /// The worker whose loss took it.
        dead: NodeId,
    },
    /// The crashed worker was the last live worker; there is nobody left
    /// to run tasks on.
    NoWorkersLeft {
        /// The final worker to go.
        dead: NodeId,
    },
    /// A column needs a new replica but every live worker already holds
    /// it (replication >= live workers after the crash).
    NoReplicationTarget {
        /// The column that could not be re-replicated.
        attr: AttrId,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RecoveryError::ColumnLost { attr, dead } => write!(
                f,
                "column {attr} lost its last replica when worker {dead} died \
                 (raise replication to survive this failure)"
            ),
            RecoveryError::NoWorkersLeft { dead } => {
                write!(f, "worker {dead} was the last live worker; no workers left")
            }
            RecoveryError::NoReplicationTarget { attr } => write!(
                f,
                "no live worker can accept a new replica of column {attr} \
                 (replication exceeds live workers)"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_lost_resource() {
        let e = RecoveryError::ColumnLost { attr: 7, dead: 3 };
        let s = e.to_string();
        assert!(s.contains("column 7"), "{s}");
        assert!(s.contains("worker 3"), "{s}");
        assert!(RecoveryError::NoWorkersLeft { dead: 1 }
            .to_string()
            .contains("no workers left"));
        assert!(RecoveryError::NoReplicationTarget { attr: 2 }
            .to_string()
            .contains("column 2"));
    }

    #[test]
    fn error_is_cloneable_and_comparable() {
        let e = RecoveryError::NoWorkersLeft { dead: 4 };
        assert_eq!(e.clone(), e);
        let _: &dyn std::error::Error = &e;
    }
}
