//! Job specifications and results.
//!
//! Users submit *jobs* to the master, which "disassembles each tree model
//! into individual decision trees for training" and reassembles the results
//! (paper §III, Fig. 2). A job is one model: a single decision tree, a
//! bagged forest (random forest / extra-trees), or a boosted ensemble whose
//! stages depend on each other.

use crate::messages::TreeParams;
use ts_datatable::Task;
use ts_splits::Impurity;
use ts_tree::{DecisionTreeModel, ForestModel};
use tsrand::rngs::StdRng;
use tsrand::seq::SliceRandom;
use tsrand::SeedableRng;

/// Handle returned by `Cluster::submit`; pass to `Cluster::wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobHandle(pub(crate) u64);

impl JobHandle {
    /// The job id, as it appears in observability output: `JobSubmitted` /
    /// `JobFinished` events, the job span's `subject`, and
    /// `TraceReport::job`. Use it to correlate a submitted job with its
    /// trace.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// What kind of model a job trains.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// One decision tree over all columns (`|C| = |A|`).
    DecisionTree,
    /// A bagged random forest: `n_trees` trees, each over an independently
    /// sampled column subset of `col_fraction * m` columns (the paper uses
    /// `|C| = sqrt(|A|)` by default — see [`JobSpec::random_forest`]).
    RandomForest {
        /// Number of trees.
        n_trees: usize,
        /// Columns per tree as a fraction of `m` (clamped to at least 1
        /// column).
        col_fraction: f64,
    },
    /// A forest of completely-random trees (Appendix F).
    ExtraTrees {
        /// Number of trees.
        n_trees: usize,
    },
}

/// A model-training job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The model kind.
    pub kind: JobKind,
    /// Impurity function (defaults by task in the constructors).
    pub impurity: Impurity,
    /// Maximum tree depth.
    pub dmax: u32,
    /// Leaf threshold `τ_leaf`.
    pub tau_leaf: u64,
    /// Seed driving column sampling and extra-trees randomness.
    pub seed: u64,
}

impl JobSpec {
    /// A single decision tree with the paper's defaults (`dmax = 10`,
    /// `τ_leaf = 1`, Gini / variance by task).
    pub fn decision_tree(task: Task) -> JobSpec {
        JobSpec {
            kind: JobKind::DecisionTree,
            impurity: default_impurity(task),
            dmax: 10,
            tau_leaf: 1,
            seed: 0,
        }
    }

    /// A random forest with `|C| = sqrt(|A|)` per tree (the paper's forest
    /// default).
    pub fn random_forest(task: Task, n_trees: usize) -> JobSpec {
        JobSpec {
            kind: JobKind::RandomForest {
                n_trees,
                col_fraction: -1.0,
            }, // sqrt sentinel
            impurity: default_impurity(task),
            dmax: 10,
            tau_leaf: 1,
            seed: 0,
        }
    }

    /// A random forest whose per-tree column count is `fraction * m`
    /// (Table VIII(c)–(d) sweeps this ratio).
    pub fn random_forest_with_fraction(task: Task, n_trees: usize, fraction: f64) -> JobSpec {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0,1]"
        );
        JobSpec {
            kind: JobKind::RandomForest {
                n_trees,
                col_fraction: fraction,
            },
            impurity: default_impurity(task),
            dmax: 10,
            tau_leaf: 1,
            seed: 0,
        }
    }

    /// A forest of completely-random trees.
    pub fn extra_trees(task: Task, n_trees: usize) -> JobSpec {
        JobSpec {
            kind: JobKind::ExtraTrees { n_trees },
            impurity: default_impurity(task),
            dmax: 10,
            tau_leaf: 1,
            seed: 0,
        }
    }

    /// Builder: overrides the maximum depth.
    pub fn with_dmax(mut self, dmax: u32) -> JobSpec {
        self.dmax = dmax;
        self
    }

    /// Builder: overrides the leaf threshold.
    pub fn with_tau_leaf(mut self, tau_leaf: u64) -> JobSpec {
        self.tau_leaf = tau_leaf;
        self
    }

    /// Builder: overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> JobSpec {
        self.seed = seed;
        self
    }

    /// Builder: overrides the impurity.
    pub fn with_impurity(mut self, impurity: Impurity) -> JobSpec {
        self.impurity = impurity;
        self
    }

    /// Number of trees this job trains.
    pub fn n_trees(&self) -> usize {
        match self.kind {
            JobKind::DecisionTree => 1,
            JobKind::RandomForest { n_trees, .. } | JobKind::ExtraTrees { n_trees } => n_trees,
        }
    }

    /// Expands the job into per-tree specifications: the candidate column
    /// set (sampled per tree, as the paper describes for random forests) and
    /// the training parameters.
    pub fn expand(&self, n_attrs: usize) -> Vec<TreeSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let all: Vec<usize> = (0..n_attrs).collect();
        (0..self.n_trees())
            .map(|i| {
                let (candidates, extra) = match self.kind {
                    JobKind::DecisionTree => (all.clone(), false),
                    JobKind::RandomForest { col_fraction, .. } => {
                        let count = if col_fraction < 0.0 {
                            (n_attrs as f64).sqrt().round() as usize
                        } else {
                            (col_fraction * n_attrs as f64).round() as usize
                        }
                        .clamp(1, n_attrs);
                        let mut cols = all.clone();
                        cols.shuffle(&mut rng);
                        let mut c: Vec<usize> = cols[..count].to_vec();
                        c.sort_unstable();
                        (c, false)
                    }
                    // Extra-trees resample from *all* attributes per node.
                    JobKind::ExtraTrees { .. } => (all.clone(), true),
                };
                TreeSpec {
                    candidates,
                    params: TreeParams {
                        impurity: self.impurity,
                        dmax: self.dmax,
                        tau_leaf: self.tau_leaf,
                        extra_trees: extra,
                    },
                    seed: self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                }
            })
            .collect()
    }
}

fn default_impurity(task: Task) -> Impurity {
    if task.is_classification() {
        Impurity::Gini
    } else {
        Impurity::Variance
    }
}

/// One tree's worth of work inside a job.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSpec {
    /// Candidate columns `C` for every node of this tree.
    pub candidates: Vec<usize>,
    /// Training parameters.
    pub params: TreeParams,
    /// Per-tree seed (extra-trees randomness).
    pub seed: u64,
}

/// A completed job's model — or a structured failure report when the
/// cluster degraded past the point of being able to train (graceful
/// degradation instead of a process abort).
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// A single tree.
    Tree(DecisionTreeModel),
    /// A bagged forest.
    Forest(ForestModel),
    /// The job failed cleanly: crash recovery was impossible (e.g. the last
    /// replica of a column died) and the master failed all pending jobs
    /// with the diagnosable reason.
    Failed(crate::recovery::RecoveryError),
}

impl JobResult {
    /// The single tree; panics for forests and failed jobs.
    pub fn into_tree(self) -> DecisionTreeModel {
        match self {
            JobResult::Tree(t) => t,
            JobResult::Forest(_) => panic!("job produced a forest, not a tree"),
            JobResult::Failed(e) => panic!("job failed: {e}"),
        }
    }

    /// The forest; a single tree is wrapped into a 1-tree forest. Panics
    /// for failed jobs.
    pub fn into_forest(self) -> ForestModel {
        match self {
            JobResult::Forest(f) => f,
            JobResult::Tree(t) => {
                let task = t.task;
                ForestModel::new(vec![t], task)
            }
            JobResult::Failed(e) => panic!("job failed: {e}"),
        }
    }

    /// The failure reason, if the job failed.
    pub fn failure(&self) -> Option<&crate::recovery::RecoveryError> {
        match self {
            JobResult::Failed(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_tree_uses_all_columns() {
        let spec = JobSpec::decision_tree(Task::Classification { n_classes: 2 });
        let trees = spec.expand(7);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].candidates, (0..7).collect::<Vec<_>>());
        assert!(!trees[0].params.extra_trees);
        assert_eq!(trees[0].params.impurity, Impurity::Gini);
    }

    #[test]
    fn random_forest_samples_sqrt_columns() {
        let spec = JobSpec::random_forest(Task::Classification { n_classes: 2 }, 10);
        let trees = spec.expand(100);
        assert_eq!(trees.len(), 10);
        for t in &trees {
            assert_eq!(t.candidates.len(), 10, "sqrt(100) columns");
            assert!(t.candidates.windows(2).all(|w| w[0] < w[1]));
        }
        // Subsets should differ across trees (with overwhelming probability).
        assert!(trees.windows(2).any(|w| w[0].candidates != w[1].candidates));
    }

    #[test]
    fn random_forest_fraction() {
        let spec = JobSpec::random_forest_with_fraction(Task::Regression, 3, 0.4);
        let trees = spec.expand(10);
        assert!(trees.iter().all(|t| t.candidates.len() == 4));
        assert_eq!(trees[0].params.impurity, Impurity::Variance);
    }

    #[test]
    fn extra_trees_use_all_columns_per_node() {
        let spec = JobSpec::extra_trees(Task::Classification { n_classes: 3 }, 2);
        let trees = spec.expand(5);
        assert!(trees.iter().all(|t| t.params.extra_trees));
        assert!(trees.iter().all(|t| t.candidates.len() == 5));
        assert_ne!(trees[0].seed, trees[1].seed);
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = JobSpec::random_forest(Task::Regression, 5).with_seed(9);
        assert_eq!(spec.expand(30), spec.expand(30));
    }

    #[test]
    fn builders_override_fields() {
        let spec = JobSpec::decision_tree(Task::Regression)
            .with_dmax(4)
            .with_tau_leaf(50)
            .with_impurity(Impurity::Variance)
            .with_seed(11);
        assert_eq!(spec.dmax, 4);
        assert_eq!(spec.tau_leaf, 50);
        assert_eq!(spec.seed, 11);
    }

    #[test]
    fn job_result_conversions() {
        use ts_tree::{Node, Prediction};
        let t = DecisionTreeModel::new(
            vec![Node::leaf(Prediction::Real(1.0), 1, 0)],
            Task::Regression,
        );
        let f = JobResult::Tree(t.clone()).into_forest();
        assert_eq!(f.n_trees(), 1);
        assert_eq!(JobResult::Tree(t.clone()).into_tree(), t);
    }

    #[test]
    #[should_panic(expected = "forest, not a tree")]
    fn forest_into_tree_panics() {
        use ts_tree::{Node, Prediction};
        let t = DecisionTreeModel::new(
            vec![Node::leaf(Prediction::Real(1.0), 1, 0)],
            Task::Regression,
        );
        let f = ForestModel::new(vec![t], Task::Regression);
        JobResult::Forest(f).into_tree();
    }
}
