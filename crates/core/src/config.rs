//! Cluster and system configuration.

use std::time::Duration;
use ts_netsim::{NetModel, RetryConfig};

/// Split-finding strategy of the distributed engine (`docs/HISTOGRAM.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Splitter {
    /// Exact sorted-scan kernels: every shard returns its full best split
    /// and the master folds the winner. Paper-exact; the accuracy oracle.
    Exact,
    /// Quantized histogram path: columns are pre-binned at load into at
    /// most `bins` equi-depth bins, shards score candidates on per-bin
    /// aggregates and nominate only their `vote_k` best `(attr, gain)`
    /// summaries; the master elects a winner by PV-Tree-style voting and
    /// fetches the one full split it needs.
    Histogram {
        /// Maximum bins per numeric column (including the implicit
        /// overflow bin); 2..=65535.
        bins: usize,
        /// Candidate summaries each shard nominates per task (>= 1).
        vote_k: usize,
    },
}

impl Splitter {
    /// The histogram bin budget, when the histogram path is selected.
    pub fn hist_bins(&self) -> Option<usize> {
        match *self {
            Splitter::Exact => None,
            Splitter::Histogram { bins, .. } => Some(bins),
        }
    }
}

/// Configuration of a TreeServer cluster.
///
/// Defaults follow the paper's tuned system parameters (§III):
/// `τ_D = 10,000`, `τ_dfs = 80,000`, `n_pool = 200`, column replication
/// `k = 2`, and the experimental setup of §VIII (10 compers per worker).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker machines (the paper uses up to 15; master is extra).
    pub n_workers: usize,
    /// Computing threads (*compers*) per worker.
    pub compers_per_worker: usize,
    /// Column replication factor `k` (each column lives on `k` workers).
    pub replication: usize,
    /// Subtree-task threshold `τ_D`: tasks with `|Dx| <= τ_D` build the
    /// whole subtree on one worker.
    pub tau_d: u64,
    /// Depth-first threshold `τ_dfs`: tasks with `|Dx| <= τ_dfs` go to the
    /// head of `Bplan` (depth-first), larger ones to the tail (breadth-first).
    pub tau_dfs: u64,
    /// Maximum number of trees under construction at any time (`n_pool`).
    pub n_pool: usize,
    /// The simulated link model.
    pub net: NetModel,
    /// Idle-poll sleep of the master's main thread (the paper uses 100 µs).
    pub poll_sleep: Duration,
    /// Directory the master flushes completed trees into (one JSON file per
    /// tree, written the moment the tree's last task result arrives — the
    /// paper's "a tree is flushed to disk by the master as soon as it
    /// receives the results from the tree's last task"). `None` disables
    /// flushing.
    pub model_dir: Option<std::path::PathBuf>,
    /// Modeled compute cost in nanoseconds per work unit (0 = off).
    ///
    /// A work unit is one row-attribute touch (`|Ix| * |C'|` for a
    /// column-task shard, `|Ix| * |C| * log|Ix|` for a subtree build — the
    /// same units as the §VI cost model). Compers sleep `units * ns` around
    /// the real computation. On hosts with fewer cores than the simulated
    /// cluster (this repo's benches run on a single core), the sleeps stand
    /// in for compute: they overlap across threads exactly as real compute
    /// overlaps across real cores, so scalability shapes survive the
    /// substitution (DESIGN.md §2).
    pub work_ns_per_unit: u64,
    /// Seeded fault injection (see `docs/TESTING.md`). `None` runs a
    /// fault-free cluster. With a plan that drops/delays/duplicates
    /// messages, both fabrics run the reliable (acked + retried) protocol,
    /// so training still terminates with the fault-free model. A
    /// `with_crash_at_delegation` trigger makes the master silence a key
    /// worker right after the n-th subtree delegation cluster-wide; the
    /// heartbeat detector then discovers the crash and runs recovery.
    pub faults: Option<ts_netsim::FaultPlan>,
    /// Retransmission timing of the reliable fabric (only used when
    /// `faults` injects message-level faults).
    pub retry: RetryConfig,
    /// How often each worker sends a liveness heartbeat to the master.
    pub heartbeat_interval: Duration,
    /// Consecutive missed heartbeat intervals before the master declares a
    /// worker dead and runs crash recovery. The lease is
    /// `heartbeat_interval * heartbeat_miss_threshold`; defaults are
    /// generous (~500 ms) so loaded CI machines do not false-positive.
    /// False positives are survivable anyway — recovery preserves the
    /// model — but cost a round of re-replication.
    pub heartbeat_miss_threshold: u32,
    /// Observability: task-lifecycle tracing and metrics (see
    /// `docs/OBSERVABILITY.md`). Off by default; `Cluster::launch` builds a
    /// recorder only when `obs.enabled` is set *and* the `obs` feature is
    /// compiled in (the field itself is always present, so configs are
    /// feature-independent).
    pub obs: ts_obs::ObsConfig,
    /// Work-stealing scheduler (`ts-sched`, see `docs/SCHEDULING.md`): the
    /// master keeps one plan deque per worker (keyed by the parent worker
    /// of each plan), bounds in-flight dispatch per worker so column-task
    /// communication overlaps subtree compute, and idle workers steal from
    /// the tail of the most-loaded peer's deque. Off by default: the
    /// single-deque scheduler is the paper-exact seed behaviour, and
    /// `sched_equiv` proves both produce byte-identical models.
    pub steal: bool,
    /// Per-worker in-flight plan cap in stealing mode (0 = auto:
    /// `2 * compers_per_worker + 2` — enough queued work to keep every
    /// comper busy while the next tasks' column/`Ix` fetches are in
    /// flight). Ignored when `steal` is off.
    pub steal_capacity: usize,
    /// Adapt `τ_D`/`τ_dfs` at runtime from the rolling p50/p95 column- vs
    /// subtree-task latencies in the obs `LatencyFeed` (requires
    /// `obs.enabled`; without a recorder the thresholds silently stay at
    /// the static values). The static `tau_d`/`tau_dfs` remain the
    /// starting point, fallback, and clamp anchors (`[τ/4, 4τ]`).
    pub adaptive_tau: bool,
    /// Per-worker compute-speed heterogeneity: multiplier applied to
    /// `work_ns_per_unit` for each worker (index 0 = worker 1). `> 1.0`
    /// slows a worker down — the skewed-load scenario the stealing
    /// scheduler rebalances. Empty = homogeneous.
    pub work_scale: Vec<f64>,
    /// Spare worker slots provisioned for mid-training joins (`ts-elastic`,
    /// see `docs/ELASTICITY.md`). The fabric, load matrix and recorder are
    /// sized for `n_workers + join_capacity` machines at launch; joiners
    /// occupy the spare node ids `n_workers+1 ..= n_workers+join_capacity`
    /// and enter via the `Hello`/`Welcome` handshake
    /// (`Cluster::join_worker`). 0 = a fixed-size cluster. A fault plan
    /// with `with_worker_join` raises this implicitly at launch.
    pub join_capacity: usize,
    /// Split-finding strategy: exact sorted-scan kernels (the seed
    /// behaviour and accuracy oracle) or the quantized histogram path with
    /// top-k column voting (`docs/HISTOGRAM.md`). Subtree tasks and
    /// extra-trees sampling always use the exact kernels regardless.
    pub splitter: Splitter,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_workers: 4,
            compers_per_worker: 2,
            replication: 2,
            tau_d: 10_000,
            tau_dfs: 80_000,
            n_pool: 200,
            net: NetModel::instant(),
            poll_sleep: Duration::from_micros(100),
            model_dir: None,
            work_ns_per_unit: 0,
            faults: None,
            retry: RetryConfig::default(),
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_miss_threshold: 25,
            obs: ts_obs::ObsConfig::default(),
            steal: false,
            steal_capacity: 0,
            adaptive_tau: false,
            work_scale: Vec::new(),
            join_capacity: 0,
            splitter: Splitter::Exact,
        }
    }
}

impl ClusterConfig {
    /// The paper's full testbed shape: 15 workers × 10 compers, 1 GigE.
    pub fn paper_testbed() -> ClusterConfig {
        ClusterConfig {
            n_workers: 15,
            compers_per_worker: 10,
            net: NetModel::gige(),
            ..Default::default()
        }
    }

    /// Validates invariants; called by `Cluster::launch`.
    pub fn validate(&self) {
        assert!(self.n_workers >= 1, "need at least one worker");
        assert!(self.compers_per_worker >= 1, "need at least one comper");
        assert!(
            (1..=self.n_workers).contains(&self.replication),
            "replication must be in 1..=n_workers"
        );
        assert!(self.n_pool >= 1, "n_pool must be at least 1");
        assert!(self.tau_d >= 1, "tau_d must be at least 1");
        assert!(
            self.heartbeat_miss_threshold >= 1,
            "heartbeat_miss_threshold must be at least 1"
        );
        assert!(
            !self.heartbeat_interval.is_zero(),
            "heartbeat_interval must be positive"
        );
        assert!(
            self.work_scale.is_empty() || self.work_scale.len() == self.n_workers,
            "work_scale must name every worker (or be empty)"
        );
        assert!(
            self.work_scale.iter().all(|&s| s > 0.0 && s.is_finite()),
            "work_scale factors must be positive and finite"
        );
        if let Splitter::Histogram { bins, vote_k } = self.splitter {
            assert!(
                (2..=65535).contains(&bins),
                "hist bins must be in 2..=65535"
            );
            assert!(vote_k >= 1, "vote_k must be at least 1");
        }
        // Joiners start empty and are topped up by migration, so the
        // replication bound stays against the *initial* worker count.
    }

    /// Total worker slots the fabric must provision: the initial roster
    /// plus spare slots for mid-training joins.
    pub fn total_worker_slots(&self) -> usize {
        self.n_workers + self.join_capacity
    }

    /// The effective per-worker in-flight plan cap in stealing mode.
    pub fn effective_steal_capacity(&self) -> usize {
        if self.steal_capacity == 0 {
            2 * self.compers_per_worker + 2
        } else {
            self.steal_capacity
        }
    }

    /// `work_ns_per_unit` for one worker, after heterogeneity scaling
    /// (`worker` is the 1-based fabric node id).
    pub fn worker_work_ns(&self, worker: usize) -> u64 {
        let scale = self
            .work_scale
            .get(worker.saturating_sub(1))
            .copied()
            .unwrap_or(1.0);
        (self.work_ns_per_unit as f64 * scale).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_thresholds() {
        let c = ClusterConfig::default();
        assert_eq!(c.tau_d, 10_000);
        assert_eq!(c.tau_dfs, 80_000);
        assert_eq!(c.n_pool, 200);
        assert_eq!(c.replication, 2);
        // The default heartbeat lease is generous: ~500 ms before a worker
        // is declared dead.
        assert!(c.heartbeat_interval * c.heartbeat_miss_threshold >= Duration::from_millis(400));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "heartbeat_miss_threshold")]
    fn zero_miss_threshold_panics() {
        ClusterConfig {
            heartbeat_miss_threshold: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterConfig::paper_testbed();
        assert_eq!(c.n_workers, 15);
        assert_eq!(c.compers_per_worker, 10);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn replication_above_workers_panics() {
        ClusterConfig {
            n_workers: 2,
            replication: 3,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn scheduler_knobs_default_off_and_cap_autosizes() {
        let c = ClusterConfig::default();
        assert!(!c.steal, "stealing must default to the seed scheduler");
        assert!(!c.adaptive_tau, "adaptive τ must default off");
        assert!(c.work_scale.is_empty());
        // Auto cap: room for every comper plus a pipelined fetch margin.
        assert_eq!(c.effective_steal_capacity(), 2 * c.compers_per_worker + 2);
        assert_eq!(
            ClusterConfig {
                steal_capacity: 7,
                ..Default::default()
            }
            .effective_steal_capacity(),
            7
        );
    }

    #[test]
    fn splitter_defaults_to_exact_and_hist_bounds_validate() {
        let c = ClusterConfig::default();
        assert_eq!(c.splitter, Splitter::Exact, "exact is the seed behaviour");
        assert_eq!(c.splitter.hist_bins(), None);
        let h = ClusterConfig {
            splitter: Splitter::Histogram {
                bins: 64,
                vote_k: 2,
            },
            ..Default::default()
        };
        h.validate();
        assert_eq!(h.splitter.hist_bins(), Some(64));
    }

    #[test]
    #[should_panic(expected = "hist bins")]
    fn single_hist_bin_panics() {
        ClusterConfig {
            splitter: Splitter::Histogram { bins: 1, vote_k: 2 },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "vote_k")]
    fn zero_vote_k_panics() {
        ClusterConfig {
            splitter: Splitter::Histogram {
                bins: 64,
                vote_k: 0,
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn work_scale_scales_per_worker() {
        let c = ClusterConfig {
            work_ns_per_unit: 100,
            work_scale: vec![4.0, 1.0, 1.0, 1.0],
            ..Default::default()
        };
        c.validate();
        assert_eq!(c.worker_work_ns(1), 400, "worker 1 is 4x slower");
        assert_eq!(c.worker_work_ns(2), 100);
        assert_eq!(c.worker_work_ns(4), 100);
    }

    #[test]
    #[should_panic(expected = "work_scale")]
    fn short_work_scale_panics() {
        ClusterConfig {
            n_workers: 4,
            work_scale: vec![1.0, 2.0],
            ..Default::default()
        }
        .validate();
    }
}
