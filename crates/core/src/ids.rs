//! Identifiers and small shared types of the engine.

use std::sync::Arc;
use ts_datatable::Column;
use ts_datatable::ValuesBuf;
use ts_netsim::NodeId;
use tsjson::{Deserialize, Serialize};

/// Globally-unique task id (`tx` in the paper). Allocated by the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// Globally-unique tree id across all jobs (`tid` in Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TreeId(pub u64);

/// Which child of a split a row set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The left child (`xl`).
    Left,
    /// The right child (`xr`).
    Right,
}

/// Where a task's row set `Ix` lives (paper §V).
///
/// The master never ships `Ix`; a task instead learns *who to ask*: the
/// delegate worker of its parent task — called the task's **parent worker** —
/// which holds the winning column and split `Ipa(x)` into `Ixl`/`Ixr`.
/// Root tasks have the implicit `Ix = 0..n` that every machine can
/// materialise locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParentRef {
    /// The tree root: `Ix` is all rows.
    Root,
    /// Ask `worker` (the delegate of task `task`) for the `side` half of its
    /// split row set.
    Node {
        /// The parent worker.
        worker: NodeId,
        /// The parent task whose delegate holds `Ipa(x)`.
        task: TaskId,
        /// Which half this task's rows are.
        side: Side,
    },
}

/// A set of row ids, possibly the implicit full range.
///
/// `All` avoids materialising (and transmitting) `0..n` for root tasks.
#[derive(Debug, Clone)]
pub enum RowSet {
    /// All rows `0..n`.
    All,
    /// An explicit sorted list of row ids, shared without copying between
    /// the task table and the delegate table.
    Ids(Arc<Vec<u32>>),
}

impl RowSet {
    /// Number of rows, given the table's total row count `n`.
    pub fn len(&self, n: usize) -> usize {
        match self {
            RowSet::All => n,
            RowSet::Ids(v) => v.len(),
        }
    }

    /// Whether the set is empty (given `n`).
    pub fn is_empty(&self, n: usize) -> bool {
        self.len(n) == 0
    }

    /// Materialises the ids (allocates for `All`).
    pub fn to_ids(&self, n: usize) -> Arc<Vec<u32>> {
        match self {
            RowSet::All => Arc::new((0..n as u32).collect()),
            RowSet::Ids(v) => Arc::clone(v),
        }
    }

    /// Gathers a column over this row set.
    pub fn gather(&self, col: &Column, n: usize) -> ValuesBuf {
        match self {
            RowSet::All => {
                debug_assert_eq!(col.len(), n);
                let all: Vec<u32> = (0..n as u32).collect();
                col.gather(&all)
            }
            RowSet::Ids(v) => col.gather(v),
        }
    }

    /// Gathers labels over this row set.
    pub fn gather_labels(&self, labels: &ts_datatable::Labels, n: usize) -> ts_datatable::Labels {
        match self {
            RowSet::All => {
                debug_assert_eq!(labels.len(), n);
                labels.clone()
            }
            RowSet::Ids(v) => labels.gather(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowset_all_materialises_range() {
        let r = RowSet::All;
        assert_eq!(r.len(5), 5);
        assert_eq!(*r.to_ids(3), vec![0, 1, 2]);
    }

    #[test]
    fn rowset_ids_shares_without_copy() {
        let ids = Arc::new(vec![2u32, 4]);
        let r = RowSet::Ids(Arc::clone(&ids));
        assert_eq!(r.len(100), 2);
        assert!(Arc::ptr_eq(&r.to_ids(100), &ids));
    }

    #[test]
    fn rowset_gather() {
        let col = Column::Numeric(vec![1.0, 2.0, 3.0]);
        assert_eq!(
            RowSet::All.gather(&col, 3),
            ValuesBuf::Numeric(vec![1.0, 2.0, 3.0])
        );
        let r = RowSet::Ids(Arc::new(vec![2, 0]));
        assert_eq!(r.gather(&col, 3), ValuesBuf::Numeric(vec![3.0, 1.0]));
    }
}
