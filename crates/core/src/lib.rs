//! # TreeServer — distributed task-based training of tree models
//!
//! A Rust reproduction of *Distributed Task-Based Training of Tree Models*
//! (ICDE 2022): a master–workers system that trains decision trees and tree
//! ensembles **exactly** (no histogram approximation) by
//!
//! - partitioning the data table among workers **by columns** (target `Y`
//!   replicated everywhere, each column on `k = 2` workers),
//! - decomposing tree construction into node-centric **column-tasks** (find
//!   a column's exact best split of `Dx`) and **subtree-tasks** (pull the
//!   whole `Dx` when `|Dx| <= τ_D` and build `∆x` locally, CPU-bound),
//! - scheduling tasks through a **hybrid breadth-first/depth-first** plan
//!   deque so CPU-bound subtree-tasks appear early and overlap with
//!   communication, and
//! - keeping every task's row set `Ix` on a **delegate worker** instead of
//!   relaying it through the master (§V), which removes the master's
//!   outbound bottleneck.
//!
//! The cluster is simulated in-process (real threads per machine, typed
//! channels, byte accounting and a bandwidth/latency model — see
//! `ts-netsim` and DESIGN.md §2), which preserves the paper's communication
//! behaviour at laptop scale.
//!
//! ## Quick start
//!
//! ```
//! use treeserver::{Cluster, ClusterConfig, JobSpec};
//! use ts_datatable::synth::{generate, SynthSpec};
//!
//! let table = generate(&SynthSpec { rows: 2_000, ..Default::default() });
//! let cluster = Cluster::launch(ClusterConfig::default(), &table);
//! let model = cluster.train(JobSpec::decision_tree(table.schema().task)).into_tree();
//! assert!(model.n_nodes() >= 1);
//! cluster.shutdown();
//! ```
//!
//! The engine guarantee worth testing against: a cluster of any shape
//! produces **the same tree** as the single-threaded exact trainer in
//! `ts-tree` — scheduling only changes *when* work happens, never *what* is
//! computed.

/// Records a task-lifecycle event on a machine's ring.
///
/// `$stats` is a `&NetStats` (everything in the engine already holds one),
/// `$node` the observing machine id, and `$event` a `ts_obs::Event`
/// expression. With the `obs` feature compiled in, this is a recorder
/// lookup (`OnceLock` load) and, only when one is attached, an event
/// record; with the feature off it expands to nothing — the argument
/// tokens are discarded unexpanded, so call sites carry zero cost and no
/// `ts_obs` dependency.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_event {
    ($stats:expr, $node:expr, $event:expr) => {
        if let Some(__rec) = $stats.recorder() {
            __rec.record($node as u32, $event);
        }
    };
}

/// Feature-off expansion: nothing.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_event {
    ($stats:expr, $node:expr, $event:expr) => {};
}

pub use ts_obs as obs;

pub mod assign;
pub mod cluster;
pub mod config;
pub mod gbt;
pub mod ids;
pub mod job;
pub mod master;
pub mod messages;
pub mod recovery;
pub mod sched;
pub mod worker;

pub use cluster::{Cluster, ClusterReport};
pub use config::{ClusterConfig, Splitter};
pub use gbt::{train_gbt, train_gbt_on, GbtConfig, GbtModel, GbtObjective};
pub use ids::{ParentRef, RowSet, Side, TaskId, TreeId};
pub use job::{JobHandle, JobKind, JobResult, JobSpec};
pub use recovery::{AttrId, RecoveryError};
pub use sched::{PlanQueue, StealInfo, TauController};
pub use ts_netsim::{FaultPlan, NetModel, RetryConfig};
