//! The worker machine: task/data event loops, the comper pool, column
//! storage, and the §V delegate-worker machinery.
//!
//! Each worker runs (paper §IV, Fig. 7 / Fig. 14(b)):
//!
//! - a **task-loop** thread (the paper's worker `θ_main`) receiving plans
//!   and control messages from the master,
//! - a **data-loop** thread (`θ_recv`) receiving/serving worker↔worker data:
//!   `Ix` requests against its delegate table, column requests against its
//!   column store, and responses that complete its own pending tasks, and
//! - a pool of **compers** pulling ready tasks from `Btask` and sending
//!   results straight to the master.
//!
//! A column-task's row set `Ix` survives the result send in the *awaiting
//! verdict* table; when the master confirms this worker's split as the
//! overall best (`ConfirmBest`), the worker becomes the task's **delegate**:
//! it partitions `Ix` with its locally-held winning column and serves the
//! halves to the child tasks' workers, freeing them when the master-announced
//! quotas are met. `Ix` requests that race ahead of `ConfirmBest` are parked
//! and replayed.
//!
//! Lock discipline: the state mutex is never held across a fabric send
//! (sends sleep under the link model).

use crate::ids::{ParentRef, RowSet, Side, TaskId, TreeId};
use crate::messages::{ColumnPlan, ColumnTaskBest, DataMsg, HistPlanConf, SubtreePlan, TaskMsg};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ts_datatable::{AttrType, BinnedColumn, Column, Labels, SortedColumn, Task, ValuesBuf};
use ts_netsim::{BusyGuard, Fabric, FabricReceiver, NetStats, NodeId};
use ts_obs::TraceCtx;
use ts_splits::exact::ColumnSplit;
use ts_splits::hist::{best_hist_split_at, top_k_candidates, HistCandidate, HistColumnRef};
use ts_splits::impurity::Impurity;
use ts_splits::impurity::{LabelView, NodeStats};
use ts_splits::random::random_split_for_column;
use ts_splits::sorted::{
    best_split_at, distinct_categories_at, with_node_mask, ColumnRef, NodeRows, RowBitmap,
};
use ts_splits::{partition_rows, SplitTest};
use ts_tree::{train_subtree, LocalDataset, TrainMode, TrainParams};
use tschan::sync::{Mutex, RwLock};
use tschan::{Receiver, Sender};
use tsrand::rngs::StdRng;
use tsrand::seq::SliceRandom;
use tsrand::SeedableRng;

/// Accounted bytes of a row set (the implicit root range costs nothing).
fn ix_bytes(ix: &RowSet) -> usize {
    match ix {
        RowSet::All => 0,
        RowSet::Ids(v) => v.len() * 4,
    }
}

/// A task whose data is complete, ready for a comper.
enum ReadyTask {
    Column {
        plan: ColumnPlan,
        ix: RowSet,
    },
    Subtree {
        plan: SubtreePlan,
        ix: RowSet,
        /// Buffers received from remote holders, keyed by attribute.
        remote_bufs: HashMap<usize, ValuesBuf>,
    },
    Stop,
}

/// A task parked in the worker's task table waiting for data.
enum PendingTask {
    /// Column-task waiting for `Ix`.
    Column { plan: ColumnPlan },
    /// Subtree-task (on its key worker) waiting for `Ix` and/or columns.
    Subtree {
        plan: SubtreePlan,
        ix: Option<RowSet>,
        remote_bufs: HashMap<usize, ValuesBuf>,
        remote_needed: usize,
    },
    /// A `ReqCols` we must serve once we learn `Ix`.
    Serve {
        tree: TreeId,
        attrs: Vec<usize>,
        key_worker: NodeId,
        /// Trace context of the subtree task being provisioned; echoed on
        /// the eventual `RespCols` so the transfer stays attributed.
        ctx: TraceCtx,
    },
}

impl PendingTask {
    fn tree(&self) -> TreeId {
        match self {
            PendingTask::Column { plan } => plan.tree,
            PendingTask::Subtree { plan, .. } => plan.tree,
            PendingTask::Serve { tree, .. } => *tree,
        }
    }
}

/// A computed column-task whose `Ix` (and winning condition) must survive
/// until the master's verdict.
struct AwaitingVerdict {
    tree: TreeId,
    ix: RowSet,
    /// The task's impurity criterion, kept so a histogram `HistFetch`
    /// recount after the plan is gone uses the same criterion bit for bit.
    imp: Impurity,
    winning: Option<(usize, SplitTest, bool)>,
}

/// Delegate-worker state for one confirmed task (paper §V).
struct DelegateEntry {
    tree: TreeId,
    sides: [Option<Vec<u32>>; 2],
    quota: [Option<u32>; 2],
    served: [u32; 2],
}

impl DelegateEntry {
    fn side_idx(side: Side) -> usize {
        match side {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    /// Drops side buffers whose quota is known and fully served; returns the
    /// freed byte count.
    fn release_satisfied(&mut self) -> usize {
        let mut freed = 0;
        for i in 0..2 {
            if let Some(q) = self.quota[i] {
                if self.served[i] >= q {
                    if let Some(v) = self.sides[i].take() {
                        freed += v.len() * 4;
                    }
                }
            }
        }
        freed
    }

    fn done(&self) -> bool {
        self.quota.iter().all(Option::is_some) && self.sides.iter().all(Option::is_none)
    }
}

/// One parked `Ix` request: everything needed to replay it after
/// `ConfirmBest`, including the `TraceCtx` that keeps the response
/// attributed to the requesting task's span.
type ParkedIxReq = (TreeId, Side, NodeId, TaskId, TraceCtx);

struct WorkerState {
    tasks: HashMap<TaskId, PendingTask>,
    awaiting: HashMap<TaskId, AwaitingVerdict>,
    delegates: HashMap<TaskId, DelegateEntry>,
    /// `Ix` requests that arrived before `ConfirmBest`, keyed by parent
    /// task.
    parked: HashMap<TaskId, Vec<ParkedIxReq>>,
    /// Trees revoked by fault recovery: results for them are suppressed.
    revoked: HashSet<TreeId>,
}

/// One worker machine.
pub struct Worker {
    id: NodeId,
    work_ns_per_unit: u64,
    n_rows: usize,
    task: Task,
    labels: RwLock<Arc<Labels>>,
    attr_types: Arc<Vec<AttrType>>,
    columns: RwLock<HashMap<usize, Arc<Column>>>,
    /// Presorted index per held column, built once when the column arrives
    /// (load or replication) and shared by every column-task over it.
    sorted: RwLock<HashMap<usize, Arc<SortedColumn>>>,
    /// Quantized bin index per held *numeric* column (`--splitter hist`),
    /// built alongside the sorted index; absent in exact mode.
    binned: RwLock<HashMap<usize, Arc<BinnedColumn>>>,
    /// Bin budget for histogram mode; `None` disables bin-index building.
    hist_bins: Option<usize>,
    state: Mutex<WorkerState>,
    ready_tx: Sender<ReadyTask>,
    fabric_task: Fabric<TaskMsg>,
    fabric_data: Fabric<DataMsg>,
    stats: Arc<NetStats>,
    /// Cleared on `Shutdown`; stops the heartbeat thread, so a silenced
    /// worker also goes silent on the liveness plane.
    alive: AtomicBool,
    /// Whether this worker advertises hunger to the master (`ts-sched`
    /// work stealing, `ClusterConfig::steal`).
    steal: bool,
    /// Ready tasks enqueued for the comper pool minus tasks picked up —
    /// the signal for "my compute backlog ran dry". Signed because the
    /// comper-side decrement can observe the send before the increment.
    ready_backlog: AtomicI64,
    /// One outstanding `StealRequest` at a time; cleared when the master
    /// answers with any plan or an explicit `Donate`.
    steal_outstanding: AtomicBool,
    /// Set by the master's `Drain` frame (`ts-elastic`): stop advertising
    /// hunger, finish what is queued, and report `Goodbye` when the local
    /// compute pipeline runs dry. The worker stays fully alive — serving
    /// its data plane and heartbeating — until the master's final
    /// `Shutdown`.
    draining: AtomicBool,
    /// `Goodbye` is sent exactly once per drain.
    goodbye_sent: AtomicBool,
    /// Tasks currently on a comper (picked up but not yet resulted); the
    /// drain's "pipeline dry" check needs it alongside `ready_backlog`.
    computing: AtomicI64,
}

impl Worker {
    /// Creates a worker holding `columns` (attr id → column) plus the full
    /// label column, and spawns its threads. Returns the join handles.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        id: NodeId,
        work_ns_per_unit: u64,
        columns: HashMap<usize, Arc<Column>>,
        labels: Arc<Labels>,
        attr_types: Arc<Vec<AttrType>>,
        task: Task,
        compers: usize,
        fabric_task: Fabric<TaskMsg>,
        fabric_data: Fabric<DataMsg>,
        task_rx: FabricReceiver<TaskMsg>,
        data_rx: FabricReceiver<DataMsg>,
        heartbeat_interval: Duration,
        steal: bool,
        hist_bins: Option<usize>,
    ) -> Vec<std::thread::JoinHandle<()>> {
        let (ready_tx, ready_rx) = tschan::unbounded();
        let stats = Arc::clone(fabric_task.stats());
        let sorted: HashMap<usize, Arc<SortedColumn>> = columns
            .iter()
            .map(|(&attr, col)| (attr, Arc::new(SortedColumn::build(col))))
            .collect();
        let binned: HashMap<usize, Arc<BinnedColumn>> = match hist_bins {
            Some(bins) => columns
                .iter()
                .filter_map(|(&attr, col)| {
                    col.as_numeric()
                        .map(|v| (attr, Arc::new(BinnedColumn::build(v, bins))))
                })
                .collect(),
            None => HashMap::new(),
        };
        // The resident column data is the memory baseline of the machine
        // ("most memory is used to hold data columns", Table III discussion);
        // histogram mode adds its compact bin ids on top.
        let col_bytes: usize = columns.values().map(|c| c.payload_bytes()).sum();
        let bin_bytes: usize = binned.values().map(|b| b.payload_bytes()).sum();
        stats.mem_alloc(id, col_bytes + labels.payload_bytes() + bin_bytes);
        let worker = Arc::new(Worker {
            id,
            work_ns_per_unit,
            n_rows: labels.len(),
            task,
            labels: RwLock::new(labels),
            attr_types,
            columns: RwLock::new(columns),
            sorted: RwLock::new(sorted),
            binned: RwLock::new(binned),
            hist_bins,
            state: Mutex::new(WorkerState {
                tasks: HashMap::new(),
                awaiting: HashMap::new(),
                delegates: HashMap::new(),
                parked: HashMap::new(),
                revoked: HashSet::new(),
            }),
            ready_tx,
            fabric_task,
            fabric_data,
            stats,
            alive: AtomicBool::new(true),
            steal,
            ready_backlog: AtomicI64::new(0),
            steal_outstanding: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            goodbye_sent: AtomicBool::new(false),
            computing: AtomicI64::new(0),
        });

        let mut handles = Vec::new();
        {
            let w = Arc::clone(&worker);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker{id}-task"))
                    .spawn(move || w.task_loop(task_rx, compers))
                    .expect("spawn task loop"),
            );
        }
        {
            let w = Arc::clone(&worker);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker{id}-data"))
                    .spawn(move || w.data_loop(data_rx))
                    .expect("spawn data loop"),
            );
        }
        for c in 0..compers {
            let w = Arc::clone(&worker);
            let rx = ready_rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker{id}-comper{c}"))
                    .spawn(move || w.comper_loop(rx))
                    .expect("spawn comper"),
            );
        }
        {
            let w = Arc::clone(&worker);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker{id}-hb"))
                    .spawn(move || w.heartbeat_loop(heartbeat_interval))
                    .expect("spawn heartbeat"),
            );
        }
        handles
    }

    /// Liveness beacon: one unreliable `Heartbeat` to the master per
    /// interval until shutdown. Unreliable on purpose — a heartbeat that a
    /// fault plan drops must stay lost (that is the signal the detector
    /// reads), and beacons must not queue behind the ordered-delivery
    /// buffer of the reliable protocol.
    fn heartbeat_loop(self: Arc<Self>, interval: Duration) {
        // Sleep in small chunks so shutdown never waits a full interval.
        let chunk = interval
            .min(Duration::from_millis(2))
            .max(Duration::from_micros(100));
        let mut elapsed = Duration::ZERO;
        while self.alive.load(Ordering::Acquire) {
            std::thread::sleep(chunk);
            elapsed += chunk;
            if elapsed >= interval {
                elapsed = Duration::ZERO;
                if !self.alive.load(Ordering::Acquire) {
                    break;
                }
                let _ = self.fabric_task.send_unreliable(
                    self.id,
                    0,
                    TaskMsg::Heartbeat { worker: self.id },
                );
            }
        }
    }

    /// Hands a provisioned task to the comper pool, keeping the ready
    /// backlog counter in step (the hunger signal for work stealing).
    fn push_ready(&self, task: ReadyTask) {
        if !matches!(task, ReadyTask::Stop) {
            self.ready_backlog.fetch_add(1, Ordering::AcqRel);
        }
        let _ = self.ready_tx.send(task);
    }

    /// Called by a comper that just finished a task: when the ready
    /// backlog is empty and no request is in flight, advertise hunger to
    /// the master. The request is an accelerator — if it (or its Donate)
    /// is lost, the flag is cleared by the next plan that arrives anyway.
    fn maybe_request_steal(&self) {
        if !self.steal || !self.alive.load(Ordering::Acquire) {
            return;
        }
        // A draining worker must wind down, not attract more work (the
        // master forgot its deque anyway).
        if self.draining.load(Ordering::Acquire) {
            return;
        }
        if self.ready_backlog.load(Ordering::Acquire) > 0 {
            return;
        }
        if self
            .steal_outstanding
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            obs_event!(
                self.stats,
                self.id,
                ts_obs::Event::StealRequested {
                    worker: self.id as u32
                }
            );
            let _ = self
                .fabric_task
                .send(self.id, 0, TaskMsg::StealRequest { worker: self.id });
        }
    }

    /// Drain progress check: once the ready queue and the comper pipeline
    /// are both empty, report `Goodbye` to the master (exactly once). This
    /// is deliberately only a "my compute ran dry" signal — tasks still
    /// parked for `Ix`/columns and the delegate table are in-flight state
    /// the *master* tracks (`touches`), and the worker keeps serving its
    /// data plane until the final `Shutdown` arrives.
    fn maybe_goodbye(&self) {
        if !self.draining.load(Ordering::Acquire)
            || !self.alive.load(Ordering::Acquire)
            || self.ready_backlog.load(Ordering::Acquire) > 0
            || self.computing.load(Ordering::Acquire) > 0
        {
            return;
        }
        if self
            .goodbye_sent
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let _ = self
                .fabric_task
                .send(self.id, 0, TaskMsg::Goodbye { worker: self.id });
        }
    }

    fn n_classes(&self) -> u32 {
        self.task.n_classes().unwrap_or(0)
    }

    /// The effective prediction task: boosting rounds swap in real-valued
    /// pseudo-targets, turning every tree into a regression tree regardless
    /// of the table's original task.
    fn current_task(&self) -> Task {
        match &**self.labels.read() {
            Labels::Real(_) => Task::Regression,
            Labels::Class(_) => self.task,
        }
    }

    // ------------------------------------------------------------------
    /// Installs freshly-received columns (initial load or replication):
    /// accounts their memory and builds the presorted index — plus, in
    /// histogram mode, the bin index for numeric columns — alongside, so
    /// column-tasks always find all of them under the same attr id. Lock
    /// order is columns-then-sorted-then-binned everywhere.
    fn install_columns(&self, columns: Vec<(usize, Column)>) {
        let mut store = self.columns.write();
        let mut sorted = self.sorted.write();
        let mut binned = self.binned.write();
        for (attr, col) in columns {
            self.stats.mem_alloc(self.id, col.payload_bytes());
            sorted.insert(attr, Arc::new(SortedColumn::build(&col)));
            if let Some(bins) = self.hist_bins {
                if let Some(v) = col.as_numeric() {
                    let b = BinnedColumn::build(v, bins);
                    self.stats.mem_alloc(self.id, b.payload_bytes());
                    binned.insert(attr, Arc::new(b));
                }
            }
            store.insert(attr, Arc::new(col));
        }
    }

    // Task loop (worker θ_main): plans and control messages from master.
    // ------------------------------------------------------------------
    fn task_loop(self: Arc<Self>, rx: FabricReceiver<TaskMsg>, compers: usize) {
        while let Ok(msg) = rx.recv() {
            match msg {
                TaskMsg::ColumnPlan(plan) => self.on_column_plan(plan),
                TaskMsg::SubtreePlan(plan) => self.on_subtree_plan(plan),
                TaskMsg::ConfirmBest { task } => self.on_confirm_best(task),
                TaskMsg::HistFetch { task, attr, ctx } => self.on_hist_fetch(task, attr, ctx),
                TaskMsg::DropTask { task } => self.on_drop_task(task),
                TaskMsg::ServeQuota { task, side, quota } => self.on_serve_quota(task, side, quota),
                TaskMsg::RevokeTree { tree } => self.on_revoke_tree(tree),
                TaskMsg::LoadColumns { columns } => self.install_columns(columns),
                TaskMsg::LoadLabels { labels } => {
                    // Boosting support: the client distributes a fresh target
                    // column between rounds (the cluster is quiesced — the
                    // caller waits for the previous round's job first).
                    assert_eq!(labels.len(), self.n_rows, "label column length");
                    *self.labels.write() = Arc::new(labels);
                }
                TaskMsg::ReplicateTo { attrs, to, ctx } => {
                    let columns: Vec<(usize, Column)> = {
                        let store = self.columns.read();
                        attrs
                            .iter()
                            .map(|a| {
                                (
                                    *a,
                                    (**store.get(a).expect("replica source holds column")).clone(),
                                )
                            })
                            .collect()
                    };
                    // The migration span rides the bulk transfer and its
                    // eventual ReplicateDone, so retries stay attributed.
                    let _ =
                        self.fabric_data
                            .send(self.id, to, DataMsg::ReplicateCols { columns, ctx });
                }
                TaskMsg::Welcome { .. } => {
                    // Join handshake ack. Nothing to set up here: columns
                    // arrive via `ReplicateCols` on the data plane, and the
                    // heartbeat thread has been beating since spawn.
                }
                TaskMsg::Drain => {
                    self.draining.store(true, Ordering::Release);
                    // Maybe the pipeline is already dry.
                    self.maybe_goodbye();
                }
                TaskMsg::Shutdown => {
                    // Silence the heartbeat first: from the master's point
                    // of view this machine is now dark.
                    self.alive.store(false, Ordering::Release);
                    for _ in 0..compers {
                        let _ = self.ready_tx.send(ReadyTask::Stop);
                    }
                    // Stop the data loop too (self-send is free and FIFO,
                    // so queued data messages drain first).
                    let _ = self.fabric_data.send(self.id, self.id, DataMsg::Shutdown);
                    break;
                }
                TaskMsg::Donate { ctx, .. } => {
                    // The master answered our steal request: the stolen
                    // task's plan follows on this same FIFO channel. The
                    // SpanRecv here is the steal edge in the span DAG.
                    obs_event!(
                        self.stats,
                        self.id,
                        ts_obs::Event::SpanRecv {
                            span: ctx.span.0,
                            node: self.id as u32,
                        }
                    );
                    self.steal_outstanding.store(false, Ordering::Release);
                }
                // Master-only messages never reach workers.
                TaskMsg::ColumnResult { .. }
                | TaskMsg::HistNominate { .. }
                | TaskMsg::HistBest { .. }
                | TaskMsg::SubtreeResult { .. }
                | TaskMsg::ReplicateDone { .. }
                | TaskMsg::StealRequest { .. }
                | TaskMsg::Hello { .. }
                | TaskMsg::Goodbye { .. }
                | TaskMsg::Heartbeat { .. } => {
                    unreachable!("master-bound message delivered to a worker")
                }
            }
        }
    }

    fn on_column_plan(&self, plan: ColumnPlan) {
        // Any plan arriving means the master is feeding us again — a lost
        // steal request (or Donate) must not wedge the hunger signal.
        self.steal_outstanding.store(false, Ordering::Release);
        // Cross-machine causality: the master's task span is now live here.
        obs_event!(
            self.stats,
            self.id,
            ts_obs::Event::SpanRecv {
                span: plan.ctx.span.0,
                node: self.id as u32,
            }
        );
        match plan.parent {
            ParentRef::Root => {
                self.push_ready(ReadyTask::Column {
                    plan,
                    ix: RowSet::All,
                });
            }
            ParentRef::Node {
                worker,
                task: ptask,
                side,
            } => {
                let task = plan.task;
                let tree = plan.tree;
                let ctx = plan.ctx;
                self.state
                    .lock()
                    .tasks
                    .insert(task, PendingTask::Column { plan });
                self.request_ix(worker, ptask, side, task, tree, ctx);
            }
        }
    }

    fn on_subtree_plan(&self, plan: SubtreePlan) {
        self.steal_outstanding.store(false, Ordering::Release);
        obs_event!(
            self.stats,
            self.id,
            ts_obs::Event::SpanRecv {
                span: plan.ctx.span.0,
                node: self.id as u32,
            }
        );
        let task = plan.task;
        let me = self.id;
        let ctx = plan.ctx;
        // Group remote column requests by holder.
        let mut by_holder: HashMap<NodeId, Vec<usize>> = HashMap::new();
        let mut remote_needed = 0usize;
        for &(attr, holder) in &plan.col_sources {
            if holder != me {
                by_holder.entry(holder).or_default().push(attr);
                remote_needed += 1;
            }
        }
        let parent = plan.parent;
        let tree = plan.tree;
        let ix = match parent {
            ParentRef::Root => Some(RowSet::All),
            ParentRef::Node { .. } => None,
        };
        if ix.is_some() && remote_needed == 0 {
            self.push_ready(ReadyTask::Subtree {
                plan,
                ix: RowSet::All,
                remote_bufs: HashMap::new(),
            });
        } else {
            self.state.lock().tasks.insert(
                task,
                PendingTask::Subtree {
                    plan,
                    ix,
                    remote_bufs: HashMap::new(),
                    remote_needed,
                },
            );
        }
        // Fire the data requests after registering the entry.
        let mut holders: Vec<(NodeId, Vec<usize>)> = by_holder.into_iter().collect();
        holders.sort_unstable_by_key(|&(h, _)| h);
        for (holder, attrs) in holders {
            let _ = self.fabric_data.send(
                me,
                holder,
                DataMsg::ReqCols {
                    for_task: task,
                    attrs,
                    key_worker: me,
                    parent,
                    tree,
                    ctx,
                },
            );
        }
        if let ParentRef::Node {
            worker,
            task: ptask,
            side,
        } = parent
        {
            self.request_ix(worker, ptask, side, task, tree, ctx);
        }
    }

    fn request_ix(
        &self,
        parent_worker: NodeId,
        ptask: TaskId,
        side: Side,
        for_task: TaskId,
        tree: TreeId,
        ctx: TraceCtx,
    ) {
        let _ = self.fabric_data.send(
            self.id,
            parent_worker,
            DataMsg::ReqIx {
                parent_task: ptask,
                side,
                requester: self.id,
                for_task,
                tree,
                ctx,
            },
        );
    }

    fn on_confirm_best(&self, task: TaskId) {
        let mut responses: Vec<(NodeId, DataMsg)> = Vec::new();
        {
            let mut st = self.state.lock();
            let Some(av) = st.awaiting.remove(&task) else {
                return; // revoked while the verdict was in flight
            };
            let (attr, test, missing_left) = av
                .winning
                .expect("master confirmed a worker that reported no split");
            let col = Arc::clone(
                self.columns
                    .read()
                    .get(&attr)
                    .expect("delegate must hold its winning column"),
            );
            let ids = av.ix.to_ids(self.n_rows);
            let (l, r) = partition_rows(&col, &ids, &test, missing_left);
            self.stats.mem_free(self.id, ix_bytes(&av.ix));
            self.stats.mem_alloc(self.id, (l.len() + r.len()) * 4);
            st.delegates.insert(
                task,
                DelegateEntry {
                    tree: av.tree,
                    sides: [Some(l), Some(r)],
                    quota: [None, None],
                    served: [0, 0],
                },
            );
            // Replay any Ix requests that raced ahead of the verdict.
            if let Some(parked) = st.parked.remove(&task) {
                for (_tree, side, requester, for_task, ctx) in parked {
                    if let Some(resp) = self.serve_ix(&mut st, task, side, for_task, ctx) {
                        responses.push((requester, resp));
                    }
                }
            }
        }
        for (to, msg) in responses {
            let _ = self.fabric_data.send(self.id, to, msg);
        }
    }

    fn on_drop_task(&self, task: TaskId) {
        let mut st = self.state.lock();
        if let Some(av) = st.awaiting.remove(&task) {
            self.stats.mem_free(self.id, ix_bytes(&av.ix));
        }
    }

    fn on_serve_quota(&self, task: TaskId, side: Side, quota: u32) {
        let mut st = self.state.lock();
        if let Some(entry) = st.delegates.get_mut(&task) {
            entry.quota[DelegateEntry::side_idx(side)] = Some(quota);
            let freed = entry.release_satisfied();
            self.stats.mem_free(self.id, freed);
            if entry.done() {
                st.delegates.remove(&task);
            }
        }
        // A quota for an unknown task means the tree was revoked meanwhile.
    }

    fn on_revoke_tree(&self, tree: TreeId) {
        let mut st = self.state.lock();
        st.revoked.insert(tree);
        st.tasks.retain(|_, t| t.tree() != tree);
        let mut freed = 0usize;
        st.awaiting.retain(|_, a| {
            if a.tree == tree {
                freed += ix_bytes(&a.ix);
                false
            } else {
                true
            }
        });
        st.delegates.retain(|_, d| {
            if d.tree == tree {
                freed += d.sides.iter().flatten().map(|s| s.len() * 4).sum::<usize>();
                false
            } else {
                true
            }
        });
        for reqs in st.parked.values_mut() {
            reqs.retain(|&(t, _, _, _, _)| t != tree);
        }
        st.parked.retain(|_, reqs| !reqs.is_empty());
        self.stats.mem_free(self.id, freed);
    }

    // ------------------------------------------------------------------
    // Data loop (worker θ_recv): worker↔worker data plane.
    // ------------------------------------------------------------------
    fn data_loop(self: Arc<Self>, rx: FabricReceiver<DataMsg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                DataMsg::ReqIx {
                    parent_task,
                    side,
                    requester,
                    for_task,
                    tree,
                    ctx,
                } => {
                    let response = {
                        let mut st = self.state.lock();
                        if st.delegates.contains_key(&parent_task) {
                            self.serve_ix(&mut st, parent_task, side, for_task, ctx)
                        } else if st.revoked.contains(&tree) {
                            None // requester's task was revoked too
                        } else {
                            st.parked
                                .entry(parent_task)
                                .or_default()
                                .push((tree, side, requester, for_task, ctx));
                            None
                        }
                    };
                    if let Some(resp) = response {
                        let _ = self.fabric_data.send(self.id, requester, resp);
                    }
                }
                DataMsg::RespIx { for_task, rows, .. } => self.on_resp_ix(for_task, rows),
                DataMsg::ReqCols {
                    for_task,
                    attrs,
                    key_worker,
                    parent,
                    tree,
                    ctx,
                } => self.on_req_cols(for_task, attrs, key_worker, parent, tree, ctx),
                DataMsg::RespCols {
                    for_task,
                    attrs,
                    bufs,
                    ..
                } => self.on_resp_cols(for_task, attrs, bufs),
                DataMsg::Shutdown => break,
                DataMsg::ReplicateCols { columns, ctx } => {
                    let attrs: Vec<usize> = columns.iter().map(|&(a, _)| a).collect();
                    self.install_columns(columns);
                    let _ = self.fabric_task.send(
                        self.id,
                        0,
                        TaskMsg::ReplicateDone {
                            attrs,
                            worker: self.id,
                            ctx,
                        },
                    );
                }
            }
        }
    }

    /// Builds the `RespIx` for one request against the delegate table and
    /// updates serve counters. Caller sends the message after unlocking.
    fn serve_ix(
        &self,
        st: &mut WorkerState,
        parent_task: TaskId,
        side: Side,
        for_task: TaskId,
        ctx: TraceCtx,
    ) -> Option<DataMsg> {
        let idx = DelegateEntry::side_idx(side);
        let (rows, done, freed) = {
            let entry = st.delegates.get_mut(&parent_task)?;
            let rows = entry.sides[idx]
                .as_ref()
                .expect("side requested after release — master quota was wrong")
                .clone();
            entry.served[idx] += 1;
            let freed = entry.release_satisfied();
            (rows, entry.done(), freed)
        };
        self.stats.mem_free(self.id, freed);
        if done {
            st.delegates.remove(&parent_task);
        }
        Some(DataMsg::RespIx {
            for_task,
            rows,
            ctx,
        })
    }

    fn on_resp_ix(&self, for_task: TaskId, rows: Vec<u32>) {
        let ix = RowSet::Ids(Arc::new(rows));
        enum Next {
            Nothing,
            Serve {
                attrs: Vec<usize>,
                key: NodeId,
                ctx: TraceCtx,
            },
        }
        let next = {
            let mut st = self.state.lock();
            match st.tasks.get(&for_task) {
                None => return, // revoked
                Some(PendingTask::Column { .. }) => {
                    let Some(PendingTask::Column { plan }) = st.tasks.remove(&for_task) else {
                        unreachable!()
                    };
                    self.stats.mem_alloc(self.id, ix_bytes(&ix));
                    self.push_ready(ReadyTask::Column {
                        plan,
                        ix: ix.clone(),
                    });
                    Next::Nothing
                }
                Some(PendingTask::Subtree { .. }) => {
                    self.stats.mem_alloc(self.id, ix_bytes(&ix));
                    let complete = {
                        let Some(PendingTask::Subtree {
                            ix: slot,
                            remote_bufs,
                            remote_needed,
                            ..
                        }) = st.tasks.get_mut(&for_task)
                        else {
                            unreachable!()
                        };
                        *slot = Some(ix.clone());
                        remote_bufs.len() == *remote_needed
                    };
                    if complete {
                        self.promote_subtree(&mut st, for_task);
                    }
                    Next::Nothing
                }
                Some(PendingTask::Serve { .. }) => {
                    let Some(PendingTask::Serve {
                        attrs,
                        key_worker,
                        ctx,
                        ..
                    }) = st.tasks.remove(&for_task)
                    else {
                        unreachable!()
                    };
                    Next::Serve {
                        attrs,
                        key: key_worker,
                        ctx,
                    }
                }
            }
        };
        if let Next::Serve { attrs, key, ctx } = next {
            self.send_cols(for_task, &attrs, key, &ix, ctx);
        }
    }

    fn on_req_cols(
        &self,
        for_task: TaskId,
        attrs: Vec<usize>,
        key_worker: NodeId,
        parent: ParentRef,
        tree: TreeId,
        ctx: TraceCtx,
    ) {
        match parent {
            ParentRef::Root => self.send_cols(for_task, &attrs, key_worker, &RowSet::All, ctx),
            ParentRef::Node {
                worker,
                task: ptask,
                side,
            } => {
                {
                    let mut st = self.state.lock();
                    if st.revoked.contains(&tree) {
                        return;
                    }
                    st.tasks.insert(
                        for_task,
                        PendingTask::Serve {
                            tree,
                            attrs,
                            key_worker,
                            ctx,
                        },
                    );
                }
                self.request_ix(worker, ptask, side, for_task, tree, ctx);
            }
        }
    }

    fn send_cols(
        &self,
        for_task: TaskId,
        attrs: &[usize],
        key_worker: NodeId,
        ix: &RowSet,
        ctx: TraceCtx,
    ) {
        let bufs: Vec<ValuesBuf> = {
            let store = self.columns.read();
            attrs
                .iter()
                .map(|a| {
                    let col = store.get(a).expect("holder must have its column");
                    ix.gather(col, self.n_rows)
                })
                .collect()
        };
        let _ = self.fabric_data.send(
            self.id,
            key_worker,
            DataMsg::RespCols {
                for_task,
                attrs: attrs.to_vec(),
                bufs,
                ctx,
            },
        );
    }

    fn on_resp_cols(&self, for_task: TaskId, attrs: Vec<usize>, bufs: Vec<ValuesBuf>) {
        let mut st = self.state.lock();
        let complete = {
            let Some(PendingTask::Subtree {
                remote_bufs,
                remote_needed,
                ix,
                ..
            }) = st.tasks.get_mut(&for_task)
            else {
                return; // revoked
            };
            let bytes: usize = bufs.iter().map(ValuesBuf::payload_bytes).sum();
            self.stats.mem_alloc(self.id, bytes);
            for (a, b) in attrs.into_iter().zip(bufs) {
                remote_bufs.insert(a, b);
            }
            ix.is_some() && remote_bufs.len() == *remote_needed
        };
        if complete {
            self.promote_subtree(&mut st, for_task);
        }
    }

    /// Moves a fully-provisioned subtree task from the task table to `Btask`.
    fn promote_subtree(&self, st: &mut WorkerState, task: TaskId) {
        let Some(PendingTask::Subtree {
            plan,
            ix,
            remote_bufs,
            ..
        }) = st.tasks.remove(&task)
        else {
            unreachable!("promote_subtree on a non-subtree task");
        };
        self.push_ready(ReadyTask::Subtree {
            plan,
            ix: ix.expect("ix present when promoting"),
            remote_bufs,
        });
    }

    // ------------------------------------------------------------------
    // Compers.
    // ------------------------------------------------------------------
    fn comper_loop(self: Arc<Self>, rx: Receiver<ReadyTask>) {
        while let Ok(task) = rx.recv() {
            if !matches!(task, ReadyTask::Stop) {
                self.ready_backlog.fetch_sub(1, Ordering::AcqRel);
                self.computing.fetch_add(1, Ordering::AcqRel);
            }
            match task {
                ReadyTask::Stop => break,
                ReadyTask::Column { plan, ix } => {
                    // A comper picked the task up: queue wait ends here.
                    obs_event!(
                        self.stats,
                        self.id,
                        ts_obs::Event::SpanActive {
                            span: plan.ctx.span.0,
                            node: self.id as u32,
                        }
                    );
                    #[cfg(feature = "obs")]
                    let (task_id, t0) = (plan.task.0, std::time::Instant::now());
                    let msg = {
                        let _busy = BusyGuard::start(&self.stats, self.id);
                        self.compute_column_task(plan, ix)
                    };
                    obs_event!(
                        self.stats,
                        self.id,
                        ts_obs::Event::TaskComputed {
                            task: task_id,
                            node: self.id as u32,
                            busy_ns: t0.elapsed().as_nanos() as u64,
                        }
                    );
                    if let Some(msg) = msg {
                        let _ = self.fabric_task.send(self.id, 0, msg);
                    }
                    self.computing.fetch_sub(1, Ordering::AcqRel);
                    self.maybe_request_steal();
                    self.maybe_goodbye();
                }
                ReadyTask::Subtree {
                    plan,
                    ix,
                    remote_bufs,
                } => {
                    obs_event!(
                        self.stats,
                        self.id,
                        ts_obs::Event::SpanActive {
                            span: plan.ctx.span.0,
                            node: self.id as u32,
                        }
                    );
                    #[cfg(feature = "obs")]
                    let (task_id, t0) = (plan.task.0, std::time::Instant::now());
                    let msg = {
                        let _busy = BusyGuard::start(&self.stats, self.id);
                        self.compute_subtree_task(plan, ix, remote_bufs)
                    };
                    obs_event!(
                        self.stats,
                        self.id,
                        ts_obs::Event::TaskComputed {
                            task: task_id,
                            node: self.id as u32,
                            busy_ns: t0.elapsed().as_nanos() as u64,
                        }
                    );
                    if let Some(msg) = msg {
                        let _ = self.fabric_task.send(self.id, 0, msg);
                    }
                    self.computing.fetch_sub(1, Ordering::AcqRel);
                    self.maybe_request_steal();
                    self.maybe_goodbye();
                }
            }
        }
    }

    /// Sleeps for the modeled compute cost of `units` row-attribute touches
    /// (no-op when the work model is off). See `ClusterConfig::work_ns_per_unit`.
    fn model_work(&self, units: u64) {
        if self.work_ns_per_unit > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(
                units.saturating_mul(self.work_ns_per_unit),
            ));
        }
    }

    /// Runs the exact-split engine over each assigned column for one node,
    /// folding the winners with the canonical tie-break (challenger order is
    /// `plan.cols` order, the same on both kernel paths).
    #[allow(clippy::too_many_arguments)]
    fn best_exact_split(
        &self,
        store: &HashMap<usize, Arc<Column>>,
        sorted_store: &HashMap<usize, Arc<SortedColumn>>,
        cols: &[usize],
        node: NodeRows<'_>,
        mask: Option<&RowBitmap>,
        view: LabelView<'_>,
        imp: Impurity,
    ) -> Option<(usize, ColumnSplit)> {
        let mut best: Option<(usize, ColumnSplit)> = None;
        for &attr in cols {
            let col = store.get(&attr).expect("assigned column must be held");
            let index = sorted_store.get(&attr).expect("sorted index must be held");
            let cref = ColumnRef::of_column(col, index, self.attr_types[attr]);
            if let Some(s) = best_split_at(cref, node, mask, view, imp) {
                let wins = match &best {
                    None => true,
                    Some((battr, bs)) => ColumnSplit::challenger_wins(&s, attr, bs, *battr),
                };
                if wins {
                    best = Some((attr, s));
                }
            }
        }
        best
    }

    fn compute_column_task(&self, plan: ColumnPlan, ix: RowSet) -> Option<TaskMsg> {
        // Both split engines touch every (row, column) pair of the task once,
        // so the modeled compute charge is identical — the histogram path's
        // savings are wire bytes and the extra tree level of candidates the
        // master never has to rank, not scan work.
        self.model_work(ix.len(self.n_rows) as u64 * plan.cols.len() as u64);
        if plan.random_seed.is_none() {
            if let Some(conf) = plan.hist {
                return self.compute_hist_column_task(plan, ix, conf);
            }
        }
        let y = self.labels.read().clone();
        let view = LabelView::of(&y, self.n_classes());
        let node_stats = match &ix {
            RowSet::All => NodeStats::from_view(view),
            RowSet::Ids(v) => NodeStats::from_view_positions(view, v.iter().map(|&r| r as usize)),
        };

        let store = self.columns.read();
        let sorted_store = self.sorted.read();
        let mut best: Option<(usize, ColumnSplit)> = None;
        if let Some(seed) = plan.random_seed {
            // Extra-trees: try this worker's columns in seeded random order,
            // accepting the first random split that separates anything.
            // Random splits draw from the gathered node buffer, so this arm
            // keeps the gather path (and a gathered label view to match).
            let labels = ix.gather_labels(&y, self.n_rows);
            let gathered_view = LabelView::of(&labels, self.n_classes());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order = plan.cols.clone();
            order.shuffle(&mut rng);
            for attr in order {
                let col = store.get(&attr).expect("assigned column must be held");
                let buf = ix.gather(col, self.n_rows);
                if let Some(s) = random_split_for_column(&buf, gathered_view, &mut rng) {
                    best = Some((attr, s));
                    break;
                }
            }
        } else {
            // Exact splits: run the sorted-column engine over the full
            // resident columns — no per-task gather. `Ix` is always strictly
            // ascending, so the engine's scans visit rows in the same order
            // a gather-then-scan would (see `ts_splits::sorted`).
            best = match &ix {
                RowSet::All => self.best_exact_split(
                    &store,
                    &sorted_store,
                    &plan.cols,
                    NodeRows::All(self.n_rows),
                    None,
                    view,
                    plan.params.impurity,
                ),
                RowSet::Ids(v) => with_node_mask(self.n_rows, v, |mask| {
                    self.best_exact_split(
                        &store,
                        &sorted_store,
                        &plan.cols,
                        NodeRows::Subset(v),
                        Some(mask),
                        view,
                        plan.params.impurity,
                    )
                }),
            };
        }

        let best_full = best.map(|(attr, split)| {
            let seen = match self.attr_types[attr] {
                AttrType::Categorical { n_values } => match &ix {
                    // The whole-column category set is precomputed on the
                    // sorted index; subsets scan the node's rows only.
                    RowSet::All => Some(
                        sorted_store
                            .get(&attr)
                            .expect("sorted index must be held")
                            .distinct()
                            .to_vec(),
                    ),
                    RowSet::Ids(v) => {
                        let codes = store
                            .get(&attr)
                            .expect("held")
                            .as_categorical()
                            .expect("categorical winner must be a categorical column");
                        Some(distinct_categories_at(codes, NodeRows::Subset(v), n_values))
                    }
                },
                AttrType::Numeric => None,
            };
            (attr, split, seen)
        });
        drop(sorted_store);
        drop(store);

        // Keep Ix (and the winning condition) until the master's verdict —
        // *before* sending the result, so ConfirmBest can never miss it.
        {
            let mut st = self.state.lock();
            if st.revoked.contains(&plan.tree) {
                self.stats.mem_free(self.id, ix_bytes(&ix));
                return None;
            }
            st.awaiting.insert(
                plan.task,
                AwaitingVerdict {
                    tree: plan.tree,
                    ix,
                    imp: plan.params.impurity,
                    winning: best_full
                        .as_ref()
                        .map(|(a, s, _)| (*a, s.test.clone(), s.missing_left)),
                },
            );
        }
        let best = best_full.map(|(attr, split, seen)| ColumnTaskBest { attr, split, seen });
        Some(TaskMsg::ColumnResult {
            task: plan.task,
            worker: self.id,
            best,
            node_stats,
            ctx: plan.ctx,
        })
    }

    /// One column through the histogram engine over a node's rows.
    fn hist_split_for(
        &self,
        store: &HashMap<usize, Arc<Column>>,
        binned_store: &HashMap<usize, Arc<BinnedColumn>>,
        attr: usize,
        ix: &RowSet,
        view: LabelView<'_>,
        imp: Impurity,
    ) -> Option<ColumnSplit> {
        let col = store.get(&attr).expect("assigned column must be held");
        let cref = HistColumnRef::of_column(
            col,
            binned_store.get(&attr).map(|b| &**b),
            self.attr_types[attr],
        );
        match ix {
            RowSet::All => best_hist_split_at(cref, NodeRows::All(self.n_rows), view, imp),
            RowSet::Ids(v) => best_hist_split_at(cref, NodeRows::Subset(v), view, imp),
        }
    }

    /// Histogram-mode column task (`--splitter hist`): score every assigned
    /// column with the quantized kernel, nominate the local top `vote_k`
    /// candidate gains, and park `Ix` awaiting the master's election. The
    /// full split of the elected attribute is shipped only on `HistFetch`.
    fn compute_hist_column_task(
        &self,
        plan: ColumnPlan,
        ix: RowSet,
        conf: HistPlanConf,
    ) -> Option<TaskMsg> {
        let y = self.labels.read().clone();
        let view = LabelView::of(&y, self.n_classes());
        // Only the designated stats shard ships node stats: one copy per
        // task is enough for the master's leaf checks.
        let node_stats = if conf.want_stats {
            Some(match &ix {
                RowSet::All => NodeStats::from_view(view),
                RowSet::Ids(v) => {
                    NodeStats::from_view_positions(view, v.iter().map(|&r| r as usize))
                }
            })
        } else {
            None
        };
        let cands = {
            let store = self.columns.read();
            let binned_store = self.binned.read();
            let mut cands = Vec::with_capacity(plan.cols.len());
            for &attr in &plan.cols {
                if let Some(split) = self.hist_split_for(
                    &store,
                    &binned_store,
                    attr,
                    &ix,
                    view,
                    plan.params.impurity,
                ) {
                    cands.push(HistCandidate {
                        attr,
                        gain: split.gain,
                    });
                }
            }
            cands
        };
        let cands = top_k_candidates(cands, conf.vote_k as usize);
        // Keep Ix until the verdict — before sending, so HistFetch (or
        // DropTask) can never miss it. The winning condition is unknown
        // until the master elects an attribute.
        {
            let mut st = self.state.lock();
            if st.revoked.contains(&plan.tree) {
                self.stats.mem_free(self.id, ix_bytes(&ix));
                return None;
            }
            st.awaiting.insert(
                plan.task,
                AwaitingVerdict {
                    tree: plan.tree,
                    ix,
                    imp: plan.params.impurity,
                    winning: None,
                },
            );
        }
        Some(TaskMsg::HistNominate {
            task: plan.task,
            worker: self.id,
            cands: cands.into_iter().map(|c| (c.attr, c.gain)).collect(),
            node_stats,
            ctx: plan.ctx,
        })
    }

    /// The master elected one of our nominated attributes: recompute its
    /// full split over the retained `Ix` (same kernel, same rows, same
    /// criterion — the gain is bit-identical to the nominated one), remember
    /// the winning condition for the `ConfirmBest` that follows on this same
    /// FIFO edge, and ship the full result.
    fn on_hist_fetch(&self, task: TaskId, attr: usize, ctx: TraceCtx) {
        let (ix, imp) = {
            let st = self.state.lock();
            match st.awaiting.get(&task) {
                Some(av) => (av.ix.clone(), av.imp),
                None => return, // tree revoked while the election was in flight
            }
        };
        let best_full = {
            let _busy = BusyGuard::start(&self.stats, self.id);
            // The recount is real extra compute the histogram path pays:
            // one column's share of the task's modeled work, a second time.
            self.model_work(ix.len(self.n_rows) as u64);
            let y = self.labels.read().clone();
            let view = LabelView::of(&y, self.n_classes());
            let store = self.columns.read();
            let binned_store = self.binned.read();
            let split = self.hist_split_for(&store, &binned_store, attr, &ix, view, imp);
            split.map(|split| {
                let seen = match self.attr_types[attr] {
                    AttrType::Categorical { n_values } => match &ix {
                        RowSet::All => Some(
                            self.sorted
                                .read()
                                .get(&attr)
                                .expect("sorted index must be held")
                                .distinct()
                                .to_vec(),
                        ),
                        RowSet::Ids(v) => {
                            let codes = store
                                .get(&attr)
                                .expect("held")
                                .as_categorical()
                                .expect("categorical winner must be a categorical column");
                            Some(distinct_categories_at(codes, NodeRows::Subset(v), n_values))
                        }
                    },
                    AttrType::Numeric => None,
                };
                (split, seen)
            })
        };
        {
            let mut st = self.state.lock();
            let Some(av) = st.awaiting.get_mut(&task) else {
                return; // revoked during the recount: the master forgot us too
            };
            av.winning = best_full
                .as_ref()
                .map(|(s, _)| (attr, s.test.clone(), s.missing_left));
        }
        let best = best_full.map(|(split, seen)| ColumnTaskBest { attr, split, seen });
        let _ = self.fabric_task.send(
            self.id,
            0,
            TaskMsg::HistBest {
                task,
                worker: self.id,
                best,
                ctx,
            },
        );
    }

    fn compute_subtree_task(
        &self,
        plan: SubtreePlan,
        ix: RowSet,
        mut remote_bufs: HashMap<usize, ValuesBuf>,
    ) -> Option<TaskMsg> {
        let remote_bytes: usize = remote_bufs.values().map(ValuesBuf::payload_bytes).sum();
        if self.state.lock().revoked.contains(&plan.tree) {
            self.stats.mem_free(self.id, ix_bytes(&ix) + remote_bytes);
            return None;
        }
        let n_ix = ix.len(self.n_rows) as u64;
        let log = 64 - n_ix.max(2).leading_zeros() as u64;
        self.model_work(n_ix * plan.col_sources.len() as u64 * log);
        // Assemble Dx: columns in plan order (sorted by attr id), gathering
        // locally-held columns now.
        let store = self.columns.read();
        let mut attrs = Vec::with_capacity(plan.col_sources.len());
        let mut types = Vec::with_capacity(plan.col_sources.len());
        let mut columns = Vec::with_capacity(plan.col_sources.len());
        let mut local_bytes = 0usize;
        for &(attr, holder) in &plan.col_sources {
            let buf = if holder == self.id {
                let col = store.get(&attr).expect("local column must be held");
                let b = ix.gather(col, self.n_rows);
                local_bytes += b.payload_bytes();
                b
            } else {
                remote_bufs.remove(&attr).expect("remote column buffered")
            };
            attrs.push(attr);
            types.push(self.attr_types[attr]);
            columns.push(buf);
        }
        drop(store);
        self.stats.mem_alloc(self.id, local_bytes);
        let labels = {
            let y = self.labels.read().clone();
            ix.gather_labels(&y, self.n_rows)
        };
        let data = LocalDataset::new(attrs, types, columns, labels, self.current_task());

        let params = TrainParams {
            impurity: plan.params.impurity,
            dmax: plan.params.dmax,
            tau_leaf: plan.params.tau_leaf,
            mode: if plan.params.extra_trees {
                TrainMode::ExtraTrees
            } else {
                TrainMode::Exact
            },
            // Subtree-tasks stay single-threaded: parallelism in the
            // simulated cluster comes from the comper pool, and the column
            // loop must not oversubscribe it.
            threads: 1,
        };
        let subtree = train_subtree(&data, &params, plan.depth, plan.seed);
        drop(data);
        self.stats
            .mem_free(self.id, local_bytes + remote_bytes + ix_bytes(&ix));

        Some(TaskMsg::SubtreeResult {
            task: plan.task,
            worker: self.id,
            subtree,
            ctx: plan.ctx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(l: usize, r: usize) -> DelegateEntry {
        DelegateEntry {
            tree: TreeId(1),
            sides: [Some(vec![0; l]), Some(vec![0; r])],
            quota: [None, None],
            served: [0, 0],
        }
    }

    #[test]
    fn delegate_releases_only_when_quota_known_and_served() {
        let mut e = entry(3, 2);
        assert_eq!(e.release_satisfied(), 0, "no quota yet");
        e.quota[0] = Some(2);
        e.served[0] = 1;
        assert_eq!(e.release_satisfied(), 0, "left not fully served");
        e.served[0] = 2;
        assert_eq!(e.release_satisfied(), 12, "left freed (3 rows x 4 bytes)");
        assert!(e.sides[0].is_none());
        assert!(!e.done(), "right quota unknown");
        e.quota[1] = Some(0);
        assert_eq!(
            e.release_satisfied(),
            8,
            "right freed immediately at quota 0"
        );
        assert!(e.done());
    }

    #[test]
    fn delegate_release_is_idempotent() {
        let mut e = entry(1, 1);
        e.quota = [Some(0), Some(0)];
        assert_eq!(e.release_satisfied(), 8);
        assert_eq!(e.release_satisfied(), 0, "second call frees nothing");
    }

    #[test]
    fn ix_bytes_counts_only_materialised_sets() {
        assert_eq!(ix_bytes(&RowSet::All), 0);
        assert_eq!(ix_bytes(&RowSet::Ids(Arc::new(vec![1, 2, 3]))), 12);
    }

    #[test]
    fn pending_task_reports_its_tree() {
        let serve = PendingTask::Serve {
            tree: TreeId(7),
            attrs: vec![0],
            key_worker: 1,
            ctx: TraceCtx::NONE,
        };
        assert_eq!(serve.tree(), TreeId(7));
    }
}
