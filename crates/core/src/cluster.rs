//! The user-facing cluster handle: launch machines, submit jobs, collect
//! models, inject faults, and read statistics.

use crate::assign::ColumnMap;
use crate::config::ClusterConfig;
use crate::job::{JobHandle, JobResult, JobSpec};
use crate::master::Master;
use crate::messages::{DataMsg, TaskMsg};
use crate::worker::Worker;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ts_datatable::{AttrType, DataTable, Labels, Task};
use ts_netsim::{Fabric, FabricReceiver, NetStats, NodeId, RetryDriver};
use tschan::sync::Mutex;
use tschan::Receiver;

/// Summary statistics of a cluster run, in the units the paper reports.
#[derive(Debug, Clone, tsjson::Serialize)]
pub struct ClusterReport {
    /// Wall-clock since launch.
    pub elapsed: Duration,
    /// Average CPU percentage per worker (busy compute time / elapsed; >100
    /// with multiple compers), averaged over workers.
    pub avg_cpu_percent: f64,
    /// Average send throughput per worker in Mbit/s.
    pub avg_send_mbps: f64,
    /// Master outbound bytes (the §V bottleneck under scrutiny).
    pub master_sent_bytes: u64,
    /// Split-phase bytes that differ *by splitter mode* (requires `obs`):
    /// full `ColumnResult` payloads received by the master in exact mode.
    pub split_bytes_sent: u64,
    /// Histogram-mode counterpart: nomination + fetch + elected-result
    /// bytes on the master↔worker split plane (requires `obs`).
    pub hist_bytes_sent: u64,
    /// Peak tracked memory per worker in bytes, averaged over workers.
    pub avg_peak_mem_bytes: f64,
    /// Per-machine snapshots (index 0 = master).
    pub per_node: Vec<ts_netsim::NodeSnapshot>,
}

impl ClusterReport {
    /// Builds a report from raw statistics. Worker averages are over
    /// machines `1..n`; with no workers they are 0, not NaN.
    pub fn from_stats(stats: &NetStats, elapsed: Duration) -> ClusterReport {
        let per_node = stats.snapshot_all();
        let n_workers = per_node.len().saturating_sub(1);
        let avg = |f: &dyn Fn(usize) -> f64| {
            if n_workers == 0 {
                0.0
            } else {
                (1..per_node.len()).map(f).sum::<f64>() / n_workers as f64
            }
        };
        #[cfg(feature = "obs")]
        let (split_bytes_sent, hist_bytes_sent) = stats.recorder().map_or((0, 0), |r| {
            let reg = r.registry();
            (
                reg.counter("split_bytes_sent").get(),
                reg.counter("hist_bytes_sent").get(),
            )
        });
        #[cfg(not(feature = "obs"))]
        let (split_bytes_sent, hist_bytes_sent) = (0, 0);
        ClusterReport {
            elapsed,
            avg_cpu_percent: avg(&|w| stats.cpu_percent(w, elapsed)),
            avg_send_mbps: avg(&|w| stats.send_mbps(w, elapsed)),
            master_sent_bytes: per_node.first().map_or(0, |m| m.sent_bytes),
            split_bytes_sent,
            hist_bytes_sent,
            avg_peak_mem_bytes: avg(&|w| per_node[w].mem_peak as f64),
            per_node,
        }
    }
}

impl std::fmt::Display for ClusterReport {
    /// A human-readable table in the paper's units (Table VI columns:
    /// elapsed, CPU rate, send throughput, master outbound, peak memory).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster report ({} machines, master + {} workers)",
            self.per_node.len(),
            self.per_node.len().saturating_sub(1)
        )?;
        writeln!(f, "  elapsed          {:>10.2?}", self.elapsed)?;
        writeln!(f, "  avg worker CPU   {:>10.1} %", self.avg_cpu_percent)?;
        writeln!(f, "  avg worker send  {:>10.2} Mbps", self.avg_send_mbps)?;
        writeln!(
            f,
            "  master sent      {:>10.2} MB",
            self.master_sent_bytes as f64 / 1e6
        )?;
        writeln!(
            f,
            "  avg peak mem     {:>10.2} MB",
            self.avg_peak_mem_bytes / 1e6
        )?;
        if self.split_bytes_sent > 0 {
            writeln!(
                f,
                "  split results    {:>10.2} KB (exact ColumnResult payloads)",
                self.split_bytes_sent as f64 / 1e3
            )?;
        }
        if self.hist_bytes_sent > 0 {
            writeln!(
                f,
                "  hist votes+fetch {:>10.2} KB (nominations, fetches, elected results)",
                self.hist_bytes_sent as f64 / 1e3
            )?;
        }
        for (i, snap) in self.per_node.iter().enumerate() {
            let name = if i == 0 {
                "master ".to_string()
            } else {
                format!("worker{i}")
            };
            writeln!(f, "  {name}  {snap}")?;
        }
        Ok(())
    }
}

/// A pre-provisioned worker slot waiting for a mid-training join
/// (`ts-elastic`): its fabric receivers are parked here until
/// [`Cluster::join_worker`] spawns the machine.
struct SpareSlot {
    id: NodeId,
    task_rx: FabricReceiver<TaskMsg>,
    data_rx: FabricReceiver<DataMsg>,
}

/// Everything needed to spawn a joiner after launch. Shared (via `Arc`)
/// between the cluster handle and the scripted-membership orchestrator
/// thread.
struct ElasticCtx {
    labels: Arc<Labels>,
    attr_types: Arc<Vec<AttrType>>,
    task: Task,
    compers_per_worker: usize,
    heartbeat_interval: Duration,
    steal: bool,
    /// Bin budget when the cluster runs the histogram splitter: joiners
    /// must build the same bin indices the launch roster did.
    hist_bins: Option<usize>,
    /// Modeled per-unit compute cost per slot id (config × fault-plan
    /// heterogeneity, resolved at launch).
    work_ns: HashMap<NodeId, u64>,
    /// Unused spare slots, lowest id last (so `pop` joins in id order).
    spares: Mutex<Vec<SpareSlot>>,
    /// Thread handles of workers spawned after launch.
    joined_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ElasticCtx {
    /// Spawns the next spare slot as a live worker and fires its `Hello`
    /// handshake at the master. Returns the node id, or `None` when all
    /// spare slots are used up.
    fn join_one(
        &self,
        fabric_task: &Fabric<TaskMsg>,
        fabric_data: &Fabric<DataMsg>,
    ) -> Option<NodeId> {
        let slot = self.spares.lock().pop()?;
        let w = slot.id;
        // Joiners start column-less; the master's incremental rebalancing
        // streams columns over once the handshake lands.
        let handles = Worker::spawn(
            w,
            self.work_ns.get(&w).copied().unwrap_or(0),
            HashMap::new(),
            Arc::clone(&self.labels),
            Arc::clone(&self.attr_types),
            self.task,
            self.compers_per_worker,
            fabric_task.clone(),
            fabric_data.clone(),
            slot.task_rx,
            slot.data_rx,
            self.heartbeat_interval,
            self.steal,
            self.hist_bins,
        );
        self.joined_handles.lock().extend(handles);
        let _ = fabric_task.send(w, 0, TaskMsg::Hello { worker: w });
        Some(w)
    }
}

/// A running TreeServer cluster.
///
/// ```no_run
/// # use treeserver::{Cluster, ClusterConfig, JobSpec};
/// # use ts_datatable::synth::{generate, SynthSpec};
/// let table = generate(&SynthSpec::default());
/// let cluster = Cluster::launch(ClusterConfig::default(), &table);
/// let model = cluster.train(JobSpec::random_forest(table.schema().task, 20));
/// let report = cluster.shutdown();
/// # let _ = (model, report);
/// ```
pub struct Cluster {
    master: Arc<Master>,
    stats: Arc<NetStats>,
    fabric_task: Fabric<TaskMsg>,
    fabric_data: Fabric<DataMsg>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    pending: Mutex<HashMap<JobHandle, Receiver<JobResult>>>,
    /// Retransmission drivers of the reliable fabrics (present only when the
    /// fault plan injects message-level faults); stopped after the machine
    /// threads have joined.
    retry_drivers: Mutex<Vec<RetryDriver>>,
    task_kind: Task,
    n_rows: usize,
    launched: Instant,
    /// Spawn context for mid-training joins (`ts-elastic`).
    elastic: Arc<ElasticCtx>,
    /// Stops the scripted-membership orchestrator thread at shutdown.
    orch_stop: Arc<AtomicBool>,
    /// Split-kernel counter snapshot at launch: the engine's counters are
    /// process-global, so reports fold in the delta since this cluster came
    /// up (see [`ts_splits::sorted::kernel_counters`]).
    #[cfg(feature = "obs")]
    kernel_base: ts_splits::sorted::KernelCounters,
}

impl Cluster {
    /// Launches a cluster over an in-memory table: partitions the columns
    /// among workers (round-robin with replication `k`), replicates `Y`
    /// everywhere, and starts the master and worker threads.
    pub fn launch(cfg: ClusterConfig, table: &DataTable) -> Cluster {
        let mut cfg = cfg;
        // A fault plan scripting joins raises the spare-slot provisioning
        // implicitly: the fabric is fixed-size, so every future member needs
        // its node id (and receivers) from the start.
        if let Some((_, n)) = cfg.faults.as_ref().and_then(|p| p.worker_join()) {
            cfg.join_capacity = cfg.join_capacity.max(n);
        }
        cfg.validate();
        let n_nodes = cfg.total_worker_slots() + 1;
        let stats = NetStats::new(n_nodes);
        #[cfg(feature = "obs")]
        if cfg.obs.enabled {
            stats.set_recorder(Arc::new(ts_obs::Recorder::new(n_nodes, &cfg.obs)));
        }
        // With a fault plan that drops/delays/duplicates messages, both
        // planes run the reliable (acked + retried) protocol; otherwise
        // these are plain raw fabrics with zero overhead.
        let (fabric_task, mut task_rxs, task_driver) = Fabric::<TaskMsg>::new_reliable(
            n_nodes,
            cfg.net,
            Arc::clone(&stats),
            cfg.faults.clone(),
            ts_netsim::SimClock::wall(),
            cfg.retry,
        );
        let (fabric_data, mut data_rxs, data_driver) = Fabric::<DataMsg>::new_reliable(
            n_nodes,
            cfg.net,
            Arc::clone(&stats),
            cfg.faults.clone(),
            ts_netsim::SimClock::wall(),
            cfg.retry,
        );
        let retry_drivers: Vec<RetryDriver> = task_driver.into_iter().chain(data_driver).collect();

        let colmap = ColumnMap::round_robin(table.n_attrs(), cfg.n_workers, cfg.replication);
        let labels = Arc::new(table.labels().clone());
        let attr_types = Arc::new(
            (0..table.n_attrs())
                .map(|a| table.schema().attr_type(a))
                .collect::<Vec<_>>(),
        );
        let shared_cols: Vec<Arc<ts_datatable::Column>> = table
            .columns()
            .iter()
            .map(|c| Arc::new(c.clone()))
            .collect();

        let mut handles = Vec::new();
        // Receivers must be taken in reverse so indices stay valid.
        let mut task_rxs_opt: Vec<Option<FabricReceiver<TaskMsg>>> =
            task_rxs.drain(..).map(Some).collect();
        let mut data_rxs_opt: Vec<Option<FabricReceiver<DataMsg>>> =
            data_rxs.drain(..).map(Some).collect();

        // Per-worker rate: `work_scale` (config) and the fault plan's
        // `with_work_scale` both model heterogeneous machines (a slow
        // worker is the target of stealing and the natural preemption
        // victim). The plan's factor also covers spare slots, which the
        // config vector (sized to the initial roster) cannot name.
        let work_ns_for = |w: NodeId| -> u64 {
            let plan_scale = cfg.faults.as_ref().map_or(1.0, |p| p.work_scale(w));
            (cfg.worker_work_ns(w) as f64 * plan_scale).round() as u64
        };
        for w in 1..=cfg.n_workers {
            let mut cols = HashMap::new();
            for a in colmap.columns_of(w) {
                cols.insert(a, Arc::clone(&shared_cols[a]));
            }
            handles.extend(Worker::spawn(
                w,
                work_ns_for(w),
                cols,
                Arc::clone(&labels),
                Arc::clone(&attr_types),
                table.schema().task,
                cfg.compers_per_worker,
                fabric_task.clone(),
                fabric_data.clone(),
                task_rxs_opt[w].take().expect("receiver taken once"),
                data_rxs_opt[w].take().expect("receiver taken once"),
                cfg.heartbeat_interval,
                cfg.steal,
                cfg.splitter.hist_bins(),
            ));
        }

        let master = Master::new(
            cfg.clone(),
            table.n_rows(),
            table.n_attrs(),
            table.schema().task,
            colmap,
            fabric_task.clone(),
        );
        master.init_load_matrix(n_nodes);
        {
            let m = Arc::clone(&master);
            handles.push(
                std::thread::Builder::new()
                    .name("master-main".into())
                    .spawn(move || m.main_loop())
                    .expect("spawn master main"),
            );
        }
        {
            let m = Arc::clone(&master);
            let rx = task_rxs_opt[0].take().expect("master receiver");
            handles.push(
                std::thread::Builder::new()
                    .name("master-recv".into())
                    .spawn(move || m.recv_loop(rx))
                    .expect("spawn master recv"),
            );
        }
        // The master has no data-plane loop (§V: it never relays Ix);
        // dropping its receiver is deliberate.
        drop(data_rxs_opt[0].take());

        // Park the spare slots' receivers for mid-training joins, lowest id
        // last so `join_one` pops them in id order.
        let mut spares: Vec<SpareSlot> = (cfg.n_workers + 1..=cfg.total_worker_slots())
            .map(|w| SpareSlot {
                id: w,
                task_rx: task_rxs_opt[w].take().expect("spare receiver taken once"),
                data_rx: data_rxs_opt[w].take().expect("spare receiver taken once"),
            })
            .collect();
        spares.reverse();
        let elastic = Arc::new(ElasticCtx {
            labels,
            attr_types,
            task: table.schema().task,
            compers_per_worker: cfg.compers_per_worker,
            heartbeat_interval: cfg.heartbeat_interval,
            steal: cfg.steal,
            hist_bins: cfg.splitter.hist_bins(),
            work_ns: (1..=cfg.total_worker_slots())
                .map(|w| (w, work_ns_for(w)))
                .collect(),
            spares: Mutex::new(spares),
            joined_handles: Mutex::new(Vec::new()),
        });

        // Scripted membership events (`FaultPlan::with_worker_join` /
        // `with_preemption`) fire from a small orchestrator thread that
        // watches the fabric clock — real or virtual, the same comparison
        // works, which keeps seeded replays deterministic.
        let orch_stop = Arc::new(AtomicBool::new(false));
        let membership = cfg
            .faults
            .as_ref()
            .filter(|p| p.affects_membership())
            .map(|p| (p.worker_join(), p.preemption()));
        if let Some((mut join_ev, mut preempt_ev)) = membership {
            let ctx = Arc::clone(&elastic);
            let ft = fabric_task.clone();
            let fd = fabric_data.clone();
            let m = Arc::clone(&master);
            let clock = fabric_task.clock().clone();
            let stop = Arc::clone(&orch_stop);
            handles.push(
                std::thread::Builder::new()
                    .name("membership-orch".into())
                    .spawn(move || {
                        while (join_ev.is_some() || preempt_ev.is_some())
                            && !stop.load(Ordering::Acquire)
                        {
                            let now = clock.now_ns();
                            if let Some((at, n)) = join_ev {
                                if now >= at {
                                    for _ in 0..n {
                                        ctx.join_one(&ft, &fd);
                                    }
                                    join_ev = None;
                                }
                            }
                            if let Some((at, victim, grace_ns)) = preempt_ev {
                                if now >= at {
                                    m.begin_drain(victim, Duration::from_nanos(grace_ns));
                                    preempt_ev = None;
                                }
                            }
                            // Real sleep on purpose: under a virtual clock
                            // the poll just re-reads the advanced time.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    })
                    .expect("spawn membership orchestrator"),
            );
        }

        Cluster {
            master,
            stats,
            fabric_task,
            fabric_data,
            handles: Mutex::new(handles),
            pending: Mutex::new(HashMap::new()),
            retry_drivers: Mutex::new(retry_drivers),
            task_kind: table.schema().task,
            n_rows: table.n_rows(),
            launched: Instant::now(),
            elastic,
            orch_stop,
            #[cfg(feature = "obs")]
            kernel_base: ts_splits::sorted::kernel_counters(),
        }
    }

    /// Brings one pre-provisioned spare slot online as a live worker
    /// (`ts-elastic` mid-training join): the machine spawns column-less,
    /// handshakes with the master (`Hello`/`Welcome`), receives its share
    /// of columns by incremental migration, and starts taking plans
    /// immediately. Returns the new worker's node id, or `None` when the
    /// `join_capacity` spare slots are all used.
    pub fn join_worker(&self) -> Option<NodeId> {
        self.elastic.join_one(&self.fabric_task, &self.fabric_data)
    }

    /// Announces a spot preemption of `worker` with a grace window
    /// (`ts-elastic`): the master drains it — no new plans, queued plans
    /// reclaimed, columns handed off — and retires it cleanly once its
    /// in-flight work finishes. A drain that outlives `grace` escalates to
    /// ordinary crash recovery. Compare [`Cluster::kill_worker`], the
    /// unannounced variant.
    pub fn preempt_worker(&self, worker: NodeId, grace: Duration) {
        assert!(worker >= 1, "cannot preempt the master");
        self.master.begin_drain(worker, grace);
    }

    /// Whether `worker` is currently mid-drain.
    pub fn is_draining(&self, worker: NodeId) -> bool {
        self.master.is_draining(worker)
    }

    /// The currently live workers (roster order).
    pub fn live_workers(&self) -> Vec<NodeId> {
        self.master.live_workers()
    }

    /// Launches a cluster whose workers load their columns from a dataset in
    /// the simulated DFS (the paper's normal deployment: "loads data in
    /// parallel from HDFS"). The per-file connection cost of the DFS applies.
    pub fn launch_from_dfs(
        cfg: ClusterConfig,
        dfs: &ts_dfs::Dfs,
        dataset: &str,
    ) -> Result<Cluster, ts_dfs::DfsError> {
        let table = dfs.open(dataset)?.load_all()?;
        Ok(Cluster::launch(cfg, &table))
    }

    /// Submits a job without blocking.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let (handle, rx) = self.master.submit(spec);
        self.pending.lock().insert(handle, rx);
        handle
    }

    /// Blocks until a submitted job completes and returns its model.
    ///
    /// # Panics
    /// Panics if the handle is unknown or was already waited on.
    pub fn wait(&self, handle: JobHandle) -> JobResult {
        let rx = self
            .pending
            .lock()
            .remove(&handle)
            .expect("unknown or already-waited job handle");
        rx.recv().expect("master dropped the job notifier")
    }

    /// Convenience: submit + wait.
    pub fn train(&self, spec: JobSpec) -> JobResult {
        let h = self.submit(spec);
        self.wait(h)
    }

    /// The prediction task of the loaded table.
    pub fn task(&self) -> Task {
        self.task_kind
    }

    /// Replaces the replicated target column `Y` on every worker — the
    /// re-labelling step between boosting rounds (see [`crate::gbt`]).
    ///
    /// The broadcast is accounted and paced like any other transfer. Callers
    /// must quiesce first (wait for all submitted jobs): in-flight tasks of
    /// an old round would otherwise mix label versions.
    ///
    /// # Panics
    /// Panics if the length differs from the table's row count or jobs are
    /// still pending.
    pub fn update_labels(&self, labels: &ts_datatable::Labels) {
        assert!(
            self.pending.lock().is_empty(),
            "update_labels while jobs are pending — wait() on them first"
        );
        assert_eq!(
            labels.len(),
            self.n_rows,
            "label column length must match the table's row count"
        );
        let workers = self.master.live_workers();
        for w in workers {
            let _ = self.fabric_task.send(
                0,
                w,
                TaskMsg::LoadLabels {
                    labels: labels.clone(),
                },
            );
        }
        self.master.set_data_task(match labels {
            ts_datatable::Labels::Real(_) => Task::Regression,
            ts_datatable::Labels::Class(_) => self.task_kind,
        });
    }

    /// Simulates an *announced* worker crash: the worker stops processing
    /// and the master immediately re-replicates its columns and restarts
    /// all in-flight trees. (A crash injected with
    /// `FaultPlan::with_crash_at_delegation` is the silent variant: the
    /// worker just goes dark and the heartbeat detector must find it.)
    ///
    /// If recovery is impossible (e.g. the worker held the last replica of
    /// a column), all pending jobs fail with a `JobResult::Failed` carrying
    /// the structured reason.
    pub fn kill_worker(&self, worker: NodeId) {
        assert!(worker >= 1, "cannot kill the master");
        let _ = self.fabric_task.send(0, worker, TaskMsg::Shutdown);
        let _ = self.fabric_data.send(0, worker, DataMsg::Shutdown);
        self.master.recover_or_degrade(worker);
    }

    /// Live statistics handle.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The attached event recorder, when `ClusterConfig::obs.enabled` was
    /// set at launch. Split-kernel counters are synced into the registry on
    /// every call, so `metrics_json()` always reflects the current deltas.
    #[cfg(feature = "obs")]
    pub fn obs(&self) -> Option<&Arc<ts_obs::Recorder>> {
        self.sync_kernel_counters();
        self.stats.recorder()
    }

    /// The rolling task-latency feed (p50/p95 of column- and subtree-task
    /// durations), when a recorder is attached. This is the read side of
    /// ROADMAP item 4's adaptive τ: schedulers can poll it cheaply while
    /// training runs.
    #[cfg(feature = "obs")]
    pub fn latency_feed(&self) -> Option<ts_obs::LatencyFeedSnapshot> {
        self.stats.recorder().map(|r| r.latency_feed().snapshot())
    }

    /// Reconstructs the span DAG from the rings and builds a `TraceReport`
    /// for the most recently finished job (critical path + phase breakdown).
    /// `None` without a recorder or before any job span closed.
    #[cfg(feature = "obs")]
    pub fn trace_report(&self) -> Option<ts_obs::TraceReport> {
        self.stats.recorder().and_then(|r| r.trace_report())
    }

    /// Folds the process-global split-kernel counters (delta since launch)
    /// into the recorder's metrics registry. Monotone: only the missing
    /// remainder is added, so repeated calls never double-count.
    #[cfg(feature = "obs")]
    fn sync_kernel_counters(&self) {
        let Some(rec) = self.stats.recorder() else {
            return;
        };
        let cur = ts_splits::sorted::kernel_counters();
        let reg = rec.registry();
        let sync = |name: &'static str, base: u64, now: u64| {
            let target = now.saturating_sub(base);
            let c = reg.counter(name);
            let have = c.get();
            if target > have {
                c.add(target - have);
            }
        };
        sync(
            "split_kernel_sorted_scans",
            self.kernel_base.numeric_sorted_scans,
            cur.numeric_sorted_scans,
        );
        sync(
            "split_kernel_gather_scans",
            self.kernel_base.numeric_gather_scans,
            cur.numeric_gather_scans,
        );
        sync(
            "split_scratch_pool_hits",
            self.kernel_base.pool_hits,
            cur.pool_hits,
        );
        sync(
            "split_scratch_pool_misses",
            self.kernel_base.pool_misses,
            cur.pool_misses,
        );
    }

    /// A point-in-time report in the paper's units.
    pub fn report(&self) -> ClusterReport {
        #[cfg(feature = "obs")]
        self.sync_kernel_counters();
        ClusterReport::from_stats(&self.stats, self.launched.elapsed())
    }

    /// Stops every machine and returns the final report. All submitted jobs
    /// must have been waited on first.
    pub fn shutdown(self) -> ClusterReport {
        assert!(
            self.pending.lock().is_empty(),
            "shutdown with jobs still pending — wait() on them first"
        );
        let report = self.report();
        self.orch_stop.store(true, Ordering::Release);
        self.master.request_shutdown();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
        for h in self.elastic.joined_handles.lock().drain(..) {
            let _ = h.join();
        }
        // Machine threads are gone; any frames still in flight can only
        // target dropped receivers, so the retry threads stop cleanly.
        for d in self.retry_drivers.lock().drain(..) {
            d.stop();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_with_zero_workers_is_finite() {
        // Regression: the worker averages used to divide by per_node.len()-1
        // and return NaN for a master-only stats set.
        let stats = NetStats::new(1);
        let r = ClusterReport::from_stats(&stats, Duration::ZERO);
        assert_eq!(r.avg_cpu_percent, 0.0);
        assert_eq!(r.avg_send_mbps, 0.0);
        assert_eq!(r.avg_peak_mem_bytes, 0.0);
        assert!(r.avg_cpu_percent.is_finite());
        assert_eq!(r.per_node.len(), 1);

        let empty = ClusterReport::from_stats(&NetStats::new(0), Duration::ZERO);
        assert_eq!(empty.master_sent_bytes, 0);
        assert!(empty.avg_peak_mem_bytes.is_finite());
    }

    #[test]
    fn report_serializes_and_displays() {
        let stats = NetStats::new(3);
        stats.record_send(0, 1, 1_000);
        stats.add_busy(1, Duration::from_millis(5));
        let r = ClusterReport::from_stats(&stats, Duration::from_secs(1));
        let json = tsjson::to_string(&r).expect("report serializes");
        assert!(json.contains("\"per_node\""), "{json}");
        assert!(json.contains("\"master_sent_bytes\":1000"), "{json}");
        let text = r.to_string();
        assert!(text.contains("master"), "{text}");
        assert!(text.contains("worker2"), "{text}");
        assert!(text.contains("Mbps"), "{text}");
    }
}
