//! ts-sched: the master's plan queue and the adaptive-τ controller.
//!
//! Two schedulers share one type, [`PlanQueue`]:
//!
//! - **Single-deque** (default): the paper-exact seed behaviour. One global
//!   deque; the hybrid BFS/DFS rule pushes small tasks to the head and big
//!   ones to the tail, `θ_main` pops the head. Byte-identical models and
//!   scheduling order to the pre-`ts-sched` engine.
//! - **Stealing** ([`PlanQueue::new_stealing`]): one deque per worker,
//!   keyed by each plan's *parent worker* (the machine already holding the
//!   task's row set `Ix` — the §VI cost model's affinity), plus a global
//!   deque for root plans. Dispatch is throttled to a per-worker in-flight
//!   cap, so the queue holds a master-side backlog: up to `cap` plans per
//!   worker are in flight (their column/`Ix` fetches overlapping the
//!   compers' current compute) while the rest wait where the scheduler can
//!   still re-route them. An idle worker (it sent a `StealRequest` frame)
//!   is served its own deque first, then the global deque, and otherwise
//!   **steals from the tail** of the most-loaded peer's deque — tails hold
//!   the big breadth-first tasks, so small depth-first tasks stay with the
//!   worker whose delegate already holds their `Ix` (the steal-order
//!   heuristic that preserves §VI affinity). Victim choice breaks deque-
//!   length ties by the §VI `COMP` load column.
//!
//! Either way the queue is condvar-signalled: pushes, completions, steal
//! requests and shutdown wake `θ_main` immediately instead of the seed's
//! blind `poll_sleep`.
//!
//! Changing *when* and *where* a plan is dispatched never changes the
//! trained model: all task randomness derives from the scheduling-invariant
//! root path (`mix_seed(tree_seed, path)`) and result folding is a total
//! order — `core/tests/sched_equiv.rs` locks this down against the
//! single-deque scheduler. The one exception is the τ_D boundary itself:
//! extra-trees resampling differs between column- and subtree-tasks, so
//! only *static*-τ runs are comparable for extra-trees models.
//!
//! [`TauController`] is the control half of the PR 6 `LatencyFeed`
//! measurement loop: it nudges `τ_D` from the subtree/column p50 ratio and
//! `τ_dfs` from column-latency dispersion, clamped to `[τ/4, 4τ]` around
//! the static configuration, and falls back to the statics whenever the
//! feed is too thin to trust.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;
use ts_netsim::NodeId;
use ts_obs::LatencyFeedSnapshot;
use tschan::sync::{Condvar, Mutex};

/// A steal performed by the scheduler: `thief` asked, `victim`'s deque
/// gave up its tail plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealInfo {
    /// The worker whose deque lost the plan.
    pub victim: NodeId,
    /// The idle worker whose request triggered the steal.
    pub thief: NodeId,
}

/// Consecutive empty-handed waits (with plans still queued) before the
/// failsafe force-pops past the in-flight cap. Normal operation never gets
/// here — every result arrival frees capacity and wakes the queue — but a
/// lost completion must degrade to the single-deque behaviour, not a hang.
const STALL_STRIKES: u32 = 32;

struct Inner<T> {
    /// The live worker roster (capacity checks; set by the master at
    /// launch and after crash recovery). Empty = unknown = no gating.
    workers: Vec<NodeId>,
    /// Root plans and (in single mode) everything else.
    global: VecDeque<T>,
    /// Per-worker affinity deques (stealing mode only).
    deques: BTreeMap<NodeId, VecDeque<T>>,
    /// Plans dispatched and not yet completed, per worker (stealing mode).
    outstanding: BTreeMap<NodeId, u64>,
    /// Workers whose `StealRequest` is pending, in arrival order.
    hungry: VecDeque<NodeId>,
    /// Total queued plans across all deques.
    len: usize,
    /// Consecutive timed-out waits that found plans but no capacity.
    stalls: u32,
}

impl<T> Inner<T> {
    fn empty() -> Inner<T> {
        Inner {
            workers: Vec::new(),
            global: VecDeque::new(),
            deques: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            hungry: VecDeque::new(),
            len: 0,
            stalls: 0,
        }
    }

    fn outstanding_of(&self, w: NodeId) -> u64 {
        self.outstanding.get(&w).copied().unwrap_or(0)
    }
}

/// The master's plan queue (see the module docs for the two modes).
///
/// Generic over the plan payload so scheduler policy is unit-testable
/// without dragging in the master's private plan descriptor.
pub struct PlanQueue<T> {
    steal: bool,
    /// Per-worker in-flight cap (stealing mode; `u64::MAX` = unbounded).
    cap: u64,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

impl<T> PlanQueue<T> {
    /// The seed scheduler: one global deque, no throttling, no stealing.
    pub fn new_single() -> PlanQueue<T> {
        PlanQueue {
            steal: false,
            cap: u64::MAX,
            inner: Mutex::new(Inner::empty()),
            cv: Condvar::new(),
        }
    }

    /// The stealing scheduler with a per-worker in-flight cap (`cap >= 1`).
    pub fn new_stealing(cap: usize) -> PlanQueue<T> {
        assert!(cap >= 1, "stealing needs a positive in-flight cap");
        PlanQueue {
            steal: true,
            cap: cap as u64,
            inner: Mutex::new(Inner::empty()),
            cv: Condvar::new(),
        }
    }

    /// Sets the live worker roster (capacity checks for global plans).
    /// Called at launch and after crash recovery shrinks the cluster.
    pub fn set_workers(&self, workers: &[NodeId]) {
        self.inner.lock().workers = workers.to_vec();
        self.cv.notify_all();
    }

    /// Whether this queue runs the stealing scheduler.
    pub fn stealing(&self) -> bool {
        self.steal
    }

    /// Queues a plan and wakes the assignment loop. `affinity` is the plan's
    /// parent worker (`None` for roots); `dfs` is the hybrid rule's verdict
    /// (`|Dx| <= τ_dfs` → head). Returns the total queue length after the
    /// push, for the `BplanPush` observability event.
    pub fn push(&self, item: T, affinity: Option<NodeId>, dfs: bool) -> usize {
        let mut inner = self.inner.lock();
        let q = match affinity {
            Some(w) if self.steal => inner.deques.entry(w).or_default(),
            _ => &mut inner.global,
        };
        if dfs {
            q.push_front(item);
        } else {
            q.push_back(item);
        }
        inner.len += 1;
        inner.stalls = 0;
        let len = inner.len;
        drop(inner);
        self.cv.notify_all();
        len
    }

    /// Records a worker's `StealRequest`: its compers ran dry, so the next
    /// pop serves it first (stealing if its own deque is empty). No-op in
    /// single mode. Duplicate pending requests collapse.
    pub fn mark_hungry(&self, worker: NodeId) {
        if self.steal {
            let mut inner = self.inner.lock();
            if !inner.hungry.contains(&worker) {
                inner.hungry.push_back(worker);
            }
            drop(inner);
        }
        self.cv.notify_all();
    }

    /// Charges one in-flight plan to each involved worker at dispatch.
    pub fn note_dispatched(&self, workers: &[NodeId]) {
        if !self.steal {
            return;
        }
        let mut inner = self.inner.lock();
        for &w in workers {
            *inner.outstanding.entry(w).or_insert(0) += 1;
        }
    }

    /// Releases one in-flight charge when a worker's result arrives
    /// (saturating: recovery resets charges that results may still chase).
    pub fn note_completed(&self, worker: NodeId) {
        if !self.steal {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(o) = inner.outstanding.get_mut(&worker) {
            *o = o.saturating_sub(1);
        }
        inner.stalls = 0;
        drop(inner);
        self.cv.notify_all();
    }

    /// Whether any queued plan (global or affinity) matches `pred`. Used by
    /// the drain state machine to hold a leaver's departure while queued
    /// plans still reference it as their `Ix` parent.
    pub fn any_match(&self, pred: impl Fn(&T) -> bool) -> bool {
        let inner = self.inner.lock();
        inner
            .global
            .iter()
            .chain(inner.deques.values().flatten())
            .any(pred)
    }

    /// Removes a worker's affinity deque and returns its queued plans so
    /// the caller can re-queue them elsewhere (graceful drain, `ts-elastic`).
    /// Also forgets the worker's in-flight accounting and any pending steal
    /// request — the worker is leaving, nothing will complete or be served.
    /// The caller is expected to follow up with [`PlanQueue::set_workers`]
    /// for the shrunken roster. No-op (empty vec) in single mode, where
    /// plans carry no affinity.
    pub fn drain_worker(&self, worker: NodeId) -> Vec<T> {
        let mut inner = self.inner.lock();
        let drained: Vec<T> = inner
            .deques
            .remove(&worker)
            .map(Vec::from)
            .unwrap_or_default();
        inner.len -= drained.len();
        inner.outstanding.remove(&worker);
        inner.hungry.retain(|&w| w != worker);
        drop(inner);
        self.cv.notify_all();
        drained
    }

    /// Drops every queued plan and resets in-flight accounting and pending
    /// steal requests (fault recovery revoked all in-flight work).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.global.clear();
        inner.deques.clear();
        inner.outstanding.clear();
        inner.hungry.clear();
        inner.len = 0;
        inner.stalls = 0;
        drop(inner);
        self.cv.notify_all();
    }

    /// Total queued plans.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// Whether no plan is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wakes the assignment loop without queueing anything (job submission,
    /// shutdown).
    pub fn notify(&self) {
        self.cv.notify_all();
    }

    /// Pops the next assignable plan without blocking. `comp` is a snapshot
    /// of the §VI `COMP` load column indexed by node id (used only to break
    /// steal-victim ties; pass `&[]` to fall back to ids).
    pub fn try_next(&self, comp: &[u64]) -> Option<(T, Option<StealInfo>)> {
        let mut inner = self.inner.lock();
        self.pop_locked(&mut inner, comp, false)
    }

    /// Pops the next assignable plan, waiting up to `timeout` for one to
    /// become available (push, freed capacity, steal request and shutdown
    /// all notify). Returns `None` on timeout — the caller's loop re-checks
    /// shutdown/heartbeats and calls again.
    pub fn next_timeout(&self, timeout: Duration, comp: &[u64]) -> Option<(T, Option<StealInfo>)> {
        let mut inner = self.inner.lock();
        if let Some(popped) = self.pop_locked(&mut inner, comp, false) {
            return Some(popped);
        }
        let (mut inner, timed_out) = self.cv.wait_timeout(inner, timeout);
        let force = if timed_out && inner.len > 0 {
            // Plans are queued but nothing was assignable for a full wait:
            // count a strike; too many in a row trips the failsafe.
            inner.stalls += 1;
            inner.stalls >= STALL_STRIKES
        } else {
            false
        };
        let popped = self.pop_locked(&mut inner, comp, force);
        if popped.is_some() {
            inner.stalls = 0;
        }
        popped
    }

    /// The scheduling policy. `force` ignores the in-flight cap (failsafe).
    fn pop_locked(
        &self,
        inner: &mut Inner<T>,
        comp: &[u64],
        force: bool,
    ) -> Option<(T, Option<StealInfo>)> {
        if !self.steal {
            let item = inner.global.pop_front()?;
            inner.len -= 1;
            return Some((item, None));
        }
        // 1. The oldest pending steal request (one pop per call): own
        // deque, then the global deque, then steal from the most-loaded
        // peer's tail.
        if let Some(h) = inner.hungry.pop_front() {
            if let Some(item) = inner.deques.get_mut(&h).and_then(VecDeque::pop_front) {
                inner.len -= 1;
                return Some((item, None));
            }
            if let Some(item) = inner.global.pop_front() {
                inner.len -= 1;
                return Some((item, None));
            }
            let comp_of = |w: NodeId| comp.get(w).copied().unwrap_or(0);
            let victim = inner
                .deques
                .iter()
                .filter(|&(&w, q)| w != h && !q.is_empty())
                // Longest deque; ties go to the §VI-heavier worker, then
                // the smaller id (deterministic under equal load).
                .max_by(|&(&a, qa), &(&b, qb)| {
                    qa.len()
                        .cmp(&qb.len())
                        .then(comp_of(a).cmp(&comp_of(b)))
                        .then(b.cmp(&a))
                })
                .map(|(&w, _)| w);
            match victim {
                Some(v) => {
                    let item = inner
                        .deques
                        .get_mut(&v)
                        .and_then(VecDeque::pop_back)
                        .expect("victim deque checked non-empty");
                    inner.len -= 1;
                    return Some((
                        item,
                        Some(StealInfo {
                            victim: v,
                            thief: h,
                        }),
                    ));
                }
                None => {
                    // Nothing queued anywhere: keep the request pending so
                    // the next push serves this worker first.
                    inner.hungry.push_front(h);
                }
            }
        }
        // 2. Affinity dispatch under the in-flight cap: the least-loaded
        // worker with queued plans and spare capacity.
        let candidate = inner
            .deques
            .iter()
            .filter(|&(&w, q)| !q.is_empty() && (force || inner.outstanding_of(w) < self.cap))
            .min_by_key(|&(&w, _)| (inner.outstanding_of(w), w))
            .map(|(&w, _)| w);
        if let Some(w) = candidate {
            let item = inner
                .deques
                .get_mut(&w)
                .and_then(VecDeque::pop_front)
                .expect("candidate deque checked non-empty");
            inner.len -= 1;
            return Some((item, None));
        }
        // 3. Root/global plans, as long as someone has spare capacity (the
        // assignment itself picks the workers).
        if !inner.global.is_empty() {
            let spare = force
                || inner.workers.is_empty()
                || inner
                    .workers
                    .iter()
                    .any(|&w| inner.outstanding_of(w) < self.cap);
            if spare {
                let item = inner.global.pop_front().expect("checked non-empty");
                inner.len -= 1;
                return Some((item, None));
            }
        }
        None
    }
}

/// Bounds and step size of the τ controller, relative to the static values.
const TAU_CLAMP: u64 = 4; // clamp to [static/4, static*4]
const TAU_STEP_DIV: u64 = 8; // each nudge moves τ by ±τ/8

/// Minimum samples of *each* task kind before the feed is trusted; below
/// this the controller holds the static thresholds (degenerate-feed
/// fallback).
const TAU_MIN_SAMPLES: u64 = 16;

/// Subtree-p50 : column-p50 ratio above which subtree tasks are considered
/// too coarse (shrink `τ_D`), and below which too fine (grow `τ_D`).
const RATIO_HI: u64 = 8;
const RATIO_LO: u64 = 2;

/// Column p95 : p50 dispersion above which the queue is congested (widen
/// `τ_dfs`: more depth-first, reach CPU-bound subtree tasks sooner), and
/// below which it is smooth (relax back towards breadth-first).
const DISP_HI: u64 = 6;
const DISP_LO: u64 = 2;

/// Feedback controller for the hybrid-scheduling thresholds (`τ_D`,
/// `τ_dfs`), driven by the obs `LatencyFeed` (PR 6).
///
/// Pure state machine — no clocks, no locks — so it is exactly
/// reproducible from a feed-snapshot sequence. The master updates it
/// periodically and reads the current thresholds instead of the static
/// config when `ClusterConfig::adaptive_tau` is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TauController {
    static_d: u64,
    static_dfs: u64,
    tau_d: u64,
    tau_dfs: u64,
}

impl TauController {
    /// Starts at the static thresholds (which also anchor the clamps).
    pub fn new(static_tau_d: u64, static_tau_dfs: u64) -> TauController {
        assert!(static_tau_d >= 1 && static_tau_dfs >= 1);
        TauController {
            static_d: static_tau_d,
            static_dfs: static_tau_dfs,
            tau_d: static_tau_d,
            tau_dfs: static_tau_dfs,
        }
    }

    /// Current subtree-task threshold.
    pub fn tau_d(&self) -> u64 {
        self.tau_d
    }

    /// Current depth-first threshold.
    pub fn tau_dfs(&self) -> u64 {
        self.tau_dfs
    }

    fn clamp(v: u64, anchor: u64) -> u64 {
        v.clamp(
            (anchor / TAU_CLAMP).max(1),
            anchor.saturating_mul(TAU_CLAMP),
        )
    }

    fn step(v: u64) -> u64 {
        (v / TAU_STEP_DIV).max(1)
    }

    /// Folds one feed snapshot into the thresholds.
    ///
    /// - Degenerate feed (fewer than [`TAU_MIN_SAMPLES`] of either kind):
    ///   reset to the static thresholds — never extrapolate from one-sided
    ///   or empty data.
    /// - `τ_D`: subtree tasks running much longer than column tasks mean
    ///   the `|Dx| <= τ_D` cut delegates too much work per task → shrink;
    ///   subtree tasks barely more expensive than a single column scan
    ///   mean delegation is too fine → grow.
    /// - `τ_dfs`: high column-latency dispersion (p95 ≫ p50) means tasks
    ///   are queueing behind each other → widen (depth-first reaches
    ///   subtree tasks, which leave the column pipeline, sooner); low
    ///   dispersion relaxes it back.
    ///
    /// Each call moves each threshold at most one step (±τ/8), clamped to
    /// `[static/4, 4·static]`, so a burst of noisy snapshots cannot slam
    /// the thresholds across their range.
    pub fn update(&mut self, feed: &LatencyFeedSnapshot) {
        if feed.column.count < TAU_MIN_SAMPLES || feed.subtree.count < TAU_MIN_SAMPLES {
            self.tau_d = self.static_d;
            self.tau_dfs = self.static_dfs;
            return;
        }
        let ratio = feed.subtree.p50_ns / feed.column.p50_ns.max(1);
        if ratio > RATIO_HI {
            self.tau_d = self.tau_d.saturating_sub(Self::step(self.tau_d));
        } else if ratio < RATIO_LO {
            self.tau_d = self.tau_d.saturating_add(Self::step(self.tau_d));
        }
        self.tau_d = Self::clamp(self.tau_d, self.static_d);

        let disp = feed.column.p95_ns / feed.column.p50_ns.max(1);
        if disp > DISP_HI {
            self.tau_dfs = self.tau_dfs.saturating_add(Self::step(self.tau_dfs));
        } else if disp < DISP_LO {
            self.tau_dfs = self.tau_dfs.saturating_sub(Self::step(self.tau_dfs));
        }
        self.tau_dfs = Self::clamp(self.tau_dfs, self.static_dfs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;
    use ts_obs::KindLatency;

    // ------------------------------------------------------------------
    // PlanQueue: single mode reproduces the seed scheduler.
    // ------------------------------------------------------------------

    #[test]
    fn single_mode_is_the_hybrid_seed_deque() {
        let q: PlanQueue<u64> = PlanQueue::new_single();
        q.push(1, None, false); // big -> tail
        q.push(2, Some(1), false); // affinity ignored in single mode
        q.push(3, None, true); // small -> head
        q.push(4, Some(2), true); // small -> head (before 3)
        let mut order = Vec::new();
        while let Some((t, steal)) = q.try_next(&[]) {
            assert!(steal.is_none(), "single mode never steals");
            order.push(t);
        }
        assert_eq!(order, vec![4, 3, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn single_mode_ignores_capacity_and_hunger() {
        let q: PlanQueue<u64> = PlanQueue::new_single();
        q.note_dispatched(&[1, 1, 1, 1]);
        q.mark_hungry(2);
        q.push(7, None, false);
        assert_eq!(q.try_next(&[]).map(|(t, _)| t), Some(7));
    }

    // ------------------------------------------------------------------
    // PlanQueue: stealing mode.
    // ------------------------------------------------------------------

    #[test]
    fn affinity_pop_prefers_least_loaded_worker() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(4);
        q.push(10, Some(1), false);
        q.push(20, Some(2), false);
        q.note_dispatched(&[1]); // worker 1 now has 1 in flight
                                 // Worker 2 is idle-est, so its deque pops first.
        assert_eq!(q.try_next(&[]).map(|(t, _)| t), Some(20));
        assert_eq!(q.try_next(&[]).map(|(t, _)| t), Some(10));
    }

    #[test]
    fn capacity_throttles_until_completion() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(2);
        q.push(1, Some(1), false);
        q.note_dispatched(&[1]);
        q.note_dispatched(&[1]); // worker 1 at cap
        assert!(q.try_next(&[]).is_none(), "worker 1 is at capacity");
        assert_eq!(q.len(), 1, "plan stays queued");
        q.note_completed(1);
        assert_eq!(q.try_next(&[]).map(|(t, _)| t), Some(1));
    }

    #[test]
    fn hungry_worker_steals_from_longest_tail() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(8);
        // Worker 1's deque: head [11, 12, 13] tail — 13 is the BFS tail.
        q.push(11, Some(1), false);
        q.push(12, Some(1), false);
        q.push(13, Some(1), false);
        q.push(21, Some(2), false);
        q.mark_hungry(3);
        let (t, steal) = q.try_next(&[]).expect("plan available");
        assert_eq!(t, 13, "steals the tail of the longest deque");
        assert_eq!(
            steal,
            Some(StealInfo {
                victim: 1,
                thief: 3
            })
        );
        // Hunger is consumed: the next pop is a normal affinity pop.
        let (_, steal) = q.try_next(&[]).expect("plan available");
        assert!(steal.is_none());
    }

    #[test]
    fn hungry_worker_drains_own_deque_before_stealing() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(8);
        q.push(11, Some(1), false);
        q.push(31, Some(3), false);
        q.mark_hungry(3);
        let (t, steal) = q.try_next(&[]).expect("plan available");
        assert_eq!(t, 31, "own deque first");
        assert!(steal.is_none(), "serving your own deque is not a steal");
    }

    #[test]
    fn steal_victim_ties_break_by_comp_load() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(8);
        q.push(11, Some(1), false);
        q.push(21, Some(2), false);
        q.mark_hungry(3);
        // Equal deque lengths; worker 2 carries more §VI COMP load.
        let comp = [0, 5, 50];
        let (t, steal) = q.try_next(&comp).expect("plan available");
        assert_eq!(t, 21);
        assert_eq!(
            steal,
            Some(StealInfo {
                victim: 2,
                thief: 3
            })
        );
    }

    #[test]
    fn unserved_hunger_survives_until_work_arrives() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(8);
        q.mark_hungry(2);
        assert!(q.try_next(&[]).is_none());
        // Work for worker 1 arrives; the pending request from worker 2
        // grabs it (steal) before worker 1's ordinary affinity pop.
        q.push(11, Some(1), false);
        let (t, steal) = q.try_next(&[]).expect("plan available");
        assert_eq!(t, 11);
        assert_eq!(
            steal,
            Some(StealInfo {
                victim: 1,
                thief: 2
            })
        );
    }

    #[test]
    fn drain_worker_reclaims_queued_plans() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(1);
        q.set_workers(&[1, 2]);
        q.push(11, Some(1), false);
        q.push(12, Some(1), false);
        q.push(21, Some(2), false);
        q.note_dispatched(&[1]); // at cap: would block worker 1 forever
        q.mark_hungry(1);
        let drained = q.drain_worker(1);
        assert_eq!(drained, vec![11, 12], "queued plans come back in order");
        assert_eq!(q.len(), 1, "only worker 2's plan remains");
        // The drained worker's hunger and accounting are gone: the next pop
        // is worker 2's ordinary affinity pop, not a steal for worker 1.
        let (t, steal) = q.try_next(&[]).expect("plan available");
        assert_eq!(t, 21);
        assert!(steal.is_none());
        // Draining an unknown worker is a harmless no-op.
        assert!(q.drain_worker(9).is_empty());
        // Single mode has no affinity deques to drain.
        let s: PlanQueue<u64> = PlanQueue::new_single();
        s.push(1, Some(1), false);
        assert!(s.drain_worker(1).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clear_resets_queues_hunger_and_accounting() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(1);
        q.push(1, Some(1), false);
        q.push(2, None, false);
        q.note_dispatched(&[1]);
        q.mark_hungry(2);
        q.clear();
        assert!(q.is_empty());
        // Capacity was reset too: worker 1 can be dispatched to again.
        q.push(3, Some(1), false);
        assert_eq!(q.try_next(&[]).map(|(t, _)| t), Some(3));
    }

    #[test]
    fn global_plans_flow_when_capacity_exists() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(1);
        q.set_workers(&[1, 2]);
        q.push(1, None, false);
        q.push(2, None, false);
        assert_eq!(q.try_next(&[]).map(|(t, _)| t), Some(1));
        q.note_dispatched(&[1]);
        q.note_dispatched(&[2]);
        assert!(q.try_next(&[]).is_none(), "every worker at capacity");
        q.note_completed(2);
        assert_eq!(q.try_next(&[]).map(|(t, _)| t), Some(2));
    }

    // ------------------------------------------------------------------
    // Condvar wakeup (satellite: no blind poll_sleep).
    // ------------------------------------------------------------------

    #[test]
    fn push_wakes_a_waiting_pop_immediately() {
        let q: Arc<PlanQueue<u64>> = Arc::new(PlanQueue::new_single());
        let q2 = Arc::clone(&q);
        let start = Instant::now();
        let waiter = thread::spawn(move || {
            // A poll-interval-sized timeout: the pop must return long
            // before it elapses, woken by the push.
            q2.next_timeout(Duration::from_secs(10), &[])
        });
        thread::sleep(Duration::from_millis(20));
        q.push(99, None, true);
        let got = waiter.join().unwrap();
        assert_eq!(got.map(|(t, _)| t), Some(99));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "pop waited out the timeout instead of being woken"
        );
    }

    #[test]
    fn completion_wakes_a_capacity_blocked_pop() {
        let q: Arc<PlanQueue<u64>> = Arc::new(PlanQueue::new_stealing(1));
        q.push(5, Some(1), false);
        q.note_dispatched(&[1]);
        let q2 = Arc::clone(&q);
        let start = Instant::now();
        let waiter = thread::spawn(move || q2.next_timeout(Duration::from_secs(10), &[]));
        thread::sleep(Duration::from_millis(20));
        q.note_completed(1);
        assert_eq!(waiter.join().unwrap().map(|(t, _)| t), Some(5));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn stall_failsafe_force_pops_past_the_cap() {
        let q: PlanQueue<u64> = PlanQueue::new_stealing(1);
        q.push(5, Some(1), false);
        q.note_dispatched(&[1]); // capacity never freed (lost completion)
        let mut got = None;
        for _ in 0..(STALL_STRIKES + 1) {
            if let Some((t, _)) = q.next_timeout(Duration::from_millis(1), &[]) {
                got = Some(t);
                break;
            }
        }
        assert_eq!(got, Some(5), "failsafe must eventually dispatch");
    }

    // ------------------------------------------------------------------
    // TauController (satellite: adaptive-τ unit tests).
    // ------------------------------------------------------------------

    fn feed(col_p50: u64, col_p95: u64, sub_p50: u64) -> LatencyFeedSnapshot {
        LatencyFeedSnapshot {
            column: KindLatency {
                count: 100,
                p50_ns: col_p50,
                p95_ns: col_p95,
            },
            subtree: KindLatency {
                count: 100,
                p50_ns: sub_p50,
                p95_ns: sub_p50 * 2,
            },
            ..Default::default()
        }
    }

    #[test]
    fn heavy_subtrees_drive_tau_d_down_monotonically_to_the_clamp() {
        let mut c = TauController::new(10_000, 80_000);
        // Subtree p50 is 100x column p50: delegation is far too coarse.
        let f = feed(1_000, 3_000, 100_000);
        let mut prev = c.tau_d();
        for _ in 0..200 {
            c.update(&f);
            assert!(c.tau_d() <= prev, "τ_D must fall monotonically");
            prev = c.tau_d();
        }
        assert_eq!(c.tau_d(), 10_000 / 4, "clamped at static/4");
    }

    #[test]
    fn cheap_subtrees_drive_tau_d_up_monotonically_to_the_clamp() {
        let mut c = TauController::new(10_000, 80_000);
        // Subtree p50 == column p50: delegation far too fine.
        let f = feed(1_000, 3_000, 1_000);
        let mut prev = c.tau_d();
        for _ in 0..200 {
            c.update(&f);
            assert!(c.tau_d() >= prev, "τ_D must rise monotonically");
            prev = c.tau_d();
        }
        assert_eq!(c.tau_d(), 10_000 * 4, "clamped at 4x static");
    }

    #[test]
    fn column_dispersion_widens_tau_dfs_and_smoothness_narrows_it() {
        let mut c = TauController::new(10_000, 80_000);
        // p95 = 20x p50: heavy queueing -> widen depth-first range.
        for _ in 0..200 {
            c.update(&feed(1_000, 20_000, 3_000));
        }
        assert_eq!(c.tau_dfs(), 80_000 * 4, "clamped at 4x static");
        // Smooth latencies relax it back down to the lower clamp.
        for _ in 0..400 {
            c.update(&feed(1_000, 1_200, 3_000));
        }
        assert_eq!(c.tau_dfs(), 80_000 / 4, "clamped at static/4");
    }

    #[test]
    fn balanced_feed_holds_thresholds_steady() {
        let mut c = TauController::new(10_000, 80_000);
        // Ratio 4 (between LO=2 and HI=8), dispersion 3 (between 2 and 6).
        for _ in 0..50 {
            c.update(&feed(1_000, 3_000, 4_000));
        }
        assert_eq!(c.tau_d(), 10_000);
        assert_eq!(c.tau_dfs(), 80_000);
    }

    #[test]
    fn degenerate_feed_falls_back_to_static_tau() {
        let mut c = TauController::new(10_000, 80_000);
        // Drive thresholds away from the statics first.
        for _ in 0..10 {
            c.update(&feed(1_000, 3_000, 100_000));
        }
        assert_ne!(c.tau_d(), 10_000);
        // Empty feed: full reset, no panic.
        c.update(&LatencyFeedSnapshot::default());
        assert_eq!(c.tau_d(), 10_000);
        assert_eq!(c.tau_dfs(), 80_000);
        // One-sided feed (only column samples): also degenerate.
        let one_sided = LatencyFeedSnapshot {
            column: KindLatency {
                count: 500,
                p50_ns: 10,
                p95_ns: 1_000_000,
            },
            ..Default::default()
        };
        c.update(&one_sided);
        assert_eq!(c.tau_d(), 10_000);
        assert_eq!(c.tau_dfs(), 80_000);
        // Zero-latency samples must not divide by zero; the thresholds
        // stay inside their clamps.
        let zeros = feed(0, 0, 0);
        for _ in 0..10 {
            c.update(&zeros);
        }
        assert!((2_500..=40_000).contains(&c.tau_d()));
        assert!((20_000..=320_000).contains(&c.tau_dfs()));
    }
}
