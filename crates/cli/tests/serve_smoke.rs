//! End-to-end serve smoke test: drive the real `treeserver` binary through
//! train → serve (with mid-stream hot swaps) and check the report JSON,
//! the replay-determinism guarantee, and the knob validation. CI's
//! serve-matrix job runs the ts-front suites; this covers the binary glue.

use std::path::PathBuf;
use std::process::Command;

/// A small deterministic two-class CSV (no RNG needed: class follows f0).
fn write_csv(dir: &std::path::Path) -> PathBuf {
    let mut csv = String::from("f0,f1,f2,label\n");
    for i in 0..400u32 {
        let f0 = (i % 97) as f64 / 97.0;
        let f1 = ((i * 7) % 89) as f64 / 89.0;
        let f2 = ((i * 13) % 83) as f64 / 83.0;
        let label = if f0 > 0.5 { "pos" } else { "neg" };
        csv.push_str(&format!("{f0:.4},{f1:.4},{f2:.4},{label}\n"));
    }
    let path = dir.join("serve.csv");
    std::fs::write(&path, csv).expect("write csv");
    path
}

fn serve_args(model: &str, csv: &str, report: &str) -> Vec<String> {
    [
        "serve",
        "--model",
        model,
        "--csv",
        csv,
        "--target",
        "label",
        "--task",
        "class",
        "--requests",
        "2500",
        "--qps",
        "120000",
        "--swap-at",
        "4000,12000",
        "--seed",
        "11",
        "--report",
        report,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn serve_streams_swaps_and_replays_identically() {
    let dir = std::env::temp_dir().join(format!("ts-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let csv = write_csv(&dir);
    let model = dir.join("model.json");

    let out = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args([
            "train",
            "--csv",
            csv.to_str().unwrap(),
            "--target",
            "label",
            "--task",
            "class",
            "--model",
            "rf",
            "--trees",
            "4",
            "--workers",
            "2",
            "--out",
            model.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run treeserver train");
    assert!(
        out.status.success(),
        "train failed:\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report_a = dir.join("report-a.json");
    let out = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args(serve_args(
            model.to_str().unwrap(),
            csv.to_str().unwrap(),
            report_a.to_str().unwrap(),
        ))
        .output()
        .expect("run treeserver serve");
    assert!(
        out.status.success(),
        "serve failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p50"), "quantile line missing:\n{stdout}");

    // The report parses and both scheduled swaps fired mid-stream.
    let text = std::fs::read_to_string(&report_a).expect("report written");
    let json = tsjson::from_str::<tsjson::Value>(&text).expect("report is valid JSON");
    assert_eq!(json["swaps"].as_u64(), Some(2));
    assert_eq!(json["arrival"].as_str(), Some("poisson"));
    let served = json["responses"].as_u64().expect("responses");
    let shed = json["sheds"].as_u64().expect("sheds");
    assert_eq!(served + shed, 2500, "every request answered or shed");
    assert!(json["sustained_qps"].as_f64().expect("qps") > 0.0);

    // Same seed, second process: byte-identical report (virtual clock —
    // wall speed of the background trainer must not leak in).
    let report_b = dir.join("report-b.json");
    let out = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args(serve_args(
            model.to_str().unwrap(),
            csv.to_str().unwrap(),
            report_b.to_str().unwrap(),
        ))
        .output()
        .expect("run treeserver serve again");
    assert!(out.status.success());
    assert_eq!(
        std::fs::read(&report_a).unwrap(),
        std::fs::read(&report_b).unwrap(),
        "same-seed serve runs must produce byte-identical reports"
    );

    // A swap scheduled past the end of the stream is a hard error, not a
    // silently-skipped swap.
    let out = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--target",
            "label",
            "--task",
            "class",
            "--requests",
            "100",
            "--swap-at",
            "99999999999",
        ])
        .output()
        .expect("run treeserver serve (late swap)");
    assert!(!out.status.success(), "late swap must fail loudly");

    // Burst knobs require the bursty plan.
    let out = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--target",
            "label",
            "--task",
            "class",
            "--burst-on-qps",
            "500000",
        ])
        .output()
        .expect("run treeserver serve (bad knob)");
    assert!(
        !out.status.success(),
        "--burst-on-qps without --arrival bursty must fail"
    );

    std::fs::remove_dir_all(&dir).ok();
}
