//! End-to-end trace smoke test: drive the real `treeserver` binary with
//! `--trace-out` / `--trace-report` / `--metrics-prom` and check that every
//! artifact parses and carries the expected structure. CI runs this as its
//! trace-smoke gate.

use std::path::PathBuf;
use std::process::Command;

/// A small deterministic two-class CSV (no RNG needed: class follows f0).
fn write_csv(dir: &std::path::Path) -> PathBuf {
    let mut csv = String::from("f0,f1,f2,label\n");
    for i in 0..400u32 {
        let f0 = (i % 97) as f64 / 97.0;
        let f1 = ((i * 7) % 89) as f64 / 89.0;
        let f2 = ((i * 13) % 83) as f64 / 83.0;
        let label = if f0 > 0.5 { "pos" } else { "neg" };
        csv.push_str(&format!("{f0:.4},{f1:.4},{f2:.4},{label}\n"));
    }
    let path = dir.join("smoke.csv");
    std::fs::write(&path, csv).expect("write csv");
    path
}

#[test]
fn train_writes_parseable_trace_artifacts() {
    let dir = std::env::temp_dir().join(format!("ts-trace-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let csv = write_csv(&dir);
    let trace = dir.join("trace.json");
    let report = dir.join("report.json");
    let prom = dir.join("metrics.prom");
    let model = dir.join("model.json");

    let out = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args([
            "train",
            "--csv",
            csv.to_str().unwrap(),
            "--target",
            "label",
            "--task",
            "class",
            "--model",
            "rf",
            "--trees",
            "4",
            "--workers",
            "2",
            "--out",
            model.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--trace-report",
            report.to_str().unwrap(),
            "--metrics-prom",
            prom.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run treeserver");
    assert!(
        out.status.success(),
        "train failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Chrome trace: valid JSON with a non-empty traceEvents array.
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    let trace_json = tsjson::from_str::<tsjson::Value>(&trace_text).expect("trace is valid JSON");
    let events = trace_json["traceEvents"]
        .as_array()
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");

    // TraceReport: valid JSON, non-empty critical path whose phase totals
    // sum to the wall clock.
    let report_text = std::fs::read_to_string(&report).expect("report written");
    let report_json =
        tsjson::from_str::<tsjson::Value>(&report_text).expect("report is valid JSON");
    let path = report_json["critical_path"]
        .as_array()
        .expect("critical_path array");
    assert!(!path.is_empty(), "critical path must be non-empty");
    let wall = report_json["wall_ns"].as_u64().expect("wall_ns");
    let phases = report_json["phase_totals_ns"]
        .as_object()
        .expect("phase_totals_ns object");
    let sum: u64 = phases.iter().map(|(_, v)| v.as_u64().expect("ns")).sum();
    assert_eq!(sum, wall, "phase totals must tile the wall clock");

    // Prometheus text: the training counters in exposition format.
    let prom_text = std::fs::read_to_string(&prom).expect("prom written");
    assert!(
        prom_text.contains("# TYPE jobs_finished counter"),
        "{prom_text}"
    );
    assert!(prom_text.contains("jobs_finished 1"), "{prom_text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_with_histogram_splitter_exports_its_byte_counter() {
    let dir = std::env::temp_dir().join(format!("ts-hist-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let csv = write_csv(&dir);
    let prom = dir.join("metrics.prom");
    let model = dir.join("model.json");

    let out = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args([
            "train",
            "--csv",
            csv.to_str().unwrap(),
            "--target",
            "label",
            "--task",
            "class",
            "--model",
            "dt",
            "--workers",
            "2",
            "--splitter",
            "hist",
            "--hist-bins",
            "16",
            "--vote-k",
            "2",
            "--out",
            model.to_str().unwrap(),
            "--metrics-prom",
            prom.to_str().unwrap(),
        ])
        .output()
        .expect("run treeserver");
    assert!(
        out.status.success(),
        "hist train failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    // The final cluster report breaks the histogram split plane out.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("hist votes+fetch"),
        "report lacks the histogram traffic line:\n{stderr}"
    );

    let prom_text = std::fs::read_to_string(&prom).expect("prom written");
    assert!(
        prom_text.contains("# TYPE hist_bytes_sent counter"),
        "{prom_text}"
    );
    assert!(
        !prom_text.contains("split_bytes_sent 0\n") || !prom_text.contains("hist_bytes_sent 0"),
        "hist mode moved no split-plane bytes:\n{prom_text}"
    );
    assert!(model.exists(), "model not written");

    // Rejects histogram knobs without the mode.
    let bad = Command::new(env!("CARGO_BIN_EXE_treeserver"))
        .args([
            "train",
            "--csv",
            csv.to_str().unwrap(),
            "--target",
            "label",
            "--task",
            "class",
            "--hist-bins",
            "32",
        ])
        .output()
        .expect("run treeserver");
    assert!(
        !bad.status.success(),
        "--hist-bins without --splitter hist must fail"
    );

    std::fs::remove_dir_all(&dir).ok();
}
