//! `treeserver` — command-line front-end for the TreeServer reproduction.
//!
//! ```text
//! treeserver train   --csv data.csv --target label --task class \
//!                    [--model dt|rf|etc|gbt] [--trees N] [--dmax D]
//!                    [--workers W] [--compers C] [--out model.json]
//! treeserver predict --model model.json --csv data.csv --target label --task class
//! treeserver importance --model model.json [--top K]
//! ```
//!
//! Argument parsing is deliberately dependency-free.

use std::collections::HashMap;
use std::process::ExitCode;
use treeserver::{train_gbt_on, Cluster, ClusterConfig, GbtConfig, JobResult, JobSpec};
use ts_datatable::csv::{parse_csv, TaskKind};
use ts_datatable::metrics::{accuracy, rmse};
use ts_datatable::{DataTable, Task};

mod model_file;
use model_file::ModelFile;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&opts),
        "predict" => cmd_predict(&opts),
        "serve" => cmd_serve(&opts),
        "importance" => cmd_importance(&opts),
        "show" => cmd_show(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  treeserver train      --csv FILE --target COL --task class|reg
                        [--model dt|rf|etc|gbt] [--trees N] [--dmax D]
                        [--workers W] [--compers C] [--seed S] [--out FILE]
                        [--steal] [--adaptive-tau]
                        [--splitter exact|hist] [--hist-bins N] [--vote-k K]
                        [--fault-seed S] [--drop-prob P] [--delay-prob P]
                        [--dup-prob P] [--heartbeat-ms N] [--heartbeat-misses N]
                        [--join-at MS] [--join-count N] [--preempt-at MS]
                        [--preempt-grace-ms MS] [--work-scale F1,F2,...]
                        [--trace-out FILE] [--trace-report FILE]
                        [--metrics-json FILE] [--metrics-prom FILE]
                        [--quiet] [--verbose]
  treeserver predict    --model FILE --csv FILE --target COL --task class|reg
                        [--out FILE] [--threads N] [--block-rows N]
                        [--reference] [--serve-metrics FILE]
  treeserver serve      --model FILE --csv FILE --target COL --task class|reg
                        [--requests N] [--qps Q] [--arrival poisson|bursty]
                        [--burst-on-qps Q] [--burst-off-qps Q]
                        [--burst-on-us US] [--burst-off-us US]
                        [--latency-budget-us US] [--max-batch N]
                        [--queue-cap N] [--fixed-batch] [--conns N]
                        [--swap-at US[,US...]] [--seed S] [--report FILE]
  treeserver importance --model FILE [--top K]
  treeserver show       --model FILE [--tree N]

split engine (train, see docs/HISTOGRAM.md):
  --splitter exact|hist exact sorted-scan splits (default) or quantized
                        histogram splits with top-k column voting: workers
                        nominate candidate gains and the master fetches the
                        full split of the elected column only — a far leaner
                        master<->worker split plane for a bounded accuracy
                        loss (the final cluster report breaks the traffic out)
  --hist-bins N         bin budget per numeric column (default 64; lossless
                        when a column has at most N distinct values)
  --vote-k K            candidates each worker nominates per task (default 2)

scheduling (train):
  --steal               per-worker plan deques with work stealing: idle
                        workers advertise hunger and the master re-routes
                        queued plans from the most-loaded peer (models are
                        bit-identical either way; see docs/SCHEDULING.md)
  --adaptive-tau        adapt the tau_D / tau_dfs thresholds from the rolling
                        task-latency feed instead of the static defaults
                        (enables observability; changes which tasks run as
                        subtrees, so extra-trees forests may differ)

reliability (train):
  --drop-prob P         drop each message with probability P (seeded; the
                        acked/retried fabric still delivers exactly once)
  --delay-prob P        delay each message with probability P (up to 5 ms)
  --dup-prob P          duplicate each message with probability P (the
                        receiver's dedup drops the copy)
  --fault-seed S        seed of the fault plan (default: --seed)
  --heartbeat-ms N      worker liveness heartbeat interval (default 20)
  --heartbeat-misses N  missed intervals before a worker is declared dead
                        and crash recovery runs (default 25)

elasticity (train, see docs/ELASTICITY.md):
  --join-at MS          script N fresh workers (see --join-count) joining the
                        cluster MS milliseconds into training; they handshake
                        via Hello/Welcome and receive column replicas
                        incrementally while training continues
  --join-count N        how many workers join at --join-at (default 1)
  --preempt-at MS       script a spot preemption of the highest-numbered
                        initial worker MS milliseconds in: it drains (finishes
                        in-flight work, hands its columns off) and departs
                        gracefully instead of crashing
  --preempt-grace-ms MS grace window for the drain (default 500); a drain
                        that blows the window escalates to crash recovery
  --work-scale F1,...   per-worker compute-speed multipliers (one per initial
                        worker; > 1 slows a worker down) modelling
                        heterogeneous machines

observability (train):
  --trace-out FILE      write a Chrome trace-event JSON (open in Perfetto or
                        chrome://tracing) of the run's task lifecycle,
                        including span flow arrows across machines
  --trace-report FILE   write a TraceReport JSON for the last finished job:
                        critical-path segments, phase totals (scheduling/
                        network/queueing/compute/gather), span latencies
  --metrics-json FILE   write the metrics registry (counters + histograms)
                        as JSON alongside the cluster report
  --metrics-prom FILE   write the same registry in Prometheus text format
  --quiet               suppress all non-error output
  --verbose             also print event/metric totals and the rolling
                        task-latency feed (p50/p95) after training

serving (predict):
  --threads N           threads for the compiled batch evaluator (0 = all
                        cores; default 0)
  --block-rows N        rows per evaluation block (default 4096)
  --reference           score with the per-row reference traversal instead
                        of the compiled engine (bit-identical, much slower)
  --serve-metrics FILE  write serving counters/latency histograms as JSON

request tier (serve, see docs/SERVING.md):
  --requests N          simulated single-row requests to stream (default 5000)
  --qps Q               mean arrival rate (default 100000)
  --arrival KIND        poisson (default) or bursty ON/OFF arrivals; the
                        stream runs on the deterministic virtual clock, so
                        the same seed replays byte-identically
  --burst-on-qps Q      bursty: rate inside a burst (default 3x --qps)
  --burst-off-qps Q     bursty: rate between bursts (default --qps / 10)
  --burst-on-us US      bursty: burst duration (default 1000)
  --burst-off-us US     bursty: gap duration (default 2000)
  --latency-budget-us US  per-request completion budget enforced by
                        admission control (default 2000)
  --max-batch N         micro-batch row cap (default 64)
  --queue-cap N         admission queue bound; beyond it requests shed with
                        a structured reject (default 256)
  --fixed-batch         disable adaptive batch sizing (p95-feedback)
  --conns N             simulated client connections (default 8)
  --swap-at US[,US...]  hot-swap the model at these virtual times: each swap
                        retrains a replacement on a background thread and
                        publishes it at a batch boundary, zero downtime
  --report FILE         write the serving report (quantiles, QPS, sheds,
                        swaps) as JSON";

/// Options that take no value.
const FLAGS: &[&str] = &[
    "quiet",
    "verbose",
    "reference",
    "steal",
    "adaptive-tau",
    "fixed-batch",
];

/// Parsed `--key value` options (plus valueless flags).
struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, got {key:?}"));
            };
            if FLAGS.contains(&name) {
                map.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Opts(map))
    }

    fn flag(&self, name: &str) -> bool {
        self.0.contains_key(name)
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.0
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.0.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} {v:?} is not a valid number")),
        }
    }
}

fn load_table(opts: &Opts) -> Result<DataTable, String> {
    let path = opts.required("csv")?;
    let target = opts.required("target")?;
    let task = match opts.required("task")? {
        "class" | "classification" => TaskKind::Classification,
        "reg" | "regression" => TaskKind::Regression,
        other => return Err(format!("--task must be class or reg, got {other:?}")),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_csv(&text, target, task).map_err(|e| format!("parsing {path}: {e}"))
}

fn cluster_config(opts: &Opts, n_rows: usize) -> Result<ClusterConfig, String> {
    let workers = opts.num("workers", 4usize)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let compers = opts.num("compers", 2usize)?;
    if compers == 0 {
        return Err("--compers must be at least 1".into());
    }
    let heartbeat_ms = opts.num("heartbeat-ms", 20u64)?;
    if heartbeat_ms == 0 {
        return Err("--heartbeat-ms must be at least 1".into());
    }
    let heartbeat_misses = opts.num("heartbeat-misses", 25u32)?;
    if heartbeat_misses == 0 {
        return Err("--heartbeat-misses must be at least 1".into());
    }
    let work_scale = match opts.get("work-scale") {
        None => Vec::new(),
        Some(list) => {
            let factors: Vec<f64> = list
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .map_err(|_| format!("--work-scale factor {t:?} is not a valid number"))
                })
                .collect::<Result<_, String>>()?;
            if factors.len() != workers {
                return Err(format!(
                    "--work-scale names {} factors but --workers is {workers}",
                    factors.len()
                ));
            }
            if factors.iter().any(|&f| f <= 0.0 || !f.is_finite()) {
                return Err("--work-scale factors must be positive and finite".into());
            }
            factors
        }
    };
    let splitter = match opts.get("splitter").unwrap_or("exact") {
        "exact" => {
            if opts.get("hist-bins").is_some() || opts.get("vote-k").is_some() {
                return Err("--hist-bins/--vote-k need --splitter hist".into());
            }
            treeserver::Splitter::Exact
        }
        "hist" | "histogram" => {
            let bins = opts.num("hist-bins", 64usize)?;
            if !(2..=65_535).contains(&bins) {
                return Err(format!("--hist-bins must be in 2..=65535, got {bins}"));
            }
            let vote_k = opts.num("vote-k", 2usize)?;
            if vote_k == 0 {
                return Err("--vote-k must be at least 1".into());
            }
            treeserver::Splitter::Histogram { bins, vote_k }
        }
        other => return Err(format!("--splitter must be exact or hist, got {other:?}")),
    };
    Ok(ClusterConfig {
        n_workers: workers,
        compers_per_worker: compers,
        splitter,
        replication: 2.min(workers),
        tau_d: (n_rows as u64 / 20).max(256),
        tau_dfs: (n_rows as u64 / 5).max(1_024),
        steal: opts.flag("steal"),
        adaptive_tau: opts.flag("adaptive-tau"),
        work_scale,
        faults: fault_plan(opts, workers)?,
        heartbeat_interval: std::time::Duration::from_millis(heartbeat_ms),
        heartbeat_miss_threshold: heartbeat_misses,
        ..Default::default()
    })
}

/// Builds a seeded fault plan from the reliability knobs (`--drop-prob` /
/// `--delay-prob` / `--dup-prob`) and the elasticity knobs (`--join-at` /
/// `--preempt-at`). Returns `None` when no knob is set, which keeps the
/// fabric on the raw (unacked) fast path; a membership knob alone is enough
/// to produce a plan (with zero message-fault probabilities).
fn fault_plan(opts: &Opts, workers: usize) -> Result<Option<treeserver::FaultPlan>, String> {
    use std::time::Duration;
    let drop = opts.num("drop-prob", 0.0f64)?;
    let delay = opts.num("delay-prob", 0.0f64)?;
    let dup = opts.num("dup-prob", 0.0f64)?;
    for (name, p) in [
        ("drop-prob", drop),
        ("delay-prob", delay),
        ("dup-prob", dup),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--{name} must be in 0..=1, got {p}"));
        }
    }
    let join = opts.get("join-at").is_some();
    let preempt = opts.get("preempt-at").is_some();
    if !join && opts.get("join-count").is_some() {
        return Err("--join-count needs --join-at".into());
    }
    if !preempt && opts.get("preempt-grace-ms").is_some() {
        return Err("--preempt-grace-ms needs --preempt-at".into());
    }
    if drop == 0.0 && delay == 0.0 && dup == 0.0 && !join && !preempt {
        return Ok(None);
    }
    let seed = match opts.get("fault-seed") {
        Some(_) => opts.num("fault-seed", 0u64)?,
        None => opts.num("seed", 0u64)?,
    };
    let mut plan = treeserver::FaultPlan::new(seed);
    if drop > 0.0 {
        plan = plan.with_message_drops(drop);
    }
    if delay > 0.0 {
        plan = plan.with_message_delays(delay, Duration::from_millis(5));
    }
    if dup > 0.0 {
        plan = plan.with_message_duplicates(dup);
    }
    if join {
        let at = opts.num("join-at", 0u64)?;
        let count = opts.num("join-count", 1usize)?;
        if count == 0 {
            return Err("--join-count must be at least 1".into());
        }
        plan = plan.with_worker_join(Duration::from_millis(at), count);
    }
    if preempt {
        if workers < 2 {
            return Err("--preempt-at needs at least 2 workers (the last one cannot leave)".into());
        }
        let at = opts.num("preempt-at", 0u64)?;
        let grace = opts.num("preempt-grace-ms", 500u64)?;
        if grace == 0 {
            return Err("--preempt-grace-ms must be at least 1".into());
        }
        // The highest-numbered initial worker plays the preempted spot
        // instance; joiners (if any) occupy ids above it.
        plan = plan.with_preemption(
            Duration::from_millis(at),
            workers,
            Duration::from_millis(grace),
        );
    }
    Ok(Some(plan))
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let kind = opts.get("model").unwrap_or("dt");
    if !["dt", "rf", "etc", "gbt"].contains(&kind) {
        return Err(format!("--model must be dt|rf|etc|gbt, got {kind:?}"));
    }
    let quiet = opts.flag("quiet");
    let verbose = opts.flag("verbose");
    if quiet && verbose {
        return Err("--quiet and --verbose are mutually exclusive".into());
    }
    let trace_out = opts.get("trace-out").map(str::to_string);
    let trace_report = opts.get("trace-report").map(str::to_string);
    let metrics_out = opts.get("metrics-json").map(str::to_string);
    let metrics_prom = opts.get("metrics-prom").map(str::to_string);

    let table = load_table(opts)?;
    let task = table.schema().task;
    let trees = opts.num("trees", 20usize)?;
    let dmax = opts.num("dmax", 10u32)?;
    let seed = opts.num("seed", 0u64)?;
    let mut cfg = cluster_config(opts, table.n_rows())?;
    // Adaptive tau reads the rolling latency feed, which lives on the
    // recorder — the flag implies observability.
    if trace_out.is_some()
        || trace_report.is_some()
        || metrics_out.is_some()
        || metrics_prom.is_some()
        || verbose
        || cfg.adaptive_tau
    {
        cfg.obs = treeserver::obs::ObsConfig::enabled();
        // --verbose also streams the rolling p50/p95 task-latency feed line
        // the master prints as each job finishes.
        cfg.obs.log_latency_feed = verbose;
    }
    if !quiet {
        eprintln!(
            "training {kind} on {} rows x {} attrs ({} workers x {} compers)",
            table.n_rows(),
            table.n_attrs(),
            cfg.n_workers,
            cfg.compers_per_worker
        );
    }
    let start = std::time::Instant::now();
    // GBT retrains on residual views each round, so the cluster is launched
    // over a regression view of the table; everything else trains in place.
    let cluster = if kind == "gbt" {
        let view = treeserver::gbt::regression_view(&table, vec![0.0; table.n_rows()]);
        Cluster::launch(cfg, &view)
    } else {
        Cluster::launch(cfg, &table)
    };
    let model = match kind {
        "dt" => {
            let m = cluster.train(JobSpec::decision_tree(task).with_dmax(dmax).with_seed(seed));
            match m {
                JobResult::Tree(t) => ModelFile::Tree(t),
                JobResult::Forest(_) => unreachable!("decision tree job"),
                JobResult::Failed(e) => return Err(format!("training failed: {e}")),
            }
        }
        "rf" | "etc" => {
            let spec = if kind == "rf" {
                JobSpec::random_forest(task, trees)
            } else {
                JobSpec::extra_trees(task, trees)
            };
            match cluster.train(spec.with_dmax(dmax).with_seed(seed)) {
                JobResult::Failed(e) => return Err(format!("training failed: {e}")),
                m => ModelFile::Forest(m.into_forest()),
            }
        }
        "gbt" => {
            let gbt_cfg = GbtConfig::for_task(task)
                .with_rounds(trees)
                .with_dmax(dmax.min(8));
            ModelFile::Gbt(train_gbt_on(&cluster, &table, gbt_cfg))
        }
        other => return Err(format!("--model must be dt|rf|etc|gbt, got {other:?}")),
    };
    let elapsed = start.elapsed();

    // Export observability artifacts before tearing the cluster down.
    if let Some(rec) = cluster.obs() {
        if let Some(path) = &trace_out {
            std::fs::write(path, rec.chrome_trace_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            if !quiet {
                eprintln!("trace written to {path} (load in Perfetto or chrome://tracing)");
            }
        }
        if let Some(path) = &trace_report {
            match rec.trace_report() {
                Some(report) => {
                    std::fs::write(path, report.to_json())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    if !quiet {
                        eprintln!("trace report written to {path}");
                    }
                }
                None => eprintln!("warning: no finished job span — trace report not written"),
            }
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, rec.metrics_json()).map_err(|e| format!("writing {path}: {e}"))?;
            if !quiet {
                eprintln!("metrics written to {path}");
            }
        }
        if let Some(path) = &metrics_prom {
            std::fs::write(path, rec.metrics().to_prometheus_text())
                .map_err(|e| format!("writing {path}: {e}"))?;
            if !quiet {
                eprintln!("prometheus metrics written to {path}");
            }
        }
        if verbose {
            eprintln!(
                "observed {} events ({} lost to ring overflow)",
                rec.events_total(),
                rec.events_lost()
            );
        }
    }
    let report = cluster.shutdown();
    if !quiet {
        eprintln!("trained in {elapsed:.2?}");
        eprint!("{report}");
    }

    // Training-set fit as a quick sanity line.
    match task {
        Task::Classification { .. } => {
            let acc = accuracy(
                &model.predict_labels(&table)?,
                table.labels().as_class().unwrap(),
            );
            if !quiet {
                eprintln!("training accuracy: {:.2}%", acc * 100.0);
            }
        }
        Task::Regression => {
            let r = rmse(
                &model.predict_values(&table)?,
                table.labels().as_real().unwrap(),
            );
            if !quiet {
                eprintln!("training RMSE: {r:.4}");
            }
        }
    }

    let out = opts.get("out").unwrap_or("model.json");
    std::fs::write(out, model.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    if !quiet {
        eprintln!("model written to {out}");
    }
    Ok(())
}

fn cmd_predict(opts: &Opts) -> Result<(), String> {
    let model_path = opts.required("model")?;
    let model = ModelFile::from_json(
        &std::fs::read_to_string(model_path).map_err(|e| format!("reading {model_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {model_path}: {e}"))?;
    let table = load_table(opts)?;
    let reference = opts.flag("reference");

    let stats = std::sync::Arc::new(ts_serve::ServeStats::new());
    let serve_opts = ts_serve::ServeOptions::default()
        .with_threads(opts.num("threads", 0usize)?)
        .with_block_rows(opts.num("block-rows", 4096usize)?.max(1));
    let compiled = model
        .compile()
        .with_options(serve_opts)
        .with_stats(std::sync::Arc::clone(&stats));

    let start = std::time::Instant::now();
    let lines: Vec<String> = match table.schema().task {
        Task::Classification { .. } => {
            let pred = if reference {
                model.predict_labels_reference(&table)?
            } else {
                compiled.predict_labels(&table)
            };
            let acc = accuracy(&pred, table.labels().as_class().unwrap());
            eprintln!(
                "accuracy against the CSV's target column: {:.2}%",
                acc * 100.0
            );
            pred.into_iter().map(|p| p.to_string()).collect()
        }
        Task::Regression => {
            let pred = if reference {
                model.predict_values_reference(&table)?
            } else {
                compiled.predict_values(&table)
            };
            let r = rmse(&pred, table.labels().as_real().unwrap());
            eprintln!("RMSE against the CSV's target column: {r:.4}");
            pred.into_iter().map(|p| p.to_string()).collect()
        }
    };
    let elapsed = start.elapsed();
    let rows = table.n_rows();
    let path_name = if reference { "reference" } else { "compiled" };
    eprintln!(
        "{rows} rows scored in {elapsed:.2?} on the {path_name} path ({:.0} rows/s)",
        rows as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if let Some(path) = opts.get("serve-metrics") {
        std::fs::write(path, stats.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("serving metrics written to {path}");
    }
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, format!("prediction\n{}\n", lines.join("\n")))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("{} predictions written to {path}", lines.len());
        }
        None => {
            println!("prediction");
            for l in lines {
                println!("{l}");
            }
        }
    }
    Ok(())
}

/// The online request tier: stream a simulated arrival plan through the
/// micro-batching front (virtual clock, so runs are deterministic and
/// seed-replayable) and report latency quantiles, sustained QPS, sheds
/// and hot swaps. See docs/SERVING.md, "The request tier".
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::Duration;
    use ts_front::{ArrivalPlan, FrontConfig, FrontServer, ModelRegistry};

    let model_path = opts.required("model")?;
    let model = ModelFile::from_json(
        &std::fs::read_to_string(model_path).map_err(|e| format!("reading {model_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {model_path}: {e}"))?;
    let table = Arc::new(load_table(opts)?);
    if table.n_rows() == 0 {
        return Err("the request table has no rows".into());
    }

    let requests = opts.num("requests", 5_000usize)?;
    if requests == 0 {
        return Err("--requests must be at least 1".into());
    }
    let conns = opts.num("conns", 8u32)?;
    if conns == 0 {
        return Err("--conns must be at least 1".into());
    }
    let seed = opts.num("seed", 0u64)?;
    let qps = opts.num("qps", 100_000.0f64)?;
    if !(qps > 0.0 && qps.is_finite()) {
        return Err(format!("--qps must be positive and finite, got {qps}"));
    }
    let plan = match opts.get("arrival").unwrap_or("poisson") {
        "poisson" => {
            for k in [
                "burst-on-qps",
                "burst-off-qps",
                "burst-on-us",
                "burst-off-us",
            ] {
                if opts.get(k).is_some() {
                    return Err(format!("--{k} needs --arrival bursty"));
                }
            }
            ArrivalPlan::Poisson { qps }
        }
        "bursty" => {
            let on_qps = opts.num("burst-on-qps", qps * 3.0)?;
            let off_qps = opts.num("burst-off-qps", qps / 10.0)?;
            for (name, q) in [("burst-on-qps", on_qps), ("burst-off-qps", off_qps)] {
                if !(q > 0.0 && q.is_finite()) {
                    return Err(format!("--{name} must be positive and finite, got {q}"));
                }
            }
            let on_us = opts.num("burst-on-us", 1_000u64)?;
            let off_us = opts.num("burst-off-us", 2_000u64)?;
            if on_us == 0 || off_us == 0 {
                return Err("--burst-on-us/--burst-off-us must be at least 1".into());
            }
            ArrivalPlan::Bursty {
                on_qps,
                off_qps,
                on: Duration::from_micros(on_us),
                off: Duration::from_micros(off_us),
            }
        }
        other => {
            return Err(format!(
                "--arrival must be poisson or bursty, got {other:?}"
            ))
        }
    };
    let cfg = FrontConfig {
        latency_budget: Duration::from_micros(opts.num("latency-budget-us", 2_000u64)?),
        max_batch: opts.num("max-batch", 64usize)?,
        queue_cap: opts.num("queue-cap", 256usize)?,
        adaptive_batch: !opts.flag("fixed-batch"),
        ..FrontConfig::default()
    };

    let registry = Arc::new(ModelRegistry::new(model.compile()));
    let mut server = FrontServer::new(cfg, Arc::clone(&registry), Arc::clone(&table));
    let mut n_swaps = 0usize;
    if let Some(list) = opts.get("swap-at") {
        for (i, tok) in list.split(',').enumerate() {
            let at_us: u64 = tok
                .trim()
                .parse()
                .map_err(|_| format!("--swap-at time {tok:?} is not a valid number"))?;
            // The replacement trains off the virtual clock on a real
            // thread; the swap closure joins it at the scheduled virtual
            // time, so trainer wall time never skews response latencies.
            let t = Arc::clone(&table);
            let s = seed ^ (0xF507_A881 + i as u64);
            let trainer = std::thread::spawn(move || {
                let attrs: Vec<usize> = (0..t.n_attrs()).collect();
                let params = ts_tree::TrainParams::for_task(t.schema().task);
                let tree = ts_tree::train_tree(&t, &attrs, &params, s);
                ts_serve::CompiledModel::from_tree(&tree)
            });
            server.schedule_swap(Duration::from_micros(at_us), move || {
                trainer.join().expect("replacement trainer panicked")
            });
            n_swaps += 1;
        }
    }

    let arrivals = plan.generate(requests, table.n_rows() as u32, conns, seed);
    eprintln!(
        "streaming {requests} requests ({} arrivals, {conns} conns, seed {seed}) \
         against {} rows x {} attrs",
        plan.name(),
        table.n_rows(),
        table.n_attrs()
    );
    let report = server.run(&arrivals);

    if report.swaps.len() != n_swaps {
        return Err(format!(
            "only {} of {n_swaps} scheduled swaps fired — the stream ended at \
             {:.3} ms; move --swap-at earlier",
            report.swaps.len(),
            arrivals.last().map_or(0, |a| a.at_ns) as f64 / 1e6,
        ));
    }
    eprintln!(
        "served {} / {} ({} shed: {} queue-full, {} backpressure)",
        report.responses.len(),
        requests,
        report.sheds.len(),
        report
            .sheds
            .iter()
            .filter(|s| s.reason == ts_front::RejectReason::QueueFull)
            .count(),
        report
            .sheds
            .iter()
            .filter(|s| s.reason == ts_front::RejectReason::Backpressure)
            .count(),
    );
    eprintln!(
        "{} batches ({} deadline flushes, {} full flushes), {} hot swaps",
        report.batches,
        report.deadline_flushes,
        report.full_flushes,
        report.swaps.len()
    );
    let q = report.latency_quantiles().unwrap_or_default();
    println!(
        "latency p50 {:.1} us | p99 {:.1} us | p999 {:.1} us | sustained {:.0} qps",
        q.p50_ns as f64 / 1e3,
        q.p99_ns as f64 / 1e3,
        q.p999_ns as f64 / 1e3,
        report.sustained_qps()
    );
    if let Some(path) = opts.get("report") {
        let json = serve_report_json(&plan, seed, &report);
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("serving report written to {path}");
    }
    Ok(())
}

/// Hand-rolled JSON for the serving report — small and flat enough that
/// the tsjson derive would be heavier than the literal.
fn serve_report_json(plan: &ts_front::ArrivalPlan, seed: u64, r: &ts_front::FrontReport) -> String {
    let q = r.latency_quantiles().unwrap_or_default();
    format!(
        "{{\n  \"arrival\": \"{}\",\n  \"seed\": {seed},\n  \"responses\": {},\n  \
         \"sheds\": {},\n  \"batches\": {},\n  \"deadline_flushes\": {},\n  \
         \"full_flushes\": {},\n  \"swaps\": {},\n  \"p50_us\": {:.3},\n  \
         \"p99_us\": {:.3},\n  \"p999_us\": {:.3},\n  \"sustained_qps\": {:.1}\n}}\n",
        plan.name(),
        r.responses.len(),
        r.sheds.len(),
        r.batches,
        r.deadline_flushes,
        r.full_flushes,
        r.swaps.len(),
        q.p50_ns as f64 / 1e3,
        q.p99_ns as f64 / 1e3,
        q.p999_ns as f64 / 1e3,
        r.sustained_qps(),
    )
}

fn cmd_show(opts: &Opts) -> Result<(), String> {
    let model_path = opts.required("model")?;
    let model = ModelFile::from_json(
        &std::fs::read_to_string(model_path).map_err(|e| format!("reading {model_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {model_path}: {e}"))?;
    let index = opts.num("tree", 0usize)?;
    let tree = model
        .tree_at(index)
        .ok_or_else(|| format!("model has no tree {index}"))?;
    print!("{}", tree.render(|a| format!("a{a}")));
    Ok(())
}

fn cmd_importance(opts: &Opts) -> Result<(), String> {
    let model_path = opts.required("model")?;
    let model = ModelFile::from_json(
        &std::fs::read_to_string(model_path).map_err(|e| format!("reading {model_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {model_path}: {e}"))?;
    let top = opts.num("top", 10usize)?;
    let imp = model.feature_importance();
    let mut ranked: Vec<(usize, f64)> = imp.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("{:<8} {:>10}", "attr", "importance");
    for (attr, v) in ranked.into_iter().take(top) {
        if v > 0.0 {
            println!("{attr:<8} {v:>10.4}");
        }
    }
    Ok(())
}
