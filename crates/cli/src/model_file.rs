//! The CLI's on-disk model envelope: a tagged JSON union over the three
//! model kinds the engine produces.

use treeserver::GbtModel;
use ts_datatable::DataTable;
use ts_tree::{DecisionTreeModel, ForestModel};
use tsjson::json;

/// A persisted model of any kind.
pub enum ModelFile {
    /// A single decision tree.
    Tree(DecisionTreeModel),
    /// A bagged forest (random forest / extra-trees).
    Forest(ForestModel),
    /// A gradient-boosted ensemble.
    Gbt(GbtModel),
}

impl ModelFile {
    /// Serialises with a `kind` tag.
    pub fn to_json(&self) -> String {
        let v = match self {
            ModelFile::Tree(m) => json!({"kind": "tree", "model": m}),
            ModelFile::Forest(m) => json!({"kind": "forest", "model": m}),
            ModelFile::Gbt(m) => json!({"kind": "gbt", "model": m}),
        };
        tsjson::to_string(&v).expect("model serialisation cannot fail")
    }

    /// Parses the tagged envelope.
    pub fn from_json(s: &str) -> Result<ModelFile, String> {
        let v: tsjson::Value = tsjson::from_str(s).map_err(|e| e.to_string())?;
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or("missing \"kind\" tag")?;
        let model = v.get("model").ok_or("missing \"model\" body")?.clone();
        match kind {
            "tree" => Ok(ModelFile::Tree(
                tsjson::from_value(model).map_err(|e| e.to_string())?,
            )),
            "forest" => Ok(ModelFile::Forest(
                tsjson::from_value(model).map_err(|e| e.to_string())?,
            )),
            "gbt" => Ok(ModelFile::Gbt(
                tsjson::from_value(model).map_err(|e| e.to_string())?,
            )),
            other => Err(format!("unknown model kind {other:?}")),
        }
    }

    /// Compiles the model for batched serving (see `ts-serve`).
    pub fn compile(&self) -> ts_serve::CompiledModel {
        match self {
            ModelFile::Tree(m) => ts_serve::CompiledModel::from_tree(m),
            ModelFile::Forest(m) => ts_serve::CompiledModel::from_forest(m),
            ModelFile::Gbt(m) => ts_serve::CompiledModel::from_gbt(m),
        }
    }

    /// Class predictions over a table (compiled batched path).
    pub fn predict_labels(&self, table: &DataTable) -> Result<Vec<u32>, String> {
        match self {
            ModelFile::Tree(m) => Ok(m.predict_labels(table)),
            ModelFile::Forest(m) => Ok(m.predict_labels(table)),
            ModelFile::Gbt(m) => Ok(m.predict_labels(table)),
        }
    }

    /// Value predictions over a table (compiled batched path).
    pub fn predict_values(&self, table: &DataTable) -> Result<Vec<f64>, String> {
        match self {
            ModelFile::Tree(m) => Ok(m.predict_values(table)),
            ModelFile::Forest(m) => Ok(m.predict_values(table)),
            ModelFile::Gbt(m) => Ok(m.predict_values(table)),
        }
    }

    /// Class predictions on the per-row reference traversal (`--reference`).
    pub fn predict_labels_reference(&self, table: &DataTable) -> Result<Vec<u32>, String> {
        match self {
            ModelFile::Tree(m) => Ok(m.predict_labels_reference(table)),
            ModelFile::Forest(m) => Ok(m.predict_labels_reference(table)),
            ModelFile::Gbt(m) => Ok(m
                .predict_margins_reference(table)
                .into_iter()
                .map(|v| u32::from(v > 0.0))
                .collect()),
        }
    }

    /// Value predictions on the per-row reference traversal (`--reference`).
    pub fn predict_values_reference(&self, table: &DataTable) -> Result<Vec<f64>, String> {
        match self {
            ModelFile::Tree(m) => Ok(m.predict_values_reference(table)),
            ModelFile::Forest(m) => Ok(m.predict_values_reference(table)),
            ModelFile::Gbt(m) => Ok(m.predict_margins_reference(table)),
        }
    }

    /// Gain-based importance, sized to the largest attribute id seen.
    pub fn feature_importance(&self) -> Vec<f64> {
        let n = self.max_attr() + 1;
        match self {
            ModelFile::Tree(m) => m.feature_importance(n),
            ModelFile::Forest(m) => m.feature_importance(n),
            ModelFile::Gbt(m) => {
                let forest = ForestModel::new(m.trees.clone(), ts_datatable::Task::Regression);
                forest.feature_importance(n)
            }
        }
    }

    /// The `index`-th tree of the model, if any.
    pub fn tree_at(&self, index: usize) -> Option<&DecisionTreeModel> {
        match self {
            ModelFile::Tree(m) => (index == 0).then_some(m),
            ModelFile::Forest(m) => m.trees.get(index),
            ModelFile::Gbt(m) => m.trees.get(index),
        }
    }

    fn max_attr(&self) -> usize {
        let trees: Vec<&DecisionTreeModel> = match self {
            ModelFile::Tree(m) => vec![m],
            ModelFile::Forest(m) => m.trees.iter().collect(),
            ModelFile::Gbt(m) => m.trees.iter().collect(),
        };
        trees
            .iter()
            .flat_map(|t| t.nodes.iter())
            .filter_map(|n| n.split.as_ref().map(|(i, _, _)| i.attr))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::synth::{generate, SynthSpec};
    use ts_tree::{train_tree, TrainParams};

    fn sample_tree() -> (DecisionTreeModel, DataTable) {
        let t = generate(&SynthSpec {
            rows: 500,
            numeric: 3,
            seed: 1,
            ..Default::default()
        });
        let m = train_tree(&t, &[0, 1, 2], &TrainParams::for_task(t.schema().task), 0);
        (m, t)
    }

    fn sample_gbt() -> (treeserver::GbtModel, DataTable) {
        let t = generate(&SynthSpec {
            rows: 500,
            numeric: 3,
            task: ts_datatable::Task::Regression,
            seed: 5,
            ..Default::default()
        });
        let params = TrainParams::for_task(ts_datatable::Task::Regression);
        let trees: Vec<_> = (0..3)
            .map(|i| train_tree(&t, &[0, 1, 2], &params, i as u64))
            .collect();
        let gbt = treeserver::GbtModel {
            trees,
            base: 0.25,
            eta: 0.1,
            objective: treeserver::GbtObjective::SquaredError,
        };
        (gbt, t)
    }

    #[test]
    fn envelope_roundtrips_every_kind() {
        let (tree, table) = sample_tree();
        let forest = ForestModel::new(vec![tree.clone()], table.schema().task);
        for mf in [ModelFile::Tree(tree.clone()), ModelFile::Forest(forest)] {
            let parsed = ModelFile::from_json(&mf.to_json()).unwrap();
            assert_eq!(
                parsed.predict_labels(&table).unwrap(),
                mf.predict_labels(&table).unwrap()
            );
        }
        let (gbt, reg_table) = sample_gbt();
        let mf = ModelFile::Gbt(gbt);
        let parsed = ModelFile::from_json(&mf.to_json()).unwrap();
        assert_eq!(
            parsed.predict_values(&reg_table).unwrap(),
            mf.predict_values(&reg_table).unwrap()
        );
    }

    /// Train → save → load → compile must reproduce the in-memory model's
    /// predictions bit-for-bit: the envelope may not drop or round any
    /// payload field the evaluator reads.
    #[test]
    fn saved_model_compiles_to_identical_predictions() {
        let (tree, table) = sample_tree();
        let forest = ForestModel::new(vec![tree.clone(), tree.clone()], table.schema().task);
        for mf in [ModelFile::Tree(tree), ModelFile::Forest(forest)] {
            let in_memory = mf.compile().predict_labels(&table);
            let reloaded = ModelFile::from_json(&mf.to_json()).unwrap();
            assert_eq!(reloaded.compile().predict_labels(&table), in_memory);
            assert_eq!(
                reloaded.predict_labels_reference(&table).unwrap(),
                in_memory
            );
        }
        let (gbt, reg_table) = sample_gbt();
        let mf = ModelFile::Gbt(gbt);
        let in_memory = mf.compile().predict_values(&reg_table);
        let reloaded = ModelFile::from_json(&mf.to_json()).unwrap();
        let after: Vec<f64> = reloaded.compile().predict_values(&reg_table);
        assert_eq!(after.len(), in_memory.len());
        for (a, b) in after.iter().zip(&in_memory) {
            assert_eq!(a.to_bits(), b.to_bits(), "round-trip changed a margin");
        }
        let reference = reloaded.predict_values_reference(&reg_table).unwrap();
        for (a, b) in after.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "compiled deviates from reference");
        }
    }

    #[test]
    fn bad_envelopes_error() {
        assert!(ModelFile::from_json("{}").is_err());
        assert!(ModelFile::from_json("{\"kind\": \"alien\", \"model\": {}}").is_err());
        assert!(ModelFile::from_json("not json").is_err());
    }

    #[test]
    fn importance_is_normalised() {
        let (tree, _) = sample_tree();
        let mf = ModelFile::Tree(tree);
        let imp = mf.feature_importance();
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "importance sums to {sum}");
    }
}
