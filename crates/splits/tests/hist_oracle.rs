//! Differential oracle for the histogram split engine (`ts_splits::hist`):
//! the exact kernel is ground truth.
//!
//! Two regimes, two contracts:
//!
//! - **Lossless** (at most `bins` distinct present values): binning keeps
//!   every value its own bin (`BinCuts::equi_depth` fast path), so the
//!   histogram kernel must agree with the exact kernel *bitwise* on gain,
//!   missing routing and child stats — classification impurities are pure
//!   functions of integer counts, so no summation-order slack is needed.
//!   Only the threshold representation differs (the bin's upper cut versus
//!   the exact kernel's midpoint), and both must route the node's rows
//!   identically.
//! - **Lossy** (more distinct values than bins): the histogram gain is a
//!   restriction of the exact candidate set, so it can never exceed the
//!   exact gain — and on planted threshold signal it must capture most of
//!   it, since equi-depth cuts land within one rank-quantile of any
//!   boundary.

use ts_datatable::{BinnedColumn, Column};
use ts_splits::condition::partition_rows;
use ts_splits::exact::best_numeric_split;
use ts_splits::hist::best_hist_split_numeric_at;
use ts_splits::impurity::{Impurity, LabelView, NodeStats};
use ts_splits::sorted::NodeRows;
use ts_splits::{top_k_candidates, HistCandidate};
use tscheck::prelude::*;
use tsrand::rngs::StdRng;
use tsrand::{Rng, SeedableRng};

/// Columns with at most 12 distinct present values — far below the 64-bin
/// budget, so binning is lossless by construction.
fn few_distinct_data() -> impl Strategy<Value = (Vec<f64>, Vec<u32>)> {
    (2usize..150).prop_flat_map(|n| {
        (
            tscheck::collection::vec(
                prop_oneof![5 => (0u32..12).prop_map(|v| v as f64 * 1.5 - 7.0), 1 => Just(f64::NAN)],
                n,
            ),
            tscheck::collection::vec(0u32..3, n),
        )
    })
}

proptest! {
    /// Lossless regime: bitwise agreement with the exact kernel on gain,
    /// missing side and child statistics, full node and subset alike.
    #[test]
    fn lossless_matches_exact_kernel_bitwise((values, ys) in few_distinct_data()) {
        let view = LabelView::Class(&ys, 3);
        let exact = best_numeric_split(&values, view, Impurity::Gini);
        let binned = BinnedColumn::build(&values, 64);
        let hist = best_hist_split_numeric_at(
            &binned,
            NodeRows::All(values.len()),
            view,
            Impurity::Gini,
        );
        match (exact, hist) {
            (None, None) => {}
            (Some(e), Some(h)) => {
                prop_assert_eq!(h.gain.to_bits(), e.gain.to_bits(),
                    "gain diverged: hist {} vs exact {}", h.gain, e.gain);
                prop_assert_eq!(h.missing_left, e.missing_left);
                prop_assert_eq!(&h.left, &e.left);
                prop_assert_eq!(&h.right, &e.right);
            }
            (e, h) => prop_assert!(false, "split existence disagrees: exact {:?} vs hist {:?}", e, h),
        }
    }

    /// Lossless regime over a node subset: gather-then-exact is the oracle
    /// for the histogram kernel's masked accumulation.
    #[test]
    fn lossless_subset_matches_gathered_exact((values, ys) in few_distinct_data(), stride in 2usize..5) {
        let rows: Vec<u32> = (0..values.len() as u32).filter(|r| *r % stride as u32 != 0).collect();
        if rows.len() < 2 {
            return Ok(());
        }
        let gathered_v: Vec<f64> = rows.iter().map(|&r| values[r as usize]).collect();
        let gathered_y: Vec<u32> = rows.iter().map(|&r| ys[r as usize]).collect();
        let exact = best_numeric_split(&gathered_v, LabelView::Class(&gathered_y, 3), Impurity::Gini);
        let binned = BinnedColumn::build(&values, 64);
        let hist = best_hist_split_numeric_at(
            &binned,
            NodeRows::Subset(&rows),
            LabelView::Class(&ys, 3),
            Impurity::Gini,
        );
        match (exact, hist) {
            (None, None) => {}
            (Some(e), Some(h)) => {
                prop_assert_eq!(h.gain.to_bits(), e.gain.to_bits());
                prop_assert_eq!(h.missing_left, e.missing_left);
                prop_assert_eq!(&h.left, &e.left);
                prop_assert_eq!(&h.right, &e.right);
            }
            (e, h) => prop_assert!(false, "split existence disagrees: exact {:?} vs hist {:?}", e, h),
        }
    }

    /// The returned condition routes the node exactly as the returned child
    /// stats claim — the invariant `ConfirmBest` partitioning relies on.
    #[test]
    fn hist_split_children_match_its_own_routing((values, ys) in few_distinct_data()) {
        let binned = BinnedColumn::build(&values, 8); // deliberately lossy too
        let view = LabelView::Class(&ys, 3);
        if let Some(s) = best_hist_split_numeric_at(
            &binned,
            NodeRows::All(values.len()),
            view,
            Impurity::Gini,
        ) {
            let col = Column::Numeric(values.clone());
            let ix: Vec<u32> = (0..values.len() as u32).collect();
            let (l, r) = partition_rows(&col, &ix, &s.test, s.missing_left);
            let ls = NodeStats::from_view_positions(view, l.iter().map(|&p| p as usize));
            let rs = NodeStats::from_view_positions(view, r.iter().map(|&p| p as usize));
            prop_assert_eq!(&ls, &s.left);
            prop_assert_eq!(&rs, &s.right);
        }
    }

    /// Lossy regime, seeded sweep: the histogram gain never exceeds the
    /// exact gain, and on a planted threshold concept it captures at least
    /// 90% of it — equi-depth cuts land within one rank-quantile of any
    /// boundary, so a 64-bin budget cannot lose more of a clean step signal.
    #[test]
    fn lossy_divergence_is_bounded_on_planted_signal(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2_000;
        let boundary = rng.gen_range(0.15..0.85);
        let values: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let ys: Vec<u32> = values
            .iter()
            .map(|&v| {
                let label = u32::from(v > boundary);
                if rng.gen::<f64>() < 0.02 { 1 - label } else { label } // 2% noise
            })
            .collect();
        let view = LabelView::Class(&ys, 2);
        let exact = best_numeric_split(&values, view, Impurity::Gini)
            .expect("planted signal must split");
        let binned = BinnedColumn::build(&values, 64);
        let hist = best_hist_split_numeric_at(&binned, NodeRows::All(n), view, Impurity::Gini)
            .expect("planted signal must split under binning");
        prop_assert!(hist.gain <= exact.gain + 1e-9,
            "histogram gain {} beat the exact kernel's {}", hist.gain, exact.gain);
        prop_assert!(hist.gain >= 0.9 * exact.gain,
            "histogram lost too much of the planted signal: {} vs exact {}",
            hist.gain, exact.gain);
    }

    /// Nomination order is input-order independent: any rotation of the
    /// candidate list elects the same top-k.
    #[test]
    fn top_k_is_input_order_independent(
        gains in tscheck::collection::vec(0.0f64..10.0, 1..20),
        rot in 0usize..20,
        k in 1usize..6,
    ) {
        let cands: Vec<HistCandidate> = gains
            .iter()
            .enumerate()
            .map(|(attr, &gain)| HistCandidate { attr, gain })
            .collect();
        let mut rotated = cands.clone();
        rotated.rotate_left(rot % cands.len());
        prop_assert_eq!(top_k_candidates(cands, k), top_k_candidates(rotated, k));
    }
}
