//! Property-based tests for the split kernels: the invariants that make
//! "exact training" exact, checked over randomised inputs.

use ts_datatable::Column;
use ts_splits::condition::partition_rows;
use ts_splits::exact::{best_numeric_split, best_split_for_column};
use ts_splits::histogram::{BinCuts, NumericHistogram};
use ts_splits::impurity::{Impurity, LabelView, NodeStats};
use ts_splits::sketch::QuantileSketch;
use ts_splits::SplitTest;
use tscheck::prelude::*;

fn class_data() -> impl Strategy<Value = (Vec<f64>, Vec<u32>)> {
    (2usize..120).prop_flat_map(|n| {
        (
            tscheck::collection::vec(prop_oneof![4 => -50.0..50.0f64, 1 => Just(f64::NAN)], n),
            tscheck::collection::vec(0u32..3, n),
        )
    })
}

proptest! {
    /// The split's child counts partition the rows and gain is positive;
    /// recomputing impurities from the returned children reproduces the gain
    /// over the present rows.
    #[test]
    fn numeric_split_children_partition_rows((values, ys) in class_data()) {
        let view = LabelView::Class(&ys, 3);
        if let Some(s) = best_numeric_split(&values, view, Impurity::Gini) {
            prop_assert!(s.gain > 0.0);
            prop_assert_eq!(s.n_left() + s.n_right(), values.len() as u64);
            // Re-derive child stats by routing every row with the returned
            // test + missing_left, and compare.
            let col = Column::Numeric(values.clone());
            let ix: Vec<u32> = (0..values.len() as u32).collect();
            let (l, r) = partition_rows(&col, &ix, &s.test, s.missing_left);
            prop_assert_eq!(l.len() as u64, s.n_left());
            prop_assert_eq!(r.len() as u64, s.n_right());
            let ls = NodeStats::from_view_positions(view, l.iter().map(|&p| p as usize));
            let rs = NodeStats::from_view_positions(view, r.iter().map(|&p| p as usize));
            prop_assert_eq!(&ls, &s.left);
            prop_assert_eq!(&rs, &s.right);
        }
    }

    /// Exhaustive threshold check: no candidate boundary beats the kernel's
    /// reported gain (exactness of Case 1).
    #[test]
    fn numeric_split_is_optimal((values, ys) in class_data()) {
        let view = LabelView::Class(&ys, 3);
        let best = best_numeric_split(&values, view, Impurity::Gini);
        // Try every present value as a threshold.
        let mut best_brute: f64 = 0.0;
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let total = NodeStats::from_view_positions(
            view,
            values.iter().enumerate().filter(|(_, v)| !v.is_nan()).map(|(i, _)| i),
        );
        let total_w = total.weighted_impurity(Impurity::Gini);
        for &thr in &present {
            let lpos: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| !v.is_nan() && v <= thr)
                .map(|(i, _)| i)
                .collect();
            let rpos: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| !v.is_nan() && v > thr)
                .map(|(i, _)| i)
                .collect();
            if lpos.is_empty() || rpos.is_empty() {
                continue;
            }
            let lw = NodeStats::from_view_positions(view, lpos.into_iter())
                .weighted_impurity(Impurity::Gini);
            let rw = NodeStats::from_view_positions(view, rpos.into_iter())
                .weighted_impurity(Impurity::Gini);
            best_brute = best_brute.max(total_w - lw - rw);
        }
        let kernel_gain = best.map_or(0.0, |s| s.gain);
        prop_assert!(
            (kernel_gain - best_brute).abs() < 1e-9 * best_brute.abs().max(1.0),
            "kernel {} vs brute {}", kernel_gain, best_brute
        );
    }

    /// partition_rows: output is a disjoint, order-preserving cover of input.
    #[test]
    fn partition_rows_covers_input(
        values in tscheck::collection::vec(
            prop_oneof![4 => -10.0..10.0f64, 1 => Just(f64::NAN)], 1..80),
        thr in -10.0..10.0f64,
        missing_left in any::<bool>(),
    ) {
        let col = Column::Numeric(values.clone());
        let ix: Vec<u32> = (0..values.len() as u32).collect();
        let (l, r) = partition_rows(&col, &ix, &SplitTest::NumericLe(thr), missing_left);
        let mut merged: Vec<u32> = l.iter().chain(r.iter()).copied().collect();
        merged.sort_unstable();
        prop_assert_eq!(merged, ix);
        prop_assert!(l.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    /// Histograms are mergeable: building over two partitions and merging
    /// gives the same histogram as one pass.
    #[test]
    fn histogram_merge_associative(
        (values, ys) in class_data(),
        cut_at in 0usize..120,
    ) {
        let cuts = BinCuts::equi_depth(&values, 8);
        let k = cut_at.min(values.len());
        let mut whole = NumericHistogram::new_class(cuts.n_bins(), 3);
        let mut a = NumericHistogram::new_class(cuts.n_bins(), 3);
        let mut b = NumericHistogram::new_class(cuts.n_bins(), 3);
        for (i, (&v, &y)) in values.iter().zip(&ys).enumerate() {
            whole.add_class(&cuts, v, y);
            if i < k { a.add_class(&cuts, v, y) } else { b.add_class(&cuts, v, y) }
        }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    /// The histogram split never beats the exact split (approximation is a
    /// restriction of the candidate set).
    #[test]
    fn histogram_never_beats_exact((values, ys) in class_data()) {
        let view = LabelView::Class(&ys, 3);
        let exact_gain = best_numeric_split(&values, view, Impurity::Gini)
            .map_or(0.0, |s| s.gain);
        let cuts = BinCuts::equi_depth(&values, 8);
        let mut h = NumericHistogram::new_class(cuts.n_bins(), 3);
        for (&v, &y) in values.iter().zip(&ys) {
            h.add_class(&cuts, v, y);
        }
        let approx_gain = h.best_split(&cuts, Impurity::Gini).map_or(0.0, |s| s.gain);
        prop_assert!(approx_gain <= exact_gain + 1e-9,
            "approx {} > exact {}", approx_gain, exact_gain);
    }

    /// Sketch ranks stay within the coarse error budget.
    #[test]
    fn sketch_rank_error_bounded(
        values in tscheck::collection::vec(-1000.0..1000.0f64, 100..2000),
    ) {
        let mut s = QuantileSketch::new(64);
        for &v in &values {
            s.push(v, 1.0);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        for q in [0.25, 0.5, 0.75] {
            let v = sorted[((q * n as f64) as usize).min(n - 1)];
            let true_rank = sorted.iter().filter(|&&x| x <= v).count() as f64;
            let est = s.rank(v);
            prop_assert!(
                (est - true_rank).abs() <= n as f64 * 0.1 + 2.0,
                "rank {} vs {} (n={})", est, true_rank, n
            );
        }
    }

    /// Regression kernels: same partition/consistency invariant as
    /// classification.
    #[test]
    fn regression_split_children_partition_rows(
        values in tscheck::collection::vec(
            prop_oneof![4 => -50.0..50.0f64, 1 => Just(f64::NAN)], 2..100),
        seed in any::<u64>(),
    ) {
        // Derive ys from values + seed so the label distribution is varied
        // but deterministic.
        let ys: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let base = if v.is_nan() { 0.0 } else { *v };
                base + ((seed.wrapping_add(i as u64) % 17) as f64)
            })
            .collect();
        let view = LabelView::Real(&ys);
        if let Some(s) = best_numeric_split(&values, view, Impurity::Variance) {
            prop_assert_eq!(s.n_left() + s.n_right(), values.len() as u64);
            prop_assert!(s.gain > 0.0);
        }
    }

    /// Categorical dispatch consistency between buffer kinds.
    #[test]
    fn categorical_split_children_partition_rows(
        codes in tscheck::collection::vec(0u32..6, 2..100),
        ys in tscheck::collection::vec(0u32..3, 100),
    ) {
        let n = codes.len();
        let ys = &ys[..n];
        let buf = ts_datatable::ValuesBuf::Categorical(codes.clone());
        let view = LabelView::Class(ys, 3);
        if let Some(s) = best_split_for_column(
            &buf,
            ts_datatable::AttrType::Categorical { n_values: 6 },
            view,
            Impurity::Gini,
        ) {
            prop_assert_eq!(s.n_left() + s.n_right(), n as u64);
            let col = Column::Categorical(codes.clone());
            let ix: Vec<u32> = (0..n as u32).collect();
            let (l, r) = partition_rows(&col, &ix, &s.test, s.missing_left);
            prop_assert_eq!(l.len() as u64, s.n_left());
            prop_assert_eq!(r.len() as u64, s.n_right());
        }
    }
}
