//! Brute-force oracle tests: every exact kernel is compared against a naive
//! `O(n · distinct)` scan that recomputes both children's impurities from
//! scratch for each candidate condition. The classification oracles demand
//! *bitwise* gain equality — identical integer counts feed the same impurity
//! function, so the incremental kernels must land on the same floats. The
//! regression oracles allow a small tolerance because the kernels accumulate
//! `sum`/`sum_sq` incrementally while the oracle resums from scratch.

use ts_datatable::MISSING_CAT;
use ts_splits::exact::{
    best_cat_split_classification, best_cat_split_regression, best_numeric_split,
};
use ts_splits::impurity::{ClassCounts, Impurity, LabelView, RegAgg};
use tscheck::prelude::*;

const K: u32 = 3;

fn numeric_class_data() -> impl Strategy<Value = (Vec<f64>, Vec<u32>)> {
    (2usize..100).prop_flat_map(|n| {
        (
            tscheck::collection::vec(prop_oneof![5 => -40.0..40.0f64, 1 => Just(f64::NAN)], n),
            tscheck::collection::vec(0u32..K, n),
        )
    })
}

/// Naive exact numeric split for classification: for every boundary between
/// adjacent distinct present values, rebuild both children's class counts
/// from scratch and take the best strictly-positive gain.
fn oracle_numeric_class(values: &[f64], ys: &[u32], imp: Impurity) -> Option<f64> {
    let mut distinct: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    distinct.sort_unstable_by(f64::total_cmp);
    distinct.dedup();
    if distinct.len() < 2 {
        return None;
    }
    let mut total = ClassCounts::new(K);
    for (i, v) in values.iter().enumerate() {
        if !v.is_nan() {
            total.add(ys[i]);
        }
    }
    let total_w = total.weighted_impurity(imp);
    let mut best: Option<f64> = None;
    for cut in &distinct[..distinct.len() - 1] {
        let mut left = ClassCounts::new(K);
        let mut right = ClassCounts::new(K);
        for (i, v) in values.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            if *v <= *cut {
                left.add(ys[i]);
            } else {
                right.add(ys[i]);
            }
        }
        let gain = total_w - left.weighted_impurity(imp) - right.weighted_impurity(imp);
        if gain > 0.0 && best.is_none_or(|b| gain > b) {
            best = Some(gain);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Numeric classification, Gini and entropy: the kernel's gain equals
    /// the oracle's best gain bitwise, and a split exists iff the oracle
    /// finds one.
    #[test]
    fn numeric_class_matches_oracle((values, ys) in numeric_class_data()) {
        for imp in [Impurity::Gini, Impurity::Entropy] {
            let kernel = best_numeric_split(&values, LabelView::Class(&ys, K), imp);
            let oracle = oracle_numeric_class(&values, &ys, imp);
            match (&kernel, oracle) {
                (Some(s), Some(g)) => prop_assert_eq!(
                    s.gain.total_cmp(&g),
                    std::cmp::Ordering::Equal,
                    "kernel gain {} != oracle gain {} ({:?})", s.gain, g, imp
                ),
                (None, None) => {}
                _ => prop_assert!(
                    false,
                    "kernel {:?} vs oracle {:?} disagree on splittability", kernel, oracle
                ),
            }
        }
    }

    /// Numeric regression: same scan with fresh `RegAgg`s per boundary;
    /// tolerance because of the differing summation order.
    #[test]
    fn numeric_regression_matches_oracle(
        values in tscheck::collection::vec(
            prop_oneof![5 => -40.0..40.0f64, 1 => Just(f64::NAN)], 2..100),
        ys in tscheck::collection::vec(-10.0..10.0f64, 100),
    ) {
        let ys = &ys[..values.len()];
        let kernel_gain = best_numeric_split(&values, LabelView::Real(ys), Impurity::Variance)
            .map_or(0.0, |s| s.gain);
        let mut distinct: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        distinct.sort_unstable_by(f64::total_cmp);
        distinct.dedup();
        let mut total = RegAgg::default();
        for (i, v) in values.iter().enumerate() {
            if !v.is_nan() {
                total.add(ys[i]);
            }
        }
        let total_w = total.weighted_impurity();
        let mut oracle_gain: f64 = 0.0;
        if distinct.len() >= 2 {
            for cut in &distinct[..distinct.len() - 1] {
                let mut left = RegAgg::default();
                let mut right = RegAgg::default();
                for (i, v) in values.iter().enumerate() {
                    if v.is_nan() {
                        continue;
                    }
                    if *v <= *cut { left.add(ys[i]) } else { right.add(ys[i]) }
                }
                oracle_gain =
                    oracle_gain.max(total_w - left.weighted_impurity() - right.weighted_impurity());
            }
        }
        prop_assert!(
            (kernel_gain - oracle_gain).abs() <= 1e-7 * oracle_gain.abs().max(1.0),
            "kernel {} vs oracle {}", kernel_gain, oracle_gain
        );
    }

    /// Categorical classification (one-vs-rest, Appendix B Case 3): fresh
    /// per-code recount must reproduce the kernel's gain bitwise.
    #[test]
    fn categorical_class_matches_oracle(
        raw in tscheck::collection::vec(
            prop_oneof![6 => 0u32..5, 1 => Just(MISSING_CAT)], 2..100),
        ys in tscheck::collection::vec(0u32..K, 100),
    ) {
        let ys = &ys[..raw.len()];
        let kernel = best_cat_split_classification(&raw, 5, ys, K, Impurity::Gini);
        let mut total = ClassCounts::new(K);
        for (i, &c) in raw.iter().enumerate() {
            if c != MISSING_CAT {
                total.add(ys[i]);
            }
        }
        let mut oracle: Option<f64> = None;
        if total.total() >= 2 {
            let total_w = total.weighted_impurity(Impurity::Gini);
            for code in 0u32..5 {
                let mut left = ClassCounts::new(K);
                let mut right = ClassCounts::new(K);
                for (i, &c) in raw.iter().enumerate() {
                    if c == MISSING_CAT {
                        continue;
                    }
                    if c == code { left.add(ys[i]) } else { right.add(ys[i]) }
                }
                if left.total() == 0 || right.total() == 0 {
                    continue;
                }
                let gain = total_w
                    - left.weighted_impurity(Impurity::Gini)
                    - right.weighted_impurity(Impurity::Gini);
                if gain > 0.0 && oracle.is_none_or(|b| gain > b) {
                    oracle = Some(gain);
                }
            }
        }
        match (&kernel, oracle) {
            (Some(s), Some(g)) => prop_assert_eq!(
                s.gain.total_cmp(&g),
                std::cmp::Ordering::Equal,
                "kernel gain {} != oracle gain {}", s.gain, g
            ),
            (None, None) => {}
            _ => prop_assert!(
                false,
                "kernel {:?} vs oracle {:?} disagree on splittability", kernel, oracle
            ),
        }
    }

    /// Categorical regression (Breiman prefix-of-sorted-means, Appendix B
    /// Case 2): the kernel only inspects |Si| prefixes, the oracle all
    /// 2^|Si| subsets — the theorem says they agree on the best gain.
    #[test]
    fn categorical_regression_prefix_theorem_holds(
        raw in tscheck::collection::vec(
            prop_oneof![6 => 0u32..5, 1 => Just(MISSING_CAT)], 2..80),
        ys in tscheck::collection::vec(-10.0..10.0f64, 80),
    ) {
        let ys = &ys[..raw.len()];
        let kernel_gain =
            best_cat_split_regression(&raw, 5, ys).map_or(0.0, |s| s.gain);
        let mut total = RegAgg::default();
        for (i, &c) in raw.iter().enumerate() {
            if c != MISSING_CAT {
                total.add(ys[i]);
            }
        }
        let mut oracle_gain: f64 = 0.0;
        if total.n >= 2 {
            let total_w = total.weighted_impurity();
            for subset in 1u32..(1 << 5) - 1 {
                let mut left = RegAgg::default();
                let mut right = RegAgg::default();
                for (i, &c) in raw.iter().enumerate() {
                    if c == MISSING_CAT {
                        continue;
                    }
                    if subset & (1 << c) != 0 { left.add(ys[i]) } else { right.add(ys[i]) }
                }
                if left.n == 0 || right.n == 0 {
                    continue;
                }
                oracle_gain =
                    oracle_gain.max(total_w - left.weighted_impurity() - right.weighted_impurity());
            }
        }
        prop_assert!(
            (kernel_gain - oracle_gain).abs() <= 1e-7 * oracle_gain.abs().max(1.0),
            "kernel {} vs exhaustive-subset oracle {}", kernel_gain, oracle_gain
        );
    }
}
