//! Kernel-equivalence property suite (satellite of the sorted-column split
//! engine): for random columns, labels, and node row subsets, the engine's
//! indexed kernels must pick **byte-identical** splits to the legacy
//! gathered kernels — on both explicit numeric paths, not just the one the
//! `Auto` heuristic would take. Gains are compared bitwise: both paths feed
//! the same integer/float accumulations in the same row order, so there is
//! no tolerance to hide behind. Deterministic edge-case tests cover ties,
//! duplicates, NaN/missing routing, single-distinct, all-missing, and empty
//! subsets.

use ts_datatable::{SortedColumn, MISSING_CAT};
use ts_splits::exact::{
    best_cat_split_classification, best_cat_split_regression, best_numeric_split,
    distinct_categories, ColumnSplit,
};
use ts_splits::impurity::{Impurity, LabelView};
use ts_splits::sorted::{
    best_cat_split_classification_at, best_cat_split_regression_at, best_numeric_split_at_path,
    distinct_categories_at, with_node_mask, NodeRows, NumericPath,
};
use tscheck::prelude::*;

const K: u32 = 3;
const NV: u32 = 6;

fn ascending_rows(keep: &[bool]) -> Vec<u32> {
    keep.iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(i, _)| i as u32)
        .collect()
}

fn gather_f(values: &[f64], rows: &[u32]) -> Vec<f64> {
    rows.iter().map(|&r| values[r as usize]).collect()
}

fn gather_u(values: &[u32], rows: &[u32]) -> Vec<u32> {
    rows.iter().map(|&r| values[r as usize]).collect()
}

/// Splits must agree exactly; when both exist the gain must agree *bitwise*.
fn assert_same_split(
    legacy: &Option<ColumnSplit>,
    sorted: &Option<ColumnSplit>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(legacy, sorted);
    if let (Some(l), Some(s)) = (legacy, sorted) {
        prop_assert_eq!(
            l.gain.to_bits(),
            s.gain.to_bits(),
            "gain must match bitwise"
        );
    }
    Ok(())
}

fn numeric_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    tscheck::collection::vec(prop_oneof![5 => -40.0..40.0f64, 1 => Just(f64::NAN)], n)
}

fn cat_codes(n: usize) -> impl Strategy<Value = Vec<u32>> {
    tscheck::collection::vec(prop_oneof![5 => 0u32..NV, 1 => Just(MISSING_CAT)], n)
}

fn class_labels(n: usize) -> impl Strategy<Value = Vec<u32>> {
    tscheck::collection::vec(0u32..K, n)
}

fn real_labels(n: usize) -> impl Strategy<Value = Vec<f64>> {
    tscheck::collection::vec(-10.0..10.0f64, n)
}

fn keep_mask(n: usize) -> impl Strategy<Value = Vec<bool>> {
    tscheck::collection::vec(any::<bool>(), n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Numeric classification over random subsets: both explicit engine
    /// paths equal the legacy gather kernel, for Gini and entropy.
    #[test]
    fn numeric_class_subset_equivalence(
        (values, ys, keep) in (2usize..120).prop_flat_map(|n| {
            (numeric_values(n), class_labels(n), keep_mask(n))
        })
    ) {
        let rows = ascending_rows(&keep);
        let index = SortedColumn::from_numeric(&values);
        let legacy_view_data = gather_u(&ys, &rows);
        let legacy = best_numeric_split(
            &gather_f(&values, &rows),
            LabelView::Class(&legacy_view_data, K),
            Impurity::Gini,
        );
        for imp in [Impurity::Gini, Impurity::Entropy] {
            let gathered_vals = gather_f(&values, &rows);
            let legacy = if imp == Impurity::Gini {
                legacy.clone()
            } else {
                best_numeric_split(&gathered_vals, LabelView::Class(&legacy_view_data, K), imp)
            };
            for path in [NumericPath::SortedScan, NumericPath::GatherSort] {
                let sorted = with_node_mask(values.len(), &rows, |mask| {
                    best_numeric_split_at_path(
                        path,
                        &values,
                        &index,
                        NodeRows::Subset(&rows),
                        Some(mask),
                        LabelView::Class(&ys, K),
                        imp,
                    )
                });
                assert_same_split(&legacy, &sorted)?;
            }
        }
    }

    /// Numeric regression over random subsets, including the whole-column
    /// `NodeRows::All` fast path.
    #[test]
    fn numeric_reg_subset_and_full_equivalence(
        (values, ys, keep) in (2usize..120).prop_flat_map(|n| {
            (numeric_values(n), real_labels(n), keep_mask(n))
        })
    ) {
        let index = SortedColumn::from_numeric(&values);
        let rows = ascending_rows(&keep);
        let gys = gather_f(&ys, &rows);
        let legacy = best_numeric_split(
            &gather_f(&values, &rows),
            LabelView::Real(&gys),
            Impurity::Variance,
        );
        for path in [NumericPath::SortedScan, NumericPath::GatherSort] {
            let sorted = with_node_mask(values.len(), &rows, |mask| {
                best_numeric_split_at_path(
                    path,
                    &values,
                    &index,
                    NodeRows::Subset(&rows),
                    Some(mask),
                    LabelView::Real(&ys),
                    Impurity::Variance,
                )
            });
            assert_same_split(&legacy, &sorted)?;
        }
        // Full column: All(n) against the legacy kernel on the raw values.
        let full_legacy = best_numeric_split(&values, LabelView::Real(&ys), Impurity::Variance);
        for path in [NumericPath::SortedScan, NumericPath::GatherSort] {
            let full_sorted = best_numeric_split_at_path(
                path,
                &values,
                &index,
                NodeRows::All(values.len()),
                None,
                LabelView::Real(&ys),
                Impurity::Variance,
            );
            assert_same_split(&full_legacy, &full_sorted)?;
        }
    }

    /// One-vs-rest categorical classification over random subsets.
    #[test]
    fn cat_class_subset_equivalence(
        (codes, ys, keep) in (2usize..120).prop_flat_map(|n| {
            (cat_codes(n), class_labels(n), keep_mask(n))
        })
    ) {
        let rows = ascending_rows(&keep);
        let gys = gather_u(&ys, &rows);
        for imp in [Impurity::Gini, Impurity::Entropy] {
            let legacy = best_cat_split_classification(
                &gather_u(&codes, &rows),
                NV,
                &gys,
                K,
                imp,
            );
            let sorted =
                best_cat_split_classification_at(&codes, NV, NodeRows::Subset(&rows), &ys, K, imp);
            assert_same_split(&legacy, &sorted)?;
        }
    }

    /// Breiman categorical regression over random subsets: identical
    /// accumulation order makes even the float-sorted group means agree
    /// bitwise.
    #[test]
    fn cat_reg_subset_equivalence(
        (codes, ys, keep) in (2usize..120).prop_flat_map(|n| {
            (cat_codes(n), real_labels(n), keep_mask(n))
        })
    ) {
        let rows = ascending_rows(&keep);
        let gys = gather_f(&ys, &rows);
        let legacy = best_cat_split_regression(&gather_u(&codes, &rows), NV, &gys);
        let sorted = best_cat_split_regression_at(&codes, NV, NodeRows::Subset(&rows), &ys);
        assert_same_split(&legacy, &sorted)?;
    }

    /// The pooled distinct-category scan equals gather + sort + dedup.
    #[test]
    fn distinct_categories_subset_equivalence(
        (codes, keep) in (1usize..120).prop_flat_map(|n| (cat_codes(n), keep_mask(n)))
    ) {
        let rows = ascending_rows(&keep);
        let legacy = distinct_categories(&gather_u(&codes, &rows));
        let sorted = distinct_categories_at(&codes, NodeRows::Subset(&rows), NV);
        prop_assert_eq!(legacy, sorted);
    }
}

/// Runs every numeric kernel variant over one column/labels/subset triple
/// and asserts all agree with the legacy gathered kernel.
fn check_numeric_class(values: &[f64], ys: &[u32], rows: &[u32], imp: Impurity) {
    let index = SortedColumn::from_numeric(values);
    let gys: Vec<u32> = rows.iter().map(|&r| ys[r as usize]).collect();
    let legacy = best_numeric_split(&gather_f(values, rows), LabelView::Class(&gys, K), imp);
    for path in [
        NumericPath::Auto,
        NumericPath::SortedScan,
        NumericPath::GatherSort,
    ] {
        let sorted = with_node_mask(values.len(), rows, |mask| {
            best_numeric_split_at_path(
                path,
                values,
                &index,
                NodeRows::Subset(rows),
                Some(mask),
                LabelView::Class(ys, K),
                imp,
            )
        });
        assert_eq!(legacy, sorted, "path {path:?} diverged");
    }
}

#[test]
fn ties_and_duplicates_pick_the_same_boundary() {
    // Heavy duplicates force tie-breaks on both the value ordering (by row
    // id) and the boundary midpoint; all paths must land on the same split.
    let values = [2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 3.0, 3.0, 2.0, 1.0];
    let ys = [0, 1, 0, 1, 0, 1, 2, 2, 0, 1];
    let rows: Vec<u32> = (0..values.len() as u32).collect();
    check_numeric_class(&values, &ys, &rows, Impurity::Gini);
    check_numeric_class(&values, &ys, &rows[2..8], Impurity::Entropy);
}

#[test]
fn nan_rows_route_identically() {
    // Missing rows are absent from the presorted order but must still be
    // routed (majority side) into the chosen split's child stats.
    let values = [1.0, f64::NAN, 3.0, f64::NAN, 5.0, 2.0, f64::NAN, 4.0];
    let ys = [0, 1, 2, 1, 2, 0, 0, 2];
    let rows: Vec<u32> = (0..values.len() as u32).collect();
    check_numeric_class(&values, &ys, &rows, Impurity::Gini);
    check_numeric_class(&values, &ys, &[1, 3, 6], Impurity::Gini); // all-missing subset
}

#[test]
fn single_distinct_value_yields_no_split() {
    let values = [7.0; 6];
    let ys = [0, 1, 0, 1, 0, 1];
    check_numeric_class(&values, &ys, &[0, 2, 3, 5], Impurity::Gini);
    let index = SortedColumn::from_numeric(&values);
    assert_eq!(
        best_numeric_split_at_path(
            NumericPath::SortedScan,
            &values,
            &index,
            NodeRows::All(6),
            None,
            LabelView::Class(&ys, K),
            Impurity::Gini,
        ),
        None
    );
}

#[test]
fn all_missing_column_yields_no_split() {
    let values = [f64::NAN; 5];
    let ys = [0, 1, 2, 0, 1];
    let rows: Vec<u32> = (0..5).collect();
    check_numeric_class(&values, &ys, &rows, Impurity::Gini);
    let codes = [MISSING_CAT; 5];
    assert_eq!(
        best_cat_split_classification_at(
            &codes,
            NV,
            NodeRows::Subset(&rows),
            &ys,
            K,
            Impurity::Gini
        ),
        None
    );
    assert_eq!(
        distinct_categories_at(&codes, NodeRows::Subset(&rows), NV),
        Vec::<u32>::new()
    );
}

#[test]
fn empty_subset_yields_no_split() {
    let values = [1.0, 2.0, 3.0];
    let ys = [0u32, 1, 2];
    check_numeric_class(&values, &ys, &[], Impurity::Gini);
    let codes = [0u32, 1, 2];
    assert_eq!(
        best_cat_split_classification_at(&codes, NV, NodeRows::Subset(&[]), &ys, K, Impurity::Gini),
        None
    );
    let reals = [1.0, 2.0, 3.0];
    assert_eq!(
        best_cat_split_regression_at(&codes, NV, NodeRows::Subset(&[]), &reals),
        None
    );
}
