//! Completely-random splits for extra-trees (paper Appendix F).
//!
//! A "completely random decision tree" resamples **one** attribute per node
//! and draws the split value uniformly from `[min, max]` of that attribute's
//! values in `Dx`. Unlike the exact kernels, a random split is accepted even
//! with zero gain — randomness, not greed, drives the structure.

use crate::condition::SplitTest;
use crate::exact::ColumnSplit;
use crate::impurity::{LabelView, NodeStats};
use ts_datatable::{ValuesBuf, MISSING_CAT};
use tsrand::Rng;

/// Draws a random `Ai <= v` split with `v` uniform in `[min, max)` of the
/// present values. Returns `None` when fewer than two distinct present
/// values exist (no threshold can separate anything).
pub fn random_numeric_split<R: Rng>(
    values: &[f64],
    labels: LabelView<'_>,
    rng: &mut R,
) -> Option<ColumnSplit> {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if !v.is_nan() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    // NaN-safe: requires at least two distinct present values.
    if min.partial_cmp(&max) != Some(std::cmp::Ordering::Less) {
        return None;
    }
    let thr = rng.gen_range(min..max);
    build_split(
        SplitTest::NumericLe(thr),
        values
            .iter()
            .map(|&v| if v.is_nan() { None } else { Some(v <= thr) }),
        labels,
    )
}

/// Draws a random one-category split: picks one of the categories present in
/// `Dx` uniformly as the left set. Returns `None` when fewer than two
/// distinct categories are present.
pub fn random_cat_split<R: Rng>(
    codes: &[u32],
    labels: LabelView<'_>,
    rng: &mut R,
) -> Option<ColumnSplit> {
    assert_eq!(codes.len(), labels.len(), "codes/labels length mismatch");
    let present = crate::exact::distinct_categories(codes);
    if present.len() < 2 {
        return None;
    }
    let pick = present[rng.gen_range(0..present.len())];
    build_split(
        SplitTest::CatIn(vec![pick]),
        codes.iter().map(|&c| {
            if c == MISSING_CAT {
                None
            } else {
                Some(c == pick)
            }
        }),
        labels,
    )
}

/// Draws a random split for a gathered buffer, dispatching on its kind.
pub fn random_split_for_column<R: Rng>(
    values: &ValuesBuf,
    labels: LabelView<'_>,
    rng: &mut R,
) -> Option<ColumnSplit> {
    match values {
        ValuesBuf::Numeric(v) => random_numeric_split(v, labels, rng),
        ValuesBuf::Categorical(c) => random_cat_split(c, labels, rng),
    }
}

/// Assembles child stats for a fixed test; `sides` yields `Some(goes_left)`
/// per position or `None` for missing.
fn build_split(
    test: SplitTest,
    sides: impl Iterator<Item = Option<bool>>,
    labels: LabelView<'_>,
) -> Option<ColumnSplit> {
    let mut left_pos = Vec::new();
    let mut right_pos = Vec::new();
    let mut missing_pos = Vec::new();
    for (i, side) in sides.enumerate() {
        match side {
            Some(true) => left_pos.push(i),
            Some(false) => right_pos.push(i),
            None => missing_pos.push(i),
        }
    }
    if left_pos.is_empty() || right_pos.is_empty() {
        return None;
    }
    let mut left = NodeStats::from_view_positions(labels, left_pos.iter().copied());
    let mut right = NodeStats::from_view_positions(labels, right_pos.iter().copied());
    let missing_left = left.n() >= right.n();
    if !missing_pos.is_empty() {
        let ms = NodeStats::from_view_positions(labels, missing_pos.iter().copied());
        if missing_left {
            left.merge(&ms);
        } else {
            right.merge(&ms);
        }
    }
    // Gain is not used for selection in extra-trees; report the true
    // impurity decrease anyway (may be ~0) so diagnostics stay meaningful.
    Some(ColumnSplit {
        test,
        gain: 0.0,
        missing_left,
        left,
        right,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsrand::rngs::StdRng;
    use tsrand::SeedableRng;

    #[test]
    fn random_numeric_split_is_within_range_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(4);
        let values = [1.0, 5.0, 3.0, 9.0];
        let ys = [0u32, 1, 0, 1];
        for _ in 0..50 {
            let s = random_numeric_split(&values, LabelView::Class(&ys, 2), &mut rng).unwrap();
            if let SplitTest::NumericLe(t) = s.test {
                assert!((1.0..9.0).contains(&t));
            } else {
                panic!("numeric expected");
            }
            assert!(s.n_left() >= 1 && s.n_right() >= 1);
            assert_eq!(s.n_left() + s.n_right(), 4);
        }
    }

    #[test]
    fn random_numeric_none_for_constant() {
        let mut rng = StdRng::seed_from_u64(4);
        let values = [2.0, 2.0, 2.0];
        let ys = [0u32, 1, 0];
        assert!(random_numeric_split(&values, LabelView::Class(&ys, 2), &mut rng).is_none());
    }

    #[test]
    fn random_numeric_none_for_all_missing() {
        let mut rng = StdRng::seed_from_u64(4);
        let values = [f64::NAN, f64::NAN];
        let ys = [0u32, 1];
        assert!(random_numeric_split(&values, LabelView::Class(&ys, 2), &mut rng).is_none());
    }

    #[test]
    fn random_cat_split_picks_present_category() {
        let mut rng = StdRng::seed_from_u64(8);
        let codes = [3, 5, 3, 5, 7];
        let ys = [0u32, 1, 0, 1, 0];
        for _ in 0..20 {
            let s = random_cat_split(&codes, LabelView::Class(&ys, 2), &mut rng).unwrap();
            if let SplitTest::CatIn(set) = &s.test {
                assert_eq!(set.len(), 1);
                assert!([3, 5, 7].contains(&set[0]));
            } else {
                panic!("categorical expected");
            }
        }
    }

    #[test]
    fn random_cat_none_for_single_category() {
        let mut rng = StdRng::seed_from_u64(8);
        let codes = [2, 2, 2];
        let ys = [0u32, 1, 0];
        assert!(random_cat_split(&codes, LabelView::Class(&ys, 2), &mut rng).is_none());
    }

    #[test]
    fn random_split_missing_routed_majority() {
        let mut rng = StdRng::seed_from_u64(1);
        let values = [1.0, 2.0, 3.0, f64::NAN];
        let ys = [0.5, 1.5, 2.5, 9.0];
        let s = random_numeric_split(&values, LabelView::Real(&ys), &mut rng).unwrap();
        assert_eq!(s.n_left() + s.n_right(), 4);
    }

    #[test]
    fn dispatch_matches_buffer_kind() {
        let mut rng = StdRng::seed_from_u64(2);
        let buf = ValuesBuf::Categorical(vec![0, 1, 0, 1]);
        let ys = [0u32, 1, 0, 1];
        let s = random_split_for_column(&buf, LabelView::Class(&ys, 2), &mut rng).unwrap();
        assert!(matches!(s.test, SplitTest::CatIn(_)));
    }
}
