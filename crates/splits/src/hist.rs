//! The histogram split engine — quantized per-node kernels for the
//! distributed histogram path (docs/HISTOGRAM.md).
//!
//! Where the exact sorted engine ([`crate::sorted`]) scans every present
//! value of a column per node, these kernels walk the node's rows once,
//! accumulating per-*bin* label aggregates against the column's load-time
//! [`BinnedColumn`] index, then scan the `O(bins)` bin boundaries — the
//! LightGBM/PV-Tree structure (Meng et al. 2016; Vasiloudis et al. 2019)
//! layered on this repo's column-partitioned engine.
//!
//! # Determinism contract
//!
//! - Bin accumulation follows the node's **ascending** row order and the
//!   boundary scan breaks ties toward the earliest bin (strict `>`), so a
//!   recomputation over the same rows — e.g. the worker re-scoring the
//!   attribute the master elected after top-k voting — reproduces the
//!   nominated gain bit for bit.
//! - Child statistics are accumulated in ascending row order via the same
//!   shared core as the exact engine (`child_stats_routed_iter`), so leaves
//!   grown under a histogram split carry bit-identical predictions to a
//!   subtree trainer continuing from the same partition.
//! - When the column has at most `bins` distinct present values, binning is
//!   lossless ([`BinCuts::equi_depth`]) and the chosen boundary separates
//!   exactly the rows the exact kernel separates: same gain (bitwise for
//!   classification), same routing, same child stats. Only the threshold
//!   *representation* differs — the histogram tests `v <= cut` at the bin's
//!   upper edge where the exact kernel uses the midpoint between adjacent
//!   values (`splits/tests/hist_oracle.rs` pins this down).
//!
//! Categorical attributes are already histogram-shaped — the exact
//! one-vs-rest / Breiman kernels aggregate per *category* in `O(|Ix|)` —
//! so the histogram engine reuses them unchanged.

use crate::condition::SplitTest;
use crate::exact::ColumnSplit;
use crate::impurity::{Impurity, LabelView, RegAgg};
use crate::sorted::{
    best_cat_split_classification_at, best_cat_split_regression_at, child_stats_at, with_cat_class,
    with_cat_reg, with_class_pair, NodeRows,
};
use ts_datatable::{AttrType, BinnedColumn, Column};

/// Best bin-boundary split of a binned numeric column over a node's rows.
///
/// One `O(|Ix|)` accumulation into pooled per-bin aggregates (missing rows
/// land in the reserved trailing slot), then an `O(bins)` prefix scan over
/// boundary candidates. Semantics mirror the mergeable
/// [`crate::histogram::NumericHistogram::best_split`] baseline: threshold at
/// the bin's upper cut, positive gain only, missing rows routed to the
/// larger present side and included in the returned child stats.
pub fn best_hist_split_numeric_at(
    binned: &BinnedColumn,
    node: NodeRows<'_>,
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<ColumnSplit> {
    let cuts = binned.cuts();
    if cuts.cuts().is_empty() {
        return None; // single overflow bin: no boundary to split at
    }
    let n_slots = binned.n_bins() + 1; // + reserved missing slot
    let missing_slot = binned.missing_bin();
    match labels {
        LabelView::Class(ys, k) => with_cat_class(n_slots as u32, k, |slots, _spare| {
            for r in node.iter() {
                slots[binned.id(r as usize)].add(ys[r as usize]);
            }
            with_class_pair(k, |left, total| {
                for b in &slots[..missing_slot] {
                    total.merge(b);
                }
                if total.total() < 2 {
                    return None;
                }
                let total_w = total.weighted_impurity(imp);
                let mut best: Option<(f64, usize)> = None;
                let mut n_best_left = 0;
                for (b, agg) in slots.iter().enumerate().take(cuts.cuts().len()) {
                    left.merge(agg);
                    if left.total() == 0 || left.total() == total.total() {
                        continue;
                    }
                    let right = total.minus(left);
                    let gain = total_w - left.weighted_impurity(imp) - right.weighted_impurity(imp);
                    if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, b));
                        n_best_left = left.total();
                    }
                }
                let (gain, b) = best?;
                let missing_left = n_best_left >= total.total() - n_best_left;
                let (left, right) = child_stats_at(node, labels, missing_left, |i| {
                    let s = binned.id(i);
                    if s == missing_slot {
                        None
                    } else {
                        Some(s <= b)
                    }
                });
                Some(ColumnSplit {
                    test: SplitTest::NumericLe(cuts.cuts()[b]),
                    gain,
                    missing_left,
                    left,
                    right,
                })
            })
        }),
        LabelView::Real(ys) => with_cat_reg(n_slots as u32, |slots, _spare| {
            for r in node.iter() {
                slots[binned.id(r as usize)].add(ys[r as usize]);
            }
            let mut total = RegAgg::default();
            for b in &slots[..missing_slot] {
                total.merge(b);
            }
            if total.n < 2 {
                return None;
            }
            let total_w = total.weighted_impurity();
            let mut left = RegAgg::default();
            let mut best: Option<(f64, usize)> = None;
            let mut n_best_left = 0;
            for (b, agg) in slots.iter().enumerate().take(cuts.cuts().len()) {
                left.merge(agg);
                if left.n == 0 || left.n == total.n {
                    continue;
                }
                let right = RegAgg {
                    n: total.n - left.n,
                    sum: total.sum - left.sum,
                    sum_sq: total.sum_sq - left.sum_sq,
                };
                let gain = total_w - left.weighted_impurity() - right.weighted_impurity();
                if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, b));
                    n_best_left = left.n;
                }
            }
            let (gain, b) = best?;
            let missing_left = n_best_left >= total.n - n_best_left;
            let (left, right) = child_stats_at(node, labels, missing_left, |i| {
                let s = binned.id(i);
                if s == missing_slot {
                    None
                } else {
                    Some(s <= b)
                }
            });
            Some(ColumnSplit {
                test: SplitTest::NumericLe(cuts.cuts()[b]),
                gain,
                missing_left,
                left,
                right,
            })
        }),
    }
}

/// A borrowed column ready for the histogram engine: numeric attributes go
/// through their [`BinnedColumn`] index, categoricals through the (already
/// histogram-shaped) per-category kernels.
#[derive(Debug, Clone, Copy)]
pub enum HistColumnRef<'a> {
    /// Binned numeric column.
    Numeric {
        /// The column's load-time bin index.
        binned: &'a BinnedColumn,
    },
    /// Categorical codes with the attribute's domain size.
    Categorical {
        /// Full column codes.
        codes: &'a [u32],
        /// Domain size of the attribute.
        n_values: u32,
    },
}

impl<'a> HistColumnRef<'a> {
    /// Pairs a stored [`Column`] with its bin index (worker column store).
    ///
    /// # Panics
    /// Panics when the column kind does not match the attribute type, or a
    /// numeric attribute arrives without its bin index.
    pub fn of_column(col: &'a Column, binned: Option<&'a BinnedColumn>, ty: AttrType) -> Self {
        match (col, ty) {
            (Column::Numeric(_), AttrType::Numeric) => HistColumnRef::Numeric {
                binned: binned.expect("histogram split over a numeric column needs its bin index"),
            },
            (Column::Categorical(c), AttrType::Categorical { n_values }) => {
                HistColumnRef::Categorical { codes: c, n_values }
            }
            _ => panic!("column kind does not match attribute type"),
        }
    }
}

/// Histogram-engine counterpart of [`crate::sorted::best_split_at`]: the
/// single dispatch the distributed workers call in histogram mode.
pub fn best_hist_split_at(
    col: HistColumnRef<'_>,
    node: NodeRows<'_>,
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<ColumnSplit> {
    match (col, labels) {
        (HistColumnRef::Numeric { binned }, _) => {
            best_hist_split_numeric_at(binned, node, labels, imp)
        }
        (HistColumnRef::Categorical { codes, n_values }, LabelView::Class(ys, k)) => {
            best_cat_split_classification_at(codes, n_values, node, ys, k, imp)
        }
        (HistColumnRef::Categorical { codes, n_values }, LabelView::Real(ys)) => {
            best_cat_split_regression_at(codes, n_values, node, ys)
        }
    }
}

/// Per-node summary stats of a split candidate, as nominated during top-k
/// voting: enough for the master to rank candidates without shipping child
/// stats or category sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistCandidate {
    /// The candidate's attribute id.
    pub attr: usize,
    /// Its impurity gain on this worker's (full) view of the column.
    pub gain: f64,
}

/// Selects the top `vote_k` candidates by `(gain desc, attr asc)` — the
/// per-worker nomination order of PV-Tree voting. Deterministic for any
/// input order; NaN-free by construction (gains come from `ColumnSplit`).
pub fn top_k_candidates(mut cands: Vec<HistCandidate>, vote_k: usize) -> Vec<HistCandidate> {
    cands.sort_unstable_by(|a, b| b.gain.total_cmp(&a.gain).then(a.attr.cmp(&b.attr)));
    cands.truncate(vote_k.max(1));
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::best_numeric_split;
    use crate::histogram::NumericHistogram;
    use crate::impurity::LabelView;
    use ts_datatable::BinCuts;

    #[test]
    fn numeric_kernel_matches_mergeable_histogram_baseline() {
        let values: Vec<f64> = (0..100).map(|i| (i % 23) as f64).collect();
        let ys: Vec<u32> = (0..100).map(|i| (i % 3) as u32).collect();
        let cuts = BinCuts::equi_depth(&values, 8);
        let mut h = NumericHistogram::new_class(cuts.n_bins(), 3);
        for (&v, &y) in values.iter().zip(&ys) {
            h.add_class(&cuts, v, y);
        }
        let baseline = h.best_split(&cuts, Impurity::Gini);
        let binned = BinnedColumn::with_cuts(&values, cuts);
        let kernel = best_hist_split_numeric_at(
            &binned,
            NodeRows::All(values.len()),
            LabelView::Class(&ys, 3),
            Impurity::Gini,
        );
        match (baseline, kernel) {
            (Some(a), Some(b)) => {
                assert_eq!(a.test, b.test);
                assert_eq!(a.gain.to_bits(), b.gain.to_bits());
                assert_eq!(a.missing_left, b.missing_left);
                assert_eq!(a.left, b.left);
                assert_eq!(a.right, b.right);
            }
            (a, b) => panic!("existence disagrees: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn numeric_kernel_lossless_on_few_distinct_matches_exact_gain() {
        let values = [1.0, 1.0, 2.0, 3.0, 3.0, 3.0, f64::NAN];
        let ys = [0u32, 0, 1, 1, 1, 0, 1];
        let labels = LabelView::Class(&ys, 2);
        let exact = best_numeric_split(&values, labels, Impurity::Gini).unwrap();
        let binned = BinnedColumn::build(&values, 64);
        let hist =
            best_hist_split_numeric_at(&binned, NodeRows::All(7), labels, Impurity::Gini).unwrap();
        assert_eq!(hist.gain.to_bits(), exact.gain.to_bits());
        assert_eq!(hist.missing_left, exact.missing_left);
        assert_eq!(hist.left, exact.left);
        assert_eq!(hist.right, exact.right);
    }

    #[test]
    fn numeric_kernel_subset_recomputation_is_bitwise_stable() {
        let values: Vec<f64> = (0..64).map(|i| ((i * 37) % 64) as f64).collect();
        let ys: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let rows: Vec<u32> = (0..64).filter(|i| i % 3 != 0).collect();
        let binned = BinnedColumn::build(&values, 8);
        let a = best_hist_split_numeric_at(
            &binned,
            NodeRows::Subset(&rows),
            LabelView::Real(&ys),
            Impurity::Variance,
        )
        .unwrap();
        let b = best_hist_split_numeric_at(
            &binned,
            NodeRows::Subset(&rows),
            LabelView::Real(&ys),
            Impurity::Variance,
        )
        .unwrap();
        assert_eq!(a.gain.to_bits(), b.gain.to_bits());
        assert_eq!(a.test, b.test);
        assert_eq!(a.left, b.left);
    }

    #[test]
    fn single_bin_column_has_no_split() {
        let binned = BinnedColumn::build(&[5.0; 10], 8);
        assert_eq!(
            best_hist_split_numeric_at(
                &binned,
                NodeRows::All(10),
                LabelView::Class(&[0, 1, 0, 1, 0, 1, 0, 1, 0, 1], 2),
                Impurity::Gini
            ),
            None
        );
    }

    #[test]
    fn top_k_orders_by_gain_then_attr() {
        let cands = vec![
            HistCandidate { attr: 3, gain: 1.0 },
            HistCandidate { attr: 1, gain: 2.0 },
            HistCandidate { attr: 0, gain: 1.0 },
            HistCandidate { attr: 2, gain: 0.5 },
        ];
        let top = top_k_candidates(cands, 3);
        assert_eq!(
            top.iter().map(|c| c.attr).collect::<Vec<_>>(),
            vec![1, 0, 3]
        );
        // vote_k of 0 is clamped to 1 so every shard always nominates.
        assert_eq!(
            top_k_candidates(vec![HistCandidate { attr: 9, gain: 0.1 }], 0).len(),
            1
        );
    }
}
