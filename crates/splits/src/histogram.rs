//! Equi-depth histograms — the PLANET/MLlib approximation.
//!
//! PLANET (and Spark MLlib, which adopts it) does not examine every distinct
//! attribute value: it computes approximate equi-depth histograms per
//! attribute and considers **one splitting value per bucket** (paper §II,
//! *Related Systems*; MLlib's `maxBins`, default 32). This module provides:
//!
//! - [`BinCuts`]: candidate thresholds from an equi-depth quantile sweep,
//! - [`NumericHistogram`]: per-bin label aggregates that machines build over
//!   their row partitions and the master merges (this is exactly the object
//!   whose transmission makes PLANET IO-bound), and
//! - per-category statistics kernels for categorical attributes (MLlib
//!   aggregates per-category stats and applies the same one-vs-rest /
//!   Breiman selection the exact kernels use).

use crate::condition::SplitTest;
use crate::exact::ColumnSplit;
use crate::impurity::{ClassCounts, Impurity, NodeStats, RegAgg};
use ts_datatable::MISSING_CAT;
use tsjson::{Deserialize, Serialize};

// `BinCuts` moved to `ts-datatable` when binning became a load-time column
// index (`BinnedColumn`); re-exported here so kernel-side callers keep their
// import path.
pub use ts_datatable::BinCuts;

/// Per-bin label aggregates for one numeric attribute over one machine's
/// share of a node's rows. Mergeable: the master folds every machine's
/// histogram before selecting the best bucket boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NumericHistogram {
    /// Classification: per-bin class counts plus a missing-row aggregate.
    Class {
        /// One aggregate per bin.
        bins: Vec<ClassCounts>,
        /// Rows with a missing attribute value.
        missing: ClassCounts,
    },
    /// Regression: per-bin `(n, sum, sum_sq)` plus a missing-row aggregate.
    Reg {
        /// One aggregate per bin.
        bins: Vec<RegAgg>,
        /// Rows with a missing attribute value.
        missing: RegAgg,
    },
}

impl NumericHistogram {
    /// Creates an empty classification histogram.
    pub fn new_class(n_bins: usize, n_classes: u32) -> Self {
        NumericHistogram::Class {
            bins: vec![ClassCounts::new(n_classes); n_bins],
            missing: ClassCounts::new(n_classes),
        }
    }

    /// Creates an empty regression histogram.
    pub fn new_reg(n_bins: usize) -> Self {
        NumericHistogram::Reg {
            bins: vec![RegAgg::default(); n_bins],
            missing: RegAgg::default(),
        }
    }

    /// Adds one classification row.
    pub fn add_class(&mut self, cuts: &BinCuts, v: f64, y: u32) {
        match self {
            NumericHistogram::Class { bins, missing } => {
                if v.is_nan() {
                    missing.add(y);
                } else {
                    bins[cuts.bin_of(v)].add(y);
                }
            }
            NumericHistogram::Reg { .. } => panic!("class row added to regression histogram"),
        }
    }

    /// Adds one regression row.
    pub fn add_reg(&mut self, cuts: &BinCuts, v: f64, y: f64) {
        match self {
            NumericHistogram::Reg { bins, missing } => {
                if v.is_nan() {
                    missing.add(y);
                } else {
                    bins[cuts.bin_of(v)].add(y);
                }
            }
            NumericHistogram::Class { .. } => panic!("regression row added to class histogram"),
        }
    }

    /// Merges another machine's histogram into this one.
    pub fn merge(&mut self, other: &NumericHistogram) {
        match (self, other) {
            (
                NumericHistogram::Class {
                    bins: a,
                    missing: ma,
                },
                NumericHistogram::Class {
                    bins: b,
                    missing: mb,
                },
            ) => {
                assert_eq!(a.len(), b.len(), "bin count mismatch");
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge(y);
                }
                ma.merge(mb);
            }
            (
                NumericHistogram::Reg {
                    bins: a,
                    missing: ma,
                },
                NumericHistogram::Reg {
                    bins: b,
                    missing: mb,
                },
            ) => {
                assert_eq!(a.len(), b.len(), "bin count mismatch");
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge(y);
                }
                ma.merge(mb);
            }
            _ => panic!("cannot merge class and regression histograms"),
        }
    }

    /// Approximate wire size in bytes (per-bin stats), what one machine sends
    /// to the master for one `(node, attribute)` pair.
    pub fn wire_bytes(&self) -> usize {
        match self {
            NumericHistogram::Class { bins, missing } => {
                (bins.len() + 1) * missing.counts().len() * 8
            }
            NumericHistogram::Reg { bins, .. } => (bins.len() + 1) * 24,
        }
    }

    /// Finds the best bucket-boundary split from the (merged) histogram —
    /// PLANET considers exactly one candidate threshold per bucket.
    pub fn best_split(&self, cuts: &BinCuts, imp: Impurity) -> Option<ColumnSplit> {
        if cuts.cuts().is_empty() {
            return None;
        }
        match self {
            NumericHistogram::Class { bins, missing } => {
                let mut total = ClassCounts::new(missing.counts().len() as u32);
                for b in bins {
                    total.merge(b);
                }
                if total.total() < 2 {
                    return None;
                }
                let total_w = total.weighted_impurity(imp);
                let mut left = ClassCounts::new(missing.counts().len() as u32);
                let mut best: Option<(f64, usize)> = None;
                for (b, agg) in bins.iter().enumerate().take(cuts.cuts().len()) {
                    left.merge(agg);
                    if left.total() == 0 || left.total() == total.total() {
                        continue;
                    }
                    let right = total.minus(&left);
                    let gain = total_w - left.weighted_impurity(imp) - right.weighted_impurity(imp);
                    if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, b));
                    }
                }
                let (gain, b) = best?;
                let mut l = ClassCounts::new(missing.counts().len() as u32);
                for agg in &bins[..=b] {
                    l.merge(agg);
                }
                let mut r = total.minus(&l);
                let missing_left = l.total() >= r.total();
                if missing.total() > 0 {
                    if missing_left {
                        l.merge(missing);
                    } else {
                        r.merge(missing);
                    }
                }
                Some(ColumnSplit {
                    test: SplitTest::NumericLe(cuts.cuts()[b]),
                    gain,
                    missing_left,
                    left: NodeStats::Class(l),
                    right: NodeStats::Class(r),
                })
            }
            NumericHistogram::Reg { bins, missing } => {
                let mut total = RegAgg::default();
                for b in bins {
                    total.merge(b);
                }
                if total.n < 2 {
                    return None;
                }
                let total_w = total.weighted_impurity();
                let mut left = RegAgg::default();
                let mut best: Option<(f64, usize)> = None;
                for (b, agg) in bins.iter().enumerate().take(cuts.cuts().len()) {
                    left.merge(agg);
                    if left.n == 0 || left.n == total.n {
                        continue;
                    }
                    let right = RegAgg {
                        n: total.n - left.n,
                        sum: total.sum - left.sum,
                        sum_sq: total.sum_sq - left.sum_sq,
                    };
                    let gain = total_w - left.weighted_impurity() - right.weighted_impurity();
                    if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, b));
                    }
                }
                let (gain, b) = best?;
                let mut l = RegAgg::default();
                for agg in &bins[..=b] {
                    l.merge(agg);
                }
                let mut r = RegAgg {
                    n: total.n - l.n,
                    sum: total.sum - l.sum,
                    sum_sq: total.sum_sq - l.sum_sq,
                };
                let missing_left = l.n >= r.n;
                if missing.n > 0 {
                    if missing_left {
                        l.merge(missing);
                    } else {
                        r.merge(missing);
                    }
                }
                Some(ColumnSplit {
                    test: SplitTest::NumericLe(cuts.cuts()[b]),
                    gain,
                    missing_left,
                    left: NodeStats::Reg(l),
                    right: NodeStats::Reg(r),
                })
            }
        }
    }
}

/// Best one-vs-rest categorical split from merged per-category class counts
/// (what MLlib computes after aggregating category stats across machines).
/// `per_value[c]` holds the class counts of category `c`; `missing` holds the
/// rows with a missing value.
pub fn best_cat_from_class_stats(
    per_value: &[ClassCounts],
    missing: &ClassCounts,
    imp: Impurity,
) -> Option<ColumnSplit> {
    let n_classes = missing.counts().len() as u32;
    let mut total = ClassCounts::new(n_classes);
    for v in per_value {
        total.merge(v);
    }
    if total.total() < 2 {
        return None;
    }
    let total_w = total.weighted_impurity(imp);
    let mut best: Option<(f64, u32)> = None;
    for (code, counts) in per_value.iter().enumerate() {
        if counts.total() == 0 || counts.total() == total.total() {
            continue;
        }
        let rest = total.minus(counts);
        let gain = total_w - counts.weighted_impurity(imp) - rest.weighted_impurity(imp);
        if gain > 0.0
            && best.is_none_or(|(bg, bc)| match gain.total_cmp(&bg) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => (code as u32) < bc,
            })
        {
            best = Some((gain, code as u32));
        }
    }
    let (gain, code) = best?;
    let mut l = per_value[code as usize].clone();
    let mut r = total.minus(&l);
    let missing_left = l.total() >= r.total();
    if missing.total() > 0 {
        if missing_left {
            l.merge(missing);
        } else {
            r.merge(missing);
        }
    }
    Some(ColumnSplit {
        test: SplitTest::CatIn(vec![code]),
        gain,
        missing_left,
        left: NodeStats::Class(l),
        right: NodeStats::Class(r),
    })
}

/// Best Breiman-prefix categorical split from merged per-category regression
/// aggregates.
pub fn best_cat_from_reg_stats(per_value: &[RegAgg], missing: &RegAgg) -> Option<ColumnSplit> {
    let mut total = RegAgg::default();
    for v in per_value {
        total.merge(v);
    }
    if total.n < 2 {
        return None;
    }
    let total_w = total.weighted_impurity();
    let mut groups: Vec<(u32, RegAgg)> = per_value
        .iter()
        .enumerate()
        .filter(|(_, a)| a.n > 0)
        .map(|(c, a)| (c as u32, *a))
        .collect();
    if groups.len() < 2 {
        return None;
    }
    groups.sort_unstable_by(|a, b| a.1.mean().total_cmp(&b.1.mean()).then(a.0.cmp(&b.0)));
    let mut left = RegAgg::default();
    let mut best: Option<(f64, usize)> = None;
    for (i, (_, agg)) in groups.iter().enumerate().take(groups.len() - 1) {
        left.merge(agg);
        let right = RegAgg {
            n: total.n - left.n,
            sum: total.sum - left.sum,
            sum_sq: total.sum_sq - left.sum_sq,
        };
        let gain = total_w - left.weighted_impurity() - right.weighted_impurity();
        if gain > 0.0 && best.is_none_or(|(bg, _)| gain > bg) {
            best = Some((gain, i + 1));
        }
    }
    let (gain, prefix) = best?;
    let mut left_set: Vec<u32> = groups[..prefix].iter().map(|&(c, _)| c).collect();
    left_set.sort_unstable();
    let mut l = RegAgg::default();
    for &(_, a) in &groups[..prefix] {
        l.merge(&a);
    }
    let mut r = RegAgg {
        n: total.n - l.n,
        sum: total.sum - l.sum,
        sum_sq: total.sum_sq - l.sum_sq,
    };
    let missing_left = l.n >= r.n;
    if missing.n > 0 {
        if missing_left {
            l.merge(missing);
        } else {
            r.merge(missing);
        }
    }
    Some(ColumnSplit {
        test: SplitTest::CatIn(left_set),
        gain,
        missing_left,
        left: NodeStats::Reg(l),
        right: NodeStats::Reg(r),
    })
}

/// Builds per-category class counts for one machine's rows (to be merged at
/// the master).
pub fn cat_class_stats(
    codes: &[u32],
    ys: &[u32],
    n_values: u32,
    n_classes: u32,
) -> (Vec<ClassCounts>, ClassCounts) {
    let mut per_value = vec![ClassCounts::new(n_classes); n_values as usize];
    let mut missing = ClassCounts::new(n_classes);
    for (&c, &y) in codes.iter().zip(ys) {
        if c == MISSING_CAT {
            missing.add(y);
        } else {
            per_value[c as usize].add(y);
        }
    }
    (per_value, missing)
}

/// Builds per-category regression aggregates for one machine's rows.
pub fn cat_reg_stats(codes: &[u32], ys: &[f64], n_values: u32) -> (Vec<RegAgg>, RegAgg) {
    let mut per_value = vec![RegAgg::default(); n_values as usize];
    let mut missing = RegAgg::default();
    for (&c, &y) in codes.iter().zip(ys) {
        if c == MISSING_CAT {
            missing.add(y);
        } else {
            per_value[c as usize].add(y);
        }
    }
    (per_value, missing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{best_cat_split_classification, best_cat_split_regression};

    #[test]
    fn histogram_merge_equals_single_pass() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [0u32, 0, 0, 1, 1, 1];
        let cuts = BinCuts::equi_depth(&values, 4);
        let mut whole = NumericHistogram::new_class(cuts.n_bins(), 2);
        for (&v, &y) in values.iter().zip(&ys) {
            whole.add_class(&cuts, v, y);
        }
        let mut h1 = NumericHistogram::new_class(cuts.n_bins(), 2);
        let mut h2 = NumericHistogram::new_class(cuts.n_bins(), 2);
        for (&v, &y) in values.iter().zip(&ys).take(3) {
            h1.add_class(&cuts, v, y);
        }
        for (&v, &y) in values.iter().zip(&ys).skip(3) {
            h2.add_class(&cuts, v, y);
        }
        h1.merge(&h2);
        assert_eq!(h1, whole);
    }

    #[test]
    fn histogram_best_split_separates_classes() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<u32> = (0..100).map(|i| if i < 50 { 0 } else { 1 }).collect();
        let cuts = BinCuts::equi_depth(&values, 10);
        let mut h = NumericHistogram::new_class(cuts.n_bins(), 2);
        for (&v, &y) in values.iter().zip(&ys) {
            h.add_class(&cuts, v, y);
        }
        let s = h.best_split(&cuts, Impurity::Gini).unwrap();
        assert_eq!(s.n_left() + s.n_right(), 100);
        // The chosen boundary is one of the 9 candidate cuts, near 50.
        if let SplitTest::NumericLe(t) = s.test {
            assert!((40.0..60.0).contains(&t), "threshold {t}");
        } else {
            panic!("numeric test expected");
        }
    }

    #[test]
    fn histogram_is_coarser_than_exact() {
        // With a boundary at 50 but only ~4 candidate cuts, the histogram's
        // gain can be at most the exact kernel's gain.
        let values: Vec<f64> = (0..200).map(|i| (i as f64) * 0.37).collect();
        let ys: Vec<u32> = (0..200).map(|i| u32::from(i >= 93)).collect();
        let exact = crate::exact::best_numeric_split(
            &values,
            crate::impurity::LabelView::Class(&ys, 2),
            Impurity::Gini,
        )
        .unwrap();
        let cuts = BinCuts::equi_depth(&values, 4);
        let mut h = NumericHistogram::new_class(cuts.n_bins(), 2);
        for (&v, &y) in values.iter().zip(&ys) {
            h.add_class(&cuts, v, y);
        }
        let approx = h.best_split(&cuts, Impurity::Gini).unwrap();
        assert!(approx.gain <= exact.gain + 1e-9);
    }

    #[test]
    fn histogram_reg_split_and_missing() {
        let values = [1.0, 2.0, 3.0, 4.0, f64::NAN];
        let ys = [0.0, 0.0, 10.0, 10.0, 5.0];
        let cuts = BinCuts::equi_depth(&values, 4);
        let mut h = NumericHistogram::new_reg(cuts.n_bins());
        for (&v, &y) in values.iter().zip(&ys) {
            h.add_reg(&cuts, v, y);
        }
        let s = h.best_split(&cuts, Impurity::Variance).unwrap();
        assert_eq!(s.n_left() + s.n_right(), 5, "missing row routed to a child");
    }

    #[test]
    fn cat_stats_kernels_match_exact_kernels() {
        // The stats-based categorical kernels (used by the MLlib baseline)
        // must agree with the exact kernels on identical data.
        use tsrand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let k = 5u32;
            let n = rng.gen_range(5..60);
            let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k)).collect();
            let ys: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..3)).collect();
            let exact = best_cat_split_classification(&codes, k, &ys, 3, Impurity::Gini);
            let (pv, miss) = cat_class_stats(&codes, &ys, k, 3);
            let from_stats = best_cat_from_class_stats(&pv, &miss, Impurity::Gini);
            match (&exact, &from_stats) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.test, b.test);
                    assert!((a.gain - b.gain).abs() < 1e-9);
                }
                (None, None) => {}
                _ => panic!("existence disagrees: {exact:?} vs {from_stats:?}"),
            }

            let yr: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
            let exact_r = best_cat_split_regression(&codes, k, &yr);
            let (pv, miss) = cat_reg_stats(&codes, &yr, k);
            let from_stats_r = best_cat_from_reg_stats(&pv, &miss);
            match (&exact_r, &from_stats_r) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.test, b.test);
                    assert!((a.gain - b.gain).abs() < 1e-9);
                }
                (None, None) => {}
                _ => panic!("regression existence disagrees"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "class row added")]
    fn histogram_kind_mismatch_panics() {
        let cuts = BinCuts::from_cuts(vec![1.0]);
        NumericHistogram::new_reg(2).add_class(&cuts, 0.5, 1);
    }
}
