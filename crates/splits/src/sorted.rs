//! The sorted-column split engine (docs/PERF.md).
//!
//! The legacy exact path gathers a column over the node's rows and re-sorts
//! it for every node: `O(|Dx| log |Dx|)` per node *per candidate column*,
//! with fresh allocations throughout. This module pays the sort once — the
//! [`SortedColumn`] index built at column-load time — and turns each node's
//! split search into a filtered linear scan over presorted order, gated by a
//! reusable [`RowBitmap`] node-membership mask. All transient buffers come
//! from a thread-local scratch arena, so the steady-state hot path allocates
//! nothing.
//!
//! # Determinism contract
//!
//! Both paths feed the *same* shared scan cores in [`crate::exact`]
//! (`scan_presorted`, `best_one_vs_rest`, `best_breiman_prefix`,
//! `child_stats_routed_iter`) and therefore pick byte-identical splits:
//!
//! - Node row sets are always **ascending** (they start as `0..n` and every
//!   partition preserves input order), so the map from gathered position to
//!   row id is order-preserving. Filtering the presorted `(value, row)`
//!   order by node membership yields a sequence order-isomorphic to the
//!   legacy gather-then-sort sequence — identical values, identical label
//!   sequence, hence bit-identical incremental gains.
//! - Child statistics are accumulated over the node's rows in ascending
//!   order on both paths, so floating-point sums agree to the last ULP.
//!
//! Because the two paths are byte-identical, the per-node [`NumericPath`]
//! heuristic (scan the full presorted order vs. gather+sort the subset when
//! the node is small) affects performance only, never the model.
//!
//! # Observability
//!
//! Relaxed global counters record which numeric path ran and how often the
//! scratch arena was reused ([`kernel_counters`]); the cluster folds them
//! into the obs metrics registry as `split_kernel_*` / `split_pool_*`.

use crate::condition::SplitTest;
use crate::exact::{
    best_breiman_prefix, best_one_vs_rest, child_stats_routed_iter, scan_presorted, ColumnSplit,
};
use crate::impurity::{ClassCounts, Impurity, LabelView, NodeStats, RegAgg};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use ts_datatable::{AttrType, Column, SortedColumn, ValuesBuf, MISSING_CAT};

// ---------------------------------------------------------------------------
// Kernel/pool counters
// ---------------------------------------------------------------------------

static NUMERIC_SORTED_SCANS: AtomicU64 = AtomicU64::new(0);
static NUMERIC_GATHER_SCANS: AtomicU64 = AtomicU64::new(0);
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

fn pool_hit() {
    POOL_HITS.fetch_add(1, Relaxed);
}

fn pool_miss() {
    POOL_MISSES.fetch_add(1, Relaxed);
}

/// Snapshot of the process-wide kernel-path and scratch-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Numeric kernels answered by the filtered presorted scan.
    pub numeric_sorted_scans: u64,
    /// Numeric kernels answered by the legacy gather+sort fallback.
    pub numeric_gather_scans: u64,
    /// Scratch-arena borrows served from an adequately-sized pooled buffer.
    pub pool_hits: u64,
    /// Scratch-arena borrows that had to (re)allocate.
    pub pool_misses: u64,
}

/// Reads the process-wide kernel counters (relaxed; monotonic).
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        numeric_sorted_scans: NUMERIC_SORTED_SCANS.load(Relaxed),
        numeric_gather_scans: NUMERIC_GATHER_SCANS.load(Relaxed),
        pool_hits: POOL_HITS.load(Relaxed),
        pool_misses: POOL_MISSES.load(Relaxed),
    }
}

// ---------------------------------------------------------------------------
// RowBitmap
// ---------------------------------------------------------------------------

/// A dense row-membership bitmap over global row ids.
///
/// The engine's sorted scan walks the full presorted order and keeps the
/// rows belonging to the current node; this mask answers that membership
/// test in `O(1)`. Callers reuse one bitmap across nodes: `insert_all` the
/// node's rows, run every candidate column, then `remove_all` the same rows
/// (cheaper than re-zeroing the whole map for small nodes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowBitmap {
    words: Vec<u64>,
}

impl RowBitmap {
    /// An empty bitmap with no capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An all-zero bitmap sized for `n` rows.
    pub fn with_rows(n: usize) -> Self {
        RowBitmap {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Number of row ids the current allocation can hold.
    pub fn capacity_rows(&self) -> usize {
        self.words.len() * 64
    }

    /// Grows (never shrinks) to hold `n` rows, preserving set bits.
    pub fn ensure_rows(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    /// Whether `row` is set.
    #[inline]
    pub fn contains(&self, row: u32) -> bool {
        (self.words[(row >> 6) as usize] >> (row & 63)) & 1 != 0
    }

    /// Sets `row`.
    #[inline]
    pub fn insert(&mut self, row: u32) {
        self.words[(row >> 6) as usize] |= 1u64 << (row & 63);
    }

    /// Clears `row`.
    #[inline]
    pub fn remove(&mut self, row: u32) {
        self.words[(row >> 6) as usize] &= !(1u64 << (row & 63));
    }

    /// Sets every row id in `rows`.
    pub fn insert_all(&mut self, rows: &[u32]) {
        for &r in rows {
            self.insert(r);
        }
    }

    /// Clears every row id in `rows`.
    pub fn remove_all(&mut self, rows: &[u32]) {
        for &r in rows {
            self.remove(r);
        }
    }

    /// Clears all rows (O(capacity); prefer `remove_all` for small nodes).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

// ---------------------------------------------------------------------------
// NodeRows
// ---------------------------------------------------------------------------

/// A node's row set, by reference: either every row of the column store or
/// an explicit ascending subset (the engine's analogue of `RowSet`).
#[derive(Debug, Clone, Copy)]
pub enum NodeRows<'a> {
    /// All rows `0..n`.
    All(usize),
    /// An ascending subset of row ids.
    Subset(&'a [u32]),
}

impl<'a> NodeRows<'a> {
    /// Number of rows in the node.
    pub fn len(&self) -> usize {
        match self {
            NodeRows::All(n) => *n,
            NodeRows::Subset(s) => s.len(),
        }
    }

    /// Whether the node has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the row ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        let (n, slice): (u32, &'a [u32]) = match *self {
            NodeRows::All(n) => (n as u32, &[]),
            NodeRows::Subset(s) => (0, s),
        };
        (0..n).chain(slice.iter().copied())
    }
}

fn debug_assert_ascending(node: &NodeRows<'_>) {
    if cfg!(debug_assertions) {
        if let NodeRows::Subset(rows) = node {
            debug_assert!(
                rows.windows(2).all(|w| w[0] < w[1]),
                "node row sets must be strictly ascending for the sorted engine"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local scratch arena
// ---------------------------------------------------------------------------

thread_local! {
    static PRESENT: Cell<Vec<(f64, u32)>> = const { Cell::new(Vec::new()) };
    static CLASS_PAIR: Cell<Vec<ClassCounts>> = const { Cell::new(Vec::new()) };
    static CAT_CLASS: Cell<Vec<ClassCounts>> = const { Cell::new(Vec::new()) };
    static CAT_REG: Cell<Vec<RegAgg>> = const { Cell::new(Vec::new()) };
    static SEEN: Cell<Vec<bool>> = const { Cell::new(Vec::new()) };
    static MASK: Cell<RowBitmap> = const { Cell::new(RowBitmap { words: Vec::new() }) };
}

/// Borrows the pooled `(value, index)` gather buffer, cleared, with at least
/// `min_cap` capacity. The buffer is taken out of the cell for the duration
/// of `f`, so nested borrows degrade to a pool miss instead of panicking.
pub(crate) fn with_present<R>(min_cap: usize, f: impl FnOnce(&mut Vec<(f64, u32)>) -> R) -> R {
    PRESENT.with(|cell| {
        let mut buf = cell.take();
        buf.clear();
        if buf.capacity() >= min_cap {
            pool_hit();
        } else {
            pool_miss();
            buf.reserve(min_cap);
        }
        let r = f(&mut buf);
        cell.set(buf);
        r
    })
}

/// Borrows the pooled `(left, right)` class-count pair for a `k`-class scan,
/// reset to empty.
pub(crate) fn with_class_pair<R>(
    k: u32,
    f: impl FnOnce(&mut ClassCounts, &mut ClassCounts) -> R,
) -> R {
    CLASS_PAIR.with(|cell| {
        let mut pair = cell.take();
        if pair.len() == 2 && pair[0].n_classes() == k as usize {
            pool_hit();
            pair[0].reset();
            pair[1].reset();
        } else {
            pool_miss();
            pair = vec![ClassCounts::new(k); 2];
        }
        let (left, rest) = pair.split_first_mut().expect("pair has two elements");
        let r = f(left, &mut rest[0]);
        cell.set(pair);
        r
    })
}

/// Borrows the pooled per-category class counts (`per_value`, length
/// `n_values`) plus a `total` aggregate, all reset to empty.
pub(crate) fn with_cat_class<R>(
    n_values: u32,
    k: u32,
    f: impl FnOnce(&mut [ClassCounts], &mut ClassCounts) -> R,
) -> R {
    CAT_CLASS.with(|cell| {
        let mut buf = cell.take();
        let want = n_values as usize + 1;
        if !buf.is_empty() && buf[0].n_classes() == k as usize && buf.capacity() >= want {
            pool_hit();
            buf.resize(want, ClassCounts::new(k));
            for c in buf.iter_mut() {
                c.reset();
            }
        } else {
            pool_miss();
            buf = vec![ClassCounts::new(k); want];
        }
        let (total, per_value) = buf.split_last_mut().expect("buffer is non-empty");
        let r = f(per_value, total);
        cell.set(buf);
        r
    })
}

/// Borrows the pooled per-category regression aggregates (`per_value`,
/// length `n_values`) plus a `total` aggregate, all reset to empty.
pub(crate) fn with_cat_reg<R>(n_values: u32, f: impl FnOnce(&mut [RegAgg], &mut RegAgg) -> R) -> R {
    CAT_REG.with(|cell| {
        let mut buf = cell.take();
        let want = n_values as usize + 1;
        if buf.capacity() >= want {
            pool_hit();
        } else {
            pool_miss();
        }
        buf.clear();
        buf.resize(want, RegAgg::default());
        let (total, per_value) = buf.split_last_mut().expect("buffer is non-empty");
        let r = f(per_value, total);
        cell.set(buf);
        r
    })
}

/// Borrows the pooled category-seen mask, cleared and sized to `min_len`.
pub(crate) fn with_seen<R>(min_len: usize, f: impl FnOnce(&mut Vec<bool>) -> R) -> R {
    SEEN.with(|cell| {
        let mut buf = cell.take();
        buf.clear();
        if buf.capacity() >= min_len {
            pool_hit();
        } else {
            pool_miss();
        }
        buf.resize(min_len, false);
        let r = f(&mut buf);
        cell.set(buf);
        r
    })
}

/// Borrows this thread's pooled node-membership bitmap with the given rows
/// set, running `f` against it and clearing the rows again afterwards. This
/// is what the worker's comper loop uses — one bitmap per comper thread,
/// reused across every column-task it executes.
pub fn with_node_mask<R>(n_rows: usize, rows: &[u32], f: impl FnOnce(&RowBitmap) -> R) -> R {
    MASK.with(|cell| {
        let mut bm = cell.take();
        if bm.capacity_rows() >= n_rows {
            pool_hit();
        } else {
            pool_miss();
        }
        bm.ensure_rows(n_rows);
        bm.insert_all(rows);
        let r = f(&bm);
        bm.remove_all(rows);
        cell.set(bm);
        r
    })
}

// ---------------------------------------------------------------------------
// Numeric kernel
// ---------------------------------------------------------------------------

/// Which numeric implementation to run. Both produce byte-identical splits;
/// this only affects cost. Exposed so the equivalence suite and the benches
/// can exercise each path explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericPath {
    /// Pick per node: sorted scan when the filtered pass over the full
    /// presorted order is cheaper than re-sorting the subset.
    Auto,
    /// Filtered linear scan over the presorted order (needs the mask for
    /// subsets).
    SortedScan,
    /// Legacy gather+sort of the node's rows (pooled buffers, no `O(n)`
    /// full-order pass).
    GatherSort,
}

/// Whether the filtered presorted scan (cost `n_present_total`) beats
/// gather+sort of the node (cost ~`n_node * (log2(n_node) + 2)`).
fn sorted_scan_pays(n_node: usize, n_present_total: usize) -> bool {
    let log2 = n_node.max(2).ilog2() as usize;
    n_present_total <= n_node.saturating_mul(log2 + 2)
}

/// Exact best `Ai <= v` split of a full numeric column over a node's rows,
/// using the presorted index — the sorted-engine counterpart of
/// [`crate::exact::best_numeric_split`] (which takes gathered values).
///
/// `values` and `labels` span the full column store; `index` is the
/// column's [`SortedColumn`]; `mask` must contain exactly the node's rows
/// whenever `node` is a subset (it is ignored for [`NodeRows::All`], and
/// its absence forces the gather fallback).
pub fn best_numeric_split_at(
    values: &[f64],
    index: &SortedColumn,
    node: NodeRows<'_>,
    mask: Option<&RowBitmap>,
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<ColumnSplit> {
    best_numeric_split_at_path(NumericPath::Auto, values, index, node, mask, labels, imp)
}

/// [`best_numeric_split_at`] with an explicit path choice (tests/benches).
pub fn best_numeric_split_at_path(
    path: NumericPath,
    values: &[f64],
    index: &SortedColumn,
    node: NodeRows<'_>,
    mask: Option<&RowBitmap>,
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<ColumnSplit> {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
    debug_assert_ascending(&node);
    let order = index.numeric_order();
    let use_sorted = match (path, &node) {
        (NumericPath::SortedScan, _) => true,
        (NumericPath::GatherSort, _) => false,
        (NumericPath::Auto, NodeRows::All(_)) => true,
        (NumericPath::Auto, NodeRows::Subset(rows)) => {
            mask.is_some() && sorted_scan_pays(rows.len(), order.len())
        }
    };
    if use_sorted {
        NUMERIC_SORTED_SCANS.fetch_add(1, Relaxed);
        // The index caches the presorted *values* next to the row order, so
        // both arms below stream two parallel arrays sequentially — no
        // random access into the full column on the hot path.
        let svals = index.numeric_values();
        with_present(node.len(), |present| {
            match node {
                NodeRows::All(n) => {
                    debug_assert_eq!(n, values.len(), "All(n) must span the whole column");
                    present.extend(svals.iter().copied().zip(order.iter().copied()));
                }
                NodeRows::Subset(_) => {
                    let mask = mask.expect("sorted scan over a row subset requires the node mask");
                    for (&v, &r) in svals.iter().zip(order) {
                        if mask.contains(r) {
                            present.push((v, r));
                        }
                    }
                }
            }
            let best = scan_presorted(present, labels, imp);
            finish_numeric_at(best, present.len(), values, node, labels)
        })
    } else {
        NUMERIC_GATHER_SCANS.fetch_add(1, Relaxed);
        with_present(node.len(), |present| {
            for r in node.iter() {
                let v = values[r as usize];
                if !v.is_nan() {
                    present.push((v, r));
                }
            }
            present.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let best = scan_presorted(present, labels, imp);
            finish_numeric_at(best, present.len(), values, node, labels)
        })
    }
}

/// Child stats over a node's rows: same accumulation order as
/// `child_stats_routed_iter` over `node.iter()`, but dispatched per node
/// shape so the whole-column case runs on a plain range instead of a
/// chained iterator (measurably cheaper on 100k-row columns).
pub(crate) fn child_stats_at(
    node: NodeRows<'_>,
    labels: LabelView<'_>,
    missing_left: bool,
    route: impl Fn(usize) -> Option<bool>,
) -> (NodeStats, NodeStats) {
    match node {
        NodeRows::All(n) => child_stats_routed_iter(0..n, labels, missing_left, route),
        NodeRows::Subset(rows) => child_stats_routed_iter(
            rows.iter().map(|&r| r as usize),
            labels,
            missing_left,
            route,
        ),
    }
}

fn finish_numeric_at(
    best: Option<(f64, f64, usize)>,
    n_present: usize,
    values: &[f64],
    node: NodeRows<'_>,
    labels: LabelView<'_>,
) -> Option<ColumnSplit> {
    let (gain, thr, boundary) = best?;
    let n_left_present = boundary + 1;
    let n_right_present = n_present - n_left_present;
    let missing_left = n_left_present >= n_right_present;
    let (left, right) = child_stats_at(node, labels, missing_left, |i| {
        let v = values[i];
        if v.is_nan() {
            None
        } else {
            Some(v <= thr)
        }
    });
    Some(ColumnSplit {
        test: SplitTest::NumericLe(thr),
        gain,
        missing_left,
        left,
        right,
    })
}

// ---------------------------------------------------------------------------
// Categorical kernels
// ---------------------------------------------------------------------------

/// Exact one-vs-rest categorical split of a full column over a node's rows —
/// the sorted-engine counterpart of
/// [`crate::exact::best_cat_split_classification`]. Aggregates come from the
/// scratch arena instead of fresh allocations.
pub fn best_cat_split_classification_at(
    codes: &[u32],
    n_values: u32,
    node: NodeRows<'_>,
    ys: &[u32],
    n_classes: u32,
    imp: Impurity,
) -> Option<ColumnSplit> {
    assert_eq!(codes.len(), ys.len(), "codes/labels length mismatch");
    debug_assert_ascending(&node);
    with_cat_class(n_values, n_classes, |per_value, total| {
        match node {
            // Whole column: zip the parallel slices directly — the generic
            // row iterator costs a bounds check and a chain dispatch per row.
            NodeRows::All(n) => {
                debug_assert_eq!(n, codes.len(), "All(n) must span the whole column");
                for (&c, &y) in codes.iter().zip(ys) {
                    if c != MISSING_CAT {
                        per_value[c as usize].add(y);
                        total.add(y);
                    }
                }
            }
            NodeRows::Subset(rows) => {
                for &r in rows {
                    let c = codes[r as usize];
                    if c != MISSING_CAT {
                        per_value[c as usize].add(ys[r as usize]);
                        total.add(ys[r as usize]);
                    }
                }
            }
        }
        if total.total() < 2 {
            return None;
        }
        let (gain, code) = best_one_vs_rest(per_value, total, imp)?;

        let labels = LabelView::Class(ys, n_classes);
        let n_left_present = per_value[code as usize].total();
        let missing_left = n_left_present >= total.total() - n_left_present;
        let (left, right) = child_stats_at(node, labels, missing_left, |i| {
            if codes[i] == MISSING_CAT {
                None
            } else {
                Some(codes[i] == code)
            }
        });
        Some(ColumnSplit {
            test: SplitTest::CatIn(vec![code]),
            gain,
            missing_left,
            left,
            right,
        })
    })
}

/// Exact Breiman categorical regression split of a full column over a
/// node's rows — the sorted-engine counterpart of
/// [`crate::exact::best_cat_split_regression`].
pub fn best_cat_split_regression_at(
    codes: &[u32],
    n_values: u32,
    node: NodeRows<'_>,
    ys: &[f64],
) -> Option<ColumnSplit> {
    assert_eq!(codes.len(), ys.len(), "codes/labels length mismatch");
    debug_assert_ascending(&node);
    with_cat_reg(n_values, |per_value, total| {
        match node {
            // Whole column: zip the parallel slices directly (see the
            // classification kernel above).
            NodeRows::All(n) => {
                debug_assert_eq!(n, codes.len(), "All(n) must span the whole column");
                for (&c, &y) in codes.iter().zip(ys) {
                    if c != MISSING_CAT {
                        per_value[c as usize].add(y);
                        total.add(y);
                    }
                }
            }
            NodeRows::Subset(rows) => {
                for &r in rows {
                    let c = codes[r as usize];
                    if c != MISSING_CAT {
                        per_value[c as usize].add(ys[r as usize]);
                        total.add(ys[r as usize]);
                    }
                }
            }
        }
        if total.n < 2 {
            return None;
        }
        let (gain, left_set, n_left_present) = best_breiman_prefix(per_value, total)?;

        let labels = LabelView::Real(ys);
        let in_left = |c: u32| left_set.binary_search(&c).is_ok();
        let missing_left = n_left_present >= total.n - n_left_present;
        let (left, right) = child_stats_at(node, labels, missing_left, |i| {
            if codes[i] == MISSING_CAT {
                None
            } else {
                Some(in_left(codes[i]))
            }
        });
        Some(ColumnSplit {
            test: SplitTest::CatIn(left_set),
            gain,
            missing_left,
            left,
            right,
        })
    })
}

/// Distinct category codes of a full column restricted to a node's rows —
/// the sorted-engine counterpart of [`crate::exact::distinct_categories`]
/// (same sorted-ascending output), using the pooled seen-mask instead of
/// gather + sort + dedup.
pub fn distinct_categories_at(codes: &[u32], node: NodeRows<'_>, n_values: u32) -> Vec<u32> {
    with_seen(n_values as usize, |seen| {
        for r in node.iter() {
            let c = codes[r as usize];
            if c != MISSING_CAT {
                let ci = c as usize;
                if ci >= seen.len() {
                    seen.resize(ci + 1, false);
                }
                seen[ci] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(c, _)| c as u32)
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// A borrowed full column plus its presorted index, ready for the engine.
#[derive(Debug, Clone, Copy)]
pub enum ColumnRef<'a> {
    /// Numeric values with their presorted index.
    Numeric {
        /// Full column values.
        values: &'a [f64],
        /// The column's presorted [`SortedColumn`] index.
        index: &'a SortedColumn,
    },
    /// Categorical codes with the attribute's domain size.
    Categorical {
        /// Full column codes.
        codes: &'a [u32],
        /// Domain size of the attribute.
        n_values: u32,
    },
}

impl<'a> ColumnRef<'a> {
    /// Pairs a stored [`Column`] with its index (worker column store).
    pub fn of_column(col: &'a Column, index: &'a SortedColumn, ty: AttrType) -> Self {
        match (col, ty) {
            (Column::Numeric(v), AttrType::Numeric) => ColumnRef::Numeric { values: v, index },
            (Column::Categorical(c), AttrType::Categorical { n_values }) => {
                ColumnRef::Categorical { codes: c, n_values }
            }
            _ => panic!("column kind does not match attribute type"),
        }
    }

    /// Pairs a full gathered buffer with its index (`LocalDataset` columns).
    pub fn of_buf(buf: &'a ValuesBuf, index: &'a SortedColumn, ty: AttrType) -> Self {
        match (buf, ty) {
            (ValuesBuf::Numeric(v), AttrType::Numeric) => ColumnRef::Numeric { values: v, index },
            (ValuesBuf::Categorical(c), AttrType::Categorical { n_values }) => {
                ColumnRef::Categorical { codes: c, n_values }
            }
            _ => panic!("column buffer kind does not match attribute type"),
        }
    }
}

/// Sorted-engine counterpart of [`crate::exact::best_split_for_column`]:
/// finds the same split without gathering, given the full column, its
/// presorted index and the node's row set. The single entry point used by
/// the subtree trainer, the distributed column-tasks and the Yggdrasil
/// baseline — which is what keeps them byte-identical.
pub fn best_split_at(
    col: ColumnRef<'_>,
    node: NodeRows<'_>,
    mask: Option<&RowBitmap>,
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<ColumnSplit> {
    match (col, labels) {
        (ColumnRef::Numeric { values, index }, _) => {
            best_numeric_split_at(values, index, node, mask, labels, imp)
        }
        (ColumnRef::Categorical { codes, n_values }, LabelView::Class(ys, k)) => {
            best_cat_split_classification_at(codes, n_values, node, ys, k, imp)
        }
        (ColumnRef::Categorical { codes, n_values }, LabelView::Real(ys)) => {
            best_cat_split_regression_at(codes, n_values, node, ys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{
        best_cat_split_classification, best_cat_split_regression, best_numeric_split,
        distinct_categories,
    };

    #[test]
    fn bitmap_insert_contains_remove() {
        let mut bm = RowBitmap::with_rows(130);
        assert_eq!(bm.capacity_rows(), 192);
        bm.insert_all(&[0, 63, 64, 129]);
        assert!(bm.contains(0) && bm.contains(63) && bm.contains(64) && bm.contains(129));
        assert!(!bm.contains(1) && !bm.contains(128));
        bm.remove_all(&[63, 129]);
        assert!(!bm.contains(63) && !bm.contains(129));
        assert!(bm.contains(0) && bm.contains(64));
        bm.clear();
        assert!(!bm.contains(0) && !bm.contains(64));
    }

    #[test]
    fn bitmap_ensure_rows_preserves_bits() {
        let mut bm = RowBitmap::new();
        bm.ensure_rows(10);
        bm.insert(5);
        bm.ensure_rows(1000);
        assert!(bm.contains(5));
        assert!(!bm.contains(999));
    }

    #[test]
    fn node_rows_iter_and_len() {
        let all: Vec<u32> = NodeRows::All(4).iter().collect();
        assert_eq!(all, vec![0, 1, 2, 3]);
        let rows = [2u32, 5, 9];
        let sub: Vec<u32> = NodeRows::Subset(&rows).iter().collect();
        assert_eq!(sub, rows);
        assert_eq!(NodeRows::All(4).len(), 4);
        assert_eq!(NodeRows::Subset(&rows).len(), 3);
        assert!(NodeRows::Subset(&[]).is_empty());
    }

    #[test]
    fn sorted_full_node_matches_legacy_numeric() {
        let values = [3.0, 1.0, f64::NAN, 2.0, 2.0, 10.0, -4.0];
        let ys = [0u32, 1, 0, 1, 0, 1, 0];
        let labels = LabelView::Class(&ys, 2);
        let legacy = best_numeric_split(&values, labels, Impurity::Gini);
        let index = SortedColumn::from_numeric(&values);
        for path in [
            NumericPath::Auto,
            NumericPath::SortedScan,
            NumericPath::GatherSort,
        ] {
            let engine = best_numeric_split_at_path(
                path,
                &values,
                &index,
                NodeRows::All(values.len()),
                None,
                labels,
                Impurity::Gini,
            );
            assert_eq!(engine, legacy, "path {path:?}");
        }
    }

    #[test]
    fn sorted_subset_matches_legacy_on_gathered() {
        let values = [3.0, 1.0, f64::NAN, 2.0, 2.0, 10.0, -4.0, 5.5];
        let ys = [10.0, 20.0, 5.0, 20.0, 30.0, 1.0, 2.0, 8.0];
        let rows = [0u32, 1, 3, 4, 6, 7];
        let gathered: Vec<f64> = rows.iter().map(|&r| values[r as usize]).collect();
        let ys_g: Vec<f64> = rows.iter().map(|&r| ys[r as usize]).collect();
        let legacy = best_numeric_split(&gathered, LabelView::Real(&ys_g), Impurity::Variance);

        let index = SortedColumn::from_numeric(&values);
        let mut mask = RowBitmap::with_rows(values.len());
        mask.insert_all(&rows);
        for path in [NumericPath::SortedScan, NumericPath::GatherSort] {
            let engine = best_numeric_split_at_path(
                path,
                &values,
                &index,
                NodeRows::Subset(&rows),
                Some(&mask),
                LabelView::Real(&ys),
                Impurity::Variance,
            )
            .unwrap();
            let legacy = legacy.clone().unwrap();
            assert_eq!(engine.test, legacy.test, "path {path:?}");
            assert_eq!(engine.gain.to_bits(), legacy.gain.to_bits());
            assert_eq!(engine.missing_left, legacy.missing_left);
            assert_eq!(engine.left, legacy.left);
            assert_eq!(engine.right, legacy.right);
        }
    }

    #[test]
    fn cat_kernels_match_legacy_on_subset() {
        let codes = [0u32, 2, 1, MISSING_CAT, 2, 0, 1, 2];
        let rows = [1u32, 2, 3, 4, 5, 7];
        let gathered: Vec<u32> = rows.iter().map(|&r| codes[r as usize]).collect();

        let ys_c = [0u32, 1, 0, 1, 1, 0, 0, 1];
        let ys_c_g: Vec<u32> = rows.iter().map(|&r| ys_c[r as usize]).collect();
        let legacy = best_cat_split_classification(&gathered, 3, &ys_c_g, 2, Impurity::Gini);
        let engine = best_cat_split_classification_at(
            &codes,
            3,
            NodeRows::Subset(&rows),
            &ys_c,
            2,
            Impurity::Gini,
        );
        assert_eq!(engine, legacy);

        let ys_r = [1.0, 9.0, 2.0, 8.0, 9.5, 1.5, 2.5, 9.2];
        let ys_r_g: Vec<f64> = rows.iter().map(|&r| ys_r[r as usize]).collect();
        let legacy = best_cat_split_regression(&gathered, 3, &ys_r_g);
        let engine = best_cat_split_regression_at(&codes, 3, NodeRows::Subset(&rows), &ys_r);
        assert_eq!(engine, legacy);
    }

    #[test]
    fn distinct_categories_at_matches_legacy() {
        let codes = [3u32, 1, MISSING_CAT, 0, 3, 2];
        let rows = [0u32, 2, 4, 5];
        let gathered: Vec<u32> = rows.iter().map(|&r| codes[r as usize]).collect();
        assert_eq!(
            distinct_categories_at(&codes, NodeRows::Subset(&rows), 4),
            distinct_categories(&gathered)
        );
        assert_eq!(
            distinct_categories_at(&codes, NodeRows::All(codes.len()), 4),
            distinct_categories(&codes)
        );
    }

    #[test]
    fn with_node_mask_sets_and_clears() {
        let rows = [1u32, 65];
        with_node_mask(100, &rows, |m| {
            assert!(m.contains(1) && m.contains(65));
            assert!(!m.contains(0));
        });
        // The pooled mask must come back empty for the next borrower.
        with_node_mask(100, &[], |m| {
            assert!(!m.contains(1) && !m.contains(65));
        });
    }

    #[test]
    fn counters_tick_per_path() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let ys = [0u32, 0, 1, 1];
        let labels = LabelView::Class(&ys, 2);
        let index = SortedColumn::from_numeric(&values);
        let before = kernel_counters();
        best_numeric_split_at_path(
            NumericPath::SortedScan,
            &values,
            &index,
            NodeRows::All(4),
            None,
            labels,
            Impurity::Gini,
        );
        best_numeric_split_at_path(
            NumericPath::GatherSort,
            &values,
            &index,
            NodeRows::All(4),
            None,
            labels,
            Impurity::Gini,
        );
        let after = kernel_counters();
        // Other tests may tick concurrently; assert monotone growth by at
        // least our own contribution.
        assert!(after.numeric_sorted_scans > before.numeric_sorted_scans);
        assert!(after.numeric_gather_scans > before.numeric_gather_scans);
        assert!(after.pool_hits + after.pool_misses >= before.pool_hits + before.pool_misses + 2);
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        // Same-shaped consecutive borrows on one thread: second is a hit.
        let before = kernel_counters();
        with_cat_reg(8, |pv, _| assert_eq!(pv.len(), 8));
        with_cat_reg(8, |pv, _| assert_eq!(pv.len(), 8));
        let after = kernel_counters();
        assert!(after.pool_hits > before.pool_hits);
    }

    #[test]
    fn empty_and_degenerate_nodes() {
        let values = [1.0, 2.0];
        let ys = [0u32, 1];
        let labels = LabelView::Class(&ys, 2);
        let index = SortedColumn::from_numeric(&values);
        let mask = RowBitmap::with_rows(2);
        assert_eq!(
            best_numeric_split_at(
                &values,
                &index,
                NodeRows::Subset(&[]),
                Some(&mask),
                labels,
                Impurity::Gini
            ),
            None
        );
        // All-missing column: empty order, nothing to split.
        let nan = [f64::NAN, f64::NAN];
        let idx2 = SortedColumn::from_numeric(&nan);
        assert_eq!(
            best_numeric_split_at(&nan, &idx2, NodeRows::All(2), None, labels, Impurity::Gini),
            None
        );
    }
}
