//! Exact best-split kernels (paper Appendix B).
//!
//! Each kernel takes one column's values *gathered over the node's rows*
//! (aligned with the equally-gathered labels) and returns the best exact
//! split-condition of that column, or `None` when no condition strictly
//! reduces impurity.
//!
//! Missing values are excluded from the gain computation and routed to the
//! majority child; the returned child statistics *include* the routed missing
//! rows so node predictions and `|Ixl|`/`|Ixr|` counters (which the paper
//! sends back with every column-task result, §V) are exact.
//!
//! Determinism: every kernel and [`ColumnSplit::challenger_wins`] define a
//! strict total order on candidate splits, so the distributed engine and the
//! single-threaded subtree trainer pick identical splits.

use crate::condition::SplitTest;
use crate::impurity::{ClassCounts, Impurity, LabelView, NodeStats, RegAgg};
use ts_datatable::{AttrType, ValuesBuf, MISSING_CAT};
use tsjson::{Deserialize, Serialize};

/// The best split found for one column, with exact child statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSplit {
    /// The winning test.
    pub test: SplitTest,
    /// Weighted impurity decrease over the non-missing rows (strictly > 0).
    pub gain: f64,
    /// Where rows with a missing value of this attribute are routed.
    pub missing_left: bool,
    /// Label statistics of the left child (missing rows included if routed left).
    pub left: NodeStats,
    /// Label statistics of the right child (missing rows included if routed right).
    pub right: NodeStats,
}

impl ColumnSplit {
    /// Rows routed to the left child, `|Ixl|`.
    pub fn n_left(&self) -> u64 {
        self.left.n()
    }

    /// Rows routed to the right child, `|Ixr|`.
    pub fn n_right(&self) -> u64 {
        self.right.n()
    }

    /// Whether a challenger split on attribute `challenger_attr` beats an
    /// incumbent on `incumbent_attr`.
    ///
    /// The order is: higher gain wins; on exactly-equal gain the smaller
    /// attribute id wins. This is the cross-column comparison the master (or
    /// the local trainer) applies when gathering per-column results, and it
    /// is a strict total order so training is deterministic regardless of
    /// result arrival order.
    pub fn challenger_wins(
        challenger: &ColumnSplit,
        challenger_attr: usize,
        incumbent: &ColumnSplit,
        incumbent_attr: usize,
    ) -> bool {
        match challenger.gain.total_cmp(&incumbent.gain) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => challenger_attr < incumbent_attr,
        }
    }
}

/// Picks the threshold for a boundary between adjacent sorted values `a < b`.
///
/// Uses the midpoint, falling back to `a` when rounding would land on `b`
/// (adjacent floats), so that `x <= thr` always separates `a` from `b`.
pub(crate) fn boundary_threshold(a: f64, b: f64) -> f64 {
    debug_assert!(a < b);
    let mid = a + (b - a) / 2.0;
    if mid < b {
        mid
    } else {
        a
    }
}

/// Exact best `Ai <= v` split for a numeric column (Appendix B, Case 1):
/// sort the present values, then one pass with `O(1)` incremental impurity.
pub fn best_numeric_split(
    values: &[f64],
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<ColumnSplit> {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");

    // Split positions into present (to be sorted); missing rows are routed
    // to the majority side after the boundary is chosen.
    crate::sorted::with_present(values.len(), |present| {
        for (i, &v) in values.iter().enumerate() {
            if !v.is_nan() {
                present.push((v, i as u32));
            }
        }
        present.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let best = scan_presorted(present, labels, imp);
        finish_numeric(best, present, values, labels)
    })
}

/// One boundary scan over presorted `(value, label index)` pairs with `O(1)`
/// incremental impurity. Returns the best `(gain, threshold, boundary index)`
/// under the strict within-column order, or `None`.
///
/// `present` must be sorted by `(value, index)` under `f64::total_cmp`; the
/// `.1` side indexes `labels` directly — gathered *positions* on the legacy
/// path, global *row ids* on the sorted-column path. The scan only compares
/// values and accumulates labels, so both paths produce bit-identical gains
/// when fed order-isomorphic sequences (see docs/PERF.md).
pub(crate) fn scan_presorted(
    present: &[(f64, u32)],
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<(f64, f64, usize)> {
    if present.len() < 2 {
        return None;
    }
    match labels {
        LabelView::Class(ys, k) => crate::sorted::with_class_pair(k, |left, right| {
            for &(_, p) in present {
                right.add(ys[p as usize]);
            }
            let total_w = right.weighted_impurity(imp);
            let mut best: Option<(f64, f64, usize)> = None; // (gain, threshold, boundary idx)
            for i in 0..present.len() - 1 {
                left.add(ys[present[i].1 as usize]);
                right.remove(ys[present[i].1 as usize]);
                if present[i].0 < present[i + 1].0 {
                    let gain = total_w - left.weighted_impurity(imp) - right.weighted_impurity(imp);
                    let thr = boundary_threshold(present[i].0, present[i + 1].0);
                    if challenger_gain_wins(gain, thr, &best) {
                        best = Some((gain, thr, i));
                    }
                }
            }
            best
        }),
        LabelView::Real(ys) => {
            let mut right = RegAgg::default();
            for &(_, p) in present {
                right.add(ys[p as usize]);
            }
            let total_w = right.weighted_impurity();
            let mut left = RegAgg::default();
            let mut best: Option<(f64, f64, usize)> = None;
            for i in 0..present.len() - 1 {
                left.add(ys[present[i].1 as usize]);
                right.remove(ys[present[i].1 as usize]);
                if present[i].0 < present[i + 1].0 {
                    let gain = total_w - left.weighted_impurity() - right.weighted_impurity();
                    let thr = boundary_threshold(present[i].0, present[i + 1].0);
                    if challenger_gain_wins(gain, thr, &best) {
                        best = Some((gain, thr, i));
                    }
                }
            }
            best
        }
    }
}

/// Strict within-column order: higher gain, then smaller threshold.
pub(crate) fn challenger_gain_wins(gain: f64, thr: f64, best: &Option<(f64, f64, usize)>) -> bool {
    if gain <= 0.0 || !gain.is_finite() {
        return false;
    }
    match best {
        None => true,
        Some((bg, bt, _)) => match gain.total_cmp(bg) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => thr < *bt,
        },
    }
}

/// Builds both children's label statistics in a single pass **in row
/// order**, routing each position with `route` (`None` = missing, goes to
/// the `missing_left` side).
///
/// Row-order accumulation matters: the subtree trainer computes a child
/// node's statistics by scanning the child's rows in order, and the engine
/// must produce bit-identical predictions for children that become leaves.
/// Summing in any other order (e.g. the sorted scan order) differs in the
/// last ULP for floating-point targets.
fn child_stats_routed(
    n: usize,
    labels: LabelView<'_>,
    missing_left: bool,
    route: impl Fn(usize) -> Option<bool>,
) -> (NodeStats, NodeStats) {
    child_stats_routed_iter(0..n, labels, missing_left, route)
}

/// Generalisation of [`child_stats_routed`] over an explicit index sequence:
/// the sorted-column engine accumulates over a node's (ascending) row ids
/// against full-column labels, which visits the same labels in the same
/// order as the legacy gathered scan — hence bit-identical child stats.
pub(crate) fn child_stats_routed_iter(
    indices: impl Iterator<Item = usize>,
    labels: LabelView<'_>,
    missing_left: bool,
    route: impl Fn(usize) -> Option<bool>,
) -> (NodeStats, NodeStats) {
    let (mut left, mut right) = match labels {
        LabelView::Class(_, k) => (
            NodeStats::Class(ClassCounts::new(k)),
            NodeStats::Class(ClassCounts::new(k)),
        ),
        LabelView::Real(_) => (
            NodeStats::Reg(RegAgg::default()),
            NodeStats::Reg(RegAgg::default()),
        ),
    };
    for i in indices {
        let goes_left = route(i).unwrap_or(missing_left);
        let target = if goes_left { &mut left } else { &mut right };
        match (target, labels) {
            (NodeStats::Class(c), LabelView::Class(ys, _)) => c.add(ys[i]),
            (NodeStats::Reg(a), LabelView::Real(ys)) => a.add(ys[i]),
            _ => unreachable!("stats kind fixed above"),
        }
    }
    (left, right)
}

fn finish_numeric(
    best: Option<(f64, f64, usize)>,
    present: &[(f64, u32)],
    values: &[f64],
    labels: LabelView<'_>,
) -> Option<ColumnSplit> {
    let (gain, thr, boundary) = best?;
    // Present-row child sizes are exact integers from the scan position.
    let n_left_present = boundary + 1;
    let n_right_present = present.len() - n_left_present;
    let missing_left = n_left_present >= n_right_present;
    let (left, right) = child_stats_routed(values.len(), labels, missing_left, |i| {
        if values[i].is_nan() {
            None
        } else {
            Some(values[i] <= thr)
        }
    });
    Some(ColumnSplit {
        test: SplitTest::NumericLe(thr),
        gain,
        missing_left,
        left,
        right,
    })
}

/// Exact best categorical split for classification (Appendix B, Case 3):
/// one-vs-rest — the left set is a single category, `|Sl| = 1`, so only
/// `O(|Si|)` conditions are checked. Ties break toward the smaller code.
pub fn best_cat_split_classification(
    codes: &[u32],
    n_values: u32,
    ys: &[u32],
    n_classes: u32,
    imp: Impurity,
) -> Option<ColumnSplit> {
    assert_eq!(codes.len(), ys.len(), "codes/labels length mismatch");
    let mut per_value: Vec<ClassCounts> = vec![ClassCounts::new(n_classes); n_values as usize];
    let mut total = ClassCounts::new(n_classes);
    for (&c, &y) in codes.iter().zip(ys) {
        if c != MISSING_CAT {
            per_value[c as usize].add(y);
            total.add(y);
        }
    }
    if total.total() < 2 {
        return None;
    }
    let (gain, code) = best_one_vs_rest(&per_value, &total, imp)?;

    let labels = LabelView::Class(ys, n_classes);
    let n_left_present = per_value[code as usize].total();
    let missing_left = n_left_present >= total.total() - n_left_present;
    let (left, right) = child_stats_routed(codes.len(), labels, missing_left, |i| {
        if codes[i] == MISSING_CAT {
            None
        } else {
            Some(codes[i] == code)
        }
    });
    Some(ColumnSplit {
        test: SplitTest::CatIn(vec![code]),
        gain,
        missing_left,
        left,
        right,
    })
}

/// One-vs-rest gain loop (Appendix B, Case 3) over per-category class
/// counts: returns the best `(gain, singleton left code)`, ties toward the
/// smaller code. Shared by the legacy gathered kernel and the sorted-column
/// engine.
pub(crate) fn best_one_vs_rest(
    per_value: &[ClassCounts],
    total: &ClassCounts,
    imp: Impurity,
) -> Option<(f64, u32)> {
    let total_w = total.weighted_impurity(imp);
    let mut best: Option<(f64, u32)> = None;
    for (code, counts) in per_value.iter().enumerate() {
        if counts.total() == 0 || counts.total() == total.total() {
            continue;
        }
        let rest = total.minus(counts);
        let gain = total_w - counts.weighted_impurity(imp) - rest.weighted_impurity(imp);
        if gain > 0.0
            && best.is_none_or(|(bg, bc)| match gain.total_cmp(&bg) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => (code as u32) < bc,
            })
        {
            best = Some((gain, code as u32));
        }
    }
    best
}

/// Exact best categorical split for regression (Appendix B, Case 2 —
/// Breiman et al.): group rows by category, sort groups by mean `Y`, and the
/// optimal `Sl` is a prefix of that order, found in one pass.
pub fn best_cat_split_regression(codes: &[u32], n_values: u32, ys: &[f64]) -> Option<ColumnSplit> {
    assert_eq!(codes.len(), ys.len(), "codes/labels length mismatch");
    let mut per_value: Vec<RegAgg> = vec![RegAgg::default(); n_values as usize];
    let mut total = RegAgg::default();
    for (&c, &y) in codes.iter().zip(ys) {
        if c != MISSING_CAT {
            per_value[c as usize].add(y);
            total.add(y);
        }
    }
    if total.n < 2 {
        return None;
    }
    let (gain, left_set, n_left_present) = best_breiman_prefix(&per_value, &total)?;

    let labels = LabelView::Real(ys);
    let in_left = |c: u32| left_set.binary_search(&c).is_ok();
    let missing_left = n_left_present >= total.n - n_left_present;
    let (left, right) = child_stats_routed(codes.len(), labels, missing_left, |i| {
        if codes[i] == MISSING_CAT {
            None
        } else {
            Some(in_left(codes[i]))
        }
    });
    Some(ColumnSplit {
        test: SplitTest::CatIn(left_set),
        gain,
        missing_left,
        left,
        right,
    })
}

/// Breiman prefix scan (Appendix B, Case 2) over per-category regression
/// aggregates: sorts present categories by mean (ties by code), finds the
/// best prefix cut, and returns `(gain, sorted left set, left present
/// count)`. Shared by the legacy gathered kernel and the sorted-column
/// engine.
pub(crate) fn best_breiman_prefix(
    per_value: &[RegAgg],
    total: &RegAgg,
) -> Option<(f64, Vec<u32>, u64)> {
    let total_w = total.weighted_impurity();

    // Present categories sorted by mean (ties by code for determinism).
    let mut groups: Vec<(u32, RegAgg)> = per_value
        .iter()
        .enumerate()
        .filter(|(_, a)| a.n > 0)
        .map(|(c, a)| (c as u32, *a))
        .collect();
    if groups.len() < 2 {
        return None;
    }
    groups.sort_unstable_by(|a, b| a.1.mean().total_cmp(&b.1.mean()).then(a.0.cmp(&b.0)));

    let mut left = RegAgg::default();
    let mut right = *total;
    let mut best: Option<(f64, usize)> = None; // (gain, prefix length)
    for (i, (_, agg)) in groups.iter().enumerate().take(groups.len() - 1) {
        left.merge(agg);
        right.remove_agg(agg);
        let gain = total_w - left.weighted_impurity() - right.weighted_impurity();
        if gain > 0.0
            && best.is_none_or(|(bg, bl)| match gain.total_cmp(&bg) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => i + 1 < bl,
            })
        {
            best = Some((gain, i + 1));
        }
    }
    let (gain, prefix) = best?;
    let n_left_present: u64 = groups[..prefix].iter().map(|&(_, a)| a.n).sum();
    let left_set: Vec<u32> = {
        let mut s: Vec<u32> = groups[..prefix].iter().map(|&(c, _)| c).collect();
        s.sort_unstable();
        s
    };
    Some((gain, left_set, n_left_present))
}

impl RegAgg {
    /// Removes a whole previously-merged aggregate (used by the Breiman scan).
    fn remove_agg(&mut self, other: &RegAgg) {
        debug_assert!(self.n >= other.n);
        self.n -= other.n;
        self.sum -= other.sum;
        self.sum_sq -= other.sum_sq;
    }
}

/// Dispatches to the right exact kernel for a gathered column buffer.
///
/// This is the single entry point used both by the distributed column-tasks
/// and by the local subtree trainer, which is what guarantees they find
/// identical splits.
pub fn best_split_for_column(
    values: &ValuesBuf,
    attr_ty: AttrType,
    labels: LabelView<'_>,
    imp: Impurity,
) -> Option<ColumnSplit> {
    match (values, attr_ty) {
        (ValuesBuf::Numeric(v), AttrType::Numeric) => best_numeric_split(v, labels, imp),
        (ValuesBuf::Categorical(c), AttrType::Categorical { n_values }) => match labels {
            LabelView::Class(ys, k) => best_cat_split_classification(c, n_values, ys, k, imp),
            LabelView::Real(ys) => best_cat_split_regression(c, n_values, ys),
        },
        _ => panic!("column buffer kind does not match attribute type"),
    }
}

/// Distinct category codes present in a gathered categorical buffer (the
/// "seen in `Dx` during training" set a split node stores so prediction can
/// detect unseen values; Appendix D).
pub fn distinct_categories(codes: &[u32]) -> Vec<u32> {
    let mut seen: Vec<u32> = codes
        .iter()
        .copied()
        .filter(|&c| c != MISSING_CAT)
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_view(ys: &[u32]) -> LabelView<'_> {
        LabelView::Class(ys, 2)
    }

    #[test]
    fn numeric_split_perfect_separation() {
        let values = [1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        let ys = [0, 0, 0, 1, 1, 1];
        let s = best_numeric_split(&values, class_view(&ys), Impurity::Gini).unwrap();
        assert_eq!(s.test, SplitTest::NumericLe(6.5));
        assert_eq!(s.n_left(), 3);
        assert_eq!(s.n_right(), 3);
        // Full gini of (3,3) over 6 rows = 6 * 0.5 = 3; children pure.
        assert!((s.gain - 3.0).abs() < 1e-12);
        assert!(s.left.is_pure() && s.right.is_pure());
    }

    #[test]
    fn numeric_split_fig1_age_example() {
        // Fig. 1(b) root: A1 (Age) <= 40 separates {24,28,32,36,37}
        // (labels 0,0,1,0,1) from {44,48,42,54,47} (0,0,0,1,0).
        let ages = [24.0, 28.0, 44.0, 32.0, 36.0, 48.0, 37.0, 42.0, 54.0, 47.0];
        let ys = [0, 0, 0, 1, 0, 0, 1, 0, 1, 0];
        let s = best_numeric_split(&ages, class_view(&ys), Impurity::Gini).unwrap();
        // The exact kernel picks the best boundary; the gain must be
        // positive and children counts must cover all rows.
        assert!(s.gain > 0.0);
        assert_eq!(s.n_left() + s.n_right(), 10);
    }

    #[test]
    fn numeric_split_none_when_constant() {
        let values = [5.0; 4];
        let ys = [0, 1, 0, 1];
        assert!(best_numeric_split(&values, class_view(&ys), Impurity::Gini).is_none());
    }

    #[test]
    fn numeric_split_none_when_pure() {
        let values = [1.0, 2.0, 3.0];
        let ys = [1, 1, 1];
        assert!(best_numeric_split(&values, class_view(&ys), Impurity::Gini).is_none());
    }

    #[test]
    fn numeric_split_single_present_value_is_none() {
        let values = [1.0, f64::NAN, f64::NAN];
        let ys = [0, 1, 0];
        assert!(best_numeric_split(&values, class_view(&ys), Impurity::Gini).is_none());
    }

    #[test]
    fn numeric_split_missing_routed_to_majority_and_counted() {
        let values = [1.0, 2.0, 3.0, 10.0, f64::NAN, f64::NAN];
        let ys = [0, 0, 0, 1, 1, 1];
        let s = best_numeric_split(&values, class_view(&ys), Impurity::Gini).unwrap();
        // Present split is 3 left vs 1 right; missing go left (majority).
        assert!(s.missing_left);
        assert_eq!(s.n_left(), 5);
        assert_eq!(s.n_right(), 1);
    }

    #[test]
    fn numeric_split_regression_variance() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 10.0, 50.0, 50.0];
        let s = best_numeric_split(&values, LabelView::Real(&ys), Impurity::Variance).unwrap();
        assert_eq!(s.test, SplitTest::NumericLe(2.5));
        assert!(s.left.is_pure() && s.right.is_pure());
    }

    #[test]
    fn numeric_adjacent_float_boundary_still_separates() {
        let a = 1.0f64;
        let b = f64::from_bits(a.to_bits() + 1); // next float up
        let values = [a, b];
        let ys = [0u32, 1u32];
        let s = best_numeric_split(&values, class_view(&ys), Impurity::Gini).unwrap();
        if let SplitTest::NumericLe(t) = s.test {
            assert!(a <= t && b > t, "threshold {t} must separate {a} and {b}");
        } else {
            panic!("expected numeric test");
        }
    }

    #[test]
    fn cat_classification_one_vs_rest() {
        // Category 2 is all class 1; others class 0.
        let codes = [0, 1, 2, 2, 0, 1];
        let ys = [0, 0, 1, 1, 0, 0];
        let s = best_cat_split_classification(&codes, 3, &ys, 2, Impurity::Gini).unwrap();
        assert_eq!(s.test, SplitTest::CatIn(vec![2]));
        assert_eq!(s.n_left(), 2);
        assert_eq!(s.n_right(), 4);
        assert!(s.left.is_pure() && s.right.is_pure());
    }

    #[test]
    fn cat_classification_tie_breaks_to_smaller_code() {
        // Codes 0 and 1 are symmetric: either singleton gives the same gain.
        let codes = [0, 0, 1, 1];
        let ys = [0, 0, 1, 1];
        let s = best_cat_split_classification(&codes, 2, &ys, 2, Impurity::Gini).unwrap();
        assert_eq!(s.test, SplitTest::CatIn(vec![0]));
    }

    #[test]
    fn cat_classification_none_when_single_category() {
        let codes = [3, 3, 3];
        let ys = [0, 1, 0];
        assert!(best_cat_split_classification(&codes, 4, &ys, 2, Impurity::Gini).is_none());
    }

    #[test]
    fn cat_regression_breiman_prefix() {
        // Means: code 0 -> 1.0, code 1 -> 100.0, code 2 -> 2.0.
        // Sorted by mean: [0, 2, 1]; best cut isolates code 1.
        let codes = [0, 0, 1, 1, 2, 2];
        let ys = [1.0, 1.0, 100.0, 100.0, 2.0, 2.0];
        let s = best_cat_split_regression(&codes, 3, &ys).unwrap();
        assert_eq!(s.test, SplitTest::CatIn(vec![0, 2]));
        assert_eq!(s.n_left(), 4);
        assert_eq!(s.n_right(), 2);
    }

    #[test]
    fn cat_regression_missing_routed_majority() {
        let codes = [0, 0, 1, MISSING_CAT];
        let ys = [1.0, 1.0, 100.0, 50.0];
        let s = best_cat_split_regression(&codes, 2, &ys).unwrap();
        assert!(s.missing_left);
        assert_eq!(s.n_left(), 3);
    }

    #[test]
    fn breiman_matches_exhaustive_on_small_inputs() {
        // Brute-force all 2^(k-1)-1 proper subsets and confirm Breiman's
        // prefix scan finds a subset with the same (optimal) gain.
        use tsrand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _trial in 0..50 {
            let k = rng.gen_range(2..6u32);
            let n = rng.gen_range(4..30usize);
            let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k)).collect();
            let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
            let fast = best_cat_split_regression(&codes, k, &ys);

            // Exhaustive search.
            let mut total = RegAgg::default();
            for &y in &ys {
                total.add(y);
            }
            let total_w = total.weighted_impurity();
            let mut best_gain: Option<f64> = None;
            for mask in 1u32..(1 << k) - 1 {
                let mut l = RegAgg::default();
                let mut r = RegAgg::default();
                for (&c, &y) in codes.iter().zip(&ys) {
                    if mask & (1 << c) != 0 {
                        l.add(y);
                    } else {
                        r.add(y);
                    }
                }
                if l.n == 0 || r.n == 0 {
                    continue;
                }
                let gain = total_w - l.weighted_impurity() - r.weighted_impurity();
                if gain > 0.0 && best_gain.is_none_or(|bg| gain > bg) {
                    best_gain = Some(gain);
                }
            }
            match (fast, best_gain) {
                (Some(f), Some(bg)) => {
                    assert!(
                        (f.gain - bg).abs() < 1e-9 * bg.abs().max(1.0),
                        "breiman gain {} != exhaustive {}",
                        f.gain,
                        bg
                    );
                }
                (None, None) => {}
                (f, bg) => panic!("disagree on existence: fast={f:?} exhaustive={bg:?}"),
            }
        }
    }

    #[test]
    fn dispatch_matches_kernel() {
        let buf = ValuesBuf::Numeric(vec![1.0, 2.0, 3.0, 4.0]);
        let ys = [0u32, 0, 1, 1];
        let via_dispatch =
            best_split_for_column(&buf, AttrType::Numeric, class_view(&ys), Impurity::Gini);
        let direct = best_numeric_split(&[1.0, 2.0, 3.0, 4.0], class_view(&ys), Impurity::Gini);
        assert_eq!(via_dispatch, direct);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn dispatch_kind_mismatch_panics() {
        let buf = ValuesBuf::Numeric(vec![1.0]);
        best_split_for_column(
            &buf,
            AttrType::Categorical { n_values: 2 },
            class_view(&[0]),
            Impurity::Gini,
        );
    }

    #[test]
    fn challenger_order_is_strict() {
        let ys = [0u32, 0, 1, 1];
        let s = best_numeric_split(&[1.0, 2.0, 3.0, 4.0], class_view(&ys), Impurity::Gini).unwrap();
        // Equal gains: smaller attr id wins.
        assert!(ColumnSplit::challenger_wins(&s, 1, &s, 2));
        assert!(!ColumnSplit::challenger_wins(&s, 2, &s, 1));
        assert!(!ColumnSplit::challenger_wins(&s, 2, &s, 2));
    }

    #[test]
    fn distinct_categories_sorted_dedup_no_missing() {
        assert_eq!(
            distinct_categories(&[3, 1, 3, MISSING_CAT, 0]),
            vec![0, 1, 3]
        );
        assert!(distinct_categories(&[MISSING_CAT]).is_empty());
    }
}
