//! A mergeable weighted quantile sketch — the XGBoost approximation.
//!
//! XGBoost's 'approx' mode proposes candidate split points per attribute
//! with a *weighted quantile sketch* where each row is weighted by its
//! second-order gradient (paper §II cites Chen & Guestrin 2016). This module
//! implements a simplified mergeable summary in that spirit: it keeps a
//! bounded number of `(value, weight)` entries chosen at even cumulative-
//! weight spacing, giving rank error at most `~W / max_entries` per
//! compaction. That is sufficient for the baseline's behaviour (approximate
//! candidates, mergeable across data partitions); we do not reproduce the
//! GK-style proof machinery of the original.

use tsjson::{Deserialize, Serialize};

/// A mergeable weighted quantile summary over `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Compacted entries, sorted by value, weights summed per distinct value.
    entries: Vec<(f64, f64)>,
    /// Uncompacted recent insertions.
    buffer: Vec<(f64, f64)>,
    /// Compaction budget: max entries retained after a compaction.
    max_entries: usize,
    /// Total inserted weight.
    total_weight: f64,
}

impl QuantileSketch {
    /// Creates a sketch that retains at most `max_entries` compacted entries
    /// (must be at least 8; ~`2/eps` for rank error `eps`).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 8, "max_entries must be >= 8");
        QuantileSketch {
            entries: Vec::new(),
            buffer: Vec::new(),
            max_entries,
            total_weight: 0.0,
        }
    }

    /// Inserts a value with a positive weight. NaN values are ignored
    /// (missing data does not participate in candidate proposal).
    pub fn push(&mut self, value: f64, weight: f64) {
        if value.is_nan() || weight <= 0.0 {
            return;
        }
        self.buffer.push((value, weight));
        self.total_weight += weight;
        if self.buffer.len() >= self.max_entries * 4 {
            self.compact();
        }
    }

    /// Merges another sketch into this one.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.buffer.extend_from_slice(&other.entries);
        self.buffer.extend_from_slice(&other.buffer);
        self.total_weight += other.total_weight;
        if self.buffer.len() >= self.max_entries * 4 {
            self.compact();
        }
    }

    /// Total inserted weight.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn compact(&mut self) {
        let mut all: Vec<(f64, f64)> = Vec::with_capacity(self.entries.len() + self.buffer.len());
        all.append(&mut self.entries);
        all.append(&mut self.buffer);
        all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        // Coalesce identical values.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(all.len());
        for (v, w) in all {
            match merged.last_mut() {
                Some((lv, lw)) if *lv == v => *lw += w,
                _ => merged.push((v, w)),
            }
        }
        if merged.len() <= self.max_entries {
            self.entries = merged;
            return;
        }
        // Keep entries at even cumulative-weight spacing, always including
        // the extremes so min/max survive.
        let total: f64 = merged.iter().map(|(_, w)| w).sum();
        let step = total / (self.max_entries - 1) as f64;
        let mut kept: Vec<(f64, f64)> = Vec::with_capacity(self.max_entries);
        let mut next_rank = 0.0;
        let mut cum = 0.0;
        let mut pending_weight = 0.0;
        for (i, (v, w)) in merged.iter().enumerate() {
            cum += w;
            pending_weight += w;
            let is_last = i == merged.len() - 1;
            if cum >= next_rank || is_last {
                kept.push((*v, pending_weight));
                pending_weight = 0.0;
                while next_rank <= cum {
                    next_rank += step;
                }
            }
        }
        self.entries = kept;
    }

    /// Estimated cumulative weight of values `<= v`.
    pub fn rank(&mut self, v: f64) -> f64 {
        self.compact();
        let mut cum = 0.0;
        for &(x, w) in &self.entries {
            if x <= v {
                cum += w;
            } else {
                break;
            }
        }
        cum
    }

    /// Proposes up to `k - 1` candidate thresholds at even cumulative-weight
    /// quantiles (XGBoost's per-attribute candidate set). Deduplicated and
    /// strictly increasing; the maximum value is excluded (splitting there
    /// sends everything left).
    pub fn cut_points(&mut self, k: usize) -> Vec<f64> {
        assert!(k >= 2, "need at least 2 quantile buckets");
        self.compact();
        if self.entries.len() <= 1 {
            return Vec::new();
        }
        let max_v = self.entries.last().expect("nonempty").0;
        let total: f64 = self.total_weight;
        let mut cuts = Vec::with_capacity(k - 1);
        let mut cum = 0.0;
        let mut target = total / k as f64;
        for &(v, w) in &self.entries {
            cum += w;
            while cum >= target && cuts.len() < k - 1 {
                if v < max_v && cuts.last().is_none_or(|&last| v > last) {
                    cuts.push(v);
                }
                target += total / k as f64;
            }
        }
        cuts
    }

    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        (self.entries.len() + self.buffer.len()) * 16 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsrand::prelude::*;

    #[test]
    fn unweighted_uniform_quantiles_are_accurate() {
        let mut s = QuantileSketch::new(64);
        for i in 0..10_000 {
            s.push(i as f64, 1.0);
        }
        let cuts = s.cut_points(4);
        assert_eq!(cuts.len(), 3);
        // Quartiles of 0..10000 with rank error ~ W/64.
        for (c, expect) in cuts.iter().zip([2500.0, 5000.0, 7500.0]) {
            assert!((c - expect).abs() < 400.0, "cut {c} too far from {expect}");
        }
    }

    #[test]
    fn rank_error_is_bounded_on_random_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = QuantileSketch::new(128);
        let mut values: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        for &v in &values {
            s.push(v, 1.0);
        }
        values.sort_unstable_by(f64::total_cmp);
        let n = values.len() as f64;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let v = values[(q * n) as usize];
            let est = s.rank(v);
            let err = (est - q * n).abs() / n;
            assert!(err < 0.05, "rank error {err} at q={q}");
        }
    }

    #[test]
    fn merge_matches_single_sketch_approximately() {
        let mut whole = QuantileSketch::new(64);
        let mut a = QuantileSketch::new(64);
        let mut b = QuantileSketch::new(64);
        for i in 0..5_000 {
            let v = (i * 7919 % 5000) as f64;
            whole.push(v, 1.0);
            if i % 2 == 0 {
                a.push(v, 1.0);
            } else {
                b.push(v, 1.0);
            }
        }
        a.merge(&b);
        assert_eq!(a.total_weight(), whole.total_weight());
        let ca = a.cut_points(8);
        let cw = whole.cut_points(8);
        assert_eq!(ca.len(), cw.len());
        for (x, y) in ca.iter().zip(&cw) {
            assert!((x - y).abs() < 250.0, "merged cut {x} vs whole {y}");
        }
    }

    #[test]
    fn merge_empty_sketches_is_identity() {
        // Empty ⊕ empty stays empty.
        let mut e = QuantileSketch::new(8);
        e.merge(&QuantileSketch::new(8));
        assert_eq!(e.total_weight(), 0.0);
        assert!(e.cut_points(4).is_empty());

        // Merging an empty sketch into a populated one changes nothing.
        let mut s = QuantileSketch::new(16);
        for i in 0..100 {
            s.push(i as f64, 1.0);
        }
        let before_cuts = s.clone().cut_points(4);
        s.merge(&QuantileSketch::new(8));
        assert_eq!(s.total_weight(), 100.0);
        assert_eq!(s.cut_points(4), before_cuts);

        // Merging a populated sketch into an empty one adopts its contents.
        let mut e2 = QuantileSketch::new(16);
        e2.merge(&s);
        assert_eq!(e2.total_weight(), 100.0);
        assert_eq!(e2.cut_points(4), s.cut_points(4));
    }

    #[test]
    fn weights_shift_quantiles() {
        let mut s = QuantileSketch::new(64);
        // Value 0 has weight 90, value 100 weight 10: the median cut is 0.
        for _ in 0..90 {
            s.push(0.0, 1.0);
        }
        for _ in 0..10 {
            s.push(100.0, 1.0);
        }
        let cuts = s.cut_points(2);
        assert_eq!(cuts, vec![0.0]);
    }

    #[test]
    fn nan_and_nonpositive_weight_ignored() {
        let mut s = QuantileSketch::new(8);
        s.push(f64::NAN, 1.0);
        s.push(1.0, 0.0);
        s.push(1.0, -5.0);
        assert_eq!(s.total_weight(), 0.0);
        assert!(s.cut_points(4).is_empty());
    }

    #[test]
    fn constant_values_produce_no_cuts() {
        let mut s = QuantileSketch::new(8);
        for _ in 0..100 {
            s.push(3.0, 1.0);
        }
        assert!(s.cut_points(4).is_empty());
    }

    #[test]
    fn cuts_strictly_increasing() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = QuantileSketch::new(32);
        for _ in 0..3_000 {
            s.push(rng.gen_range(0..50) as f64, rng.gen_range(0.1..2.0));
        }
        let cuts = s.cut_points(16);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(cuts.iter().all(|c| (0.0..49.0).contains(c)));
    }
}
