//! Impurity functions and incremental label aggregates.
//!
//! The paper evaluates node splits with Gini index or entropy for
//! classification and variance for regression (§II). The aggregates here
//! support `O(1)` add/remove of one label so the sorted-scan kernels find the
//! best threshold in one pass (Appendix B, Case 1).

use ts_datatable::Labels;
use tsjson::{Deserialize, Serialize};

/// The impurity function used to score node splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Impurity {
    /// Gini index `1 - sum_i p_i^2` (classification).
    Gini,
    /// Shannon entropy `-sum_i p_i log2 p_i` (classification).
    Entropy,
    /// Variance of `Y` (regression).
    Variance,
}

/// A borrowed view over the labels of a row set, in gathered order.
#[derive(Debug, Clone, Copy)]
pub enum LabelView<'a> {
    /// Class labels with the total class count of the task.
    Class(&'a [u32], u32),
    /// Real-valued targets.
    Real(&'a [f64]),
}

impl<'a> LabelView<'a> {
    /// Builds a view over a full [`Labels`] column.
    ///
    /// `n_classes` is required for classification (ignored for regression).
    pub fn of(labels: &'a Labels, n_classes: u32) -> Self {
        match labels {
            Labels::Class(v) => LabelView::Class(v, n_classes),
            Labels::Real(v) => LabelView::Real(v),
        }
    }

    /// Number of labels in the view.
    pub fn len(&self) -> usize {
        match self {
            LabelView::Class(v, _) => v.len(),
            LabelView::Real(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Incremental class-count aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassCounts {
    counts: Vec<u64>,
    total: u64,
}

impl ClassCounts {
    /// Empty counts for `n_classes` classes.
    pub fn new(n_classes: u32) -> Self {
        ClassCounts {
            counts: vec![0; n_classes as usize],
            total: 0,
        }
    }

    /// Adds one label.
    pub fn add(&mut self, y: u32) {
        self.counts[y as usize] += 1;
        self.total += 1;
    }

    /// Removes one label previously added.
    pub fn remove(&mut self, y: u32) {
        debug_assert!(self.counts[y as usize] > 0);
        self.counts[y as usize] -= 1;
        self.total -= 1;
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Returns `self - other` elementwise.
    ///
    /// # Panics
    /// Debug-asserts that `other` is contained in `self`.
    pub fn minus(&self, other: &ClassCounts) -> ClassCounts {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| {
                debug_assert!(a >= b);
                a - b
            })
            .collect();
        ClassCounts {
            counts,
            total: self.total - other.total,
        }
    }

    /// Resets to the empty state, keeping the allocation (scratch-pool reuse).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }

    /// Number of classes this aggregate was sized for.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total rows counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-class counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `impurity * n` — the weighted impurity contribution of this row set.
    ///
    /// Working with the weighted form avoids divisions in the scan loop and
    /// makes gains from different columns directly comparable.
    pub fn weighted_impurity(&self, kind: Impurity) -> f64 {
        let n = self.total as f64;
        if self.total == 0 {
            return 0.0;
        }
        match kind {
            Impurity::Gini => {
                // n * (1 - sum p_i^2) = n - (sum c_i^2)/n
                let ssq: f64 = self.counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
                n - ssq / n
            }
            Impurity::Entropy => {
                // n * (-sum p log2 p) = n log2 n - sum c log2 c
                let sum_clogc: f64 = self
                    .counts
                    .iter()
                    .filter(|&&c| c > 0)
                    .map(|&c| (c as f64) * (c as f64).log2())
                    .sum();
                n * n.log2() - sum_clogc
            }
            Impurity::Variance => panic!("variance impurity applied to class labels"),
        }
    }

    /// Whether all rows share one label (or the set is empty).
    pub fn is_pure(&self) -> bool {
        self.counts.iter().filter(|&&c| c > 0).count() <= 1
    }

    /// The majority label (ties broken toward the smallest label id) and the
    /// probability mass function over classes.
    pub fn prediction(&self) -> (u32, Vec<f32>) {
        let n = self.total.max(1) as f32;
        let pmf: Vec<f32> = self.counts.iter().map(|&c| c as f32 / n).collect();
        let label = self
            .counts
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        (label, pmf)
    }
}

/// Incremental regression aggregate: count, sum and sum of squares.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RegAgg {
    /// Row count.
    pub n: u64,
    /// Sum of targets.
    pub sum: f64,
    /// Sum of squared targets.
    pub sum_sq: f64,
}

impl RegAgg {
    /// Adds one target value.
    pub fn add(&mut self, y: f64) {
        self.n += 1;
        self.sum += y;
        self.sum_sq += y * y;
    }

    /// Removes one previously-added target value.
    pub fn remove(&mut self, y: f64) {
        debug_assert!(self.n > 0);
        self.n -= 1;
        self.sum -= y;
        self.sum_sq -= y * y;
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &RegAgg) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Mean target (0 for an empty set).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// `variance * n`, clamped at 0 against floating-point cancellation.
    pub fn weighted_impurity(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (self.sum_sq - self.sum * self.sum / self.n as f64).max(0.0)
    }
}

/// Label statistics of one node's row set `Dx`: the aggregate needed to
/// compute impurity, detect purity, and produce the node's prediction
/// (which TreeServer stores at *every* node, Appendix D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeStats {
    /// Classification aggregate.
    Class(ClassCounts),
    /// Regression aggregate.
    Reg(RegAgg),
}

impl NodeStats {
    /// Builds stats over every label in the view.
    pub fn from_view(view: LabelView<'_>) -> Self {
        match view {
            LabelView::Class(ys, k) => {
                let mut c = ClassCounts::new(k);
                for &y in ys {
                    c.add(y);
                }
                NodeStats::Class(c)
            }
            LabelView::Real(ys) => {
                let mut a = RegAgg::default();
                for &y in ys {
                    a.add(y);
                }
                NodeStats::Reg(a)
            }
        }
    }

    /// Builds stats over a subset of positions in the view.
    pub fn from_view_positions(view: LabelView<'_>, pos: impl Iterator<Item = usize>) -> Self {
        match view {
            LabelView::Class(ys, k) => {
                let mut c = ClassCounts::new(k);
                for p in pos {
                    c.add(ys[p]);
                }
                NodeStats::Class(c)
            }
            LabelView::Real(ys) => {
                let mut a = RegAgg::default();
                for p in pos {
                    a.add(ys[p]);
                }
                NodeStats::Reg(a)
            }
        }
    }

    /// Number of rows aggregated.
    pub fn n(&self) -> u64 {
        match self {
            NodeStats::Class(c) => c.total(),
            NodeStats::Reg(a) => a.n,
        }
    }

    /// `impurity * n` under the given impurity function.
    pub fn weighted_impurity(&self, kind: Impurity) -> f64 {
        match self {
            NodeStats::Class(c) => c.weighted_impurity(kind),
            NodeStats::Reg(a) => a.weighted_impurity(),
        }
    }

    /// Whether splitting is pointless: all labels identical (classification)
    /// or zero variance (regression).
    pub fn is_pure(&self) -> bool {
        match self {
            NodeStats::Class(c) => c.is_pure(),
            NodeStats::Reg(a) => a.weighted_impurity() <= 0.0,
        }
    }

    /// Merges another stats value of the same kind.
    ///
    /// # Panics
    /// Panics if the kinds differ.
    pub fn merge(&mut self, other: &NodeStats) {
        match (self, other) {
            (NodeStats::Class(a), NodeStats::Class(b)) => a.merge(b),
            (NodeStats::Reg(a), NodeStats::Reg(b)) => a.merge(b),
            _ => panic!("cannot merge class stats with regression stats"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_weighted_matches_definition() {
        let mut c = ClassCounts::new(2);
        for _ in 0..3 {
            c.add(0);
        }
        c.add(1);
        // p = (3/4, 1/4); gini = 1 - 9/16 - 1/16 = 6/16; weighted = 4 * 6/16 = 1.5
        assert!((c.weighted_impurity(Impurity::Gini) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn entropy_weighted_matches_definition() {
        let mut c = ClassCounts::new(2);
        c.add(0);
        c.add(1);
        // entropy of (1/2,1/2) = 1 bit; weighted = 2.
        assert!((c.weighted_impurity(Impurity::Entropy) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pure_and_empty_counts() {
        let mut c = ClassCounts::new(3);
        assert!(c.is_pure());
        assert_eq!(c.weighted_impurity(Impurity::Gini), 0.0);
        c.add(2);
        c.add(2);
        assert!(c.is_pure());
        assert_eq!(c.weighted_impurity(Impurity::Gini), 0.0);
        c.add(0);
        assert!(!c.is_pure());
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut c = ClassCounts::new(2);
        c.add(0);
        c.add(1);
        c.add(1);
        let w = c.weighted_impurity(Impurity::Gini);
        c.add(0);
        c.remove(0);
        assert!((c.weighted_impurity(Impurity::Gini) - w).abs() < 1e-12);
    }

    #[test]
    fn prediction_majority_with_tie_to_smaller_label() {
        let mut c = ClassCounts::new(3);
        c.add(1);
        c.add(2);
        let (label, pmf) = c.prediction();
        assert_eq!(label, 1, "tie breaks toward smaller label id");
        assert_eq!(pmf, vec![0.0, 0.5, 0.5]);
    }

    #[test]
    fn reg_agg_variance() {
        let mut a = RegAgg::default();
        for y in [1.0, 2.0, 3.0] {
            a.add(y);
        }
        // var = 2/3; weighted = 2.
        assert!((a.weighted_impurity() - 2.0).abs() < 1e-12);
        assert_eq!(a.mean(), 2.0);
        a.remove(3.0);
        assert!((a.weighted_impurity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reg_agg_never_negative() {
        let mut a = RegAgg::default();
        for _ in 0..1000 {
            a.add(1e9);
        }
        assert_eq!(a.weighted_impurity(), 0.0);
    }

    #[test]
    fn node_stats_purity_and_merge() {
        let s1 = NodeStats::from_view(LabelView::Class(&[1, 1, 1], 3));
        assert!(s1.is_pure());
        let mut s2 = NodeStats::from_view(LabelView::Class(&[0], 3));
        s2.merge(&s1);
        assert_eq!(s2.n(), 4);
        assert!(!s2.is_pure());

        let r = NodeStats::from_view(LabelView::Real(&[5.0, 5.0]));
        assert!(r.is_pure());
    }

    #[test]
    fn node_stats_positions_subset() {
        let view = LabelView::Real(&[1.0, 10.0, 100.0]);
        let s = NodeStats::from_view_positions(view, [0, 2].into_iter());
        assert_eq!(s.n(), 2);
        match s {
            NodeStats::Reg(a) => assert_eq!(a.sum, 101.0),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn node_stats_merge_kind_mismatch_panics() {
        let mut a = NodeStats::from_view(LabelView::Class(&[0], 2));
        let b = NodeStats::from_view(LabelView::Real(&[1.0]));
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "variance impurity")]
    fn variance_on_class_counts_panics() {
        let mut c = ClassCounts::new(2);
        c.add(0);
        c.weighted_impurity(Impurity::Variance);
    }
}
