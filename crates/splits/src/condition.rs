//! Split-conditions and row partitioning.
//!
//! A split-condition is either `Ai <= v` for ordinal attributes or
//! `Ai ∈ Sl` for categorical attributes (paper §II). [`partition_rows`] is
//! the operation a *delegate worker* performs when the master confirms its
//! column's condition as the overall best: splitting `Ix` into `Ixl`/`Ixr`
//! with its locally-held column (paper §V).

use ts_datatable::{Column, Value};
use tsjson::{Deserialize, Serialize};

/// The test applied at an internal node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SplitTest {
    /// `Ai <= v`: rows with value at most `v` go left.
    NumericLe(f64),
    /// `Ai ∈ Sl`: rows whose code is in the (sorted, deduplicated) set go left.
    CatIn(Vec<u32>),
}

impl SplitTest {
    /// Evaluates the test for one value.
    ///
    /// Returns `None` when the value is missing — the caller decides what a
    /// missing value means (majority-side routing during training,
    /// stop-at-node during prediction; see Appendix D).
    pub fn goes_left(&self, v: Value) -> Option<bool> {
        match (self, v) {
            (SplitTest::NumericLe(t), Value::Num(x)) => Some(x <= *t),
            (SplitTest::CatIn(set), Value::Cat(c)) => Some(set.binary_search(&c).is_ok()),
            (_, Value::Missing) => None,
            // A type mismatch means the model is being applied to the wrong
            // schema; that is a caller bug, not a data condition.
            (SplitTest::NumericLe(_), Value::Cat(_)) => {
                panic!("numeric split applied to categorical value")
            }
            (SplitTest::CatIn(_), Value::Num(_)) => {
                panic!("categorical split applied to numeric value")
            }
        }
    }

    /// Creates a sorted, deduplicated categorical test.
    pub fn cat_in(mut vals: Vec<u32>) -> Self {
        vals.sort_unstable();
        vals.dedup();
        SplitTest::CatIn(vals)
    }

    /// Approximate wire size of the test in bytes (for network accounting).
    pub fn wire_bytes(&self) -> usize {
        match self {
            SplitTest::NumericLe(_) => 9,
            SplitTest::CatIn(s) => 1 + 4 + 4 * s.len(),
        }
    }
}

/// Splits the row ids `ix` into `(left, right)` using `col`'s values and the
/// test, preserving the input order (so sorted `Ix` stays sorted and every
/// machine observes the same canonical order). Missing values go to the side
/// indicated by `missing_left`.
pub fn partition_rows(
    col: &Column,
    ix: &[u32],
    test: &SplitTest,
    missing_left: bool,
) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in ix {
        let go_left = test
            .goes_left(col.value(r as usize))
            .unwrap_or(missing_left);
        if go_left {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

/// Like [`partition_rows`] but over a full [`ts_datatable::ValuesBuf`]
/// indexed by row ids: the sorted-column trainer partitions a node's row set
/// directly against the full column instead of re-gathering it first.
/// Preserves input order, so ascending row sets stay ascending.
pub fn partition_rows_buf(
    values: &ts_datatable::ValuesBuf,
    ix: &[u32],
    test: &SplitTest,
    missing_left: bool,
) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in ix {
        let go_left = test
            .goes_left(values.value(r as usize))
            .unwrap_or(missing_left);
        if go_left {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

/// Like [`partition_rows`] but over *positions* of an already-gathered values
/// buffer (used inside subtree-tasks, where data is local and indexed by
/// position within `Dx` rather than by global row id).
pub fn partition_positions(
    values: &ts_datatable::ValuesBuf,
    test: &SplitTest,
    missing_left: bool,
) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..values.len() {
        let go_left = test.goes_left(values.value(i)).unwrap_or(missing_left);
        if go_left {
            left.push(i as u32);
        } else {
            right.push(i as u32);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_datatable::{ValuesBuf, MISSING_CAT};

    #[test]
    fn numeric_test_boundaries() {
        let t = SplitTest::NumericLe(40.0);
        assert_eq!(t.goes_left(Value::Num(40.0)), Some(true));
        assert_eq!(t.goes_left(Value::Num(40.0001)), Some(false));
        assert_eq!(t.goes_left(Value::Missing), None);
    }

    #[test]
    fn cat_test_membership() {
        // Fig. 1(b): A2 ∈ {Bachelor, Master, PhD} = codes {2,3,4}.
        let t = SplitTest::cat_in(vec![4, 2, 3, 2]);
        assert_eq!(t, SplitTest::CatIn(vec![2, 3, 4]));
        assert_eq!(t.goes_left(Value::Cat(3)), Some(true));
        assert_eq!(t.goes_left(Value::Cat(1)), Some(false));
        assert_eq!(t.goes_left(Value::Missing), None);
    }

    #[test]
    #[should_panic(expected = "numeric split applied")]
    fn type_mismatch_panics() {
        SplitTest::NumericLe(1.0).goes_left(Value::Cat(0));
    }

    #[test]
    fn partition_preserves_order_and_routes_missing() {
        let col = Column::Numeric(vec![1.0, f64::NAN, 3.0, 2.0, 5.0]);
        let (l, r) = partition_rows(&col, &[0, 1, 2, 3, 4], &SplitTest::NumericLe(2.5), true);
        assert_eq!(l, vec![0, 1, 3]);
        assert_eq!(r, vec![2, 4]);
        let (l2, r2) = partition_rows(&col, &[0, 1, 2, 3, 4], &SplitTest::NumericLe(2.5), false);
        assert_eq!(l2, vec![0, 3]);
        assert_eq!(r2, vec![1, 2, 4]);
    }

    #[test]
    fn partition_subset_of_rows() {
        let col = Column::Categorical(vec![0, 1, 2, 1, MISSING_CAT]);
        let (l, r) = partition_rows(&col, &[4, 2, 1], &SplitTest::cat_in(vec![1]), false);
        assert_eq!(l, vec![1]);
        assert_eq!(r, vec![4, 2]);
    }

    #[test]
    fn partition_positions_over_buffer() {
        let buf = ValuesBuf::Numeric(vec![10.0, 20.0, 30.0]);
        let (l, r) = partition_positions(&buf, &SplitTest::NumericLe(15.0), true);
        assert_eq!(l, vec![0]);
        assert_eq!(r, vec![1, 2]);
    }

    #[test]
    fn wire_bytes_scale_with_set_size() {
        assert_eq!(SplitTest::NumericLe(1.0).wire_bytes(), 9);
        assert_eq!(SplitTest::cat_in(vec![1, 2, 3]).wire_bytes(), 17);
    }
}
